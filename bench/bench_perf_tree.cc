// P2 — timing of decision-tree training per algorithm (google-benchmark):
// the paper's cost argument that ByClass reconstructs once per class per
// attribute while Local reconstructs at every node.

#include <benchmark/benchmark.h>

#include "core/experiment.h"

namespace {

using namespace ppdm;

void RunMode(benchmark::State& state, tree::TrainingMode mode) {
  core::ExperimentConfig config;
  config.function = synth::Function::kF3;
  config.train_records = static_cast<std::size_t>(state.range(0));
  config.test_records = 100;
  config.noise = perturb::NoiseKind::kUniform;
  config.privacy_fraction = 1.0;
  const core::ExperimentData data = core::PrepareData(config);
  const data::Dataset& training = mode == tree::TrainingMode::kOriginal
                                      ? data.train
                                      : data.perturbed_train;
  const perturb::Randomizer* randomizer =
      tree::ModeUsesReconstruction(mode) ? &data.randomizer : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree::TrainDecisionTree(training, mode, config.tree, randomizer));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(config.train_records) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_TrainOriginal(benchmark::State& state) {
  RunMode(state, tree::TrainingMode::kOriginal);
}
void BM_TrainRandomized(benchmark::State& state) {
  RunMode(state, tree::TrainingMode::kRandomized);
}
void BM_TrainGlobal(benchmark::State& state) {
  RunMode(state, tree::TrainingMode::kGlobal);
}
void BM_TrainByClass(benchmark::State& state) {
  RunMode(state, tree::TrainingMode::kByClass);
}
void BM_TrainLocal(benchmark::State& state) {
  RunMode(state, tree::TrainingMode::kLocal);
}

BENCHMARK(BM_TrainOriginal)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainRandomized)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainGlobal)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainByClass)->Arg(10000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TrainLocal)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
