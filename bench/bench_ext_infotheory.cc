// X1 — information-theoretic extension (Agrawal–Aggarwal, PODS '01):
// entropy-based privacy Π(X), mutual information through the perturbation
// channel (the privacy actually surrendered), and the information loss of
// the reconstruction, as the privacy level sweeps.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "core/infotheory.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  bench::PrintBanner("X1", "entropy privacy / mutual information / "
                           "information loss (AA'01 extension)");

  const std::size_t n = core::PaperScaleRequested() ? 100000 : 20000;
  const std::size_t bins = 20;
  const reconstruct::Partition partition(0.0, 1.0, bins);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);

  std::printf("%-10s %-9s | %12s %14s %16s %14s\n", "privacy", "noise",
              "Pi(X)", "I(X;W) bits", "I/H(X) leaked", "recon loss");
  for (perturb::NoiseKind kind :
       {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
    for (double pf : {0.25, 0.5, 1.0, 2.0}) {
      Rng rng(3);
      const perturb::NoiseModel noise =
          perturb::NoiseForPrivacy(kind, pf, 1.0, 0.95);
      stats::Histogram original(0.0, 1.0, bins);
      std::vector<double> perturbed(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = truth.Sample(&rng);
        original.Add(x);
        perturbed[i] = x + noise.Sample(&rng);
      }
      const auto masses = original.Masses();
      const double pi_x = core::EntropyPrivacy(masses, partition.width());
      const double mi = core::MutualInformationBits(masses, partition, noise);
      const double hx = core::DiscreteEntropyBits(masses);
      const reconstruct::BayesReconstructor reconstructor(noise, {});
      const auto recon = reconstructor.Fit(perturbed, partition);
      const double loss = core::InformationLoss(masses, recon.masses);
      std::printf("%8.0f%% %-9s | %12.4f %14.4f %15.1f%% %14.4f\n",
                  bench::Pct(pf), perturb::NoiseKindName(kind).c_str(), pi_x,
                  mi, bench::Pct(mi / hx), loss);
    }
  }
  std::printf("\nExpected shape: leaked fraction I/H falls as privacy "
              "grows; reconstruction\nloss stays small even when most "
              "per-record information is destroyed —\nthe paper's central "
              "point (aggregates survive, individuals hide).\n");
  return 0;
}
