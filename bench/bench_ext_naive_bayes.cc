// X3 — classifier-agnosticism extension: naive Bayes trained from the
// same per-class reconstructions, vs the decision tree, across privacy
// levels. NB consumes only the reconstructed marginals (no record
// association), so it shows what reconstruction alone supports.

#include <cstdio>

#include "bayes/naive_bayes.h"
#include "bench/bench_util.h"

namespace {

using namespace ppdm;

double Accuracy(const bayes::NaiveBayesModel& model,
                const data::Dataset& test) {
  std::size_t correct = 0;
  for (std::size_t r = 0; r < test.NumRows(); ++r) {
    if (model.Predict(test.Row(r)) == test.Label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(test.NumRows());
}

}  // namespace

int main() {
  bench::PrintBanner("X3", "naive Bayes over reconstructed distributions");

  std::printf("%-6s %10s | %12s %12s | %12s %12s\n", "fn", "privacy",
              "NB original", "NB recon", "NB raw-pert", "tree ByClass");
  for (synth::Function fn : bench::AllFunctions()) {
    for (double privacy : {0.5, 1.0}) {
      core::ExperimentConfig config = bench::DefaultConfig(fn);
      config.noise = perturb::NoiseKind::kUniform;
      config.privacy_fraction = privacy;
      const core::ExperimentData data = core::PrepareData(config);

      const double nb_original =
          Accuracy(bayes::TrainNaiveBayes(data.train, {}), data.test);
      const double nb_recon = Accuracy(
          bayes::TrainNaiveBayesReconstructed(data.perturbed_train,
                                              data.randomizer, {}),
          data.test);
      const double nb_raw = Accuracy(
          bayes::TrainNaiveBayes(data.perturbed_train, {}), data.test);
      const double tree_byclass =
          core::RunMode(data, tree::TrainingMode::kByClass, config).accuracy;

      std::printf("%-6s %8.0f%% | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n",
                  synth::FunctionName(fn).c_str(), bench::Pct(privacy),
                  bench::Pct(nb_original), bench::Pct(nb_recon),
                  bench::Pct(nb_raw), bench::Pct(tree_byclass));
    }
  }
  std::printf("\nExpected shape: reconstructed NB beats NB trained on raw "
              "perturbed values;\nthe reconstruction layer is classifier-"
              "agnostic (paper §7 outlook).\n");
  return 0;
}
