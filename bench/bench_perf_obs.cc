// P-OBS — cost of the observability layer's hot paths: recording a span
// into a trace ring (armed and fully disarmed), adopting a trace context,
// incrementing a labeled counter through the registry (cached-pointer and
// per-call lookup), and the begin/end pending-span pair the daemon pays
// per request. The disarmed rows bound the tracing tax when
// SetTimingEnabled(false) turns the whole layer off — the determinism
// contract says that toggle may change *nothing* but time.

#include <cstdio>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main() {
  using namespace ppdm;
  bench::PrintBanner("P-OBS", "observability hot-path costs");
  const std::size_t ops = bench::BenchRecords(2000000);
  std::printf("ops per case=%zu\n\n", ops);

  bench::ThroughputReporter reporter("ops", 3, "perf_obs");

  // Spans into a private ring, under an adopted context so every event
  // carries trace/span/parent ids — the armed steady state.
  obs::TraceRing ring(512);
  reporter.Measure("span.record", ops, "span.record", [&] {
    obs::ScopedTraceContext adopt(
        obs::TraceContext{obs::NewTraceId(), 0});
    for (std::size_t i = 0; i < ops; ++i) {
      obs::ScopedSpan span("bench.span", nullptr, &ring);
    }
  });

  // The same loop with instrumentation globally disarmed: the span
  // constructor must reduce to a flag test.
  obs::SetTimingEnabled(false);
  reporter.Measure("span.disarmed", ops, "span.record", [&] {
    for (std::size_t i = 0; i < ops; ++i) {
      obs::ScopedSpan span("bench.span", nullptr, &ring);
    }
  });
  obs::SetTimingEnabled(true);

  // The daemon's per-request shape: open at dispatch, close in the
  // completion callback.
  reporter.Measure("span.begin_end", ops, "span.record", [&] {
    const obs::TraceContext parent{obs::NewTraceId(), 0};
    for (std::size_t i = 0; i < ops; ++i) {
      obs::PendingSpan pending = obs::BeginSpan("bench.pending", parent);
      obs::EndSpan(&pending, &ring);
    }
  });

  // Labeled counters: the steady-state increment through a cached
  // pointer, then the full name+labels lookup the dispatch path pays
  // when it resolves a tenant's series per request.
  obs::MetricsRegistry registry;
  obs::Counter* cached =
      registry.GetCounter("bench_labeled_total", obs::LabelSet{{"tenant", "t0"}});
  reporter.Measure("counter.increment", ops, "counter.increment", [&] {
    for (std::size_t i = 0; i < ops; ++i) cached->Increment();
  });
  const std::string labels = obs::RenderLabelSet({{"tenant", "t0"}});
  reporter.Measure("counter.lookup_inc", ops, "counter.increment", [&] {
    for (std::size_t i = 0; i < ops; ++i) {
      registry.GetCounter("bench_labeled_total", labels)->Increment();
    }
  });

  std::printf("\nring recorded=%llu dropped=%llu\n",
              static_cast<unsigned long long>(ring.TotalRecorded()),
              static_cast<unsigned long long>(ring.DroppedCount()));
  return 0;
}
