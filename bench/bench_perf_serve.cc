// P8 — network serving: the daemon behind a real TCP loopback, swept
// over tenant counts. Each sweep starts a fresh in-process Server, drives
// it with one client connection per tenant group (ingest every batch,
// reconstruct every 4th), and reports sustained QPS plus client-side
// p50/p99 per verb — the numbers an operator sizes `ppdm served` with.
// Emits one NDJSON row per sweep (EmitBenchJson; PPDM_BENCH_JSON=FILE
// appends them to a file). Honours PPDM_BENCH_RECORDS=N (CI smoke).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

constexpr std::size_t kIntervals = 30;
constexpr std::size_t kBatchRecords = 1024;
constexpr std::size_t kNumAttrs = 2;
constexpr std::size_t kReconstructEvery = 4;

api::DatasetSessionSpec SpecFor(const data::Schema& schema) {
  api::DatasetSessionSpec spec;
  spec.schema = schema;
  for (std::size_t column = 0; column < kNumAttrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = kIntervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = 512;
  return spec;
}

}  // namespace

int main() {
  bench::PrintBanner("P8", "network serving daemon: QPS vs tenant count");
  const std::size_t records_per_tenant = bench::BenchRecords(8000);
  const std::size_t server_threads =
      std::max(2u, std::thread::hardware_concurrency() / 2);
  std::printf("records/tenant=%zu  batch=%zu  attrs=%zu  server threads=%zu\n\n",
              records_per_tenant, kBatchRecords, kNumAttrs, server_threads);

  const data::Schema schema = synth::BenchmarkSchema();
  const api::DatasetSessionSpec spec = SpecFor(schema);
  std::size_t num_cols = 0;
  const std::vector<double> rows = bench::PerturbedRowMajor(
      records_per_tenant, synth::Function::kF1, /*seed=*/20000607,
      /*noise_seed=*/0x5DEECE66DULL, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;

  auto& metrics = obs::MetricsRegistry::Global();
  std::printf("%-14s %10s %12s %12s %12s %12s\n", "case", "req/s",
              "ing p50 ms", "ing p99 ms", "rec p50 ms", "rec p99 ms");

  for (const std::size_t tenants : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    const std::string label = "tenants=" + std::to_string(tenants);
    net::ServerOptions options;
    options.num_threads = server_threads;
    options.shard_size = 512;
    auto server = net::Server::Start(options);
    if (!server.ok()) {
      std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
      return 1;
    }
    const int port = server.value()->port();

    obs::Histogram* ingest_hist = metrics.GetHistogram(
        "ppdm_bench_serve_ingest_seconds",
        obs::Histogram::LatencyBucketsSeconds(), "case=\"" + label + "\"");
    obs::Histogram* reconstruct_hist = metrics.GetHistogram(
        "ppdm_bench_serve_reconstruct_seconds",
        obs::Histogram::LatencyBucketsSeconds(), "case=\"" + label + "\"");
    std::atomic<std::uint64_t> requests{0};
    std::atomic<bool> failed{false};

    // One connection per tenant, one driver thread per connection (the
    // loadgen shape with connections == tenants).
    auto drive = [&](std::uint64_t tenant) {
      auto client = net::Client::Connect("127.0.0.1", port);
      if (!client.ok() || !client.value().Open(tenant, spec).ok()) {
        failed.store(true);
        return;
      }
      requests.fetch_add(1, std::memory_order_relaxed);
      std::size_t batch_index = 0;
      for (std::size_t r = 0; r < num_rows; r += kBatchRecords) {
        const std::size_t n = std::min(kBatchRecords, num_rows - r);
        const std::vector<double> batch(rows.begin() + r * num_cols,
                                        rows.begin() + (r + n) * num_cols);
        obs::ScopedTimer timer(ingest_hist);
        if (!client.value().Ingest(tenant, n, num_cols, batch).ok()) {
          failed.store(true);
          return;
        }
        timer.Stop();
        requests.fetch_add(1, std::memory_order_relaxed);
        if (++batch_index % kReconstructEvery == 0) {
          obs::ScopedTimer refresh(reconstruct_hist);
          if (!client.value().Reconstruct(tenant).ok()) {
            failed.store(true);
            return;
          }
          refresh.Stop();
          requests.fetch_add(1, std::memory_order_relaxed);
        }
      }
    };

    const double seconds = bench::WallSeconds([&] {
      std::vector<std::thread> drivers;
      for (std::uint64_t tenant = 0; tenant < tenants; ++tenant) {
        drivers.emplace_back(drive, tenant);
      }
      for (std::thread& driver : drivers) driver.join();
    });
    if (failed.load() || !server.value()->Stop().ok()) {
      std::fprintf(stderr, "%s: request failure\n", label.c_str());
      return 1;
    }

    const double qps =
        seconds > 0 ? static_cast<double>(requests.load()) / seconds : 0.0;
    const double ing_p50 = 1e3 * ingest_hist->Quantile(0.5);
    const double ing_p99 = 1e3 * ingest_hist->Quantile(0.99);
    const double rec_p50 = 1e3 * reconstruct_hist->Quantile(0.5);
    const double rec_p99 = 1e3 * reconstruct_hist->Quantile(0.99);
    std::printf("%-14s %10.0f %12.3f %12.3f %12.3f %12.3f\n", label.c_str(),
                qps, ing_p50, ing_p99, rec_p50, rec_p99);
    bench::EmitBenchJson(
        "perf_serve", label,
        {{"tenants", static_cast<double>(tenants)},
         {"requests", static_cast<double>(requests.load())},
         {"seconds", seconds},
         {"qps", qps},
         {"ingest_p50_ms", ing_p50},
         {"ingest_p99_ms", ing_p99},
         {"reconstruct_p50_ms", rec_p50},
         {"reconstruct_p99_ms", rec_p99}});
  }
  return 0;
}
