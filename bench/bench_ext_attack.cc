// X4 — adversarial validation of §3: a Bayesian attacker (knows the noise
// model and the reconstructed distribution) tries to pin each record's
// true interval. Reported per privacy level: MAP hit rate vs the prior
// baseline, and the attacker's achieved 95% credible width vs the privacy
// the calibration promised.

#include <cstdio>
#include <vector>

#include "attack/interval_attack.h"
#include "bench/bench_util.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  bench::PrintBanner("X4", "Bayesian interval-inference attack vs claimed "
                           "privacy");

  const std::size_t n = core::PaperScaleRequested() ? 100000 : 20000;
  const std::size_t bins = 20;
  const reconstruct::Partition partition(0.0, 1.0, bins);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);

  std::printf("%-9s %-9s | %10s %12s | %16s %16s %10s\n", "privacy",
              "noise", "MAP hit", "prior hit", "claimed 95% w",
              "achieved 95% w", "coverage");
  for (perturb::NoiseKind kind :
       {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
    for (double pf : {0.1, 0.25, 0.5, 1.0, 2.0}) {
      Rng rng(17);
      const perturb::NoiseModel noise =
          perturb::NoiseForPrivacy(kind, pf, 1.0, 0.95);
      std::vector<double> original(n), perturbed(n);
      for (std::size_t i = 0; i < n; ++i) {
        original[i] = truth.Sample(&rng);
        perturbed[i] = original[i] + noise.Sample(&rng);
      }
      // The attacker uses the *reconstructed* distribution as its prior —
      // exactly what a malicious server would have.
      const reconstruct::BayesReconstructor reconstructor(noise, {});
      const auto recon = reconstructor.Fit(perturbed, partition);

      const auto result = attack::RunIntervalAttack(
          original, perturbed, partition, noise, recon.masses);
      std::printf("%7.0f%% %-9s | %9.1f%% %11.1f%% | %15.3f %16.3f %9.1f%%\n",
                  bench::Pct(pf), perturb::NoiseKindName(kind).c_str(),
                  bench::Pct(result.map_hit_rate),
                  bench::Pct(result.prior_hit_rate),
                  noise.PrivacyAtConfidence(0.95),
                  result.mean_credible_width95,
                  bench::Pct(result.credible_coverage));
    }
  }
  std::printf("\nExpected shape: as claimed privacy grows, MAP falls to "
              "the prior baseline and\nthe achieved credible width "
              "approaches the claimed width (clipped by the unit\ndomain). "
              "Coverage stays ≥95%%: the §3 accounting is honest under "
              "this model.\n");
  return 0;
}
