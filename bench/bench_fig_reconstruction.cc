// F1 — the paper's "reconstructing the original distribution" figures:
// original vs perturbed vs reconstructed histograms for the plateau and
// triangle ground truths, under uniform and Gaussian noise at 100%
// privacy, with total-variation / KS error summaries.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

namespace {

using namespace ppdm;

void RunCase(const char* shape_name, const stats::Distribution& truth,
             perturb::NoiseKind kind) {
  const std::size_t n = core::PaperScaleRequested() ? 100000 : 20000;
  const std::size_t bins = 20;
  Rng rng(7);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(kind, 1.0, 1.0, 0.95);

  stats::Histogram original(0.0, 1.0, bins);
  stats::Histogram perturbed_hist(0.0, 1.0, bins);
  std::vector<double> perturbed(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = truth.Sample(&rng);
    const double w = x + noise.Sample(&rng);
    original.Add(x);
    perturbed_hist.Add(w);
    perturbed[i] = w;
  }

  const reconstruct::BayesReconstructor reconstructor(noise, {});
  const reconstruct::Reconstruction recon =
      reconstructor.Fit(perturbed, reconstruct::Partition(0.0, 1.0, bins));

  const auto orig_m = original.Masses();
  const auto pert_m = perturbed_hist.Masses();

  std::printf("\n-- %s distribution, %s noise @100%% privacy "
              "(n=%zu, %zu EM iterations) --\n",
              shape_name, perturb::NoiseKindName(kind).c_str(), n,
              recon.iterations);
  std::printf("%-8s %10s %10s %13s\n", "bin mid", "original",
              "randomized", "reconstructed");
  for (std::size_t k = 0; k < bins; ++k) {
    std::printf("%-8.3f %9.2f%% %9.2f%% %12.2f%%\n", original.BinMid(k),
                bench::Pct(orig_m[k]), bench::Pct(pert_m[k]),
                bench::Pct(recon.masses[k]));
  }
  std::printf("error vs original:  randomized TV=%.4f KS=%.4f |  "
              "reconstructed TV=%.4f KS=%.4f\n",
              stats::TotalVariation(pert_m, orig_m),
              stats::KolmogorovSmirnov(pert_m, orig_m),
              stats::TotalVariation(recon.masses, orig_m),
              stats::KolmogorovSmirnov(recon.masses, orig_m));
}

}  // namespace

int main() {
  bench::PrintBanner("F1", "distribution reconstruction (paper §4 figures)");
  const stats::PlateauDistribution plateau(0.0, 1.0, 0.25);
  const stats::TriangleDistribution triangle(0.0, 1.0);
  for (perturb::NoiseKind kind :
       {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
    RunCase("plateau", plateau, kind);
    RunCase("triangle", triangle, kind);
  }
  return 0;
}
