// F3a/F3b — the paper's "comparing the classification algorithms" figures:
// test accuracy of Original, Randomized, Global, ByClass, and Local on
// Fn1..Fn5, uniform noise, at 25% and 100% privacy (95% confidence).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  bench::PrintBanner("F3", "algorithm comparison at 25% and 100% privacy");

  const std::vector<TrainingMode> modes{
      TrainingMode::kOriginal, TrainingMode::kRandomized,
      TrainingMode::kGlobal, TrainingMode::kByClass, TrainingMode::kLocal};

  for (double privacy : {0.25, 1.0}) {
    std::printf("\n-- uniform noise, privacy %.0f%% --\n",
                bench::Pct(privacy));
    std::printf("%-6s", "fn");
    for (TrainingMode mode : modes) {
      std::printf(" %11s", tree::TrainingModeName(mode).c_str());
    }
    std::printf("\n");
    for (synth::Function fn : bench::AllFunctions()) {
      core::ExperimentConfig config = bench::DefaultConfig(fn);
      config.noise = perturb::NoiseKind::kUniform;
      config.privacy_fraction = privacy;
      const auto results = core::RunModes(config, modes);
      std::printf("%-6s", synth::FunctionName(fn).c_str());
      for (const auto& r : results) std::printf("      %5.1f%%",
                                                bench::Pct(r.accuracy));
      std::printf("\n");
    }
  }
  std::printf("\nExpected shape: Original on top; ByClass/Local close "
              "behind (parity at 25%%);\nGlobal in between; Randomized "
              "clearly last at 100%% privacy.\n");
  return 0;
}
