// A2 — ablation: interval count K (paper §4.3's discretization knob).
// Too few intervals quantize the split boundaries away; too many starve
// each interval of samples and slow reconstruction. The paper picks a
// moderate K; this sweep shows the plateau.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  bench::PrintBanner("A2", "ablation: intervals per attribute (ByClass)");

  std::printf("%-10s", "intervals");
  for (synth::Function fn : bench::AllFunctions()) {
    std::printf(" %8s", synth::FunctionName(fn).c_str());
  }
  std::printf("\n");

  for (std::size_t intervals : {5u, 10u, 20u, 30u, 50u, 100u}) {
    std::printf("%-10zu", intervals);
    for (synth::Function fn : bench::AllFunctions()) {
      core::ExperimentConfig config = bench::DefaultConfig(fn);
      config.noise = perturb::NoiseKind::kUniform;
      config.privacy_fraction = 0.5;
      config.tree.intervals = intervals;
      const auto result =
          core::RunModes(config, {TrainingMode::kByClass})[0];
      std::printf("   %5.1f%%", bench::Pct(result.accuracy));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: accuracy climbs until the true decision "
              "boundaries are\nresolvable (~20-30 intervals), then "
              "plateaus; very large K adds nothing.\n");
  return 0;
}
