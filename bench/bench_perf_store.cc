// P7 — persistence subsystem: snapshot encode / store put / store get /
// decode+restore throughput as the session grows (attribute count), and
// the registry's spill path — re-admission latency of a Lookup served
// from disk vs. one served from RAM. Ends with the round-trip equivalence
// cross-check (restore, continue, byte-compare against the never-
// snapshotted session). Honours PPDM_PAPER_SCALE=1 and
// PPDM_BENCH_RECORDS=N (CI smoke).

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_session.h"
#include "api/registry.h"
#include "bench/bench_util.h"
#include "data/row_batch.h"
#include "perturb/randomizer.h"
#include "store/session_codec.h"
#include "store/snapshot_store.h"
#include "store/spill_store.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

constexpr std::size_t kIntervals = 60;
constexpr std::size_t kShardSize = 512;

api::DatasetSessionSpec SpecFor(const data::Schema& schema,
                                std::size_t num_attrs) {
  api::DatasetSessionSpec spec;
  spec.schema = schema;
  for (std::size_t column = 0; column < num_attrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = kIntervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = kShardSize;
  return spec;
}

bool Identical(const reconstruct::Reconstruction& a,
               const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.sample_count == b.sample_count;
}

}  // namespace

int main() {
  bench::PrintBanner("P7", "store: snapshot/restore + registry spill path");
  core::ExperimentConfig config = bench::DefaultConfig(synth::Function::kF1);
  config.train_records = bench::BenchRecords(config.train_records);
  const std::size_t records = config.train_records;
  std::printf("records=%zu  K=%zu  hardware threads=%u\n\n", records,
              kIntervals, std::thread::hardware_concurrency());

  const std::string dir =
      (std::filesystem::temp_directory_path() / "ppdm_bench_store").string();
  std::filesystem::remove_all(dir);
  const Result<store::SnapshotStore> opened = store::SnapshotStore::Open(dir);
  if (!opened.ok()) {
    std::printf("FAILED to open bench store: %s\n",
                opened.status().ToString().c_str());
    return 1;
  }
  const store::SnapshotStore& snapshots = opened.value();

  std::size_t num_cols = 0;
  const std::vector<double> rows = bench::PerturbedRowMajor(
      records, synth::Function::kF1, 20000607, 99, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;
  const data::RowBatch all_rows(rows.data(), num_rows, num_cols);
  const data::Schema schema = synth::BenchmarkSchema();

  bench::ThroughputReporter reporter("records");
  for (std::size_t attrs : {std::size_t{1}, std::size_t{4},
                            std::size_t{8}}) {
    if (attrs > schema.NumFields()) continue;
    auto session = api::DatasetSession::Open(SpecFor(schema, attrs));
    if (!session.ok() || !session.value()->Ingest(all_rows).ok() ||
        !session.value()->ReconstructAll().ok()) {
      std::printf("FAILED to build the %zu-attribute session\n", attrs);
      return 1;
    }
    const std::string tag = std::to_string(attrs) + " attrs";
    const std::string baseline = "encode " + tag;

    std::string bytes;
    reporter.Measure("encode " + tag, num_rows, baseline, [&] {
      bytes = store::EncodeDatasetSession(*session.value());
    });
    const std::string name = "bench-" + tag;
    reporter.Measure("store put " + tag, num_rows, baseline, [&] {
      if (!snapshots.Put(name, bytes).ok()) std::exit(1);
    });
    reporter.Measure("store get " + tag, num_rows, baseline, [&] {
      if (!snapshots.Get(name).ok()) std::exit(1);
    });
    reporter.Measure("decode+restore " + tag, num_rows, baseline, [&] {
      if (!store::DecodeDatasetSession(bytes).ok()) std::exit(1);
    });
    std::printf("%-36s %10.1f KiB on disk\n", ("  snapshot " + tag).c_str(),
                static_cast<double>(bytes.size()) / 1024.0);
  }

  // Registry spill path: a budget-starved two-tenant registry demotes one
  // session and re-admits the other on every alternating Lookup; the
  // unbounded registry serves the same traffic from RAM.
  {
    store::SessionSpillStore spill(snapshots);
    api::SessionRegistryOptions starved_options;
    starved_options.max_bytes = 1;
    starved_options.spill = &spill;
    api::SessionRegistry starved(starved_options);
    api::SessionRegistry unbounded({});
    const api::DatasetSessionSpec spec = SpecFor(schema, 4);
    const std::size_t half = num_rows / 2;
    for (const char* name : {"left", "right"}) {
      auto hot = starved.Open(name, spec);
      auto cold = unbounded.Open(name, spec);
      if (!hot.ok() || !cold.ok() ||
          !hot.value()->Ingest(all_rows.Slice(0, half)).ok() ||
          !cold.value()->Ingest(all_rows.Slice(0, half)).ok()) {
        std::printf("FAILED to seed the spill registries\n");
        return 1;
      }
    }
    const std::size_t lookups = 64;
    reporter.Measure("lookup from RAM x64", lookups, "lookup from RAM x64",
                     [&] {
                       for (std::size_t i = 0; i < lookups; ++i) {
                         if (unbounded.Lookup(i % 2 ? "left" : "right") ==
                             nullptr) {
                           std::exit(1);
                         }
                       }
                     });
    reporter.Measure("lookup via spill x64", lookups, "lookup from RAM x64",
                     [&] {
                       for (std::size_t i = 0; i < lookups; ++i) {
                         if (starved.Lookup(i % 2 ? "left" : "right") ==
                             nullptr) {
                           std::exit(1);
                         }
                       }
                     });
    const api::SessionRegistry::Stats stats = starved.GetStats();
    std::printf("  spill traffic: %llu spill(s), %llu readmission(s), "
                "%llu failure(s)\n",
                static_cast<unsigned long long>(stats.spills),
                static_cast<unsigned long long>(stats.readmissions),
                static_cast<unsigned long long>(stats.spill_failures));
    if (stats.spill_failures != 0) {
      std::printf("EQUIVALENCE FAILED: spill failures on the bench path\n");
      return 1;
    }
  }

  // Round-trip equivalence cross-check: snapshot mid-stream, restore,
  // continue both, byte-compare the estimates.
  {
    const api::DatasetSessionSpec spec = SpecFor(schema, 4);
    const std::size_t half = num_rows / 2;
    auto live = api::DatasetSession::Open(spec);
    if (!live.ok() || !live.value()->Ingest(all_rows.Slice(0, half)).ok() ||
        !live.value()->ReconstructAll().ok()) {
      std::printf("EQUIVALENCE FAILED: cannot build the live session\n");
      return 1;
    }
    auto restored =
        store::DecodeDatasetSession(store::EncodeDatasetSession(
            *live.value()));
    if (!restored.ok()) {
      std::printf("EQUIVALENCE FAILED: %s\n",
                  restored.status().ToString().c_str());
      return 1;
    }
    if (!live.value()->Ingest(all_rows.Slice(half, num_rows - half)).ok() ||
        !restored.value()
             ->Ingest(all_rows.Slice(half, num_rows - half))
             .ok()) {
      std::printf("EQUIVALENCE FAILED: continuation ingest\n");
      return 1;
    }
    const auto live_estimates = live.value()->ReconstructAll();
    const auto restored_estimates = restored.value()->ReconstructAll();
    if (!live_estimates.ok() || !restored_estimates.ok()) {
      std::printf("EQUIVALENCE FAILED: continuation reconstruct\n");
      return 1;
    }
    for (std::size_t a = 0; a < live_estimates.value().size(); ++a) {
      if (!Identical(live_estimates.value()[a],
                     restored_estimates.value()[a])) {
        std::printf("EQUIVALENCE FAILED at attribute %zu\n", a);
        return 1;
      }
    }
    std::printf("\nequivalence OK: restored session continued "
                "byte-identically over %zu records x %zu attrs\n",
                num_rows, live_estimates.value().size());
  }

  std::filesystem::remove_all(dir);
  return 0;
}
