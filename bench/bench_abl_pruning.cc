// A1 — ablation: the pruning strategy. DESIGN.md's key tree design choice
// is grow-deep + reduced-error pruning on a holdout; this ablation shows
// why: pessimistic pruning of training error cannot see noise-fitting
// (perturbation noise is record-independent), and no pruning overfits
// catastrophically at high privacy.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppdm;
  using tree::PruningMode;
  using tree::TrainingMode;

  bench::PrintBanner("A1", "ablation: pruning strategy (ByClass & "
                           "Randomized, uniform @100%)");

  const struct {
    PruningMode mode;
    const char* name;
  } kPrunings[] = {{PruningMode::kNone, "none"},
                   {PruningMode::kPessimistic, "pessimistic"},
                   {PruningMode::kReducedError, "reduced-error"}};

  for (TrainingMode algo :
       {TrainingMode::kByClass, TrainingMode::kRandomized}) {
    std::printf("\n-- %s --\n", tree::TrainingModeName(algo).c_str());
    std::printf("%-14s %10s %10s\n", "pruning", "accuracy", "nodes");
    for (const auto& pruning : kPrunings) {
      double accuracy_sum = 0.0;
      std::size_t nodes_sum = 0;
      const auto fns = bench::AllFunctions();
      for (synth::Function fn : fns) {
        core::ExperimentConfig config = bench::DefaultConfig(fn);
        config.noise = perturb::NoiseKind::kUniform;
        config.privacy_fraction = 1.0;
        config.tree.pruning = pruning.mode;
        const auto result = core::RunModes(config, {algo})[0];
        accuracy_sum += result.accuracy;
        nodes_sum += result.tree_nodes;
      }
      std::printf("%-14s %9.1f%% %10zu\n", pruning.name,
                  bench::Pct(accuracy_sum / static_cast<double>(fns.size())),
                  nodes_sum / fns.size());
    }
  }
  std::printf("\nExpected shape: reduced-error > pessimistic > none in "
              "accuracy, with far\nsmaller trees. (Accuracy and node "
              "counts averaged over Fn1..Fn5.)\n");
  return 0;
}
