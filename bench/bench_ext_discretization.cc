// X2 — the paper's §2 alternative: value-class membership (disclose only
// the interval a value falls in) vs value distortion at comparable
// privacy. Discretization into C classes gives privacy 1/C of the range
// at 100% confidence; we train Original-mode trees on the discretized
// records and compare against ByClass under additive noise.

#include <cstdio>

#include "bench/bench_util.h"
#include "perturb/discretize.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  bench::PrintBanner("X2", "value-class membership vs value distortion");

  std::printf("%-6s %10s | %14s %14s %14s | %12s\n", "fn", "privacy",
              "discretized", "ByClass(U)", "ByClass(G)", "Original");
  for (synth::Function fn :
       {synth::Function::kF2, synth::Function::kF3, synth::Function::kF4}) {
    for (std::size_t classes : {4u, 2u}) {
      const double privacy =
          perturb::DiscretizationPrivacyFraction(classes);
      core::ExperimentConfig config = bench::DefaultConfig(fn);
      config.privacy_fraction = privacy;

      const core::ExperimentData data = core::PrepareData(config);
      perturb::DiscretizeOptions disc;
      disc.classes = classes;
      const data::Dataset discretized =
          perturb::DiscretizeValues(data.train, disc);
      const auto tree_model = tree::TrainDecisionTree(
          discretized, TrainingMode::kOriginal, config.tree);
      const double disc_acc =
          core::EvaluateTree(tree_model, data.test).Accuracy();

      double byclass[2];
      int i = 0;
      for (perturb::NoiseKind kind :
           {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
        core::ExperimentConfig c2 = config;
        c2.noise = kind;
        byclass[i++] =
            core::RunModes(c2, {TrainingMode::kByClass})[0].accuracy;
      }
      const double original =
          core::RunModes(config, {TrainingMode::kOriginal})[0].accuracy;
      std::printf("%-6s %8.0f%% | %13.1f%% %13.1f%% %13.1f%% | %11.1f%%\n",
                  synth::FunctionName(fn).c_str(), bench::Pct(privacy),
                  bench::Pct(disc_acc), bench::Pct(byclass[0]),
                  bench::Pct(byclass[1]), bench::Pct(original));
    }
  }
  std::printf("\nNote: discretization privacy holds at 100%% confidence; "
              "additive noise offers\nits privacy only at 95%% confidence, "
              "so at equal width the discretized column\nis the stricter "
              "guarantee (paper §2 discussion).\n");
  return 0;
}
