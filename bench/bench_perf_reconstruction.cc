// P1 — timing of the Bayes/EM reconstructor (google-benchmark): binned
// (the paper's O(K²)/iteration acceleration) vs exact (O(N·K)/iteration),
// across sample counts and interval counts.

#include <vector>

#include <benchmark/benchmark.h>

#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"

namespace {

using namespace ppdm;

std::vector<double> MakePerturbed(std::size_t n) {
  Rng rng(1);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  std::vector<double> w(n);
  for (double& v : w) v = truth.Sample(&rng) + noise.Sample(&rng);
  return w;
}

void BM_ReconstructBinned(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto intervals = static_cast<std::size_t>(state.range(1));
  const std::vector<double> w = MakePerturbed(n);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  reconstruct::ReconstructionOptions options;
  options.binned = true;
  const reconstruct::BayesReconstructor rec(noise, options);
  const reconstruct::Partition p(0.0, 1.0, intervals);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.Fit(w, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReconstructBinned)
    ->Args({10000, 20})
    ->Args({100000, 20})
    ->Args({100000, 50})
    ->Args({100000, 100});

void BM_ReconstructExact(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> w = MakePerturbed(n);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  reconstruct::ReconstructionOptions options;
  options.binned = false;
  const reconstruct::BayesReconstructor rec(noise, options);
  const reconstruct::Partition p(0.0, 1.0, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rec.Fit(w, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReconstructExact)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
