// P1 — timing of the Bayes/EM reconstructor: binned (the paper's
// O(K²)/iteration acceleration) vs exact (O(N·K)/iteration), across sample
// counts and interval counts, via the shared wall-clock reporter.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "engine/simd.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"

namespace {

using namespace ppdm;

std::vector<double> MakePerturbed(std::size_t n) {
  Rng rng(1);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  std::vector<double> w(n);
  for (double& v : w) v = truth.Sample(&rng) + noise.Sample(&rng);
  return w;
}

void RunCase(bench::ThroughputReporter* reporter, bool binned, std::size_t n,
             std::size_t intervals) {
  const std::vector<double> w = MakePerturbed(n);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  reconstruct::ReconstructionOptions options;
  options.binned = binned;
  const reconstruct::BayesReconstructor rec(noise, options);
  const reconstruct::Partition p(0.0, 1.0, intervals);
  char label[64];
  std::snprintf(label, sizeof(label), "%s n=%zu K=%zu",
                binned ? "binned" : "exact", n, intervals);
  reporter->Measure(label, n, "", [&] {
    const reconstruct::Reconstruction r = rec.Fit(w, p);
    (void)r;
  });
}

}  // namespace

int main() {
  namespace simd = ppdm::engine::simd;
  bench::PrintBanner("P1", "EM reconstruction timing: binned vs exact");
  bench::ThroughputReporter reporter("records", 3, "perf_reconstruction");
  RunCase(&reporter, /*binned=*/true, 10000, 20);
  RunCase(&reporter, /*binned=*/true, 100000, 20);
  RunCase(&reporter, /*binned=*/true, 100000, 50);
  RunCase(&reporter, /*binned=*/true, 100000, 100);
  RunCase(&reporter, /*binned=*/false, 10000, 20);
  RunCase(&reporter, /*binned=*/false, 50000, 20);

  // SIMD path sweep on the hottest binned cell: off anchors (the
  // pre-dispatch sequential loops), scalar shows the lane-blocking gain,
  // avx2 the vector gain on top.
  std::vector<simd::Path> paths{simd::Path::kOff, simd::Path::kScalar};
  if (simd::Avx2Supported()) paths.push_back(simd::Path::kAvx2);
  const std::vector<double> w = MakePerturbed(100000);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  const reconstruct::BayesReconstructor rec(noise, {});
  const reconstruct::Partition p(0.0, 1.0, 100);
  for (simd::Path path : paths) {
    (void)simd::SetPath(path);
    char label[64];
    std::snprintf(label, sizeof(label), "binned n=100000 K=100 simd=%s",
                  simd::PathName(path));
    reporter.Measure(label, w.size(), "simd", [&] {
      const reconstruct::Reconstruction r = rec.Fit(w, p);
      (void)r;
    });
  }
  return 0;
}
