// F5 — Uniform vs Gaussian noise at equal 95%-confidence privacy: ByClass
// accuracy per function at 50% / 100% / 200% privacy. The paper concludes
// Gaussian is preferable — same accuracy or better, with more privacy at
// higher confidence levels.

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppdm;
  using perturb::NoiseKind;
  using tree::TrainingMode;

  bench::PrintBanner("F5", "ByClass accuracy: uniform vs Gaussian noise");

  std::printf("%-6s", "fn");
  for (double privacy : {0.5, 1.0, 2.0}) {
    std::printf("   U@%3.0f%%   G@%3.0f%%", bench::Pct(privacy),
                bench::Pct(privacy));
  }
  std::printf("\n");

  for (synth::Function fn : bench::AllFunctions()) {
    std::printf("%-6s", synth::FunctionName(fn).c_str());
    for (double privacy : {0.5, 1.0, 2.0}) {
      double acc[2];
      int i = 0;
      for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
        core::ExperimentConfig config = bench::DefaultConfig(fn);
        config.noise = kind;
        config.privacy_fraction = privacy;
        acc[i++] =
            core::RunModes(config, {TrainingMode::kByClass})[0].accuracy;
      }
      std::printf("   %5.1f%%   %5.1f%%", bench::Pct(acc[0]),
                  bench::Pct(acc[1]));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: Gaussian matches or beats uniform at "
              "privacy <= 100%%\n(the paper's preference). At the extreme "
              "200%% setting bounded uniform noise\ncan win back: it "
              "preserves rank information that unbounded Gaussian tails "
              "destroy.\n");
  return 0;
}
