// F2 — reconstruction convergence: the χ² statistic between successive EM
// iterates (the paper's stopping criterion) and the log-likelihood, per
// iteration. The log-likelihood column is monotone — the EM signature —
// while χ² decays to the stopping threshold.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"

int main() {
  using namespace ppdm;

  bench::PrintBanner("F2", "EM convergence (χ² stopping criterion)");

  const std::size_t n = core::PaperScaleRequested() ? 100000 : 20000;
  Rng rng(11);
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  const perturb::NoiseModel noise =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kGaussian, 1.0, 1.0, 0.95);
  std::vector<double> perturbed(n);
  for (double& w : perturbed) w = truth.Sample(&rng) + noise.Sample(&rng);

  reconstruct::ReconstructionOptions options;
  options.max_iterations = 40;
  options.chi_square_epsilon = 0.0;  // show the full trace
  const reconstruct::BayesReconstructor reconstructor(noise, options);
  const reconstruct::Reconstruction recon =
      reconstructor.Fit(perturbed, reconstruct::Partition(0.0, 1.0, 20));

  std::printf("%-10s %16s %18s\n", "iteration", "chi-square",
              "log-likelihood");
  for (std::size_t i = 0; i < recon.iterations; ++i) {
    std::printf("%-10zu %16.3e %18.2f\n", i + 1,
                recon.chi_square_trace[i], recon.log_likelihood_trace[i]);
  }
  std::printf("\nDefault stopping threshold chi-square < %.0e (reached at "
              "iteration with comparable statistic above).\n",
              reconstruct::ReconstructionOptions{}.chi_square_epsilon);
  return 0;
}
