// Shared helpers for the figure/table generators. Every bench binary runs
// with no arguments, prints paper-style rows to stdout, and honours
// PPDM_PAPER_SCALE=1 for the paper's full 100k-record runs.

#ifndef PPDM_BENCH_BENCH_UTIL_H_
#define PPDM_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/metrics.h"
#include "perturb/randomizer.h"
#include "synth/generator.h"

namespace ppdm::bench {

/// The default experimental cell: paper workload at laptop scale unless
/// PPDM_PAPER_SCALE=1 asks for the full 100k/5k.
inline core::ExperimentConfig DefaultConfig(synth::Function fn) {
  core::ExperimentConfig config;
  config.function = fn;
  config.train_records = 20000;
  config.test_records = 5000;
  config.seed = 20000607;  // SIGMOD 2000 vintage
  core::ApplyScale(&config);
  return config;
}

/// Record-count override for smoke runs: PPDM_BENCH_RECORDS=N replaces
/// `default_records` (CI runs the perf benches this way so every code
/// path executes without perf-scale wall time). Wins over
/// PPDM_PAPER_SCALE when both are set.
inline std::size_t BenchRecords(std::size_t default_records) {
  if (const char* env = std::getenv("PPDM_BENCH_RECORDS")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  return default_records;
}

/// Perturbed benchmark records flattened row-major — the provider
/// arrival shape the streaming benches feed to sessions. Generates
/// `records` rows of `function` from `seed`, perturbs every column with
/// the paper's 100% uniform noise (streams seeded `noise_seed`), and
/// transposes the column-major Dataset into one row-major vector;
/// `*num_cols` receives the schema width.
inline std::vector<double> PerturbedRowMajor(std::size_t records,
                                             synth::Function function,
                                             std::uint64_t seed,
                                             std::uint64_t noise_seed,
                                             std::size_t* num_cols) {
  synth::GeneratorOptions gen;
  gen.num_records = records;
  gen.function = function;
  gen.seed = seed;
  const data::Dataset original = synth::Generate(gen);
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = noise_seed;
  const data::Dataset perturbed =
      perturb::Randomizer(original.schema(), noise).Perturb(original);
  *num_cols = perturbed.NumCols();
  std::vector<double> rows(perturbed.NumRows() * perturbed.NumCols());
  for (std::size_t c = 0; c < perturbed.NumCols(); ++c) {
    const std::vector<double>& column = perturbed.Column(c);
    for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
      rows[r * perturbed.NumCols() + c] = column[r];
    }
  }
  return rows;
}

/// All five benchmark functions.
inline std::vector<synth::Function> AllFunctions() {
  return {synth::Function::kF1, synth::Function::kF2, synth::Function::kF3,
          synth::Function::kF4, synth::Function::kF5};
}

/// Banner naming the experiment and its provenance in the paper.
inline void PrintBanner(const std::string& experiment_id,
                        const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), what.c_str());
  std::printf("(Agrawal & Srikant, \"Privacy-Preserving Data Mining\", "
              "SIGMOD 2000)\n");
  std::printf("================================================================\n");
}

/// "85.3" from 0.853.
inline double Pct(double fraction) { return 100.0 * fraction; }

/// One NDJSON result row: printed to stdout and, when PPDM_BENCH_JSON
/// names a file, appended there too — dashboards scrape either. Fields
/// are flat string→double pairs plus the bench/case labels; doubles are
/// emitted with enough digits to round-trip.
inline void EmitBenchJson(
    const std::string& bench, const std::string& label,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::string line = "{\"bench\":\"" + bench + "\",\"case\":\"" + label + "\"";
  for (const auto& [key, value] : fields) {
    char number[64];
    std::snprintf(number, sizeof(number), "%.17g", value);
    line += ",\"" + key + "\":" + number;
  }
  line += "}";
  std::printf("%s\n", line.c_str());
  if (const char* path = std::getenv("PPDM_BENCH_JSON")) {
    if (std::FILE* file = std::fopen(path, "a")) {
      std::fprintf(file, "%s\n", line.c_str());
      std::fclose(file);
    }
  }
}

/// Wall-clock seconds spent running `fn` once.
inline double WallSeconds(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

/// Shared wall-clock/throughput reporter for the perf benches: each
/// Measure() times one run, prints seconds, items/sec, and the speedup
/// relative to the first measurement labelled `baseline_of` (pass the
/// current label itself, or "" for an absolute row). Repeats each run
/// `repeats` times and keeps the fastest, the usual guard against noisy
/// neighbours on shared machines.
///
/// Every repeat's wall time is also fed into the process metrics
/// registry as ppdm_bench_run_seconds{case="<label>"}, so the destructor
/// can print a per-case p50/p99 summary over the repeat samples and
/// PPDM_BENCH_METRICS=1 dumps the full Prometheus text exposition —
/// engine/store counters included — after the rows.
/// A non-empty `bench` additionally emits one NDJSON row per Measure()
/// (EmitBenchJson: seconds, items/sec, items/sec/core, cores, speedup) so
/// dashboards scrape the perf sweeps without parsing the table.
class ThroughputReporter {
 public:
  explicit ThroughputReporter(std::string unit = "records", int repeats = 3,
                              std::string bench = "")
      : unit_(std::move(unit)), repeats_(repeats), bench_(std::move(bench)) {
    std::printf("%-36s %10s %16s %16s %9s\n", "case", "seconds",
                (unit_ + "/sec").c_str(), (unit_ + "/sec/core").c_str(),
                "speedup");
  }

  ~ThroughputReporter() {
    PrintLatencySummary();
    if (std::getenv("PPDM_BENCH_METRICS") != nullptr) {
      std::printf("\n%s",
                  obs::MetricsRegistry::Global().RenderText().c_str());
    }
  }

  /// Times fn, records `items` processed under `label`; returns seconds.
  /// `cores` is the worker parallelism of the run (default 1) — the
  /// per-core throughput column divides by it, making scaling sweeps
  /// comparable across thread counts (flat items/sec/core = linear
  /// scaling).
  double Measure(const std::string& label, std::size_t items,
                 const std::string& baseline_of,
                 const std::function<void()>& fn, std::size_t cores = 1) {
    obs::Histogram* const samples =
        obs::MetricsRegistry::Global().GetHistogram(
            "ppdm_bench_run_seconds",
            obs::Histogram::LatencyBucketsSeconds(),
            "case=\"" + label + "\"");
    if (cases_.empty() || cases_.back().second != samples) {
      cases_.emplace_back(label, samples);
    }
    double seconds = WallSeconds(fn);
    samples->Observe(seconds);
    for (int r = 1; r < repeats_; ++r) {
      const double again = WallSeconds(fn);
      samples->Observe(again);
      if (again < seconds) seconds = again;
    }
    // A sub-clock-resolution run (seconds == 0) can neither anchor nor
    // receive a meaningful speedup; such rows print "-" instead.
    if (!baseline_of.empty() && seconds > 0.0 &&
        baselines_.count(baseline_of) == 0) {
      baselines_[baseline_of] = seconds;
    }
    const double throughput =
        seconds > 0.0 ? static_cast<double>(items) / seconds : 0.0;
    const double per_core =
        cores > 0 ? throughput / static_cast<double>(cores) : throughput;
    double speedup = 0.0;
    if (baseline_of.empty() || seconds <= 0.0 ||
        baselines_.count(baseline_of) == 0) {
      std::printf("%-36s %10.4f %16.0f %16.0f %9s\n", label.c_str(),
                  seconds, throughput, per_core, "-");
    } else {
      speedup = baselines_[baseline_of] / seconds;
      std::printf("%-36s %10.4f %16.0f %16.0f %8.2fx\n", label.c_str(),
                  seconds, throughput, per_core, speedup);
    }
    if (!bench_.empty()) {
      EmitBenchJson(bench_, label,
                    {{"seconds", seconds},
                     {"items", static_cast<double>(items)},
                     {"per_sec", throughput},
                     {"per_sec_per_core", per_core},
                     {"cores", static_cast<double>(cores)},
                     {"speedup", speedup}});
    }
    return seconds;
  }

  /// Per-case p50/p99 across the repeat samples (bucket-interpolated, the
  /// same numbers the exposition's _bucket series carry). With few
  /// repeats the quantiles are coarse — they bound, not pinpoint.
  void PrintLatencySummary() const {
    if (cases_.empty()) return;
    std::printf("\n%-36s %12s %12s %8s\n", "case (repeat samples)",
                "p50 ms", "p99 ms", "n");
    for (const auto& [label, samples] : cases_) {
      if (samples->Count() == 0) continue;
      std::printf("%-36s %12.3f %12.3f %8llu\n", label.c_str(),
                  1e3 * samples->Quantile(0.5),
                  1e3 * samples->Quantile(0.99),
                  static_cast<unsigned long long>(samples->Count()));
    }
  }

 private:
  std::string unit_;
  int repeats_;
  std::string bench_;  // NDJSON bench id; empty = table only
  std::map<std::string, double> baselines_;
  /// Measurement order, one entry per distinct label (repeated labels
  /// resolve to the same histogram and are recorded once).
  std::vector<std::pair<std::string, const obs::Histogram*>> cases_;
};

}  // namespace ppdm::bench

#endif  // PPDM_BENCH_BENCH_UTIL_H_
