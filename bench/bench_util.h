// Shared helpers for the figure/table generators. Every bench binary runs
// with no arguments, prints paper-style rows to stdout, and honours
// PPDM_PAPER_SCALE=1 for the paper's full 100k-record runs.

#ifndef PPDM_BENCH_BENCH_UTIL_H_
#define PPDM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace ppdm::bench {

/// The default experimental cell: paper workload at laptop scale unless
/// PPDM_PAPER_SCALE=1 asks for the full 100k/5k.
inline core::ExperimentConfig DefaultConfig(synth::Function fn) {
  core::ExperimentConfig config;
  config.function = fn;
  config.train_records = 20000;
  config.test_records = 5000;
  config.seed = 20000607;  // SIGMOD 2000 vintage
  core::ApplyScale(&config);
  return config;
}

/// All five benchmark functions.
inline std::vector<synth::Function> AllFunctions() {
  return {synth::Function::kF1, synth::Function::kF2, synth::Function::kF3,
          synth::Function::kF4, synth::Function::kF5};
}

/// Banner naming the experiment and its provenance in the paper.
inline void PrintBanner(const std::string& experiment_id,
                        const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), what.c_str());
  std::printf("(Agrawal & Srikant, \"Privacy-Preserving Data Mining\", "
              "SIGMOD 2000)\n");
  std::printf("================================================================\n");
}

/// "85.3" from 0.853.
inline double Pct(double fraction) { return 100.0 * fraction; }

}  // namespace ppdm::bench

#endif  // PPDM_BENCH_BENCH_UTIL_H_
