// P4 — throughput scaling of the parallel execution engine at 1/2/4/8
// worker threads: sharded perturbation, the single-column binned EM
// reconstruction, and the per-attribute/per-class reconstruction fan-out
// that dominates tree training. Honours PPDM_PAPER_SCALE=1 for the paper's
// 100k-record runs, and cross-checks that every thread count produced
// byte-identical reconstruction masses (the engine's determinism contract).

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "engine/batch.h"
#include "engine/shard_stats.h"
#include "engine/simd.h"
#include "engine/thread_pool.h"
#include "perturb/randomizer.h"
#include "reconstruct/by_class.h"
#include "reconstruct/reconstructor.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

bool SameMasses(const reconstruct::Reconstruction& a,
                const reconstruct::Reconstruction& b) {
  return a.masses.size() == b.masses.size() &&
         std::memcmp(a.masses.data(), b.masses.data(),
                     a.masses.size() * sizeof(double)) == 0 &&
         a.log_likelihood_trace == b.log_likelihood_trace;
}

}  // namespace

int main() {
  bench::PrintBanner("P4", "parallel engine throughput scaling");
  const core::ExperimentConfig config = bench::DefaultConfig(
      synth::Function::kF1);
  std::printf("records=%zu  hardware threads=%u\n\n", config.train_records,
              std::thread::hardware_concurrency());

  synth::GeneratorOptions gen;
  gen.num_records = config.train_records;
  gen.function = config.function;
  gen.seed = config.seed;
  const data::Dataset train = synth::Generate(gen);

  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = config.seed + 0x9E1517BULL;
  const perturb::Randomizer randomizer(train.schema(), noise);

  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  bench::ThroughputReporter reporter("records", 3, "perf_engine");
  char label[64];

  // ---------------------------------------------- sharded perturbation
  for (std::size_t threads : thread_counts) {
    engine::BatchOptions options;
    options.num_threads = threads;
    const engine::Batch batch(options);
    std::snprintf(label, sizeof(label), "perturb 9 attrs t=%zu", threads);
    reporter.Measure(label, train.NumRows(), "perturb", [&] {
      const data::Dataset p = batch.PerturbShards(randomizer, train);
      (void)p;
    }, threads);
  }
  const data::Dataset perturbed = engine::Batch({1, 16384})
                                      .PerturbShards(randomizer, train);

  // ------------------------------------- single-column binned EM path
  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      train.schema().Field(synth::kSalary), 100);
  const reconstruct::BayesReconstructor reconstructor(
      randomizer.ModelFor(synth::kSalary), {});
  const std::vector<double>& salary = perturbed.Column(synth::kSalary);
  std::vector<reconstruct::Reconstruction> em_results;
  for (std::size_t threads : thread_counts) {
    engine::BatchOptions options;
    options.num_threads = threads;
    const engine::Batch batch(options);
    reconstruct::Reconstruction result;
    std::snprintf(label, sizeof(label), "EM binned K=100 t=%zu", threads);
    reporter.Measure(label, train.NumRows(), "em", [&] {
      result = batch.ReconstructParallel(salary, partition, reconstructor);
    }, threads);
    em_results.push_back(result);
  }

  // ------------------------------------------- E-step SIMD path sweep
  // Single-threaded so the rows isolate the kernel speedup (off = the
  // pre-dispatch sequential loops, the anchor). scalar and avx2 must be
  // byte-identical; off may differ from them by summation-order rounding.
  namespace simd = engine::simd;
  std::vector<simd::Path> paths{simd::Path::kOff, simd::Path::kScalar};
  if (simd::Avx2Supported()) paths.push_back(simd::Path::kAvx2);
  const engine::Batch single({1, 16384});
  std::vector<reconstruct::Reconstruction> simd_results;
  for (simd::Path path : paths) {
    (void)simd::SetPath(path);
    reconstruct::Reconstruction result;
    std::snprintf(label, sizeof(label), "EM binned K=100 simd=%s",
                  simd::PathName(path));
    reporter.Measure(label, train.NumRows(), "simd", [&] {
      result = single.ReconstructParallel(salary, partition, reconstructor);
    });
    simd_results.push_back(result);
  }
  (void)simd::SetPath(simd::Avx2Supported() ? simd::Path::kAvx2
                                            : simd::Path::kScalar);

  // --------------------------------- kernel-cache warm-refresh speedup
  // A streaming refresh pays O(wbins·K) to rebuild the likelihood table
  // unless the cached one still matches. Cold rebuilds every call; warm
  // reuses one prebuilt table — the speedup is what AttributeState's
  // cache buys a warm-started session refresh.
  for (const auto kind :
       {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
    engine::ThreadPool pool(1);
    const char* kind_name =
        kind == perturb::NoiseKind::kUniform ? "uniform" : "gauss";
    const perturb::NoiseModel noise_model = perturb::NoiseForPrivacy(
        kind, 1.0, partition.hi() - partition.lo(), 0.95);
    const reconstruct::BayesReconstructor rec(noise_model, {});
    const stats::Histogram whist = rec.PerturbedBinning(partition);
    const engine::ShardStats counts = engine::IngestBinnedColumn(
        salary.data(), salary.size(), whist.lo(), whist.hi(), whist.width(),
        whist.bins(), &pool, 16384);
    const std::vector<double> weights = counts.BinWeights();
    const double total = static_cast<double>(salary.size());
    const reconstruct::KernelTable table = rec.BuildKernelTable(partition,
                                                                &pool);
    // Warm-start from the converged masses so both rows time a
    // short refresh (the steady-state shape), not a cold convergence.
    const std::vector<double> masses =
        rec.FitFromCounts(weights, total, partition, &pool, nullptr, &table)
            .masses;
    const std::string anchor = std::string("refresh-") + kind_name;
    std::snprintf(label, sizeof(label), "refresh cold %s (rebuild)",
                  kind_name);
    reporter.Measure(label, salary.size(), anchor, [&] {
      const reconstruct::Reconstruction r = rec.FitFromCounts(
          weights, total, partition, &pool, &masses, nullptr);
      (void)r;
    });
    std::snprintf(label, sizeof(label), "refresh warm %s (cached)",
                  kind_name);
    reporter.Measure(label, salary.size(), anchor, [&] {
      const reconstruct::Reconstruction r = rec.FitFromCounts(
          weights, total, partition, &pool, &masses, &table);
      (void)r;
    });
  }

  // ----------------------- per-attribute / per-class fan-out (ByClass)
  // The trainer's root-time precompute: 9 attributes × 2 classes = 18
  // independent EM fits, fanned out one attribute per task.
  for (std::size_t threads : thread_counts) {
    engine::ThreadPool pool(threads);
    std::snprintf(label, sizeof(label), "by-class 9 attrs t=%zu", threads);
    reporter.Measure(label, train.NumRows() * train.NumCols(), "fanout", [&] {
      engine::ParallelFor(&pool, train.NumCols(), [&](std::size_t col) {
        const reconstruct::Partition p = reconstruct::Partition::ForField(
            train.schema().Field(col), 30);
        const reconstruct::BayesReconstructor rec(randomizer.ModelFor(col),
                                                  {});
        const std::vector<reconstruct::Reconstruction> r =
            reconstruct::ReconstructByClass(perturbed, col, p, rec);
        (void)r;
      });
    }, threads);
  }

  // ------------------------------------------------ determinism check
  bool identical = true;
  for (std::size_t i = 1; i < em_results.size(); ++i) {
    identical = identical && SameMasses(em_results[0], em_results[i]);
  }
  std::printf("\nEM masses byte-identical across thread counts: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  // scalar vs avx2 (entries 1..) must agree bitwise; the off row (entry 0)
  // is excluded — its summation order legitimately differs.
  bool simd_identical = true;
  for (std::size_t i = 2; i < simd_results.size(); ++i) {
    simd_identical =
        simd_identical && SameMasses(simd_results[1], simd_results[i]);
  }
  std::printf("EM masses byte-identical across SIMD paths: %s\n",
              simd_identical ? "yes" : "NO — DETERMINISM VIOLATION");
  return identical && simd_identical ? 0 : 1;
}
