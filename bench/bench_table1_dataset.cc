// T1 — Table 1 of the paper: the synthetic data description, verified
// against a generated dataset (declared domain vs measured min/mean/max,
// and the Group A fraction of each classification function).

#include <cstdio>

#include "bench/bench_util.h"
#include "stats/summary.h"
#include "synth/generator.h"

int main() {
  using namespace ppdm;

  bench::PrintBanner("T1", "Table 1: synthetic data attributes");

  synth::GeneratorOptions gen;
  gen.num_records = core::PaperScaleRequested() ? 100000 : 20000;
  gen.function = synth::Function::kF1;
  gen.seed = 1;
  const data::Dataset d = synth::Generate(gen);
  const data::Schema& schema = d.schema();

  std::printf("%zu records generated\n\n", d.NumRows());
  std::printf("%-12s %-11s %14s %14s | %14s %14s %14s\n", "attribute",
              "kind", "domain lo", "domain hi", "measured min",
              "measured mean", "measured max");
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    const data::FieldSpec& f = schema.Field(c);
    const auto s = stats::DescriptiveStats::Of(d.Column(c));
    std::printf("%-12s %-11s %14.6g %14.6g | %14.6g %14.6g %14.6g\n",
                f.name.c_str(),
                f.kind == data::AttributeKind::kContinuous ? "continuous"
                                                           : "discrete",
                f.lo, f.hi, s.min(), s.mean(), s.max());
  }

  std::printf("\nClassification functions (fraction of records in Group A):\n");
  for (synth::Function fn : bench::AllFunctions()) {
    synth::GeneratorOptions g2 = gen;
    g2.function = fn;
    const data::Dataset labelled = synth::Generate(g2);
    const double frac_a =
        static_cast<double>(labelled.ClassCounts()[0]) /
        static_cast<double>(labelled.NumRows());
    std::printf("  %s: %5.1f%% Group A\n", synth::FunctionName(fn).c_str(),
                bench::Pct(frac_a));
  }
  return 0;
}
