// P5 — streaming serving API: ingest throughput (records/s) of the
// session's fold-on-arrival path at 1/2/4/8 threads, time-to-first-estimate
// for a client that polls early vs. waiting for the whole batch, and the
// cost of a warm-started refresh vs. a cold batch fit. Honours
// PPDM_PAPER_SCALE=1 for the paper's 100k-record runs, and cross-checks
// that the streamed estimate is byte-identical to the batch FitParallel
// (the streaming determinism contract).

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "api/service.h"
#include "api/session.h"
#include "bench/bench_util.h"
#include "engine/batch.h"
#include "perturb/randomizer.h"
#include "reconstruct/reconstructor.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

constexpr std::size_t kIntervals = 100;
constexpr std::size_t kBatchRecords = 2048;

api::SessionSpec SalarySpec(const data::Schema& schema,
                            std::size_t shard_size) {
  const data::FieldSpec& field = schema.Field(synth::kSalary);
  api::SessionSpec spec;
  spec.lo = field.lo;
  spec.hi = field.hi;
  spec.intervals = kIntervals;
  spec.noise = perturb::NoiseKind::kUniform;
  spec.privacy_fraction = 1.0;
  spec.shard_size = shard_size;
  return spec;
}

}  // namespace

int main() {
  bench::PrintBanner("P5", "streaming session ingest + refresh throughput");
  core::ExperimentConfig config = bench::DefaultConfig(
      synth::Function::kF1);
  config.train_records = bench::BenchRecords(config.train_records);
  std::printf("records=%zu  batch=%zu  K=%zu  hardware threads=%u\n\n",
              config.train_records, kBatchRecords, kIntervals,
              std::thread::hardware_concurrency());

  synth::GeneratorOptions gen;
  gen.num_records = config.train_records;
  gen.function = config.function;
  gen.seed = config.seed;
  const data::Dataset train = synth::Generate(gen);

  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = config.seed + 0x9E1517BULL;
  const perturb::Randomizer randomizer(train.schema(), noise);
  const data::Dataset perturbed = randomizer.Perturb(train);
  const std::vector<double>& stream = perturbed.Column(synth::kSalary);

  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      train.schema().Field(synth::kSalary), kIntervals);
  const reconstruct::BayesReconstructor reconstructor(
      randomizer.ModelFor(synth::kSalary), {});

  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  bench::ThroughputReporter reporter("records");
  char label[64];

  // -------------------------------------------------- ingest throughput
  // Fold-on-arrival cost alone: batches of kBatchRecords through
  // Session::Ingest, no reconstruction.
  for (std::size_t threads : thread_counts) {
    engine::BatchOptions options;
    options.num_threads = threads;
    auto service = api::Service::Create(options);
    if (!service.ok()) return 1;
    std::snprintf(label, sizeof(label), "ingest b=%zu t=%zu", kBatchRecords,
                  threads);
    reporter.Measure(label, stream.size(), "ingest", [&] {
      auto session =
          service.value()->OpenSession(SalarySpec(train.schema(), 512));
      for (std::size_t offset = 0; offset < stream.size();
           offset += kBatchRecords) {
        const std::size_t take =
            std::min(kBatchRecords, stream.size() - offset);
        if (!session.value()->Ingest(stream.data() + offset, take).ok()) {
          std::abort();
        }
      }
    });
  }

  // --------------------------------------------- time-to-first-estimate
  // A client polling after the first batch: the batch path must ingest
  // and fit everything; the session fits from one batch's counts.
  reporter.Measure("first estimate: batch all", stream.size(), "", [&] {
    const reconstruct::Reconstruction r =
        reconstructor.FitParallel(stream, partition, nullptr, 512);
    (void)r;
  });
  reporter.Measure("first estimate: stream 1 batch", kBatchRecords, "", [&] {
    auto session = api::ReconstructionSession::Open(
        SalarySpec(train.schema(), 512));
    if (!session.value()->Ingest(stream.data(), kBatchRecords).ok()) {
      std::abort();
    }
    const auto r = session.value()->Reconstruct();
    (void)r;
  });

  // ---------------------------------------- refresh: warm vs. cold fit
  // The steady-state serving cost: all records ingested, one more
  // Reconstruct(). Warm-started EM restarts from the previous estimate.
  auto warm_session =
      api::ReconstructionSession::Open(SalarySpec(train.schema(), 512));
  if (!warm_session.ok() || !warm_session.value()->Ingest(stream).ok()) {
    return 1;
  }
  (void)warm_session.value()->Reconstruct();  // prime the estimate
  reporter.Measure("refresh: cold batch fit", stream.size(), "refresh", [&] {
    const reconstruct::Reconstruction r =
        reconstructor.FitParallel(stream, partition, nullptr, 512);
    (void)r;
  });
  reporter.Measure("refresh: warm-started", stream.size(), "refresh", [&] {
    const auto r = warm_session.value()->Reconstruct();
    (void)r;
  });

  // ------------------------------------------------ determinism check
  // Streamed (many batches) == batch FitParallel, byte for byte, with and
  // without a pool.
  const reconstruct::Reconstruction batch_fit =
      reconstructor.FitParallel(stream, partition, nullptr, 512);
  bool identical = true;
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    engine::BatchOptions options;
    options.num_threads = threads;
    auto service = api::Service::Create(options);
    auto session =
        service.value()->OpenSession(SalarySpec(train.schema(), 512));
    for (std::size_t offset = 0; offset < stream.size();
         offset += kBatchRecords) {
      const std::size_t take = std::min(kBatchRecords,
                                        stream.size() - offset);
      if (!session.value()->Ingest(stream.data() + offset, take).ok()) {
        return 1;
      }
    }
    const auto streamed = session.value()->Reconstruct();
    identical = identical && streamed.ok() &&
                streamed.value().masses.size() == batch_fit.masses.size() &&
                std::memcmp(streamed.value().masses.data(),
                            batch_fit.masses.data(),
                            batch_fit.masses.size() * sizeof(double)) == 0;
  }
  std::printf("\nstreamed masses byte-identical to batch fit: %s\n",
              identical ? "yes" : "NO — DETERMINISM VIOLATION");
  return identical ? 0 : 1;
}
