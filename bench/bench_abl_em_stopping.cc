// A3 — ablation: the EM stopping criterion. Run to convergence the ML
// deconvolution estimate grows spiky artifacts (Richardson–Lucy "night
// sky"), so reconstruction error is U-shaped in the iteration count. This
// sweep justifies the default χ² threshold of 1e-4.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  bench::PrintBanner("A3", "ablation: EM early stopping (plateau truth, "
                           "@100% privacy)");

  const std::size_t n = core::PaperScaleRequested() ? 100000 : 20000;
  const std::size_t bins = 20;
  const stats::PlateauDistribution truth(0.0, 1.0, 0.25);
  const reconstruct::Partition partition(0.0, 1.0, bins);

  std::printf("%-12s | %28s | %28s\n", "", "uniform noise", "gaussian noise");
  std::printf("%-12s | %8s %8s %9s | %8s %8s %9s\n", "chi2 eps", "iters",
              "TV err", "KS err", "iters", "TV err", "KS err");

  for (double eps : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 0.0}) {
    std::printf("%-12.0e |", eps);
    for (perturb::NoiseKind kind :
         {perturb::NoiseKind::kUniform, perturb::NoiseKind::kGaussian}) {
      Rng rng(9);
      const perturb::NoiseModel noise =
          perturb::NoiseForPrivacy(kind, 1.0, 1.0, 0.95);
      stats::Histogram hist(0.0, 1.0, bins);
      std::vector<double> perturbed(n);
      for (std::size_t i = 0; i < n; ++i) {
        const double x = truth.Sample(&rng);
        hist.Add(x);
        perturbed[i] = x + noise.Sample(&rng);
      }
      reconstruct::ReconstructionOptions options;
      options.chi_square_epsilon = eps;
      options.max_iterations = 400;
      const reconstruct::BayesReconstructor reconstructor(noise, options);
      const auto recon = reconstructor.Fit(perturbed, partition);
      std::printf(" %8zu %8.4f %9.4f |", recon.iterations,
                  stats::TotalVariation(recon.masses, hist.Masses()),
                  stats::KolmogorovSmirnov(recon.masses, hist.Masses()));
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: TV error is U-shaped — loose thresholds "
              "under-fit, running\nto convergence (eps=0) over-fits; the "
              "1e-4 default sits at the bottom.\n");
  return 0;
}
