// P3 — perturbation throughput (google-benchmark): records/second of the
// data-provider side, per noise model.

#include <benchmark/benchmark.h>

#include "perturb/randomizer.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

void RunPerturb(benchmark::State& state, perturb::NoiseKind kind) {
  synth::GeneratorOptions gen;
  gen.num_records = static_cast<std::size_t>(state.range(0));
  const data::Dataset d = synth::Generate(gen);
  perturb::RandomizerOptions options;
  options.kind = kind;
  options.privacy_fraction = 1.0;
  const perturb::Randomizer rz(d.schema(), options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rz.Perturb(d));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(gen.num_records) *
                          static_cast<std::int64_t>(state.iterations()));
}

void BM_PerturbUniform(benchmark::State& state) {
  RunPerturb(state, perturb::NoiseKind::kUniform);
}
void BM_PerturbGaussian(benchmark::State& state) {
  RunPerturb(state, perturb::NoiseKind::kGaussian);
}

BENCHMARK(BM_PerturbUniform)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PerturbGaussian)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
