// P6 — dataset-level sessions: single-pass record ingest vs. N
// per-attribute ingest passes over the same arriving batches (the
// motivating cost of an attribute-shaped serving layer), ReconstructAll
// latency as the attribute count grows, and a cross-check that the
// dataset path's estimates are byte-identical to N independent
// per-attribute sessions (the equivalence contract). Honours
// PPDM_PAPER_SCALE=1 and PPDM_BENCH_RECORDS=N (CI smoke).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/dataset_session.h"
#include "api/service.h"
#include "api/session.h"
#include "bench/bench_util.h"
#include "data/row_batch.h"
#include "perturb/randomizer.h"
#include "synth/generator.h"

namespace {

using namespace ppdm;

constexpr std::size_t kIntervals = 60;
constexpr std::size_t kBatchRecords = 2048;
constexpr std::size_t kShardSize = 512;

api::DatasetSessionSpec SpecFor(const data::Schema& schema,
                                std::size_t num_attrs) {
  api::DatasetSessionSpec spec;
  spec.schema = schema;
  for (std::size_t column = 0; column < num_attrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = kIntervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = kShardSize;
  return spec;
}

}  // namespace

int main() {
  bench::PrintBanner("P6",
                     "dataset session: single-pass ingest + fit fan-out");
  core::ExperimentConfig config = bench::DefaultConfig(synth::Function::kF1);
  config.train_records = bench::BenchRecords(config.train_records);
  const std::size_t records = config.train_records;
  std::printf("records=%zu  batch=%zu  K=%zu  hardware threads=%u\n\n",
              records, kBatchRecords, kIntervals,
              std::thread::hardware_concurrency());

  // Perturbed records, flattened row-major — the provider arrival shape.
  // (Not bench::PerturbedRowMajor: the per-attribute reference path below
  // also needs the column-major Dataset.)
  synth::GeneratorOptions gen;
  gen.num_records = records;
  gen.function = config.function;
  gen.seed = config.seed;
  const data::Dataset train = synth::Generate(gen);
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = config.seed + 0x9E1517BULL;
  const perturb::Randomizer randomizer(train.schema(), noise);
  const data::Dataset perturbed = randomizer.Perturb(train);
  const std::size_t cols = perturbed.NumCols();
  std::vector<double> rows(records * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::vector<double>& column = perturbed.Column(c);
    for (std::size_t r = 0; r < records; ++r) {
      rows[r * cols + c] = column[r];
    }
  }
  const data::RowBatch all_rows(rows.data(), records, cols);

  engine::BatchOptions options;
  options.num_threads = 4;
  options.shard_size = kShardSize;
  auto service = api::Service::Create(options);
  if (!service.ok()) return 1;

  // ------------------------------------- single-pass vs. N-pass ingest
  // Record batches of kBatchRecords arrive row-major. The dataset session
  // folds each batch into all A attributes in one pass; the per-attribute
  // alternative must scatter each batch into A column buffers and run A
  // independent ingests — N passes over every arriving batch.
  bench::ThroughputReporter reporter("records");
  char label[64];
  double dataset_seconds_4 = 0.0;
  double per_attr_seconds_4 = 0.0;
  for (std::size_t attrs : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::snprintf(label, sizeof(label), "single-pass ingest A=%zu", attrs);
    const std::string baseline = label;
    const double dataset_seconds =
        reporter.Measure(label, records, baseline, [&] {
          auto session =
              service.value()->OpenDatasetSession(SpecFor(train.schema(),
                                                          attrs));
          for (std::size_t offset = 0; offset < records;
               offset += kBatchRecords) {
            const std::size_t take =
                std::min(kBatchRecords, records - offset);
            if (!session.value()->Ingest(all_rows.Slice(offset, take)).ok()) {
              std::abort();
            }
          }
        });
    std::snprintf(label, sizeof(label), "%zu-pass ingest A=%zu", attrs,
                  attrs);
    const double per_attr_seconds =
        reporter.Measure(label, records, baseline, [&] {
          std::vector<std::unique_ptr<api::ReconstructionSession>> sessions;
          const api::DatasetSessionSpec spec = SpecFor(train.schema(), attrs);
          for (std::size_t a = 0; a < attrs; ++a) {
            auto session =
                service.value()->OpenSession(spec.AttributeSession(a));
            if (!session.ok()) std::abort();
            sessions.push_back(std::move(session.value()));
          }
          std::vector<double> column(kBatchRecords);
          for (std::size_t offset = 0; offset < records;
               offset += kBatchRecords) {
            const std::size_t take =
                std::min(kBatchRecords, records - offset);
            for (std::size_t a = 0; a < attrs; ++a) {
              for (std::size_t r = 0; r < take; ++r) {
                column[r] = rows[(offset + r) * cols + a];
              }
              if (!sessions[a]->Ingest(column.data(), take).ok()) {
                std::abort();
              }
            }
          }
        });
    if (attrs == 4) {
      dataset_seconds_4 = dataset_seconds;
      per_attr_seconds_4 = per_attr_seconds;
    }
  }

  // ------------------------------- ReconstructAll latency vs. attributes
  // Steady-state refresh cost: everything ingested, one more warm-started
  // ReconstructAll() as the tracked attribute count grows.
  for (std::size_t attrs :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    auto session =
        service.value()->OpenDatasetSession(SpecFor(train.schema(), attrs));
    if (!session.ok() || !session.value()->Ingest(all_rows).ok()) return 1;
    if (!session.value()->ReconstructAll().ok()) return 1;  // prime warm
    std::snprintf(label, sizeof(label), "ReconstructAll warm A=%zu", attrs);
    reporter.Measure(label, attrs, "", [&] {
      if (!session.value()->ReconstructAll().ok()) std::abort();
    });
  }

  // ------------------------------------------------ equivalence check
  // Dataset-path estimates == N independent per-attribute sessions, byte
  // for byte, with and without a pool.
  const std::size_t check_attrs = 4;
  const api::DatasetSessionSpec spec = SpecFor(train.schema(), check_attrs);
  bool identical = true;
  for (std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    engine::BatchOptions check_options;
    check_options.num_threads = threads;
    check_options.shard_size = kShardSize;
    auto check_service = api::Service::Create(check_options);
    auto dataset_session =
        check_service.value()->OpenDatasetSession(spec);
    for (std::size_t offset = 0; offset < records;
         offset += kBatchRecords) {
      const std::size_t take = std::min(kBatchRecords, records - offset);
      if (!dataset_session.value()->Ingest(all_rows.Slice(offset, take))
               .ok()) {
        return 1;
      }
    }
    const auto estimates = dataset_session.value()->ReconstructAll();
    if (!estimates.ok()) return 1;
    for (std::size_t a = 0; a < check_attrs; ++a) {
      auto session =
          check_service.value()->OpenSession(spec.AttributeSession(a));
      if (!session.value()->Ingest(perturbed.Column(a)).ok()) return 1;
      const auto independent = session.value()->Reconstruct();
      if (!independent.ok()) return 1;
      identical =
          identical &&
          independent.value().masses.size() ==
              estimates.value()[a].masses.size() &&
          std::memcmp(independent.value().masses.data(),
                      estimates.value()[a].masses.data(),
                      independent.value().masses.size() * sizeof(double)) ==
              0;
    }
  }
  std::printf("\ndataset-path masses byte-identical to per-attribute "
              "sessions: %s\n",
              identical ? "yes" : "NO — EQUIVALENCE VIOLATION");
  if (dataset_seconds_4 > 0.0 && per_attr_seconds_4 > 0.0) {
    std::printf("single-pass vs 4-pass ingest at A=4: %.2fx\n",
                per_attr_seconds_4 / dataset_seconds_4);
  }
  return identical ? 0 : 1;
}
