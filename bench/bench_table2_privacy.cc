// T2 — the worked privacy-quantification numbers of paper §3: the interval
// width (as % of an attribute's range) within which a perturbed value
// confines the true value, per noise model and confidence level; and the
// noise parameter needed for each paper privacy setting.

#include <cstdio>

#include "bench/bench_util.h"
#include "perturb/noise_model.h"

int main() {
  using namespace ppdm;
  using perturb::NoiseForPrivacy;
  using perturb::NoiseKind;
  using perturb::NoiseModel;

  bench::PrintBanner("T2", "privacy at confidence (paper §3)");

  const double range = 1.0;  // privacy expressed as fraction of range

  std::printf("Noise calibrated to 100%% privacy at 95%% confidence:\n");
  std::printf("%-10s %-12s | %-18s %-18s %-18s\n", "noise", "parameter",
              "privacy@50%", "privacy@95%", "privacy@99.9%");
  for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
    const NoiseModel m = NoiseForPrivacy(kind, 1.0, range, 0.95);
    std::printf("%-10s %-12.4f | %17.1f%% %17.1f%% %17.1f%%\n",
                NoiseKindName(kind).c_str(), m.scale(),
                bench::Pct(m.PrivacyAtConfidence(0.50)),
                bench::Pct(m.PrivacyAtConfidence(0.95)),
                bench::Pct(m.PrivacyAtConfidence(0.999)));
  }
  std::printf("\n(The Gaussian's heavier tails give far more privacy at "
              "very high confidence\n levels for the same 95%% privacy — "
              "the paper's argument for preferring it.)\n\n");

  std::printf("Noise parameter required per paper privacy setting "
              "(95%% confidence):\n");
  std::printf("%-10s", "privacy");
  for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
    std::printf(" %19s", perturb::NoiseKindName(kind).c_str());
  }
  std::printf("\n");
  for (double pf : {0.10, 0.25, 0.50, 1.00, 1.50, 2.00}) {
    std::printf("%8.0f%%", bench::Pct(pf));
    for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
      const NoiseModel m = NoiseForPrivacy(kind, pf, range, 0.95);
      std::printf("  %s=%-12.4f",
                  kind == NoiseKind::kUniform ? "alpha" : "sigma",
                  m.scale());
    }
    std::printf("\n");
  }
  return 0;
}
