// F4.1–F4.5 — the paper's per-function "accuracy vs privacy" figures:
// for each Fn, test accuracy of Original / ByClass / Randomized as the
// privacy level sweeps 10%..200% (uniform noise, 95% confidence).

#include <cstdio>

#include "bench/bench_util.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  bench::PrintBanner("F4", "accuracy vs privacy, per classification function");

  const std::vector<double> levels{0.10, 0.25, 0.50, 1.00, 1.50, 2.00};
  const std::vector<TrainingMode> modes{TrainingMode::kOriginal,
                                        TrainingMode::kByClass,
                                        TrainingMode::kRandomized};

  for (synth::Function fn : bench::AllFunctions()) {
    std::printf("\n-- F4.%d: %s (uniform noise) --\n",
                static_cast<int>(fn), synth::FunctionName(fn).c_str());
    std::printf("%-10s %10s %10s %12s\n", "privacy", "Original", "ByClass",
                "Randomized");
    for (double privacy : levels) {
      core::ExperimentConfig config = bench::DefaultConfig(fn);
      config.noise = perturb::NoiseKind::kUniform;
      config.privacy_fraction = privacy;
      const auto results = core::RunModes(config, modes);
      std::printf("%8.0f%% %9.1f%% %9.1f%% %11.1f%%\n",
                  bench::Pct(privacy), bench::Pct(results[0].accuracy),
                  bench::Pct(results[1].accuracy),
                  bench::Pct(results[2].accuracy));
    }
  }
  std::printf("\nExpected shape: Original flat; ByClass degrades "
              "gracefully and stays well\nabove Randomized, whose accuracy "
              "collapses as privacy grows.\n");
  return 0;
}
