// Scenario: a vendor must decide which training mode to deploy for a
// privacy-preserving classifier. This example trains all five algorithms
// on the same perturbed data (Fn4: education level selects the salary
// band), prints their trees' shapes and accuracy, and shows one decision
// tree so the learned structure is inspectable.
//
// The request enters through the validated api::Spec; the engine runs
// with 4 worker threads, which fans out the per-attribute (and Local's
// per-node) reconstructions without changing a single output bit.

#include <cstdio>

#include "api/spec.h"
#include "core/experiment.h"
#include "engine/batch.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  api::Spec spec;
  spec.function = synth::Function::kF4;
  spec.train_records = 20000;
  spec.test_records = 5000;
  spec.noise.kind = perturb::NoiseKind::kGaussian;
  spec.noise.privacy_fraction = 1.0;
  spec.engine.num_threads = 4;
  if (Status s = spec.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid spec: %s\n", s.ToString().c_str());
    return 1;
  }
  const core::ExperimentConfig config = spec.ToExperimentConfig();

  std::printf("Fn4, Gaussian noise @100%% privacy, %zu training records, "
              "%zu engine threads\n\n",
              spec.train_records, spec.engine.num_threads);
  const engine::Batch batch(config.batch);
  const core::ExperimentData data = core::PrepareData(config, batch);

  std::printf("%-11s %10s %8s %8s\n", "algorithm", "accuracy", "nodes",
              "depth");
  for (TrainingMode mode :
       {TrainingMode::kOriginal, TrainingMode::kRandomized,
        TrainingMode::kGlobal, TrainingMode::kByClass, TrainingMode::kLocal}) {
    const core::ModeResult r = core::RunMode(data, mode, config,
                                             batch.pool());
    std::printf("%-11s %9.1f%% %8zu %8zu\n",
                tree::TrainingModeName(mode).c_str(), 100.0 * r.accuracy,
                r.tree_nodes, r.tree_depth);
  }

  // Show the structure ByClass actually learned. The true concept tests
  // age bands, then an elevel-dependent salary band.
  tree::TreeOptions compact = spec.tree;
  compact.max_depth = 5;  // keep the printed tree small
  const tree::DecisionTree model = tree::TrainDecisionTree(
      data.perturbed_train, TrainingMode::kByClass, compact,
      &data.randomizer, batch.pool());
  std::printf("\nByClass tree (depth capped at 5 for display):\n%s",
              model.Describe(data.train.schema()).c_str());
  return 0;
}
