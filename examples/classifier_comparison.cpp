// Scenario: a vendor must decide which training mode to deploy for a
// privacy-preserving classifier. This example trains all five algorithms
// on the same perturbed data (Fn4: education level selects the salary
// band), prints their trees' shapes and accuracy, and shows one decision
// tree so the learned structure is inspectable.

#include <cstdio>

#include "core/experiment.h"

int main() {
  using namespace ppdm;
  using tree::TrainingMode;

  core::ExperimentConfig config;
  config.function = synth::Function::kF4;
  config.train_records = 20000;
  config.test_records = 5000;
  config.noise = perturb::NoiseKind::kGaussian;
  config.privacy_fraction = 1.0;

  std::printf("Fn4, Gaussian noise @100%% privacy, %zu training records\n\n",
              config.train_records);
  const core::ExperimentData data = core::PrepareData(config);

  std::printf("%-11s %10s %8s %8s\n", "algorithm", "accuracy", "nodes",
              "depth");
  for (TrainingMode mode :
       {TrainingMode::kOriginal, TrainingMode::kRandomized,
        TrainingMode::kGlobal, TrainingMode::kByClass, TrainingMode::kLocal}) {
    const core::ModeResult r = core::RunMode(data, mode, config);
    std::printf("%-11s %9.1f%% %8zu %8zu\n",
                tree::TrainingModeName(mode).c_str(), 100.0 * r.accuracy,
                r.tree_nodes, r.tree_depth);
  }

  // Show the structure ByClass actually learned. The true concept tests
  // age bands, then an elevel-dependent salary band.
  tree::TreeOptions compact = config.tree;
  compact.max_depth = 5;  // keep the printed tree small
  const tree::DecisionTree model = tree::TrainDecisionTree(
      data.perturbed_train, TrainingMode::kByClass, compact,
      &data.randomizer);
  std::printf("\nByClass tree (depth capped at 5 for display):\n%s",
              model.Describe(data.train.schema()).c_str());
  return 0;
}
