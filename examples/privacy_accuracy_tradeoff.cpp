// Scenario: a data curator must pick the noise level to offer survey
// respondents. This example sweeps the privacy dial for one task (Fn3)
// and prints the accuracy curve for both noise models, plus the
// information-theoretic account of what respondents actually disclose —
// the numbers needed to choose a point on the privacy/accuracy frontier.
//
// Every cell of the sweep goes through the validated experiment façade
// api::RunExperiment, so a bad sweep point is a Status, not a crash.

#include <cstdio>

#include "api/spec.h"
#include "core/infotheory.h"
#include "reconstruct/partition.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;
  using perturb::NoiseKind;

  std::printf("Fn3 (age x education), ByClass classifier, 20k records\n\n");
  std::printf("%-10s | %12s %12s | %24s\n", "privacy", "uniform acc",
              "gaussian acc", "age bits disclosed (U/G)");

  for (double privacy : {0.1, 0.25, 0.5, 1.0, 1.5, 2.0}) {
    double acc[2];
    double bits[2];
    int i = 0;
    for (NoiseKind kind : {NoiseKind::kUniform, NoiseKind::kGaussian}) {
      api::Spec spec;
      spec.function = synth::Function::kF3;
      spec.train_records = 20000;
      spec.test_records = 5000;
      spec.noise.kind = kind;
      spec.noise.privacy_fraction = privacy;
      const auto results =
          api::RunExperiment(spec, {tree::TrainingMode::kByClass});
      if (!results.ok()) {
        std::fprintf(stderr, "sweep point rejected: %s\n",
                     results.status().ToString().c_str());
        return 1;
      }
      acc[i] = results.value()[0].accuracy;

      // Disclosure accounting on the age attribute (range 60, uniform).
      const reconstruct::Partition part(20.0, 80.0, 30);
      const std::vector<double> uniform_masses(30, 1.0 / 30.0);
      const perturb::NoiseModel noise =
          perturb::NoiseForPrivacy(kind, privacy, 60.0, 0.95);
      bits[i] = core::MutualInformationBits(uniform_masses, part, noise);
      ++i;
    }
    std::printf("%8.0f%% | %11.1f%% %11.1f%% | %10.2f / %-10.2f\n",
                100.0 * privacy, 100.0 * acc[0], 100.0 * acc[1], bits[0],
                bits[1]);
  }

  std::printf("\nReading the table: pick the row whose disclosure you can "
              "defend to your\nrespondents, then read off the model "
              "accuracy you can promise your analysts.\n");
  return 0;
}
