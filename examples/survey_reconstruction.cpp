// Scenario: an online web survey (the paper's motivating example), now
// asking two sensitive questions — age and income. Users won't reveal
// either truthfully, so each browser adds calibrated noise to the whole
// *record* before submitting. The server recovers both population
// distributions accurately while each individual's answers stay hidden.
//
// Responses arrive over days, not all at once, and they arrive as
// records, so the server side uses the dataset-level serving API: an
// api::DatasetSession folds each day's record batch into every attribute
// in a single pass and ReconstructAll() refreshes both estimates with one
// warm-started EM fan-out — no per-attribute ingest passes, no need to
// keep or re-scan the raw submissions.
//
// Demonstrates: the validated DatasetSessionSpec, record-oriented
// ingestion via data::RowBatch, single-pass multi-attribute fold,
// warm-started ReconstructAll, and the information-theoretic privacy
// accounting per question.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "api/dataset_session.h"
#include "core/infotheory.h"
#include "data/row_batch.h"
#include "data/schema.h"
#include "perturb/noise_model.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  // Plausible respondent distributions: young-skewed ages, right-skewed
  // incomes.
  const auto young = std::make_shared<stats::TriangleDistribution>(18.0, 45.0);
  const auto older = std::make_shared<stats::PlateauDistribution>(30.0, 80.0,
                                                                  0.3);
  const stats::MixtureDistribution ages({young, older}, {2.0, 1.0});
  const auto modest =
      std::make_shared<stats::TriangleDistribution>(12000.0, 70000.0);
  const auto comfortable =
      std::make_shared<stats::PlateauDistribution>(40000.0, 150000.0, 0.25);
  const stats::MixtureDistribution incomes({modest, comfortable}, {3.0, 1.0});

  // The survey's record layout and per-question reconstruction specs:
  // 100% privacy at 95% confidence over each question's domain. The
  // session validates the whole spec up front — a bad column index, zero
  // intervals, or a negative privacy fraction comes back as
  // InvalidArgument here instead of misbehaving later.
  const data::Schema schema({{"age", data::AttributeKind::kContinuous, 18.0,
                              80.0},
                             {"income", data::AttributeKind::kContinuous,
                              10000.0, 150000.0}});
  api::DatasetSessionSpec spec;
  spec.schema = schema;
  for (std::size_t column = 0; column < schema.NumFields(); ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = column == 0 ? 31 : 28;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    attr.confidence = 0.95;
    spec.attributes.push_back(attr);
  }
  auto session = api::DatasetSession::Open(spec);
  if (!session.ok()) {
    std::fprintf(stderr, "bad session spec: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  for (std::size_t a = 0; a < schema.NumFields(); ++a) {
    const perturb::NoiseModel& noise = session.value()->noise_model(a);
    std::printf("%-7s noise: uniform ±%.0f (95%% confidence interval width "
                "%.0f)\n",
                schema.Field(a).name.c_str(), noise.scale(),
                noise.PrivacyAtConfidence(0.95));
  }
  std::printf("\n");

  // Five "days" of 6000 respondents each. Every respondent perturbs both
  // answers locally; the server sees only the perturbed records, folds
  // each day's batch into both attributes in one pass, and refreshes the
  // estimates overnight.
  const std::size_t days = 5;
  const std::size_t per_day = 6000;
  const std::size_t cols = schema.NumFields();
  Rng rng(2024);
  stats::Histogram age_truth(18.0, 80.0, 31);
  stats::Histogram income_truth(10000.0, 150000.0, 28);
  std::printf("%-6s %12s %10s %12s %12s\n", "day", "respondents", "EM iter",
              "tv(age)", "tv(income)");
  std::vector<double> submitted(per_day * cols);
  for (std::size_t day = 0; day < days; ++day) {
    for (std::size_t r = 0; r < per_day; ++r) {
      const double age = ages.Sample(&rng);
      const double income = incomes.Sample(&rng);
      age_truth.Add(age);
      income_truth.Add(income);
      double* row = submitted.data() + r * cols;
      row[0] = age + session.value()->noise_model(0).Sample(&rng);
      row[1] = income + session.value()->noise_model(1).Sample(&rng);
    }
    if (Status s = session.value()->Ingest(
            data::RowBatch(submitted.data(), per_day, cols));
        !s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto estimates = session.value()->ReconstructAll();
    if (!estimates.ok()) return 1;
    const auto& recons = estimates.value();
    std::printf("%-6zu %12zu %10zu %12.4f %12.4f\n", day + 1,
                static_cast<std::size_t>(session.value()->record_count()),
                std::max(recons[0].iterations, recons[1].iterations),
                stats::TotalVariation(recons[0].masses, age_truth.Masses()),
                stats::TotalVariation(recons[1].masses,
                                      income_truth.Masses()));
  }

  // Final estimates vs. the truths the server never saw.
  const auto final_estimates = session.value()->ReconstructAll();
  if (!final_estimates.ok()) return 1;
  const reconstruct::Reconstruction& age_recon = final_estimates.value()[0];
  const reconstruct::Partition& age_partition =
      session.value()->partition(0);
  const auto true_ages = age_truth.Masses();
  std::printf("\n%-9s %-12s %-14s\n", "age", "true share", "reconstructed");
  for (std::size_t k = 0; k < age_partition.intervals(); k += 3) {
    std::printf("%4.0f-%-4.0f %9.2f%% %12.2f%%\n", age_partition.Lo(k),
                age_partition.Hi(k), 100.0 * true_ages[k],
                100.0 * age_recon.masses[k]);
  }
  std::printf("\nreconstruction error (total variation): age %.4f, income "
              "%.4f from %zu streamed records\n",
              stats::TotalVariation(age_recon.masses, true_ages),
              stats::TotalVariation(final_estimates.value()[1].masses,
                                    income_truth.Masses()),
              age_recon.sample_count);

  // How much did each respondent actually give away, per question?
  const std::vector<const stats::Histogram*> truths{&age_truth,
                                                    &income_truth};
  for (std::size_t a = 0; a < truths.size(); ++a) {
    const auto masses = truths[a]->Masses();
    const double h_x = core::DiscreteEntropyBits(masses);
    const double mi = core::MutualInformationBits(
        masses, session.value()->partition(a),
        session.value()->noise_model(a));
    std::printf("%-7s disclosure: %.2f of %.2f bits (%.0f%%) — the rest "
                "stays private.\n",
                schema.Field(a).name.c_str(), mi, h_x, 100.0 * mi / h_x);
  }
  return 0;
}
