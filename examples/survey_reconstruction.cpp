// Scenario: an online web survey (the paper's motivating example). Users
// won't reveal their true age to the survey server, so each browser adds
// calibrated noise before submitting. The server recovers the *population*
// age distribution — accurately — while each individual's age stays
// hidden inside a ±31-year window.
//
// Responses arrive over days, not all at once, so the server side uses
// the streaming serving API: an api::ReconstructionSession folds each
// day's batch in as it lands and refreshes the estimate (EM warm-started
// from yesterday's) — no need to keep or re-scan the raw submissions.
//
// Demonstrates: NoiseForPrivacy, per-record perturbation, the validated
// session spec, streaming ingestion + warm-started EM reconstruction, and
// the information-theoretic privacy accounting.

#include <cstdio>
#include <vector>

#include "api/session.h"
#include "core/infotheory.h"
#include "perturb/noise_model.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  // A plausible respondent-age distribution: young-skewed mixture.
  const auto young = std::make_shared<stats::TriangleDistribution>(18.0, 45.0);
  const auto older = std::make_shared<stats::PlateauDistribution>(30.0, 80.0,
                                                                  0.3);
  const stats::MixtureDistribution population({young, older}, {2.0, 1.0});

  // 100% privacy at 95% confidence over the age domain [18, 80]. The
  // session validates the whole spec up front: a negative privacy
  // fraction or zero intervals would come back as InvalidArgument here
  // instead of misbehaving later.
  api::SessionSpec spec;
  spec.lo = 18.0;
  spec.hi = 80.0;
  spec.intervals = 31;
  spec.noise = perturb::NoiseKind::kUniform;
  spec.privacy_fraction = 1.0;
  spec.confidence = 0.95;
  auto session = api::ReconstructionSession::Open(spec);
  if (!session.ok()) {
    std::fprintf(stderr, "bad session spec: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  const perturb::NoiseModel& noise = session.value()->noise_model();
  std::printf("Survey noise: uniform ±%.1f years (95%% confidence interval "
              "width %.1f years)\n\n",
              noise.scale(), noise.PrivacyAtConfidence(0.95));

  // Five "days" of 6000 respondents each. Every respondent perturbs
  // locally; the server sees only w = age + y, folds each day's batch into
  // the session on arrival, and refreshes its estimate overnight.
  const std::size_t days = 5;
  const std::size_t per_day = 6000;
  Rng rng(2024);
  stats::Histogram truth(18.0, 80.0, 31);
  std::printf("%-6s %12s %10s %12s\n", "day", "respondents", "EM iter",
              "tv(truth)");
  for (std::size_t day = 0; day < days; ++day) {
    std::vector<double> submitted(per_day);
    for (double& w : submitted) {
      const double age = population.Sample(&rng);
      truth.Add(age);
      w = age + noise.Sample(&rng);
    }
    if (Status s = session.value()->Ingest(submitted); !s.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto estimate = session.value()->Reconstruct();
    if (!estimate.ok()) return 1;
    std::printf("%-6zu %12zu %10zu %12.4f\n", day + 1,
                static_cast<std::size_t>(session.value()->record_count()),
                estimate.value().iterations,
                stats::TotalVariation(estimate.value().masses,
                                      truth.Masses()));
  }

  // Final estimate vs. the truth the server never saw.
  const auto final_estimate = session.value()->Reconstruct();
  if (!final_estimate.ok()) return 1;
  const reconstruct::Reconstruction& recon = final_estimate.value();
  const reconstruct::Partition& partition = session.value()->partition();
  const auto true_masses = truth.Masses();
  std::printf("\n%-9s %-12s %-14s\n", "age", "true share", "reconstructed");
  for (std::size_t k = 0; k < partition.intervals(); k += 3) {
    std::printf("%4.0f-%-4.0f %9.2f%% %12.2f%%\n", partition.Lo(k),
                partition.Hi(k), 100.0 * true_masses[k],
                100.0 * recon.masses[k]);
  }
  std::printf("\nreconstruction error (total variation): %.4f from %zu "
              "streamed responses\n",
              stats::TotalVariation(recon.masses, true_masses),
              recon.sample_count);

  // How much did each respondent actually give away?
  const double h_x = core::DiscreteEntropyBits(true_masses);
  const double mi = core::MutualInformationBits(true_masses, partition, noise);
  std::printf("per-respondent disclosure: %.2f of %.2f bits (%.0f%%) — the "
              "rest stays private.\n",
              mi, h_x, 100.0 * mi / h_x);
  return 0;
}
