// Scenario: an online web survey (the paper's motivating example). Users
// won't reveal their true age to the survey server, so each browser adds
// calibrated noise before submitting. The server recovers the *population*
// age distribution — accurately — while each individual's age stays
// hidden inside a ±31-year window.
//
// Demonstrates: NoiseForPrivacy, per-record perturbation, EM
// reconstruction, and the information-theoretic privacy accounting.

#include <cstdio>
#include <vector>

#include "core/infotheory.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"
#include "stats/distribution.h"
#include "stats/histogram.h"

int main() {
  using namespace ppdm;

  // A plausible respondent-age distribution: young-skewed mixture.
  const auto young = std::make_shared<stats::TriangleDistribution>(18.0, 45.0);
  const auto older = std::make_shared<stats::PlateauDistribution>(30.0, 80.0,
                                                                  0.3);
  const stats::MixtureDistribution population({young, older}, {2.0, 1.0});

  // 100% privacy at 95% confidence over the age domain [18, 80].
  const double range = 80.0 - 18.0;
  const perturb::NoiseModel noise = perturb::NoiseForPrivacy(
      perturb::NoiseKind::kUniform, 1.0, range, 0.95);
  std::printf("Survey noise: uniform ±%.1f years (95%% confidence interval "
              "width %.1f years)\n\n",
              noise.scale(), noise.PrivacyAtConfidence(0.95));

  // Each respondent perturbs locally; the server sees only w = age + y.
  const std::size_t respondents = 30000;
  Rng rng(2024);
  stats::Histogram truth(18.0, 80.0, 31);
  std::vector<double> submitted(respondents);
  for (std::size_t i = 0; i < respondents; ++i) {
    const double age = population.Sample(&rng);
    truth.Add(age);
    submitted[i] = age + noise.Sample(&rng);
  }

  // Server-side reconstruction.
  const reconstruct::Partition partition(18.0, 80.0, 31);
  const reconstruct::BayesReconstructor reconstructor(noise, {});
  const reconstruct::Reconstruction recon =
      reconstructor.Fit(submitted, partition);

  std::printf("%-9s %-12s %-14s\n", "age", "true share", "reconstructed");
  const auto true_masses = truth.Masses();
  for (std::size_t k = 0; k < partition.intervals(); k += 3) {
    std::printf("%4.0f-%-4.0f %9.2f%% %12.2f%%\n", partition.Lo(k),
                partition.Hi(k), 100.0 * true_masses[k],
                100.0 * recon.masses[k]);
  }

  std::printf("\nreconstruction error (total variation): %.4f after %zu EM "
              "iterations\n",
              stats::TotalVariation(recon.masses, true_masses),
              recon.iterations);

  // How much did each respondent actually give away?
  const double h_x = core::DiscreteEntropyBits(true_masses);
  const double mi = core::MutualInformationBits(true_masses, partition, noise);
  std::printf("per-respondent disclosure: %.2f of %.2f bits (%.0f%%) — the "
              "rest stays private.\n",
              mi, h_x, 100.0 * mi / h_x);
  return 0;
}
