// Quickstart: the full privacy-preserving mining loop in ~40 lines.
//
// 1. Data providers perturb their records with calibrated noise.
// 2. The server reconstructs per-class distributions (never seeing true
//    values) and trains a ByClass decision tree.
// 3. The tree classifies fresh, unperturbed records.
//
// Requests enter through the validated api::Spec — a malformed request
// (negative privacy, confidence outside (0,1), zero intervals) is
// rejected with a Status before any work starts.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "api/spec.h"
#include "core/experiment.h"

int main() {
  using namespace ppdm;

  // One experimental cell: classification function Fn2 (age × salary
  // bands), 20k providers, uniform noise at the paper's "100% privacy"
  // setting — each disclosed value only pins the true value to an
  // interval as wide as the whole attribute range (95% confidence).
  api::Spec spec;
  spec.function = synth::Function::kF2;
  spec.train_records = 20000;
  spec.test_records = 5000;
  spec.noise.kind = perturb::NoiseKind::kUniform;
  spec.noise.privacy_fraction = 1.0;

  if (Status s = spec.Validate(); !s.ok()) {
    std::fprintf(stderr, "invalid spec: %s\n", s.ToString().c_str());
    return 1;
  }
  const core::ExperimentConfig config = spec.ToExperimentConfig();

  std::printf("Generating %zu provider records and perturbing them at "
              "%.0f%% privacy...\n",
              spec.train_records, 100.0 * spec.noise.privacy_fraction);
  const core::ExperimentData data = core::PrepareData(config);

  // What one provider actually discloses:
  std::printf("\nprovider record 0:   true salary = %8.0f   disclosed "
              "salary = %8.0f\n",
              data.train.At(0, synth::kSalary),
              data.perturbed_train.At(0, synth::kSalary));

  // Server side: reconstruct + train, then evaluate on clean test data.
  for (auto mode : {tree::TrainingMode::kOriginal,
                    tree::TrainingMode::kRandomized,
                    tree::TrainingMode::kByClass}) {
    const core::ModeResult result = core::RunMode(data, mode, config);
    std::printf("%-11s accuracy = %.1f%%   (%zu tree nodes)\n",
                tree::TrainingModeName(mode).c_str(), 100.0 * result.accuracy,
                result.tree_nodes);
  }

  std::printf("\nByClass recovers most of the accuracy that Randomized "
              "throws away,\nwithout the server ever seeing a true "
              "value.\n");
  return 0;
}
