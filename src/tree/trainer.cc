#include "tree/trainer.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/random.h"
#include "reconstruct/assign.h"
#include "reconstruct/by_class.h"
#include "tree/gini.h"
#include "tree/prune.h"

namespace ppdm::tree {
namespace {

using reconstruct::AssignByOrderStatistics;
using reconstruct::BayesReconstructor;
using reconstruct::Partition;
using reconstruct::Reconstruction;

// Per-attribute interval range [first, second) still possible at a node;
// used by Local to restrict per-node reconstruction to the node's domain.
using Bounds = std::vector<std::pair<std::size_t, std::size_t>>;

class Builder {
 public:
  Builder(const data::Dataset& dataset, TrainingMode mode,
          const TreeOptions& options, const perturb::Randomizer* randomizer,
          engine::ThreadPool* pool)
      : dataset_(dataset),
        mode_(mode),
        options_(options),
        randomizer_(randomizer),
        pool_(pool),
        num_classes_(static_cast<std::size_t>(dataset.num_classes())) {
    PPDM_CHECK_GT(dataset.NumRows(), 0u);
    PPDM_CHECK_GT(options.intervals, 1u);
    PPDM_CHECK_GT(options.max_depth, 0u);
    if (ModeUsesReconstruction(mode_)) {
      PPDM_CHECK_MSG(randomizer_ != nullptr,
                     "reconstruction modes need the noise models");
    }
    partitions_.reserve(dataset.NumCols());
    for (std::size_t c = 0; c < dataset.NumCols(); ++c) {
      partitions_.push_back(Partition::ForField(dataset.schema().Field(c),
                                                options.intervals));
    }
    // Local also precomputes ByClass root assignments: small nodes fall
    // back to them, and holdout routing during pruning uses them.
    PrecomputeAssignments();
  }

  DecisionTree Build() {
    std::vector<std::size_t> rows(dataset_.NumRows());
    std::iota(rows.begin(), rows.end(), 0u);

    std::vector<std::size_t> holdout;
    if (options_.pruning == PruningMode::kReducedError &&
        options_.holdout_fraction > 0.0 && dataset_.NumRows() >= 8) {
      Rng rng(options_.holdout_seed);
      rng.Shuffle(&rows);
      auto holdout_size = static_cast<std::size_t>(
          options_.holdout_fraction * static_cast<double>(rows.size()));
      holdout_size = std::min(holdout_size, rows.size() - 1);
      holdout.assign(rows.end() - static_cast<std::ptrdiff_t>(holdout_size),
                     rows.end());
      rows.resize(rows.size() - holdout_size);
    }

    Bounds bounds(dataset_.NumCols(), {0, options_.intervals});
    BuildNode(std::move(rows), bounds, 1);

    switch (options_.pruning) {
      case PruningMode::kNone:
        break;
      case PruningMode::kPessimistic:
        nodes_ = PruneNodes(std::move(nodes_), misclassified_,
                            options_.pruning_z);
        break;
      case PruningMode::kReducedError: {
        if (holdout.empty()) break;
        std::vector<std::vector<double>> records;
        std::vector<int> labels;
        records.reserve(holdout.size());
        labels.reserve(holdout.size());
        for (std::size_t r : holdout) {
          records.push_back(RoutingValues(r));
          labels.push_back(dataset_.Label(r));
        }
        nodes_ = ReducedErrorPrune(std::move(nodes_), records, labels);
        break;
      }
    }
    return DecisionTree(std::move(nodes_));
  }

 private:
  // ------------------------------------------------------------------
  // Root-time interval association for every mode except Local.
  void PrecomputeAssignments() {
    assigned_.assign(dataset_.NumCols(),
                     std::vector<std::uint16_t>(dataset_.NumRows(), 0));
    // Fan the per-attribute reconstructions out over the pool: each column
    // writes only assigned_[col] and runs the sequential reference
    // reconstruction, so the result is independent of the pool size.
    engine::ParallelFor(pool_, dataset_.NumCols(), [this](std::size_t col) {
      PrecomputeColumn(col);
    });
  }

  void PrecomputeColumn(std::size_t col) {
    switch (mode_) {
      case TrainingMode::kOriginal:
      case TrainingMode::kRandomized: {
        // Values used as-is: clamp into the domain partition.
        const std::vector<double>& column = dataset_.Column(col);
        for (std::size_t r = 0; r < column.size(); ++r) {
          assigned_[col][r] =
              static_cast<std::uint16_t>(partitions_[col].IntervalOf(
                  column[r]));
        }
        break;
      }
      case TrainingMode::kGlobal: {
        const BayesReconstructor reconstructor(randomizer_->ModelFor(col),
                                               options_.reconstruction);
        const Reconstruction recon = reconstruct::ReconstructCombined(
            dataset_, col, partitions_[col], reconstructor);
        const std::vector<std::size_t> assignment =
            AssignByOrderStatistics(dataset_.Column(col), recon.masses);
        for (std::size_t r = 0; r < assignment.size(); ++r) {
          assigned_[col][r] = static_cast<std::uint16_t>(assignment[r]);
        }
        break;
      }
      case TrainingMode::kByClass:
        PrecomputeByClassColumn(col);
        break;
      case TrainingMode::kLocal:
        // ByClass-style root assignments, used only to route holdout
        // records during reduced-error pruning.
        PrecomputeByClassColumn(col);
        break;
    }
  }

  void PrecomputeByClassColumn(std::size_t col) {
    const BayesReconstructor reconstructor(randomizer_->ModelFor(col),
                                           options_.reconstruction);
    const std::vector<Reconstruction> recons = reconstruct::ReconstructByClass(
        dataset_, col, partitions_[col], reconstructor);
    const std::vector<double>& column = dataset_.Column(col);
    for (std::size_t klass = 0; klass < num_classes_; ++klass) {
      std::vector<std::size_t> rows;
      std::vector<double> values;
      for (std::size_t r = 0; r < column.size(); ++r) {
        if (static_cast<std::size_t>(dataset_.Label(r)) == klass) {
          rows.push_back(r);
          values.push_back(column[r]);
        }
      }
      const std::vector<std::size_t> assignment =
          AssignByOrderStatistics(values, recons[klass].masses);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        assigned_[col][rows[i]] = static_cast<std::uint16_t>(assignment[i]);
      }
    }
  }

  // Attribute values used to route a record during reduced-error pruning:
  // raw values for the baselines, assignment-denoised interval midpoints
  // for the reconstruction modes.
  std::vector<double> RoutingValues(std::size_t row) const {
    std::vector<double> values(dataset_.NumCols());
    if (mode_ == TrainingMode::kOriginal ||
        mode_ == TrainingMode::kRandomized) {
      for (std::size_t c = 0; c < values.size(); ++c) {
        values[c] = dataset_.At(row, c);
      }
    } else {
      for (std::size_t c = 0; c < values.size(); ++c) {
        values[c] = partitions_[c].Mid(assigned_[c][row]);
      }
    }
    return values;
  }

  // ------------------------------------------------------------------
  std::vector<double> ClassCounts(const std::vector<std::size_t>& rows)
      const {
    std::vector<double> counts(num_classes_, 0.0);
    for (std::size_t r : rows) {
      counts[static_cast<std::size_t>(dataset_.Label(r))] += 1.0;
    }
    return counts;
  }

  static int Majority(const std::vector<double>& counts) {
    return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                            counts.begin());
  }

  static bool IsPure(const std::vector<double>& counts) {
    int nonzero = 0;
    for (double c : counts) {
      if (c > 0.0) ++nonzero;
    }
    return nonzero <= 1;
  }

  // Sub-partition of attribute `col` covering interval range [lo, hi).
  Partition SubPartition(std::size_t col, std::size_t lo,
                         std::size_t hi) const {
    const Partition& full = partitions_[col];
    return Partition(full.lo() + full.width() * static_cast<double>(lo),
                     full.lo() + full.width() * static_cast<double>(hi),
                     hi - lo);
  }

  // True when this node should run Local's per-node reconstruction rather
  // than reuse the frozen root assignments.
  bool UseLocalReconstruction(const std::vector<std::size_t>& rows) const {
    return mode_ == TrainingMode::kLocal &&
           rows.size() >= options_.local_min_records_to_reconstruct;
  }

  // Expected per-interval class counts for one attribute at one node, over
  // the node's interval range for that attribute. Precomputed modes (and
  // small Local nodes) count assigned records exactly; large Local nodes
  // reconstruct from the node's perturbed values over the restricted
  // domain, yielding fractional expected counts.
  std::vector<std::vector<double>> CountsTable(
      std::size_t col, const std::vector<std::size_t>& rows,
      const std::vector<double>& class_counts,
      const std::pair<std::size_t, std::size_t>& range) const {
    const std::size_t span = range.second - range.first;
    std::vector<std::vector<double>> table(num_classes_,
                                           std::vector<double>(span, 0.0));
    if (!UseLocalReconstruction(rows)) {
      for (std::size_t r : rows) {
        std::size_t k = assigned_[col][r];
        k = std::min(std::max(k, range.first), range.second - 1);
        table[static_cast<std::size_t>(dataset_.Label(r))]
             [k - range.first] += 1.0;
      }
      return table;
    }
    const BayesReconstructor reconstructor(randomizer_->ModelFor(col),
                                           options_.reconstruction);
    const Partition sub = SubPartition(col, range.first, range.second);
    const std::vector<double>& column = dataset_.Column(col);
    for (std::size_t klass = 0; klass < num_classes_; ++klass) {
      std::vector<double> values;
      for (std::size_t r : rows) {
        if (static_cast<std::size_t>(dataset_.Label(r)) == klass) {
          values.push_back(column[r]);
        }
      }
      if (values.empty()) continue;
      const Reconstruction recon = reconstructor.Fit(values, sub);
      for (std::size_t k = 0; k < span; ++k) {
        table[klass][k] = class_counts[klass] * recon.masses[k];
      }
    }
    return table;
  }

  // Partitions `rows` into children for a chosen split. `edge` is local to
  // the node's interval range for `col`. Every mode — including Local —
  // routes by the frozen root assignments: Local's per-node reconstruction
  // informs only *split selection*. Re-dealing records at each node would
  // let a record land on different sides of the same value boundary at
  // different depths, scrambling subtree membership (and it measurably
  // wrecks deep structure); frozen assignments keep the routed record
  // sets consistent with one denoised value per record.
  void Route(std::size_t col, std::size_t edge,
             const std::pair<std::size_t, std::size_t>& range,
             const std::vector<std::size_t>& rows,
             std::vector<std::size_t>* left,
             std::vector<std::size_t>* right) const {
    const std::size_t absolute_edge = range.first + edge;
    for (std::size_t r : rows) {
      (assigned_[col][r] < absolute_edge ? left : right)->push_back(r);
    }
  }

  // ------------------------------------------------------------------
  int BuildNode(std::vector<std::size_t> rows, const Bounds& bounds,
                std::size_t depth) {
    const int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    misclassified_.push_back(0.0);
    const std::vector<double> class_counts = ClassCounts(rows);
    const int majority = Majority(class_counts);
    nodes_[static_cast<std::size_t>(index)].label = majority;
    nodes_[static_cast<std::size_t>(index)].num_records = rows.size();
    misclassified_[static_cast<std::size_t>(index)] =
        static_cast<double>(rows.size()) -
        class_counts[static_cast<std::size_t>(majority)];

    if (depth >= options_.max_depth || IsPure(class_counts) ||
        rows.size() < options_.min_records_to_split) {
      return index;
    }

    // Search every attribute for the best boundary split. Building the
    // per-attribute counts tables dominates a Local node that
    // re-reconstructs (one EM fit per class per attribute), so those fan
    // out over the pool: each column computes an independent table into
    // its own slot, and the selection scan stays sequential in column
    // order, so the chosen split is identical for every pool size.
    // Precomputed modes (and frozen small Local nodes) only count
    // assigned records — too cheap to amortize a fan-out or the buffered
    // tables — and keep the original lazy one-table-at-a-time loop.
    SplitCandidate best;
    std::size_t best_col = 0;
    if (UseLocalReconstruction(rows)) {
      std::vector<std::vector<std::vector<double>>> tables(
          dataset_.NumCols());
      engine::ParallelFor(pool_, dataset_.NumCols(), [&](std::size_t col) {
        if (bounds[col].second - bounds[col].first < 2) return;
        tables[col] = CountsTable(col, rows, class_counts, bounds[col]);
      });
      for (std::size_t col = 0; col < dataset_.NumCols(); ++col) {
        if (bounds[col].second - bounds[col].first < 2) continue;
        const SplitCandidate candidate =
            BestBoundarySplit(tables[col], options_.min_leaf_records);
        if (candidate.valid && (!best.valid || candidate.gain > best.gain)) {
          best = candidate;
          best_col = col;
        }
      }
    } else {
      for (std::size_t col = 0; col < dataset_.NumCols(); ++col) {
        if (bounds[col].second - bounds[col].first < 2) continue;
        const std::vector<std::vector<double>> table =
            CountsTable(col, rows, class_counts, bounds[col]);
        const SplitCandidate candidate =
            BestBoundarySplit(table, options_.min_leaf_records);
        if (candidate.valid && (!best.valid || candidate.gain > best.gain)) {
          best = candidate;
          best_col = col;
        }
      }
    }
    if (!best.valid || best.gain < options_.min_gain) return index;

    std::vector<std::size_t> left_rows, right_rows;
    left_rows.reserve(rows.size());
    right_rows.reserve(rows.size());
    Route(best_col, best.edge, bounds[best_col], rows, &left_rows,
          &right_rows);
    if (left_rows.empty() || right_rows.empty()) return index;
    rows.clear();
    rows.shrink_to_fit();

    const std::size_t absolute_edge = bounds[best_col].first + best.edge;
    const double threshold = partitions_[best_col].Lo(absolute_edge);
    Bounds left_bounds = bounds;
    left_bounds[best_col].second = absolute_edge;
    Bounds right_bounds = bounds;
    right_bounds[best_col].first = absolute_edge;

    const int left = BuildNode(std::move(left_rows), left_bounds, depth + 1);
    const int right =
        BuildNode(std::move(right_rows), right_bounds, depth + 1);
    Node& node = nodes_[static_cast<std::size_t>(index)];
    node.attribute = static_cast<int>(best_col);
    node.threshold = threshold;
    node.left = left;
    node.right = right;
    return index;
  }

  const data::Dataset& dataset_;
  const TrainingMode mode_;
  const TreeOptions options_;
  const perturb::Randomizer* randomizer_;
  engine::ThreadPool* pool_;
  const std::size_t num_classes_;
  std::vector<Partition> partitions_;
  std::vector<std::vector<std::uint16_t>> assigned_;  // [col][row]
  std::vector<Node> nodes_;
  std::vector<double> misclassified_;  // parallel to nodes_
};

}  // namespace

std::string TrainingModeName(TrainingMode mode) {
  switch (mode) {
    case TrainingMode::kOriginal:
      return "Original";
    case TrainingMode::kRandomized:
      return "Randomized";
    case TrainingMode::kGlobal:
      return "Global";
    case TrainingMode::kByClass:
      return "ByClass";
    case TrainingMode::kLocal:
      return "Local";
  }
  return "?";
}

bool ModeUsesReconstruction(TrainingMode mode) {
  return mode == TrainingMode::kGlobal || mode == TrainingMode::kByClass ||
         mode == TrainingMode::kLocal;
}

DecisionTree TrainDecisionTree(const data::Dataset& dataset,
                               TrainingMode mode, const TreeOptions& options,
                               const perturb::Randomizer* randomizer,
                               engine::ThreadPool* pool) {
  Builder builder(dataset, mode, options, randomizer, pool);
  return builder.Build();
}

}  // namespace ppdm::tree
