#include "tree/prune.h"

#include <cmath>

#include "common/check.h"

namespace ppdm::tree {
namespace {

// Pessimistic error *count* of an entire subtree, pruning as it goes.
double PruneSubtree(std::vector<Node>* nodes,
                    const std::vector<double>& misclassified, int index,
                    double z) {
  Node& node = (*nodes)[static_cast<std::size_t>(index)];
  const auto n = static_cast<double>(node.num_records);
  const double leaf_errors =
      n * PessimisticErrorRate(misclassified[static_cast<std::size_t>(index)],
                               n, z);
  if (node.IsLeaf()) return leaf_errors;

  const double subtree_errors =
      PruneSubtree(nodes, misclassified, node.left, z) +
      PruneSubtree(nodes, misclassified, node.right, z);
  if (leaf_errors <= subtree_errors + 1e-9) {
    node.left = Node::kNoChild;
    node.right = Node::kNoChild;
    node.attribute = -1;
    return leaf_errors;
  }
  return subtree_errors;
}

// Depth-first copy of the reachable nodes into a fresh array.
int Compact(const std::vector<Node>& nodes, int index,
            std::vector<Node>* out) {
  const int new_index = static_cast<int>(out->size());
  out->push_back(nodes[static_cast<std::size_t>(index)]);
  if (!nodes[static_cast<std::size_t>(index)].IsLeaf()) {
    const int left = Compact(nodes, nodes[static_cast<std::size_t>(index)].left,
                             out);
    const int right = Compact(
        nodes, nodes[static_cast<std::size_t>(index)].right, out);
    (*out)[static_cast<std::size_t>(new_index)].left = left;
    (*out)[static_cast<std::size_t>(new_index)].right = right;
  }
  return new_index;
}

}  // namespace

double PessimisticErrorRate(double errors, double n, double z) {
  PPDM_CHECK_GT(n, 0.0);
  PPDM_CHECK_GE(errors, 0.0);
  const double f = errors / n;
  const double z2 = z * z;
  const double numerator =
      f + z2 / (2.0 * n) +
      z * std::sqrt(f * (1.0 - f) / n + z2 / (4.0 * n * n));
  return numerator / (1.0 + z2 / n);
}

std::vector<Node> PruneNodes(std::vector<Node> nodes,
                             const std::vector<double>& misclassified,
                             double z) {
  PPDM_CHECK_EQ(nodes.size(), misclassified.size());
  PPDM_CHECK(!nodes.empty());
  PruneSubtree(&nodes, misclassified, 0, z);
  std::vector<Node> compacted;
  compacted.reserve(nodes.size());
  Compact(nodes, 0, &compacted);
  return compacted;
}

namespace {

// Holdout errors of each node if it were a leaf (node-majority label vs
// holdout labels of the records routed through it).
std::size_t RepPruneSubtree(std::vector<Node>* nodes,
                            const std::vector<std::size_t>& as_leaf_errors,
                            int index) {
  Node& node = (*nodes)[static_cast<std::size_t>(index)];
  const std::size_t leaf_errors =
      as_leaf_errors[static_cast<std::size_t>(index)];
  if (node.IsLeaf()) return leaf_errors;
  const std::size_t subtree_errors =
      RepPruneSubtree(nodes, as_leaf_errors, node.left) +
      RepPruneSubtree(nodes, as_leaf_errors, node.right);
  if (leaf_errors <= subtree_errors) {
    node.left = Node::kNoChild;
    node.right = Node::kNoChild;
    node.attribute = -1;
    return leaf_errors;
  }
  return subtree_errors;
}

}  // namespace

std::vector<Node> ReducedErrorPrune(
    std::vector<Node> nodes, const std::vector<std::vector<double>>& records,
    const std::vector<int>& labels) {
  PPDM_CHECK(!nodes.empty());
  PPDM_CHECK_EQ(records.size(), labels.size());

  std::vector<std::size_t> as_leaf_errors(nodes.size(), 0);
  for (std::size_t i = 0; i < records.size(); ++i) {
    int at = 0;
    while (true) {
      const Node& node = nodes[static_cast<std::size_t>(at)];
      if (labels[i] != node.label) {
        ++as_leaf_errors[static_cast<std::size_t>(at)];
      }
      if (node.IsLeaf()) break;
      at = records[i][static_cast<std::size_t>(node.attribute)] <
                   node.threshold
               ? node.left
               : node.right;
    }
  }
  RepPruneSubtree(&nodes, as_leaf_errors, 0);
  std::vector<Node> compacted;
  compacted.reserve(nodes.size());
  Compact(nodes, 0, &compacted);
  return compacted;
}

}  // namespace ppdm::tree
