#include "tree/gini.h"

#include <algorithm>

#include "common/check.h"

namespace ppdm::tree {

double GiniImpurity(const std::vector<double>& class_counts) {
  // The boundary sweep updates counts by repeated subtraction, so values a
  // few ulps below zero are legitimate rounding; anything clearly negative
  // is a caller bug.
  constexpr double kRoundoff = 1e-6;
  double total = 0.0;
  for (double c : class_counts) {
    PPDM_CHECK_GE(c, -kRoundoff);
    total += std::max(c, 0.0);
  }
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (double c : class_counts) {
    const double f = std::max(c, 0.0) / total;
    sum_sq += f * f;
  }
  return 1.0 - sum_sq;
}

SplitCandidate BestBoundarySplit(
    const std::vector<std::vector<double>>& counts, double min_side_weight) {
  PPDM_CHECK(!counts.empty());
  const std::size_t num_classes = counts.size();
  const std::size_t num_intervals = counts[0].size();
  for (const auto& row : counts) PPDM_CHECK_EQ(row.size(), num_intervals);

  std::vector<double> totals(num_classes, 0.0);
  double grand_total = 0.0;
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (double v : counts[c]) totals[c] += v;
    grand_total += totals[c];
  }

  SplitCandidate best;
  if (grand_total <= 0.0 || num_intervals < 2) return best;
  const double parent_gini = GiniImpurity(totals);

  std::vector<double> left(num_classes, 0.0);
  std::vector<double> right = totals;
  double left_total = 0.0;
  // Sweep the boundary left to right, moving one interval's counts at a
  // time — O(K · classes) for the whole attribute.
  for (std::size_t edge = 1; edge < num_intervals; ++edge) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      left[c] += counts[c][edge - 1];
      right[c] -= counts[c][edge - 1];
      left_total += counts[c][edge - 1];
    }
    const double right_total = grand_total - left_total;
    if (left_total < min_side_weight || right_total < min_side_weight) {
      continue;
    }
    const double weighted = (left_total / grand_total) * GiniImpurity(left) +
                            (right_total / grand_total) * GiniImpurity(right);
    const double gain = parent_gini - weighted;
    if (!best.valid || gain > best.gain) {
      best.valid = true;
      best.edge = edge;
      best.gain = gain;
      best.left_weight = left_total;
      best.right_weight = right_total;
    }
  }
  return best;
}

}  // namespace ppdm::tree
