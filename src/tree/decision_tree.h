// Decision-tree model: binary splits on attribute thresholds, majority
// leaves. The tree is stored as an index-linked node array (no pointer
// chasing, trivially copyable).

#ifndef PPDM_TREE_DECISION_TREE_H_
#define PPDM_TREE_DECISION_TREE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/schema.h"

namespace ppdm::tree {

/// One node of a decision tree. Leaves have left == right == kNoChild.
struct Node {
  static constexpr int kNoChild = -1;

  int attribute = -1;      ///< Split attribute (internal nodes only).
  double threshold = 0.0;  ///< Records with value < threshold go left.
  int left = kNoChild;
  int right = kNoChild;
  int label = -1;          ///< Majority class (valid at every node).
  std::size_t num_records = 0;  ///< Training records that reached the node.

  bool IsLeaf() const { return left == kNoChild; }
};

/// An immutable trained tree.
class DecisionTree {
 public:
  /// Builds a tree from nodes produced by a builder; node 0 is the root.
  explicit DecisionTree(std::vector<Node> nodes);

  /// Predicted class label for a record laid out per the training schema.
  int Predict(const std::vector<double>& record) const;

  std::size_t NumNodes() const { return nodes_.size(); }
  std::size_t NumLeaves() const;
  std::size_t Depth() const;
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Multi-line human-readable rendering (attribute names from `schema`).
  std::string Describe(const data::Schema& schema) const;

 private:
  std::size_t DepthFrom(int node) const;
  void DescribeFrom(int node, int indent, const data::Schema& schema,
                    std::string* out) const;

  std::vector<Node> nodes_;
};

}  // namespace ppdm::tree

#endif  // PPDM_TREE_DECISION_TREE_H_
