// Gini impurity and interval-boundary split search shared by every
// training mode. Counts may be fractional: the Local algorithm evaluates
// splits on expected per-interval class counts taken straight from the
// reconstructed distributions.

#ifndef PPDM_TREE_GINI_H_
#define PPDM_TREE_GINI_H_

#include <cstddef>
#include <vector>

namespace ppdm::tree {

/// Gini impurity 1 − Σ_c (n_c / n)² of a class-count vector; 0 when empty.
double GiniImpurity(const std::vector<double>& class_counts);

/// Result of scanning one attribute for its best interval-boundary split.
struct SplitCandidate {
  bool valid = false;      ///< False when no boundary separates the records.
  std::size_t edge = 0;    ///< Intervals [0, edge) go left, [edge, K) right.
  double gain = 0.0;       ///< Gini(node) − weighted Gini(children).
  double left_weight = 0.0;
  double right_weight = 0.0;
};

/// Scans all interior boundaries of a `counts[class][interval]` table and
/// returns the boundary with the highest gini gain. Boundaries that leave
/// either side with weight below `min_side_weight` are skipped.
SplitCandidate BestBoundarySplit(
    const std::vector<std::vector<double>>& counts, double min_side_weight);

}  // namespace ppdm::tree

#endif  // PPDM_TREE_GINI_H_
