#include "tree/decision_tree.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace ppdm::tree {

DecisionTree::DecisionTree(std::vector<Node> nodes)
    : nodes_(std::move(nodes)) {
  PPDM_CHECK(!nodes_.empty());
  for (const Node& node : nodes_) {
    if (!node.IsLeaf()) {
      PPDM_CHECK(node.left >= 0 &&
                 node.left < static_cast<int>(nodes_.size()));
      PPDM_CHECK(node.right >= 0 &&
                 node.right < static_cast<int>(nodes_.size()));
      PPDM_CHECK_GE(node.attribute, 0);
    }
    PPDM_CHECK_GE(node.label, 0);
  }
}

int DecisionTree::Predict(const std::vector<double>& record) const {
  int at = 0;
  while (!nodes_[static_cast<std::size_t>(at)].IsLeaf()) {
    const Node& node = nodes_[static_cast<std::size_t>(at)];
    PPDM_CHECK_LT(static_cast<std::size_t>(node.attribute), record.size());
    at = record[static_cast<std::size_t>(node.attribute)] < node.threshold
             ? node.left
             : node.right;
  }
  return nodes_[static_cast<std::size_t>(at)].label;
}

std::size_t DecisionTree::NumLeaves() const {
  std::size_t leaves = 0;
  for (const Node& node : nodes_) {
    if (node.IsLeaf()) ++leaves;
  }
  return leaves;
}

std::size_t DecisionTree::Depth() const { return DepthFrom(0); }

std::size_t DecisionTree::DepthFrom(int node) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.IsLeaf()) return 1;
  return 1 + std::max(DepthFrom(n.left), DepthFrom(n.right));
}

std::string DecisionTree::Describe(const data::Schema& schema) const {
  std::string out;
  DescribeFrom(0, 0, schema, &out);
  return out;
}

void DecisionTree::DescribeFrom(int node, int indent,
                                const data::Schema& schema,
                                std::string* out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
  if (n.IsLeaf()) {
    out->append(StrFormat("-> class %d  (n=%zu)\n", n.label, n.num_records));
    return;
  }
  out->append(StrFormat("%s < %.6g  (n=%zu)\n",
                        schema.Field(static_cast<std::size_t>(n.attribute))
                            .name.c_str(),
                        n.threshold, n.num_records));
  DescribeFrom(n.left, indent + 1, schema, out);
  out->append(static_cast<std::size_t>(indent) * 2, ' ');
  out->append("else\n");
  DescribeFrom(n.right, indent + 1, schema, out);
}

}  // namespace ppdm::tree
