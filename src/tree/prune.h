// C4.5-style pessimistic error pruning.
//
// The paper's tree ("similar to SPRINT") grows deep and prunes afterwards.
// Growing deep matters doubly under randomization: greedy induction over
// noisy interval assignments frequently lands in XOR-shaped nodes where no
// single split shows gain, and only growing through them and pruning back
// recovers the structure. Pruning uses Quinlan's upper confidence bound of
// the binomial training error, so no holdout is needed.

#ifndef PPDM_TREE_PRUNE_H_
#define PPDM_TREE_PRUNE_H_

#include <vector>

#include "tree/decision_tree.h"

namespace ppdm::tree {

/// Upper bound of the binomial error rate at `errors` mistakes out of `n`,
/// with the normal-approximation z of C4.5 (z = 0.6745 is CF = 25%).
double PessimisticErrorRate(double errors, double n, double z);

/// Bottom-up pessimistic pruning of a node array produced by the builder:
/// a subtree is replaced by a leaf when the leaf's pessimistic error does
/// not exceed the subtree's. Returns a compacted node array (unreachable
/// nodes dropped, root at index 0).
///
/// `misclassified[i]` is the number of training records at node i whose
/// label differs from the node's majority label.
std::vector<Node> PruneNodes(std::vector<Node> nodes,
                             const std::vector<double>& misclassified,
                             double z);

/// Reduced-error pruning against holdout records: a subtree becomes a leaf
/// when predicting the node's majority label misclassifies no more holdout
/// records than the subtree does. Ties prune (Occam). This is the pruning
/// that matters under randomization: perturbation noise is independent
/// across records, so structure fitted to the training records' noise shows
/// no benefit on held-out records and is removed, while pessimistic pruning
/// of the training error cannot see it.
///
/// `records[i]` are the attribute values used to route holdout record i
/// (true, perturbed, or assignment-denoised values, matching how the tree
/// was trained); `labels[i]` is its class.
std::vector<Node> ReducedErrorPrune(
    std::vector<Node> nodes, const std::vector<std::vector<double>>& records,
    const std::vector<int>& labels);

}  // namespace ppdm::tree

#endif  // PPDM_TREE_PRUNE_H_
