// Decision-tree induction over randomized data — paper §5.
//
// Five training modes share one gini/interval split engine and differ only
// in how records are associated with intervals:
//
//   kOriginal    true values (upper baseline; no privacy).
//   kRandomized  perturbed values used as if they were true (lower
//                baseline; no reconstruction).
//   kGlobal      reconstruct each attribute once over all classes, then
//                associate records by order statistics.
//   kByClass     reconstruct each attribute per class at the root, then
//                associate each class's records by order statistics.
//   kLocal       like ByClass, but reconstruction is repeated at every
//                tree node from the records in that node.

#ifndef PPDM_TREE_TRAINER_H_
#define PPDM_TREE_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "engine/thread_pool.h"
#include "perturb/randomizer.h"
#include "reconstruct/reconstructor.h"
#include "tree/decision_tree.h"

namespace ppdm::tree {

/// Which of the paper's algorithms to train with.
enum class TrainingMode { kOriginal, kRandomized, kGlobal, kByClass, kLocal };

/// "Original" / "Randomized" / "Global" / "ByClass" / "Local".
std::string TrainingModeName(TrainingMode mode);

/// True iff the mode runs distribution reconstruction.
bool ModeUsesReconstruction(TrainingMode mode);

/// Post-growth pruning strategy.
enum class PruningMode {
  kNone,
  /// C4.5 pessimistic bound on the training error. Cheap, but blind to
  /// noise-fitting: splits that fit perturbation noise genuinely reduce
  /// training error.
  kPessimistic,
  /// Reduced-error pruning against a held-out slice of the training
  /// records (the default). Perturbation noise is independent across
  /// records, so noise-fitted structure shows no holdout benefit and is
  /// removed — the pruning that actually matters under randomization.
  kReducedError,
};

/// Induction parameters. The defaults follow the grow-deep-then-prune
/// recipe of the paper's SPRINT-style classifier. Growing through weak
/// splits matters doubly under randomization — greedy induction over noisy
/// interval assignments often must pass an apparently gain-free
/// (XOR-shaped) node to reach real structure below it.
struct TreeOptions {
  /// Intervals per attribute: reconstruction resolution and the candidate
  /// split boundaries.
  std::size_t intervals = 30;

  /// Maximum tree depth (root has depth 1).
  std::size_t max_depth = 14;

  /// Do not split nodes with fewer records than this.
  std::size_t min_records_to_split = 20;

  /// Each side of a split must keep at least this many records.
  double min_leaf_records = 10.0;

  /// Minimum gini gain for a split to be accepted while growing.
  double min_gain = 1e-5;

  /// Post-growth pruning strategy.
  PruningMode pruning = PruningMode::kReducedError;

  /// z of the pessimistic error bound; 0.6745 is C4.5's CF = 25%.
  double pruning_z = 0.6745;

  /// Fraction of training records held out for reduced-error pruning.
  double holdout_fraction = 0.25;

  /// Seed of the deterministic holdout selection.
  std::uint64_t holdout_seed = 0xC0FFEEULL;

  /// Local only: nodes with fewer records than this reuse the root's
  /// ByClass interval assignments instead of re-reconstructing. Per-node
  /// EM on small samples is unstable, and re-dealing records at every
  /// level compounds rank noise; freezing small nodes keeps Local's
  /// deep structure as reliable as ByClass's.
  std::size_t local_min_records_to_reconstruct = 1500;

  /// Reconstruction tuning (Global / ByClass / Local only).
  reconstruct::ReconstructionOptions reconstruction;
};

/// Trains a decision tree.
///
/// `dataset` is the original data for kOriginal and the *perturbed* data
/// for every other mode. `randomizer` supplies the per-attribute noise
/// models and is required exactly for the reconstruction modes.
///
/// `pool` parallelizes the root-time per-attribute reconstruction fan-out
/// (the dominant cost of the reconstruction modes) and, for kLocal, the
/// per-node split search: every node large enough to re-reconstruct fans
/// its per-attribute counts tables out too. Each unit of work is
/// independent and internally sequential, so the trained tree is
/// bit-identical for every pool size (nullptr = inline).
DecisionTree TrainDecisionTree(const data::Dataset& dataset,
                               TrainingMode mode, const TreeOptions& options,
                               const perturb::Randomizer* randomizer =
                                   nullptr,
                               engine::ThreadPool* pool = nullptr);

}  // namespace ppdm::tree

#endif  // PPDM_TREE_TRAINER_H_
