// Dispatch state plus the scalar lane-blocked reference kernels. This
// translation unit is compiled with -ffp-contract=off (see CMakeLists.txt)
// so no mul+add here can be fused into an FMA the AVX2 path doesn't do —
// the two paths must stay byte-identical.

#include "engine/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "obs/metrics.h"

namespace ppdm::engine::simd {
namespace {

constexpr int kUnresolved = -1;

// The resolved path, shared process-wide. Lazy: first ActivePath() wins
// the race (both racers compute the same value, so the CAS is benign).
std::atomic<int> g_path{kUnresolved};

// ppdm_simd_path{path="..."} — an info gauge: 1 on the active path's
// label, 0 on the others, so a scrape names the dispatched kernels.
void PublishPathGauge(Path active) {
  static constexpr Path kAll[] = {Path::kOff, Path::kScalar, Path::kAvx2};
  for (Path p : kAll) {
    obs::MetricsRegistry::Global()
        .GetGauge("ppdm_simd_path",
                  std::string("path=\"") + PathName(p) + "\"")
        ->Set(p == active ? 1 : 0);
  }
}

void Publish(Path path) {
  g_path.store(static_cast<int>(path), std::memory_order_relaxed);
  PublishPathGauge(path);
}

Path DefaultPath() { return Avx2Supported() ? Path::kAvx2 : Path::kScalar; }

// Lenient env resolution for library users that never call InitFromEnv():
// a bad value or an unsupported avx2 request warns once and falls back.
Path ResolveLazily() {
  const char* env = std::getenv("PPDM_SIMD");
  if (env == nullptr) return DefaultPath();
  const std::string name(env);
  if (name == "off") return Path::kOff;
  if (name == "scalar") return Path::kScalar;
  if (name == "avx2") {
    if (Avx2Supported()) return Path::kAvx2;
    std::fprintf(stderr,
                 "ppdm: PPDM_SIMD=avx2 but AVX2 is unavailable; "
                 "using scalar\n");
    return Path::kScalar;
  }
  std::fprintf(stderr,
               "ppdm: PPDM_SIMD='%s' is not off|scalar|avx2; using the "
               "default path\n",
               env);
  return DefaultPath();
}

}  // namespace

const char* PathName(Path path) {
  switch (path) {
    case Path::kOff:
      return "off";
    case Path::kScalar:
      return "scalar";
    case Path::kAvx2:
      return "avx2";
  }
  return "?";
}

bool Avx2Supported() {
  if (!internal::Avx2Compiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Path ActivePath() {
  const int raw = g_path.load(std::memory_order_relaxed);
  if (raw != kUnresolved) return static_cast<Path>(raw);
  const Path resolved = ResolveLazily();
  int expected = kUnresolved;
  if (g_path.compare_exchange_strong(expected, static_cast<int>(resolved),
                                     std::memory_order_relaxed)) {
    PublishPathGauge(resolved);
    return resolved;
  }
  return static_cast<Path>(expected);
}

Status SetPath(Path path) {
  if (path == Path::kAvx2 && !Avx2Supported()) {
    return Status::InvalidArgument(
        internal::Avx2Compiled()
            ? "simd path 'avx2' requested but this CPU lacks AVX2"
            : "simd path 'avx2' requested but this build carries no AVX2 "
              "code");
  }
  Publish(path);
  return Status::Ok();
}

Status SetPathFromString(const std::string& name) {
  if (name == "off") return SetPath(Path::kOff);
  if (name == "scalar") return SetPath(Path::kScalar);
  if (name == "avx2") return SetPath(Path::kAvx2);
  return Status::InvalidArgument("simd path '" + name +
                                 "' is not off|scalar|avx2");
}

Status InitFromEnv() {
  const char* env = std::getenv("PPDM_SIMD");
  if (env == nullptr) {
    Publish(DefaultPath());
    return Status::Ok();
  }
  return SetPathFromString(env);
}

double Dot(const double* a, const double* b, std::size_t n, Path path) {
  return path == Path::kAvx2 ? internal::DotAvx2(a, b, n)
                             : internal::DotScalar(a, b, n);
}

void ScaleAdd(double* acc, const double* a, const double* b, double scale,
              std::size_t n, Path path) {
  if (path == Path::kAvx2) {
    internal::ScaleAddAvx2(acc, a, b, scale, n);
  } else {
    internal::ScaleAddScalar(acc, a, b, scale, n);
  }
}

void UniformCdfShift(const double* mids, std::size_t n, double shift,
                     double alpha, double* out) {
  if (ActivePath() == Path::kAvx2) {
    internal::UniformCdfShiftAvx2(mids, n, shift, alpha, out);
  } else {
    internal::UniformCdfShiftScalar(mids, n, shift, alpha, out);
  }
}

void Sub(const double* a, const double* b, std::size_t n, double* out) {
  if (ActivePath() == Path::kAvx2) {
    internal::SubAvx2(a, b, n, out);
  } else {
    internal::SubScalar(a, b, n, out);
  }
}

void BinIndices(const double* values, std::size_t n, double lo, double hi,
                double width, std::size_t bins, std::uint32_t* out) {
  if (ActivePath() == Path::kAvx2) {
    internal::BinIndicesAvx2(values, n, lo, hi, width, bins, out);
  } else {
    internal::BinIndicesScalar(values, n, lo, hi, width, bins, out);
  }
}

namespace internal {

double DotScalar(const double* a, const double* b, std::size_t n) {
  PPDM_CHECK_EQ(n % kLanes, 0u);
  // Four independent accumulators, lane l summing indices ≡ l (mod 4) in
  // ascending order — exactly what one AVX2 vector accumulator does per
  // lane. The reduction tree (l0+l1)+(l2+l3) matches the vector path's
  // horizontal reduce.
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  for (std::size_t i = 0; i < n; i += kLanes) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  return (l0 + l1) + (l2 + l3);
}

void ScaleAddScalar(double* acc, const double* a, const double* b,
                    double scale, std::size_t n) {
  PPDM_CHECK_EQ(n % kLanes, 0u);
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += (scale * a[i]) * b[i];
  }
}

void UniformCdfShiftScalar(const double* mids, std::size_t n, double shift,
                           double alpha, double* out) {
  const double two_alpha = 2.0 * alpha;
  for (std::size_t i = 0; i < n; ++i) {
    const double y = shift - mids[i];
    double t = (y + alpha) / two_alpha;
    if (y <= -alpha) t = 0.0;
    if (y >= alpha) t = 1.0;
    out[i] = t;
  }
}

void SubScalar(const double* a, const double* b, std::size_t n,
               double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void BinIndicesScalar(const double* values, std::size_t n, double lo,
                      double hi, double width, std::size_t bins,
                      std::uint32_t* out) {
  const std::uint32_t last = static_cast<std::uint32_t>(bins - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = values[i];
    if (v <= lo) {
      out[i] = 0;
    } else if (v >= hi) {
      out[i] = last;
    } else {
      const auto b = static_cast<std::uint32_t>((v - lo) / width);
      out[i] = b < last ? b : last;
    }
  }
}

}  // namespace internal
}  // namespace ppdm::engine::simd
