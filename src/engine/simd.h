// Runtime-dispatched SIMD kernels for the EM / ingest hot loops.
//
// Three code paths, selectable per process:
//
//   kOff    — the pre-SIMD sequential loops (left in the callers); kept as
//             an escape hatch that reproduces the historical accumulation
//             order bit for bit.
//   kScalar — lane-blocked scalar kernels: fixed-width 4-lane blocked
//             accumulation with a deterministic reduction tree. This is
//             the bit-exact reference the vector path is tested against.
//   kAvx2   — the same lane decomposition executed with AVX2 intrinsics.
//             Each vector lane runs the identical sequence of IEEE-754
//             operations as the matching scalar lane, and the horizontal
//             reduction uses the same fixed tree, so kScalar and kAvx2
//             produce byte-identical results (property-tested at
//             0/1/2/8 threads in tests/reconstruct_test.cc).
//
// Both simd.cc and simd_avx2.cc are compiled with -ffp-contract=off so the
// compiler can never fuse a mul+add into an FMA in one path but not the
// other. The default path is kAvx2 when the build and the CPU support it,
// else kScalar; PPDM_SIMD=off|scalar|avx2 (env) or --simd (CLI) force one.

#ifndef PPDM_ENGINE_SIMD_H_
#define PPDM_ENGINE_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <string>
#include <utility>

#include "common/status.h"

namespace ppdm::engine::simd {

/// Dispatchable code path for the blocked kernels.
enum class Path {
  kOff,     ///< historical sequential loops (no lane blocking)
  kScalar,  ///< lane-blocked scalar — the bit-exact reference
  kAvx2,    ///< lane-blocked AVX2 — byte-identical to kScalar
};

/// Doubles per lane block (one AVX2 vector). Kernel rows are padded to a
/// multiple of this so the blocked loops never need a remainder tail.
inline constexpr std::size_t kLanes = 4;

/// `n` rounded up to the next multiple of kLanes.
inline std::size_t PadLanes(std::size_t n) {
  return (n + kLanes - 1) / kLanes * kLanes;
}

/// "off" / "scalar" / "avx2".
const char* PathName(Path path);

/// True when this binary carries AVX2 code *and* the CPU executes it.
bool Avx2Supported();

/// The active path. Resolved once, lazily: PPDM_SIMD if set (an invalid
/// value warns on stderr and is ignored), else kAvx2 when supported, else
/// kScalar. Thread-safe; also refreshes the ppdm_simd_path info gauge.
Path ActivePath();

/// Forces a path (tests, benches, the --simd flag). Returns
/// InvalidArgument when `path` is kAvx2 on a build/CPU without AVX2.
Status SetPath(Path path);

/// Parses "off"/"scalar"/"avx2" and forces that path.
Status SetPathFromString(const std::string& name);

/// Explicit PPDM_SIMD resolution with a hard error for bad values — the
/// CLI entry point calls this so a typo fails loudly instead of silently
/// running the default path. Library users may skip it; ActivePath()'s
/// lazy resolve then applies the lenient rules above.
Status InitFromEnv();

// ------------------------------------------------------------ the kernels
//
// Every kernel takes the target `path` explicitly (resolve ActivePath()
// once outside the hot loop). Passing kOff is a programmer error — the
// off path keeps its historical loops in the caller.

/// Lane-blocked dot product Σ a[i]·b[i] over `n` entries; `n` must be a
/// multiple of kLanes (pad with zeros — +0.0 contributions are exact).
double Dot(const double* a, const double* b, std::size_t n, Path path);

/// acc[i] += (scale · a[i]) · b[i] for i in [0, n); n a multiple of
/// kLanes. Elementwise, so lane order is the only contract — both paths
/// evaluate (scale·a)·b in that association.
void ScaleAdd(double* acc, const double* a, const double* b, double scale,
              std::size_t n, Path path);

/// out[i] = UniformCdf(shift − mids[i]) for noise U[−alpha, +alpha]:
///   y ≤ −alpha → 0,  y ≥ alpha → 1,  else (y + alpha) / (2·alpha),
/// evaluated exactly as perturb::NoiseModel::Cdf does, elementwise over
/// `n` entries (any n — the vector path handles the tail scalarly, which
/// is exact because the op is elementwise).
void UniformCdfShift(const double* mids, std::size_t n, double shift,
                     double alpha, double* out);

/// out[i] = a[i] − b[i], elementwise (exact in any path).
void Sub(const double* a, const double* b, std::size_t n, double* out);

/// Equi-width clamped bin index per value, the exact integer function
/// stats::Histogram::BinOf computes:
///   v ≤ lo → 0,  v ≥ hi → bins−1,  else min(⌊(v−lo)/width⌋, bins−1).
/// `width` must be the histogram's stored width (not recomputed), `bins`
/// must fit an int32. Scalar and AVX2 paths produce identical indices.
void BinIndices(const double* values, std::size_t n, double lo, double hi,
                double width, std::size_t bins, std::uint32_t* out);

namespace internal {

// Scalar lane-blocked reference implementations (simd.cc).
double DotScalar(const double* a, const double* b, std::size_t n);
void ScaleAddScalar(double* acc, const double* a, const double* b,
                    double scale, std::size_t n);
void UniformCdfShiftScalar(const double* mids, std::size_t n, double shift,
                           double alpha, double* out);
void SubScalar(const double* a, const double* b, std::size_t n, double* out);
void BinIndicesScalar(const double* values, std::size_t n, double lo,
                      double hi, double width, std::size_t bins,
                      std::uint32_t* out);

// AVX2 implementations (simd_avx2.cc; forward to the scalar reference
// when the translation unit was built without AVX2 support).
bool Avx2Compiled();
double DotAvx2(const double* a, const double* b, std::size_t n);
void ScaleAddAvx2(double* acc, const double* a, const double* b,
                  double scale, std::size_t n);
void UniformCdfShiftAvx2(const double* mids, std::size_t n, double shift,
                         double alpha, double* out);
void SubAvx2(const double* a, const double* b, std::size_t n, double* out);
void BinIndicesAvx2(const double* values, std::size_t n, double lo,
                    double hi, double width, std::size_t bins,
                    std::uint32_t* out);

}  // namespace internal

/// Cache-line-aligned, zero-initialized double buffer — the per-chunk
/// E-step accumulators use one 64-byte-aligned slice per chunk so pool
/// threads never write into each other's cache lines (no false sharing).
class AlignedDoubles {
 public:
  AlignedDoubles() = default;
  explicit AlignedDoubles(std::size_t n) : size_(n) {
    if (n == 0) return;
    data_ = static_cast<double*>(
        ::operator new[](n * sizeof(double), std::align_val_t(64)));
    for (std::size_t i = 0; i < n; ++i) data_[i] = 0.0;
  }
  ~AlignedDoubles() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t(64));
    }
  }

  AlignedDoubles(AlignedDoubles&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        data_(std::exchange(other.data_, nullptr)) {}
  AlignedDoubles& operator=(AlignedDoubles&& other) noexcept {
    if (this != &other) {
      this->~AlignedDoubles();
      size_ = std::exchange(other.size_, 0);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }
  AlignedDoubles(const AlignedDoubles&) = delete;
  AlignedDoubles& operator=(const AlignedDoubles&) = delete;

  double* data() { return data_; }
  const double* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_ = 0;
  double* data_ = nullptr;
};

}  // namespace ppdm::engine::simd

#endif  // PPDM_ENGINE_SIMD_H_
