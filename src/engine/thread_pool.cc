#include "engine/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdm::engine {
namespace {

thread_local bool t_on_worker_thread = false;

// Engine-primitive nesting depth on this thread. Only the outermost
// ParallelFor of a request records an "engine.parallel_for" span —
// nested chunk loops (EM iterations fanning out from inside a shard or a
// job) would flood the trace ring without adding tree structure.
thread_local int t_engine_trace_depth = 0;

struct EngineTraceDepth {
  EngineTraceDepth() { ++t_engine_trace_depth; }
  ~EngineTraceDepth() { --t_engine_trace_depth; }
};

// Pool telemetry (process-wide across pools: this build runs one serving
// pool; a second pool's traffic aggregates into the same family).
// Per-task cost is two relaxed atomic ops — tasks are coarse (one chunk
// of a fan-out or one service job), so this never shows on a profile.
obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& gauge =
      *obs::MetricsRegistry::Global().GetGauge("ppdm_engine_queue_depth");
  return gauge;
}

obs::Counter& TasksCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_engine_tasks_total");
  return counter;
}

// Wall time of one ParallelFor fan-out (pool path only; inline runs are
// the caller's own time and would double-count nested primitives).
obs::Histogram& FanOutHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_engine_parallel_for_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PPDM_CHECK(task != nullptr);
  {
    std::lock_guard<std::mutex> lock(mu_);
    PPDM_CHECK_MSG(!stop_, "Submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
  }
  TasksCounter().Increment();
  QueueDepthGauge().Add(1);
  cv_.notify_one();
}

bool ThreadPool::OnWorkerThread() { return t_on_worker_thread; }

void ThreadPool::WorkerLoop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Add(-1);
    task();
  }
}

void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The span covers inline runs too (a service job's fan-out runs inline
  // on its worker — it still belongs in the request's tree); the fan-out
  // *histogram* below stays pool-path-only, as before.
  std::optional<obs::ScopedSpan> fan_out_span;
  if (t_engine_trace_depth == 0) {
    fan_out_span.emplace("engine.parallel_for");
  }
  EngineTraceDepth depth_guard;
  if (pool == nullptr || pool->size() == 0 || n == 1 ||
      ThreadPool::OnWorkerThread()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared completion state. Kept on the heap so stray queued helper tasks
  // that wake after the call returned only touch refcounted memory.
  struct State {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first fn exception, guarded by mu
  };
  auto state = std::make_shared<State>();

  // Helpers (and the caller) claim indices until the space is exhausted.
  // `fn` is only dereferenced for claimed indices, all of which are counted
  // done (success or throw) before ParallelFor returns, so capturing it by
  // pointer is safe: the caller cannot unwind while any thread still holds
  // it. A throwing fn poisons the run — remaining indices are abandoned,
  // every claimed index is still accounted for, and the first exception
  // rethrows on the caller after the barrier.
  const auto* fn_ptr = &fn;
  // Helpers adopt the caller's context (with the fan-out span above as
  // the current span), so spans opened inside shards on other threads
  // still attach to this request's tree.
  const obs::TraceContext trace = obs::TraceContext::Current();
  auto work = [state, fn_ptr, n, trace] {
    obs::ScopedTraceContext adopt(trace);
    EngineTraceDepth depth_guard;
    for (;;) {
      const std::size_t i = state->next.fetch_add(1);
      if (i >= n) break;
      try {
        (*fn_ptr)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (state->error == nullptr) state->error = std::current_exception();
        // Stop claiming further indices; count the abandoned ones so the
        // barrier still releases. fetch_add past n leaves next >= n.
        const std::size_t claimed = state->next.exchange(n);
        const std::size_t abandoned = claimed < n ? n - claimed : 0;
        if (state->done.fetch_add(abandoned + 1) + abandoned + 1 == n) {
          state->cv.notify_all();
        }
        break;
      }
      if (state->done.fetch_add(1) + 1 == n) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->cv.notify_all();
      }
    }
  };

  obs::ScopedTimer fan_out_timer(&FanOutHistogram());
  const std::size_t helpers = std::min(pool->size(), n - 1);
  for (std::size_t h = 0; h < helpers; ++h) pool->Submit(work);
  work();  // caller participates — guarantees forward progress

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done.load() >= n; });
  if (state->error != nullptr) std::rethrow_exception(state->error);
}

std::vector<ChunkRange> MakeChunks(std::size_t n, std::size_t chunk_size) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  if (chunk_size == 0) chunk_size = n;
  chunks.reserve((n + chunk_size - 1) / chunk_size);
  for (std::size_t begin = 0; begin < n; begin += chunk_size) {
    chunks.push_back(ChunkRange{begin, std::min(begin + chunk_size, n)});
  }
  return chunks;
}

}  // namespace ppdm::engine
