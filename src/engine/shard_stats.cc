#include "engine/shard_stats.h"

#include <algorithm>

#include "common/check.h"
#include "engine/simd.h"

namespace ppdm::engine {

ShardStats::ShardStats(std::size_t num_bins, std::size_t num_classes)
    : num_bins_(num_bins),
      num_classes_(num_classes),
      counts_(num_bins * num_classes, 0) {
  PPDM_CHECK_GT(num_bins, 0u);
  PPDM_CHECK_GT(num_classes, 0u);
}

ShardStats ShardStats::FromCounts(std::size_t num_bins,
                                  std::size_t num_classes,
                                  std::uint64_t record_count,
                                  std::vector<std::uint64_t> counts) {
  PPDM_CHECK_GT(num_bins, 0u);
  PPDM_CHECK_GT(num_classes, 0u);
  PPDM_CHECK_EQ(counts.size(), num_bins * num_classes);
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  PPDM_CHECK_EQ(total, record_count);
  ShardStats stats;
  stats.num_bins_ = num_bins;
  stats.num_classes_ = num_classes;
  stats.record_count_ = record_count;
  stats.counts_ = std::move(counts);
  return stats;
}

void ShardStats::Add(std::size_t bin, std::size_t klass) {
  PPDM_CHECK_LT(bin, num_bins_);
  PPDM_CHECK_LT(klass, num_classes_);
  ++counts_[klass * num_bins_ + bin];
  ++record_count_;
}

void ShardStats::MergeFrom(const ShardStats& other) {
  PPDM_CHECK_EQ(num_bins_, other.num_bins_);
  PPDM_CHECK_EQ(num_classes_, other.num_classes_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  record_count_ += other.record_count_;
}

std::uint64_t ShardStats::BinCount(std::size_t bin) const {
  PPDM_CHECK_LT(bin, num_bins_);
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < num_classes_; ++c) {
    total += counts_[c * num_bins_ + bin];
  }
  return total;
}

std::uint64_t ShardStats::ClassCount(std::size_t klass) const {
  PPDM_CHECK_LT(klass, num_classes_);
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < num_bins_; ++b) {
    total += counts_[klass * num_bins_ + b];
  }
  return total;
}

std::uint64_t ShardStats::BinClassCount(std::size_t bin,
                                        std::size_t klass) const {
  PPDM_CHECK_LT(bin, num_bins_);
  PPDM_CHECK_LT(klass, num_classes_);
  return counts_[klass * num_bins_ + bin];
}

std::vector<double> ShardStats::BinWeights() const {
  std::vector<double> weights(num_bins_, 0.0);
  for (std::size_t b = 0; b < num_bins_; ++b) {
    weights[b] = static_cast<double>(BinCount(b));
  }
  return weights;
}

std::vector<double> ShardStats::BinWeightsForClass(std::size_t klass) const {
  PPDM_CHECK_LT(klass, num_classes_);
  std::vector<double> weights(num_bins_, 0.0);
  for (std::size_t b = 0; b < num_bins_; ++b) {
    weights[b] = static_cast<double>(counts_[klass * num_bins_ + b]);
  }
  return weights;
}

ShardStats IngestSharded(const std::vector<double>& values,
                         const std::vector<int>* labels,
                         std::size_t num_classes,
                         const std::function<std::size_t(double)>& bin_of,
                         std::size_t num_bins, ThreadPool* pool,
                         std::size_t shard_size) {
  if (labels != nullptr) PPDM_CHECK_EQ(labels->size(), values.size());
  const std::vector<ChunkRange> shards = MakeChunks(values.size(), shard_size);
  ShardStats init(num_bins, num_classes);
  if (shards.empty()) return init;
  return ChunkedReduce<ShardStats>(
      pool, shards, std::move(init),
      [&](std::size_t /*shard*/, const ChunkRange& range) {
        ShardStats local(num_bins, num_classes);
        for (std::size_t i = range.begin; i < range.end; ++i) {
          const std::size_t klass =
              labels == nullptr ? 0 : static_cast<std::size_t>((*labels)[i]);
          local.Add(bin_of(values[i]), klass);
        }
        return local;
      },
      [](ShardStats* acc, const ShardStats& shard) { acc->MergeFrom(shard); });
}

ShardStats IngestBinnedColumn(const double* values, std::size_t count,
                              double lo, double hi, double width,
                              std::size_t num_bins, ThreadPool* pool,
                              std::size_t shard_size) {
  const std::vector<ChunkRange> shards = MakeChunks(count, shard_size);
  ShardStats init(num_bins, 1);
  if (shards.empty()) return init;
  // Bin a batch at a time so the index computation vectorizes; 256 values
  // keeps the index scratch inside one page and well inside L1.
  constexpr std::size_t kBatch = 256;
  return ChunkedReduce<ShardStats>(
      pool, shards, std::move(init),
      [&](std::size_t /*shard*/, const ChunkRange& range) {
        ShardStats local(num_bins, 1);
        std::uint32_t idx[kBatch];
        for (std::size_t i = range.begin; i < range.end; i += kBatch) {
          const std::size_t n = std::min(kBatch, range.end - i);
          simd::BinIndices(values + i, n, lo, hi, width, num_bins, idx);
          for (std::size_t j = 0; j < n; ++j) {
            local.Add(idx[j], 0);
          }
        }
        return local;
      },
      [](ShardStats* acc, const ShardStats& shard) { acc->MergeFrom(shard); });
}

}  // namespace ppdm::engine
