// Fixed-size worker pool and the data-parallel primitives built on it.
//
// Design rules that every user of this header relies on:
//
//   * Work decomposition is fixed by the *grain* (chunk/shard size), never by
//     the number of threads. A caller that splits work into chunks of a fixed
//     size and merges per-chunk results in chunk-index order gets bit-identical
//     output for any pool size, including no pool at all — the property the
//     reconstruction engine's determinism tests pin down.
//   * ParallelFor blocks until every index has run. The calling thread
//     participates in the work, so the primitive cannot deadlock even when
//     all workers are busy with other jobs.
//   * ParallelFor called from inside a pool worker runs inline (no nested
//     fan-out); parallelism is applied at the outermost level only.

#ifndef PPDM_ENGINE_THREAD_POOL_H_
#define PPDM_ENGINE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppdm::engine {

/// A fixed set of worker threads draining one shared task queue. No work
/// stealing: tasks are coarse (one chunk of a ParallelFor), so a single
/// mutex-guarded deque is not a bottleneck at the scales this library runs.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 creates a pool that runs nothing (all
  /// primitives then execute inline on the caller).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one task. Used by ParallelFor; callers normally do not submit
  /// raw tasks themselves.
  void Submit(std::function<void()> task);

  /// True when the current thread is one of this process's pool workers.
  static bool OnWorkerThread();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Runs fn(0..n-1), distributing indices over the pool; blocks until all
/// have completed. Indices are claimed dynamically, so fn must not depend on
/// execution order — determinism comes from each index writing its own slot.
/// With a null/empty pool, or when already on a worker thread, runs inline.
void ParallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

/// Half-open index range of one chunk of a larger iteration space.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [0, n) into consecutive chunks of `chunk_size` (the last chunk may
/// be short). chunk_size == 0 means "one chunk spanning everything" — the
/// degenerate decomposition whose ordered merge reproduces a sequential
/// left-to-right accumulation bit for bit. n == 0 yields no chunks.
std::vector<ChunkRange> MakeChunks(std::size_t n, std::size_t chunk_size);

/// Chunked reduce: computes `map(chunk_index, range)` for every chunk (in
/// parallel over the pool) and folds the per-chunk results with
/// `fold(accumulator, chunk_result)` in ascending chunk order. The ordered
/// fold makes the result independent of the pool size for a fixed chunking.
template <typename T, typename Map, typename Fold>
T ChunkedReduce(ThreadPool* pool, const std::vector<ChunkRange>& chunks,
                T init, const Map& map, const Fold& fold) {
  std::vector<T> partials(chunks.size());
  ParallelFor(pool, chunks.size(),
              [&](std::size_t c) { partials[c] = map(c, chunks[c]); });
  T acc = std::move(init);
  for (std::size_t c = 0; c < partials.size(); ++c) {
    fold(&acc, partials[c]);
  }
  return acc;
}

}  // namespace ppdm::engine

#endif  // PPDM_ENGINE_THREAD_POOL_H_
