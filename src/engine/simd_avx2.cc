// AVX2 implementations of the lane-blocked kernels. Compiled with -mavx2
// -ffp-contract=off when the compiler supports it (CMake defines
// PPDM_SIMD_AVX2 for this file only); otherwise every entry point forwards
// to the scalar reference and Avx2Compiled() reports false, so the
// dispatcher never selects the vector path.
//
// Byte-identity contract with simd.cc: each vector lane executes the same
// sequence of IEEE-754 operations as the matching scalar lane, horizontal
// reductions use the same fixed tree, and no operation is fused. Never
// "optimize" one side without mirroring the other.

#include "engine/simd.h"

#include "common/check.h"

#if defined(PPDM_SIMD_AVX2)
#include <immintrin.h>
#endif

namespace ppdm::engine::simd::internal {

#if defined(PPDM_SIMD_AVX2)

bool Avx2Compiled() { return true; }

double DotAvx2(const double* a, const double* b, std::size_t n) {
  PPDM_CHECK_EQ(n % kLanes, 0u);
  __m256d acc = _mm256_setzero_pd();
  for (std::size_t i = 0; i < n; i += kLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  alignas(32) double lanes[kLanes];
  _mm256_store_pd(lanes, acc);
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

void ScaleAddAvx2(double* acc, const double* a, const double* b,
                  double scale, std::size_t n) {
  PPDM_CHECK_EQ(n % kLanes, 0u);
  const __m256d vs = _mm256_set1_pd(scale);
  for (std::size_t i = 0; i < n; i += kLanes) {
    const __m256d term = _mm256_mul_pd(
        _mm256_mul_pd(vs, _mm256_loadu_pd(a + i)), _mm256_loadu_pd(b + i));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), term));
  }
}

void UniformCdfShiftAvx2(const double* mids, std::size_t n, double shift,
                         double alpha, double* out) {
  const __m256d vshift = _mm256_set1_pd(shift);
  const __m256d valpha = _mm256_set1_pd(alpha);
  const __m256d vneg_alpha = _mm256_set1_pd(-alpha);
  const __m256d vtwo_alpha = _mm256_set1_pd(2.0 * alpha);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vone = _mm256_set1_pd(1.0);
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d y = _mm256_sub_pd(vshift, _mm256_loadu_pd(mids + i));
    __m256d t = _mm256_div_pd(_mm256_add_pd(y, valpha), vtwo_alpha);
    t = _mm256_blendv_pd(t, vzero, _mm256_cmp_pd(y, vneg_alpha, _CMP_LE_OQ));
    t = _mm256_blendv_pd(t, vone, _mm256_cmp_pd(y, valpha, _CMP_GE_OQ));
    _mm256_storeu_pd(out + i, t);
  }
  if (i < n) {
    // Elementwise op: the scalar tail is exact.
    UniformCdfShiftScalar(mids + i, n - i, shift, alpha, out + i);
  }
}

void SubAvx2(const double* a, const double* b, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    _mm256_storeu_pd(
        out + i,
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void BinIndicesAvx2(const double* values, std::size_t n, double lo,
                    double hi, double width, std::size_t bins,
                    std::uint32_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo);
  const __m256d vhi = _mm256_set1_pd(hi);
  const __m256d vwidth = _mm256_set1_pd(width);
  const __m256d vzero = _mm256_setzero_pd();
  const __m256d vlast = _mm256_set1_pd(static_cast<double>(bins - 1));
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // Clamp entirely in the double domain, then truncate: min(d, last)
    // followed by trunc equals min(trunc(d), last) for d >= 0, which is
    // exactly Histogram::BinOf's integer-domain clamp.
    __m256d d = _mm256_div_pd(_mm256_sub_pd(v, vlo), vwidth);
    d = _mm256_blendv_pd(d, vzero, _mm256_cmp_pd(v, vlo, _CMP_LE_OQ));
    d = _mm256_blendv_pd(d, vlast, _mm256_cmp_pd(v, vhi, _CMP_GE_OQ));
    d = _mm256_min_pd(d, vlast);
    const __m128i idx = _mm256_cvttpd_epi32(d);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), idx);
  }
  if (i < n) BinIndicesScalar(values + i, n - i, lo, hi, width, bins, out + i);
}

#else  // !PPDM_SIMD_AVX2

bool Avx2Compiled() { return false; }

double DotAvx2(const double* a, const double* b, std::size_t n) {
  return DotScalar(a, b, n);
}

void ScaleAddAvx2(double* acc, const double* a, const double* b,
                  double scale, std::size_t n) {
  ScaleAddScalar(acc, a, b, scale, n);
}

void UniformCdfShiftAvx2(const double* mids, std::size_t n, double shift,
                         double alpha, double* out) {
  UniformCdfShiftScalar(mids, n, shift, alpha, out);
}

void SubAvx2(const double* a, const double* b, std::size_t n, double* out) {
  SubScalar(a, b, n, out);
}

void BinIndicesAvx2(const double* values, std::size_t n, double lo,
                    double hi, double width, std::size_t bins,
                    std::uint32_t* out) {
  BinIndicesScalar(values, n, lo, hi, width, bins, out);
}

#endif  // PPDM_SIMD_AVX2

}  // namespace ppdm::engine::simd::internal
