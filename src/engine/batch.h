// Batched job API of the parallel execution engine — the server-side entry
// points that shard high-fanout aggregate work (millions of perturbed
// records in, one reconstruction out) over a thread pool.
//
// Determinism contract: every job's output depends only on its inputs and
// BatchOptions::shard_size, never on num_threads. Jobs decompose work at a
// fixed grain and merge per-shard results in shard order; see
// thread_pool.h for the underlying rules.

#ifndef PPDM_ENGINE_BATCH_H_
#define PPDM_ENGINE_BATCH_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "engine/shard_stats.h"
#include "engine/thread_pool.h"
#include "perturb/randomizer.h"
#include "reconstruct/by_class.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::engine {

/// Execution configuration of a batch job.
struct BatchOptions {
  /// Worker threads. 0 = run every job inline on the calling thread (the
  /// same sharded code paths, no pool); results are identical either way.
  std::size_t num_threads = 0;

  /// Records per ingestion/perturbation shard. Part of the deterministic
  /// decomposition: outputs depend on this value but not on num_threads.
  /// 0 = a single shard.
  std::size_t shard_size = 16384;
};

/// Owns the pool for a sequence of batch jobs. Construct once, reuse across
/// jobs — worker threads outlive individual calls.
class Batch {
 public:
  explicit Batch(const BatchOptions& options);

  const BatchOptions& options() const { return options_; }

  /// The pool jobs run on; nullptr when num_threads == 0.
  ThreadPool* pool() const { return pool_.get(); }

  /// Sharded ingestion of one labelled column into mergeable statistics
  /// (per-bin, per-class, and cross counts) over `num_bins` equal bins of
  /// [lo, hi] with histogram clamping at the edges.
  ShardStats IngestShards(const std::vector<double>& values,
                          const std::vector<int>& labels,
                          std::size_t num_classes, double lo, double hi,
                          std::size_t num_bins) const;

  /// Provider-side dataset perturbation with per-(attribute, shard) RNG
  /// streams derived via Rng::Fork(stream_index).
  data::Dataset PerturbShards(const perturb::Randomizer& randomizer,
                              const data::Dataset& dataset) const;

  /// Parallel EM reconstruction of one perturbed column: sharded binning
  /// plus chunked E-step. Bit-identical for every num_threads.
  reconstruct::Reconstruction ReconstructParallel(
      const std::vector<double>& perturbed,
      const reconstruct::Partition& partition,
      const reconstruct::BayesReconstructor& reconstructor) const;

  /// Per-class reconstruction fan-out (paper's ByClass): bit-identical to
  /// the sequential reconstruct::ReconstructByClass for every num_threads.
  std::vector<reconstruct::Reconstruction> ReconstructByClassParallel(
      const data::Dataset& perturbed, std::size_t col,
      const reconstruct::Partition& partition,
      const reconstruct::BayesReconstructor& reconstructor) const;

 private:
  BatchOptions options_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ppdm::engine

#endif  // PPDM_ENGINE_BATCH_H_
