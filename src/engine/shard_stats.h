// Mergeable per-shard sufficient statistics for the server-side aggregate
// workload: per-interval perturbed-value bin counts, per-class partial
// counts, and their cross table. Each ingestion shard accumulates its own
// ShardStats; merging the shards in ascending shard order reproduces the
// single-pass result exactly (counts are integers, so the merge is not just
// associative but bit-exact), which is what makes the parallel ingestion
// deterministic for every thread count.

#ifndef PPDM_ENGINE_SHARD_STATS_H_
#define PPDM_ENGINE_SHARD_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/thread_pool.h"

namespace ppdm::engine {

/// Binned sufficient statistics of one shard of perturbed observations.
class ShardStats {
 public:
  ShardStats() = default;

  /// Statistics over `num_bins` value bins and `num_classes` class labels
  /// (use num_classes = 1 when labels are ignored).
  ShardStats(std::size_t num_bins, std::size_t num_classes);

  std::size_t num_bins() const { return num_bins_; }
  std::size_t num_classes() const { return num_classes_; }
  std::uint64_t record_count() const { return record_count_; }

  /// Records one observation falling in `bin` with class `klass`.
  void Add(std::size_t bin, std::size_t klass);

  /// Accumulates another shard's statistics into this one. Shapes must
  /// match. Exact (integer addition): any merge order yields identical
  /// counts, and merging shards 0..S-1 equals single-pass ingestion.
  void MergeFrom(const ShardStats& other);

  /// Count of observations in `bin`, summed over classes.
  std::uint64_t BinCount(std::size_t bin) const;

  /// Count of observations with class `klass`, summed over bins.
  std::uint64_t ClassCount(std::size_t klass) const;

  /// Count of observations in `bin` with class `klass`.
  std::uint64_t BinClassCount(std::size_t bin, std::size_t klass) const;

  /// All-class bin counts as EM weights (doubles).
  std::vector<double> BinWeights() const;

  /// One class's bin counts as EM weights (doubles).
  std::vector<double> BinWeightsForClass(std::size_t klass) const;

  /// Heap bytes held by the counts table — the accounting unit for
  /// session memory budgets (per-session ApproxMemoryBytes sums these).
  /// Sized from size(), not capacity(): the table is allocated once at its
  /// final num_bins * num_classes shape, so size() is the real footprint,
  /// while capacity() could over-report by an allocator-dependent amount
  /// and make budget admission non-portable.
  std::size_t ApproxHeapBytes() const {
    return counts_.size() * sizeof(std::uint64_t);
  }

  /// The flattened counts table ([klass * num_bins + bin]) — what the
  /// store codec serializes. Snapshot + FromCounts round-trips a
  /// ShardStats bit for bit.
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Rebuilds a ShardStats from serialized fields. `counts` must be
  /// exactly num_bins * num_classes entries and `record_count` their sum;
  /// callers decoding untrusted bytes (the store codec) validate both and
  /// surface corruption as a Status before calling — violating them here
  /// is a programmer error (PPDM_CHECK).
  static ShardStats FromCounts(std::size_t num_bins, std::size_t num_classes,
                               std::uint64_t record_count,
                               std::vector<std::uint64_t> counts);

 private:
  std::size_t num_bins_ = 0;
  std::size_t num_classes_ = 0;
  std::uint64_t record_count_ = 0;
  /// Flattened [klass * num_bins_ + bin].
  std::vector<std::uint64_t> counts_;
};

/// Sharded ingestion of a value column: bins `values[i]` via `bin_of` and
/// labels it `labels[i]` (or class 0 when `labels` is null). Shards of
/// `shard_size` records are accumulated independently over the pool and
/// merged in shard order; the result is identical for every pool size and
/// equal to a single sequential pass. shard_size == 0 means one shard.
ShardStats IngestSharded(const std::vector<double>& values,
                         const std::vector<int>* labels,
                         std::size_t num_classes,
                         const std::function<std::size_t(double)>& bin_of,
                         std::size_t num_bins, ThreadPool* pool,
                         std::size_t shard_size);

/// Equi-width specialization of IngestSharded for the unlabeled hot path:
/// bins `values[0..count)` into `num_bins` clamped equi-width bins
/// ([lo, hi), width `width` — pass the histogram's stored width) without
/// the per-value std::function indirection. Bin indices come from the
/// dispatched engine::simd::BinIndices batch kernel, which reproduces
/// stats::Histogram::BinOf exactly on every SIMD path, so the counts are
/// identical to IngestSharded with a BinOf functor — for every pool size
/// and every PPDM_SIMD setting (integer outputs; no rounding freedom).
ShardStats IngestBinnedColumn(const double* values, std::size_t count,
                              double lo, double hi, double width,
                              std::size_t num_bins, ThreadPool* pool,
                              std::size_t shard_size);

}  // namespace ppdm::engine

#endif  // PPDM_ENGINE_SHARD_STATS_H_
