#include "engine/batch.h"

#include "common/check.h"
#include "stats/histogram.h"

namespace ppdm::engine {

Batch::Batch(const BatchOptions& options) : options_(options) {
  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

ShardStats Batch::IngestShards(const std::vector<double>& values,
                               const std::vector<int>& labels,
                               std::size_t num_classes, double lo, double hi,
                               std::size_t num_bins) const {
  const stats::Histogram binning(lo, hi, num_bins);
  return IngestSharded(
      values, labels.empty() ? nullptr : &labels,
      labels.empty() ? 1 : num_classes,
      [&binning](double v) { return binning.BinOf(v); }, num_bins, pool(),
      options_.shard_size);
}

data::Dataset Batch::PerturbShards(const perturb::Randomizer& randomizer,
                                   const data::Dataset& dataset) const {
  return randomizer.Perturb(dataset, pool(), options_.shard_size);
}

reconstruct::Reconstruction Batch::ReconstructParallel(
    const std::vector<double>& perturbed,
    const reconstruct::Partition& partition,
    const reconstruct::BayesReconstructor& reconstructor) const {
  return reconstructor.FitParallel(perturbed, partition, pool(),
                                   options_.shard_size);
}

std::vector<reconstruct::Reconstruction> Batch::ReconstructByClassParallel(
    const data::Dataset& perturbed, std::size_t col,
    const reconstruct::Partition& partition,
    const reconstruct::BayesReconstructor& reconstructor) const {
  return reconstruct::ReconstructByClassParallel(perturbed, col, partition,
                                                 reconstructor, pool());
}

}  // namespace ppdm::engine
