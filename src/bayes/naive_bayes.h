// Naive Bayes over reconstructed distributions — the paper argues its
// reconstruction approach is classifier-agnostic, and naive Bayes is its
// purest demonstration: the classifier needs exactly the per-class
// per-attribute marginals P(attribute interval | class) that the EM
// reconstruction estimates, with no record-to-interval association at all.
// At high privacy this sidesteps the assignment smear that limits deep
// decision trees.

#ifndef PPDM_BAYES_NAIVE_BAYES_H_
#define PPDM_BAYES_NAIVE_BAYES_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "perturb/randomizer.h"
#include "reconstruct/partition.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::bayes {

/// Training configuration.
struct NaiveBayesOptions {
  /// Intervals per attribute (the likelihood tables' resolution).
  std::size_t intervals = 30;

  /// Laplace smoothing mass added to every interval of every likelihood
  /// table, as a fraction of one record.
  double laplace = 1.0;

  /// Reconstruction tuning (used only when training from perturbed data).
  reconstruct::ReconstructionOptions reconstruction;
};

/// A trained naive Bayes classifier over interval-discretized attributes.
class NaiveBayesModel {
 public:
  /// `priors[c]` is P(class = c); `likelihood[c][a][k]` is
  /// P(attribute a ∈ interval k | class = c). Partitions define interval
  /// boundaries per attribute.
  NaiveBayesModel(std::vector<double> priors,
                  std::vector<std::vector<std::vector<double>>> likelihood,
                  std::vector<reconstruct::Partition> partitions);

  /// Most probable class for a record (true attribute values).
  int Predict(const std::vector<double>& record) const;

  /// Per-class log posterior (unnormalized) for a record.
  std::vector<double> LogPosterior(const std::vector<double>& record) const;

  int num_classes() const { return static_cast<int>(priors_.size()); }
  const std::vector<double>& priors() const { return priors_; }

 private:
  std::vector<double> priors_;
  std::vector<std::vector<std::vector<double>>> likelihood_;  // [c][a][k]
  std::vector<reconstruct::Partition> partitions_;
};

/// Trains on original (unperturbed) records — the baseline.
NaiveBayesModel TrainNaiveBayes(const data::Dataset& dataset,
                                const NaiveBayesOptions& options);

/// Trains on perturbed records via per-class reconstruction: each
/// likelihood table is the EM estimate of that class's attribute
/// distribution, priors come from the (unperturbed) labels.
NaiveBayesModel TrainNaiveBayesReconstructed(
    const data::Dataset& perturbed, const perturb::Randomizer& randomizer,
    const NaiveBayesOptions& options);

}  // namespace ppdm::bayes

#endif  // PPDM_BAYES_NAIVE_BAYES_H_
