#include "bayes/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "reconstruct/by_class.h"

namespace ppdm::bayes {
namespace {

// Laplace-smooths and renormalizes one likelihood table row.
void SmoothAndNormalize(std::vector<double>* masses, double laplace,
                        double weight) {
  double total = 0.0;
  for (double& m : *masses) {
    m = m * weight + laplace;
    total += m;
  }
  PPDM_CHECK_GT(total, 0.0);
  for (double& m : *masses) m /= total;
}

std::vector<reconstruct::Partition> MakePartitions(
    const data::Schema& schema, std::size_t intervals) {
  std::vector<reconstruct::Partition> partitions;
  partitions.reserve(schema.NumFields());
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    partitions.push_back(
        reconstruct::Partition::ForField(schema.Field(c), intervals));
  }
  return partitions;
}

std::vector<double> Priors(const data::Dataset& dataset) {
  const auto counts = dataset.ClassCounts();
  std::vector<double> priors(counts.size());
  for (std::size_t c = 0; c < counts.size(); ++c) {
    priors[c] = (static_cast<double>(counts[c]) + 1.0) /
                (static_cast<double>(dataset.NumRows()) +
                 static_cast<double>(counts.size()));
  }
  return priors;
}

}  // namespace

NaiveBayesModel::NaiveBayesModel(
    std::vector<double> priors,
    std::vector<std::vector<std::vector<double>>> likelihood,
    std::vector<reconstruct::Partition> partitions)
    : priors_(std::move(priors)),
      likelihood_(std::move(likelihood)),
      partitions_(std::move(partitions)) {
  PPDM_CHECK(!priors_.empty());
  PPDM_CHECK_EQ(likelihood_.size(), priors_.size());
  for (const auto& per_class : likelihood_) {
    PPDM_CHECK_EQ(per_class.size(), partitions_.size());
  }
}

std::vector<double> NaiveBayesModel::LogPosterior(
    const std::vector<double>& record) const {
  PPDM_CHECK_EQ(record.size(), partitions_.size());
  constexpr double kFloor = 1e-12;
  std::vector<double> log_posterior(priors_.size());
  for (std::size_t c = 0; c < priors_.size(); ++c) {
    double lp = std::log(std::max(priors_[c], kFloor));
    for (std::size_t a = 0; a < partitions_.size(); ++a) {
      const std::size_t k = partitions_[a].IntervalOf(record[a]);
      lp += std::log(std::max(likelihood_[c][a][k], kFloor));
    }
    log_posterior[c] = lp;
  }
  return log_posterior;
}

int NaiveBayesModel::Predict(const std::vector<double>& record) const {
  const std::vector<double> lp = LogPosterior(record);
  return static_cast<int>(std::max_element(lp.begin(), lp.end()) -
                          lp.begin());
}

NaiveBayesModel TrainNaiveBayes(const data::Dataset& dataset,
                                const NaiveBayesOptions& options) {
  PPDM_CHECK_GT(dataset.NumRows(), 0u);
  const auto partitions = MakePartitions(dataset.schema(), options.intervals);
  const auto num_classes = static_cast<std::size_t>(dataset.num_classes());

  std::vector<std::vector<std::vector<double>>> likelihood(
      num_classes,
      std::vector<std::vector<double>>(
          dataset.NumCols(), std::vector<double>(options.intervals, 0.0)));
  for (std::size_t r = 0; r < dataset.NumRows(); ++r) {
    const auto c = static_cast<std::size_t>(dataset.Label(r));
    for (std::size_t a = 0; a < dataset.NumCols(); ++a) {
      likelihood[c][a][partitions[a].IntervalOf(dataset.At(r, a))] += 1.0;
    }
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    for (std::size_t a = 0; a < dataset.NumCols(); ++a) {
      SmoothAndNormalize(&likelihood[c][a], options.laplace, 1.0);
    }
  }
  return NaiveBayesModel(Priors(dataset), std::move(likelihood), partitions);
}

NaiveBayesModel TrainNaiveBayesReconstructed(
    const data::Dataset& perturbed, const perturb::Randomizer& randomizer,
    const NaiveBayesOptions& options) {
  PPDM_CHECK_GT(perturbed.NumRows(), 0u);
  const auto partitions =
      MakePartitions(perturbed.schema(), options.intervals);
  const auto num_classes = static_cast<std::size_t>(perturbed.num_classes());
  const auto class_counts = perturbed.ClassCounts();

  std::vector<std::vector<std::vector<double>>> likelihood(
      num_classes,
      std::vector<std::vector<double>>(
          perturbed.NumCols(), std::vector<double>(options.intervals, 0.0)));
  for (std::size_t a = 0; a < perturbed.NumCols(); ++a) {
    const reconstruct::BayesReconstructor reconstructor(
        randomizer.ModelFor(a), options.reconstruction);
    const std::vector<reconstruct::Reconstruction> recons =
        reconstruct::ReconstructByClass(perturbed, a, partitions[a],
                                        reconstructor);
    for (std::size_t c = 0; c < num_classes; ++c) {
      likelihood[c][a] = recons[c].masses;
      // Smoothing weight: the reconstruction represents class_counts[c]
      // records' worth of evidence.
      SmoothAndNormalize(&likelihood[c][a], options.laplace,
                         static_cast<double>(class_counts[c]));
    }
  }
  return NaiveBayesModel(Priors(perturbed), std::move(likelihood),
                         partitions);
}

}  // namespace ppdm::bayes
