// Classifier evaluation metrics — the paper's *accuracy* numbers
// (confusion matrices, per-class accuracy). Not to be confused with
// src/obs/metrics.h, which is operational telemetry (counters, latency
// histograms, Prometheus exposition) and never feeds into an estimate.

#ifndef PPDM_CORE_METRICS_H_
#define PPDM_CORE_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace ppdm::core {

/// Square table of actual-vs-predicted counts.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  /// Records one (actual, predicted) observation.
  void Add(int actual, int predicted);

  /// Count of records with the given actual and predicted labels.
  std::size_t Count(int actual, int predicted) const;

  /// Total observations recorded.
  std::size_t Total() const { return total_; }

  /// Fraction of observations on the diagonal.
  double Accuracy() const;

  /// Per-class recall (diagonal / row sum); 0 for empty classes.
  std::vector<double> Recalls() const;

  /// Small fixed-width text rendering.
  std::string ToString() const;

 private:
  int num_classes_;
  std::vector<std::size_t> counts_;  // row-major [actual][predicted]
  std::size_t total_ = 0;
};

/// Classifies every row of `test` with `tree` and tallies the confusion
/// matrix. The test data are unperturbed (the paper's protocol: privacy
/// constrains training data only).
ConfusionMatrix EvaluateTree(const tree::DecisionTree& tree,
                             const data::Dataset& test);

}  // namespace ppdm::core

#endif  // PPDM_CORE_METRICS_H_
