#include "core/experiment.h"

#include <cstdlib>

#include "common/check.h"

namespace ppdm::core {

ExperimentData PrepareData(const ExperimentConfig& config) {
  return PrepareData(config, engine::Batch(config.batch));
}

ExperimentData PrepareData(const ExperimentConfig& config,
                           const engine::Batch& batch) {
  synth::GeneratorOptions train_gen;
  train_gen.num_records = config.train_records;
  train_gen.function = config.function;
  train_gen.seed = config.seed;

  synth::GeneratorOptions test_gen = train_gen;
  test_gen.num_records = config.test_records;
  test_gen.seed = config.seed + 0x5EED0FF5E7ULL;  // disjoint stream

  data::Dataset train = synth::Generate(train_gen);
  data::Dataset test = synth::Generate(test_gen);

  perturb::RandomizerOptions noise_options;
  noise_options.kind = config.privacy_fraction == 0.0
                           ? perturb::NoiseKind::kNone
                           : config.noise;
  noise_options.privacy_fraction = config.privacy_fraction;
  noise_options.confidence = config.confidence;
  noise_options.seed = config.seed + 0x9E1517BULL;
  perturb::Randomizer randomizer(train.schema(), noise_options);

  // The engine's sharded perturbation lays noise streams out per
  // (attribute, shard) instead of per attribute, so it is only used when
  // the config opts into parallel execution — the default reproduces the
  // sequential reference bit for bit.
  data::Dataset perturbed = config.batch.num_threads == 0
                                ? randomizer.Perturb(train)
                                : batch.PerturbShards(randomizer, train);
  return ExperimentData{std::move(train), std::move(perturbed),
                        std::move(test), std::move(randomizer)};
}

ModeResult RunMode(const ExperimentData& data, tree::TrainingMode mode,
                   const ExperimentConfig& config,
                   engine::ThreadPool* pool) {
  const data::Dataset& training = mode == tree::TrainingMode::kOriginal
                                      ? data.train
                                      : data.perturbed_train;
  const perturb::Randomizer* randomizer =
      tree::ModeUsesReconstruction(mode) ? &data.randomizer : nullptr;
  const tree::DecisionTree model =
      tree::TrainDecisionTree(training, mode, config.tree, randomizer, pool);

  ModeResult result;
  result.mode = mode;
  result.accuracy = EvaluateTree(model, data.test).Accuracy();
  result.tree_nodes = model.NumNodes();
  result.tree_depth = model.Depth();
  return result;
}

std::vector<ModeResult> RunModes(
    const ExperimentConfig& config,
    const std::vector<tree::TrainingMode>& modes) {
  // One pool shared by the perturbation and every mode; null when the
  // config stays sequential.
  const engine::Batch batch(config.batch);
  const ExperimentData data = PrepareData(config, batch);
  std::vector<ModeResult> results;
  results.reserve(modes.size());
  for (tree::TrainingMode mode : modes) {
    results.push_back(RunMode(data, mode, config, batch.pool()));
  }
  return results;
}

bool PaperScaleRequested() {
  const char* env = std::getenv("PPDM_PAPER_SCALE");
  return env != nullptr && env[0] == '1';
}

void ApplyScale(ExperimentConfig* config) {
  PPDM_CHECK(config != nullptr);
  if (PaperScaleRequested()) {
    config->train_records = 100000;
    config->test_records = 5000;
  }
}

}  // namespace ppdm::core
