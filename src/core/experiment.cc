#include "core/experiment.h"

#include <cstdlib>

#include "common/check.h"

namespace ppdm::core {

ExperimentData PrepareData(const ExperimentConfig& config) {
  synth::GeneratorOptions train_gen;
  train_gen.num_records = config.train_records;
  train_gen.function = config.function;
  train_gen.seed = config.seed;

  synth::GeneratorOptions test_gen = train_gen;
  test_gen.num_records = config.test_records;
  test_gen.seed = config.seed + 0x5EED0FF5E7ULL;  // disjoint stream

  data::Dataset train = synth::Generate(train_gen);
  data::Dataset test = synth::Generate(test_gen);

  perturb::RandomizerOptions noise_options;
  noise_options.kind = config.privacy_fraction == 0.0
                           ? perturb::NoiseKind::kNone
                           : config.noise;
  noise_options.privacy_fraction = config.privacy_fraction;
  noise_options.confidence = config.confidence;
  noise_options.seed = config.seed + 0x9E1517BULL;
  perturb::Randomizer randomizer(train.schema(), noise_options);

  data::Dataset perturbed = randomizer.Perturb(train);
  return ExperimentData{std::move(train), std::move(perturbed),
                        std::move(test), std::move(randomizer)};
}

ModeResult RunMode(const ExperimentData& data, tree::TrainingMode mode,
                   const ExperimentConfig& config) {
  const data::Dataset& training = mode == tree::TrainingMode::kOriginal
                                      ? data.train
                                      : data.perturbed_train;
  const perturb::Randomizer* randomizer =
      tree::ModeUsesReconstruction(mode) ? &data.randomizer : nullptr;
  const tree::DecisionTree model =
      tree::TrainDecisionTree(training, mode, config.tree, randomizer);

  ModeResult result;
  result.mode = mode;
  result.accuracy = EvaluateTree(model, data.test).Accuracy();
  result.tree_nodes = model.NumNodes();
  result.tree_depth = model.Depth();
  return result;
}

std::vector<ModeResult> RunModes(
    const ExperimentConfig& config,
    const std::vector<tree::TrainingMode>& modes) {
  const ExperimentData data = PrepareData(config);
  std::vector<ModeResult> results;
  results.reserve(modes.size());
  for (tree::TrainingMode mode : modes) {
    results.push_back(RunMode(data, mode, config));
  }
  return results;
}

bool PaperScaleRequested() {
  const char* env = std::getenv("PPDM_PAPER_SCALE");
  return env != nullptr && env[0] == '1';
}

void ApplyScale(ExperimentConfig* config) {
  PPDM_CHECK(config != nullptr);
  if (PaperScaleRequested()) {
    config->train_records = 100000;
    config->test_records = 5000;
  }
}

}  // namespace ppdm::core
