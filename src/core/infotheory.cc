#include "core/infotheory.h"

#include <cmath>

#include "common/check.h"
#include "stats/histogram.h"

namespace ppdm::core {
namespace {

constexpr double kTiny = 1e-15;

double Log2(double x) { return std::log2(x); }

}  // namespace

double DiscreteEntropyBits(const std::vector<double>& masses) {
  double h = 0.0;
  for (double p : masses) {
    PPDM_CHECK_GE(p, -kTiny);
    if (p > kTiny) h -= p * Log2(p);
  }
  return h;
}

double DifferentialEntropyBits(const std::vector<double>& masses,
                               double interval_width) {
  PPDM_CHECK_GT(interval_width, 0.0);
  double h = 0.0;
  for (double p : masses) {
    if (p > kTiny) h += p * Log2(interval_width / p);
  }
  return h;
}

double EntropyPrivacy(const std::vector<double>& masses,
                      double interval_width) {
  return std::exp2(DifferentialEntropyBits(masses, interval_width));
}

double MutualInformationBits(const std::vector<double>& masses,
                             const reconstruct::Partition& partition,
                             const perturb::NoiseModel& noise) {
  PPDM_CHECK_EQ(masses.size(), partition.intervals());
  const std::size_t num_x = masses.size();
  const double width = partition.width();
  const auto extension = static_cast<std::size_t>(
      std::ceil(noise.EffectiveHalfWidth() / width)) + 1;
  const std::size_t num_w = num_x + 2 * extension;
  const double wlo = partition.lo() - width * static_cast<double>(extension);

  // P(W-bin j | X-bin k), placing X at the interval midpoint and
  // integrating the noise CDF across the W bin.
  std::vector<double> pw(num_w, 0.0);
  std::vector<double> joint(num_w * num_x, 0.0);
  for (std::size_t k = 0; k < num_x; ++k) {
    if (masses[k] <= kTiny) continue;
    const double mid = partition.Mid(k);
    for (std::size_t j = 0; j < num_w; ++j) {
      const double lo = wlo + width * static_cast<double>(j);
      const double hi = lo + width;
      const double pj_given_k = noise.Cdf(hi - mid) - noise.Cdf(lo - mid);
      const double pj = masses[k] * pj_given_k;
      joint[j * num_x + k] = pj;
      pw[j] += pj;
    }
  }

  double mi = 0.0;
  for (std::size_t j = 0; j < num_w; ++j) {
    if (pw[j] <= kTiny) continue;
    for (std::size_t k = 0; k < num_x; ++k) {
      const double pjk = joint[j * num_x + k];
      if (pjk <= kTiny) continue;
      mi += pjk * Log2(pjk / (pw[j] * masses[k]));
    }
  }
  return mi;
}

double InformationLoss(const std::vector<double>& truth,
                       const std::vector<double>& estimate) {
  return stats::TotalVariation(truth, estimate);
}

}  // namespace ppdm::core
