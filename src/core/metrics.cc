#include "core/metrics.h"

#include "common/check.h"
#include "common/strings.h"

namespace ppdm::core {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes) {
  PPDM_CHECK_GT(num_classes, 0);
  counts_.assign(static_cast<std::size_t>(num_classes) *
                     static_cast<std::size_t>(num_classes),
                 0);
}

void ConfusionMatrix::Add(int actual, int predicted) {
  PPDM_CHECK(actual >= 0 && actual < num_classes_);
  PPDM_CHECK(predicted >= 0 && predicted < num_classes_);
  ++counts_[static_cast<std::size_t>(actual) *
                static_cast<std::size_t>(num_classes_) +
            static_cast<std::size_t>(predicted)];
  ++total_;
}

std::size_t ConfusionMatrix::Count(int actual, int predicted) const {
  PPDM_CHECK(actual >= 0 && actual < num_classes_);
  PPDM_CHECK(predicted >= 0 && predicted < num_classes_);
  return counts_[static_cast<std::size_t>(actual) *
                     static_cast<std::size_t>(num_classes_) +
                 static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  std::size_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) {
    correct += Count(c, c);
  }
  return static_cast<double>(correct) / static_cast<double>(total_);
}

std::vector<double> ConfusionMatrix::Recalls() const {
  std::vector<double> recalls(static_cast<std::size_t>(num_classes_), 0.0);
  for (int c = 0; c < num_classes_; ++c) {
    std::size_t row = 0;
    for (int p = 0; p < num_classes_; ++p) row += Count(c, p);
    if (row > 0) {
      recalls[static_cast<std::size_t>(c)] =
          static_cast<double>(Count(c, c)) / static_cast<double>(row);
    }
  }
  return recalls;
}

std::string ConfusionMatrix::ToString() const {
  std::string out = "actual\\pred";
  for (int p = 0; p < num_classes_; ++p) out += StrFormat("%10d", p);
  out += '\n';
  for (int a = 0; a < num_classes_; ++a) {
    out += StrFormat("%-11d", a);
    for (int p = 0; p < num_classes_; ++p) {
      out += StrFormat("%10zu", Count(a, p));
    }
    out += '\n';
  }
  return out;
}

ConfusionMatrix EvaluateTree(const tree::DecisionTree& tree,
                             const data::Dataset& test) {
  ConfusionMatrix cm(test.num_classes());
  std::vector<double> row(test.NumCols());
  for (std::size_t r = 0; r < test.NumRows(); ++r) {
    for (std::size_t c = 0; c < test.NumCols(); ++c) row[c] = test.At(r, c);
    cm.Add(test.Label(r), tree.Predict(row));
  }
  return cm;
}

}  // namespace ppdm::core
