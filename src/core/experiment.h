// End-to-end experiment driver: generate → perturb → train → evaluate.
// This is the public API the examples and every figure/table bench use, so
// that the reported numbers all come from exactly one code path.

#ifndef PPDM_CORE_EXPERIMENT_H_
#define PPDM_CORE_EXPERIMENT_H_

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "data/dataset.h"
#include "engine/batch.h"
#include "perturb/randomizer.h"
#include "synth/generator.h"
#include "tree/trainer.h"

namespace ppdm::core {

/// Everything that defines one experimental cell of the paper's evaluation.
struct ExperimentConfig {
  synth::Function function = synth::Function::kF1;
  std::size_t train_records = 20000;
  std::size_t test_records = 5000;

  perturb::NoiseKind noise = perturb::NoiseKind::kUniform;
  /// Target privacy as a fraction of each attribute's range at
  /// `confidence` (1.0 == the paper's "100% privacy").
  double privacy_fraction = 1.0;
  double confidence = 0.95;

  tree::TreeOptions tree;
  std::uint64_t seed = 1;

  /// Parallel execution engine configuration. num_threads == 0 (default)
  /// keeps the sequential reference paths, bit-identical to the original
  /// single-threaded implementation; num_threads >= 1 routes perturbation
  /// and the reconstruction fan-out through the engine, whose results are
  /// identical for every positive thread count.
  engine::BatchOptions batch;
};

/// Result of training one mode within an experiment.
struct ModeResult {
  tree::TrainingMode mode = tree::TrainingMode::kOriginal;
  double accuracy = 0.0;
  std::size_t tree_nodes = 0;
  std::size_t tree_depth = 0;
};

/// The datasets of one experimental cell, generated deterministically from
/// the config's seed: training data, its perturbed counterpart, and
/// unperturbed test data.
struct ExperimentData {
  data::Dataset train;
  data::Dataset perturbed_train;
  data::Dataset test;
  perturb::Randomizer randomizer;
};

/// Materializes the datasets for a config. Every mode evaluated against the
/// same config sees identical data and identical noise draws, so mode
/// comparisons are paired. The overload taking a `batch` reuses its pool
/// (the batch must have been built from config.batch); the other constructs
/// one on demand.
ExperimentData PrepareData(const ExperimentConfig& config);
ExperimentData PrepareData(const ExperimentConfig& config,
                           const engine::Batch& batch);

/// Trains and evaluates one mode on prepared data. `pool` (may be null)
/// fans the trainer's per-attribute reconstructions out; the result is
/// bit-identical for every pool size.
ModeResult RunMode(const ExperimentData& data, tree::TrainingMode mode,
                   const ExperimentConfig& config,
                   engine::ThreadPool* pool = nullptr);

/// Trains and evaluates several modes on one shared prepared dataset.
std::vector<ModeResult> RunModes(const ExperimentConfig& config,
                                 const std::vector<tree::TrainingMode>& modes);

/// True when the environment requests the paper's full data scale
/// (PPDM_PAPER_SCALE=1: 100k training / 5k test records).
bool PaperScaleRequested();

/// Applies PaperScaleRequested() to a config's record counts.
void ApplyScale(ExperimentConfig* config);

}  // namespace ppdm::core

#endif  // PPDM_CORE_EXPERIMENT_H_
