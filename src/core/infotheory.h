// Information-theoretic privacy metrics — the Agrawal–Aggarwal (PODS '01)
// follow-up quantification, implemented here as the paper's natural
// extension: entropy-based privacy Π(X) = 2^{h(X)}, the fraction of privacy
// surrendered through the perturbed channel, and the information loss of a
// reconstruction.

#ifndef PPDM_CORE_INFOTHEORY_H_
#define PPDM_CORE_INFOTHEORY_H_

#include <vector>

#include "perturb/noise_model.h"
#include "reconstruct/partition.h"

namespace ppdm::core {

/// Shannon entropy (bits) of a discrete mass vector.
double DiscreteEntropyBits(const std::vector<double>& masses);

/// Differential entropy (bits) of the piecewise-constant density implied by
/// interval masses of the given width: h = Σ p_k log2(width / p_k).
double DifferentialEntropyBits(const std::vector<double>& masses,
                               double interval_width);

/// AA'01 privacy measure Π(X) = 2^{h(X)} — the side length of the uniform
/// distribution with the same entropy.
double EntropyPrivacy(const std::vector<double>& masses,
                      double interval_width);

/// Mutual information I(X; W) in bits between the discretized true value
/// (interval of `partition`, distribution `masses`) and the perturbed value
/// W = X + Y binned at the same width over the noise-extended range.
/// I/H(X) is the fraction of the discrete privacy surrendered.
double MutualInformationBits(const std::vector<double>& masses,
                             const reconstruct::Partition& partition,
                             const perturb::NoiseModel& noise);

/// Information loss of a reconstruction: ½ Σ |p_k − q_k| (equals the AA'01
/// ½∫|f−f̂| for piecewise-constant densities on a common partition). 0 is a
/// perfect reconstruction, 1 total failure.
double InformationLoss(const std::vector<double>& truth,
                       const std::vector<double>& estimate);

}  // namespace ppdm::core

#endif  // PPDM_CORE_INFOTHEORY_H_
