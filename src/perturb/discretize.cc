#include "perturb/discretize.h"

#include <algorithm>

#include "common/check.h"

namespace ppdm::perturb {

data::Dataset DiscretizeValues(const data::Dataset& dataset,
                               const DiscretizeOptions& options) {
  PPDM_CHECK_GT(options.classes, 0u);
  data::Dataset out = dataset;
  for (std::size_t c = 0; c < out.NumCols(); ++c) {
    const data::FieldSpec& field = out.schema().Field(c);
    const double width =
        field.Range() / static_cast<double>(options.classes);
    std::vector<double>* column = out.MutableColumn(c);
    for (double& v : *column) {
      double offset = (v - field.lo) / width;
      auto klass = static_cast<std::size_t>(std::max(0.0, offset));
      klass = std::min(klass, options.classes - 1);
      v = field.lo + width * (static_cast<double>(klass) + 0.5);
    }
  }
  return out;
}

double DiscretizationPrivacyFraction(std::size_t classes) {
  PPDM_CHECK_GT(classes, 0u);
  return 1.0 / static_cast<double>(classes);
}

}  // namespace ppdm::perturb
