// Randomizing noise models (paper §2.2 "value distortion") and the privacy
// quantification of §3: privacy offered at confidence level c is the width
// of the shortest interval that contains the true value with probability c,
// usually expressed as a percentage of the attribute's range.

#ifndef PPDM_PERTURB_NOISE_MODEL_H_
#define PPDM_PERTURB_NOISE_MODEL_H_

#include <string>

#include "common/random.h"

namespace ppdm::perturb {

/// Shape of the additive noise Y in w = x + Y.
enum class NoiseKind {
  kNone,      ///< No perturbation (the "Original" baseline).
  kUniform,   ///< Y ~ U[-α, +α].
  kGaussian,  ///< Y ~ N(0, σ²).
};

/// "none" / "uniform" / "gaussian".
std::string NoiseKindName(NoiseKind kind);

/// A concrete additive-noise distribution. The model is public knowledge:
/// data providers sample from it; the server evaluates its density during
/// reconstruction.
class NoiseModel {
 public:
  /// No noise.
  static NoiseModel None();

  /// Uniform noise on [-alpha, +alpha]; requires alpha > 0.
  static NoiseModel Uniform(double alpha);

  /// Gaussian noise with the given standard deviation; requires sigma > 0.
  static NoiseModel Gaussian(double sigma);

  NoiseKind kind() const { return kind_; }

  /// α for uniform, σ for Gaussian, 0 for none.
  double scale() const { return scale_; }

  /// Density of the noise at y.
  double Pdf(double y) const;

  /// P(Y <= y). For kNone this is the step function at 0.
  double Cdf(double y) const;

  /// Draws one noise variate.
  double Sample(Rng* rng) const;

  /// Width of the shortest interval containing Y with probability
  /// `confidence` (paper §3):
  ///   uniform:  2 α c,
  ///   Gaussian: 2 σ z((1+c)/2)  (≈ 3.92 σ at 95%).
  /// Knowing w, the true x lies in an interval of exactly this width with
  /// the same confidence.
  double PrivacyAtConfidence(double confidence) const;

  /// A half-width such that |Y| exceeds it with negligible probability;
  /// used to bound the support scanned during reconstruction
  /// (α for uniform, 5σ for Gaussian).
  double EffectiveHalfWidth() const;

 private:
  NoiseModel(NoiseKind kind, double scale) : kind_(kind), scale_(scale) {}

  NoiseKind kind_;
  double scale_;
};

/// Builds the noise model whose privacy at `confidence` equals
/// `privacy_fraction * range` — e.g. privacy_fraction = 1.0 is the paper's
/// "100% privacy" setting. For kNone the fraction must be 0.
NoiseModel NoiseForPrivacy(NoiseKind kind, double privacy_fraction,
                           double range, double confidence = 0.95);

}  // namespace ppdm::perturb

#endif  // PPDM_PERTURB_NOISE_MODEL_H_
