// Dataset-level perturbation: what the union of data providers sends to the
// server. Each attribute gets its own noise model scaled to its range so
// that every attribute enjoys the same privacy percentage.

#ifndef PPDM_PERTURB_RANDOMIZER_H_
#define PPDM_PERTURB_RANDOMIZER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "engine/thread_pool.h"
#include "perturb/noise_model.h"

namespace ppdm::perturb {

/// Perturbation configuration for a whole dataset.
struct RandomizerOptions {
  NoiseKind kind = NoiseKind::kUniform;
  /// Target privacy as a fraction of each attribute's range (1.0 = the
  /// paper's "100% privacy").
  double privacy_fraction = 1.0;
  /// Confidence level at which the privacy is quantified.
  double confidence = 0.95;
  std::uint64_t seed = 7;
};

/// Applies independent additive noise per attribute per record.
class Randomizer {
 public:
  /// Builds per-attribute noise models from the schema ranges.
  Randomizer(const data::Schema& schema, const RandomizerOptions& options);

  /// Explicit per-attribute models (sizes must match the schema).
  Randomizer(const data::Schema& schema, std::vector<NoiseModel> models,
             std::uint64_t seed);

  /// The noise model applied to attribute `col`.
  const NoiseModel& ModelFor(std::size_t col) const;

  /// Returns a perturbed copy; labels are never perturbed (paper setting).
  /// Sequential reference implementation: one noise stream per attribute.
  data::Dataset Perturb(const data::Dataset& dataset) const;

  /// Sharded perturbation: rows are cut into shards of `shard_size`
  /// (0 = one shard) and each (attribute, shard) cell draws from its own
  /// stream, derived via Rng::Fork(stream_index) so no two cells ever share
  /// one. Output depends only on (seed, shard_size) — identical for every
  /// pool size — but differs from the sequential overload's stream layout.
  data::Dataset Perturb(const data::Dataset& dataset,
                        engine::ThreadPool* pool,
                        std::size_t shard_size) const;

  /// Perturbs a single record in place (the data-provider side).
  void PerturbRecord(std::vector<double>* record, Rng* rng) const;

 private:
  std::vector<NoiseModel> models_;
  std::uint64_t seed_;
};

}  // namespace ppdm::perturb

#endif  // PPDM_PERTURB_RANDOMIZER_H_
