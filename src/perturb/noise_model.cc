#include "perturb/noise_model.h"

#include <cmath>

#include "common/check.h"
#include "stats/normal.h"

namespace ppdm::perturb {

std::string NoiseKindName(NoiseKind kind) {
  switch (kind) {
    case NoiseKind::kNone:
      return "none";
    case NoiseKind::kUniform:
      return "uniform";
    case NoiseKind::kGaussian:
      return "gaussian";
  }
  return "?";
}

NoiseModel NoiseModel::None() { return NoiseModel(NoiseKind::kNone, 0.0); }

NoiseModel NoiseModel::Uniform(double alpha) {
  PPDM_CHECK_GT(alpha, 0.0);
  return NoiseModel(NoiseKind::kUniform, alpha);
}

NoiseModel NoiseModel::Gaussian(double sigma) {
  PPDM_CHECK_GT(sigma, 0.0);
  return NoiseModel(NoiseKind::kGaussian, sigma);
}

double NoiseModel::Pdf(double y) const {
  switch (kind_) {
    case NoiseKind::kNone:
      // Dirac delta; callers handling kNone never integrate this density.
      return y == 0.0 ? 1.0 : 0.0;
    case NoiseKind::kUniform:
      return (y < -scale_ || y > scale_) ? 0.0 : 1.0 / (2.0 * scale_);
    case NoiseKind::kGaussian:
      return stats::NormalPdf(y / scale_) / scale_;
  }
  return 0.0;
}

double NoiseModel::Cdf(double y) const {
  switch (kind_) {
    case NoiseKind::kNone:
      return y < 0.0 ? 0.0 : 1.0;
    case NoiseKind::kUniform:
      if (y <= -scale_) return 0.0;
      if (y >= scale_) return 1.0;
      return (y + scale_) / (2.0 * scale_);
    case NoiseKind::kGaussian:
      return stats::NormalCdf(y / scale_);
  }
  return 0.0;
}

double NoiseModel::Sample(Rng* rng) const {
  PPDM_CHECK(rng != nullptr);
  switch (kind_) {
    case NoiseKind::kNone:
      return 0.0;
    case NoiseKind::kUniform:
      return rng->UniformReal(-scale_, scale_);
    case NoiseKind::kGaussian:
      return rng->Gaussian(0.0, scale_);
  }
  return 0.0;
}

double NoiseModel::PrivacyAtConfidence(double confidence) const {
  PPDM_CHECK(confidence > 0.0 && confidence < 1.0);
  switch (kind_) {
    case NoiseKind::kNone:
      return 0.0;
    case NoiseKind::kUniform:
      return 2.0 * scale_ * confidence;
    case NoiseKind::kGaussian:
      return 2.0 * scale_ * stats::NormalQuantile(0.5 * (1.0 + confidence));
  }
  return 0.0;
}

double NoiseModel::EffectiveHalfWidth() const {
  switch (kind_) {
    case NoiseKind::kNone:
      return 0.0;
    case NoiseKind::kUniform:
      return scale_;
    case NoiseKind::kGaussian:
      return 5.0 * scale_;
  }
  return 0.0;
}

NoiseModel NoiseForPrivacy(NoiseKind kind, double privacy_fraction,
                           double range, double confidence) {
  PPDM_CHECK_GT(range, 0.0);
  PPDM_CHECK(confidence > 0.0 && confidence < 1.0);
  const double width = privacy_fraction * range;
  switch (kind) {
    case NoiseKind::kNone:
      PPDM_CHECK_MSG(privacy_fraction == 0.0,
                     "kNone cannot provide nonzero privacy");
      return NoiseModel::None();
    case NoiseKind::kUniform: {
      PPDM_CHECK_GT(privacy_fraction, 0.0);
      return NoiseModel::Uniform(width / (2.0 * confidence));
    }
    case NoiseKind::kGaussian: {
      PPDM_CHECK_GT(privacy_fraction, 0.0);
      const double z = stats::NormalQuantile(0.5 * (1.0 + confidence));
      return NoiseModel::Gaussian(width / (2.0 * z));
    }
  }
  PPDM_CHECK_MSG(false, "unknown noise kind");
  return NoiseModel::None();
}

}  // namespace ppdm::perturb
