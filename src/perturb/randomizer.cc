#include "perturb/randomizer.h"

#include "common/check.h"

namespace ppdm::perturb {

Randomizer::Randomizer(const data::Schema& schema,
                       const RandomizerOptions& options)
    : seed_(options.seed) {
  models_.reserve(schema.NumFields());
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    if (options.privacy_fraction == 0.0) {
      models_.push_back(NoiseModel::None());
    } else {
      models_.push_back(NoiseForPrivacy(options.kind,
                                        options.privacy_fraction,
                                        schema.Field(c).Range(),
                                        options.confidence));
    }
  }
}

Randomizer::Randomizer(const data::Schema& schema,
                       std::vector<NoiseModel> models, std::uint64_t seed)
    : models_(std::move(models)), seed_(seed) {
  PPDM_CHECK_EQ(models_.size(), schema.NumFields());
}

const NoiseModel& Randomizer::ModelFor(std::size_t col) const {
  PPDM_CHECK_LT(col, models_.size());
  return models_[col];
}

data::Dataset Randomizer::Perturb(const data::Dataset& dataset) const {
  PPDM_CHECK_EQ(models_.size(), dataset.NumCols());
  data::Dataset out = dataset;  // copy schema, labels and values
  Rng master(seed_);
  // One independent stream per attribute keeps the noise streams decoupled
  // from the number of rows touched by other columns.
  for (std::size_t c = 0; c < out.NumCols(); ++c) {
    Rng rng = master.Fork();
    if (models_[c].kind() == NoiseKind::kNone) continue;
    std::vector<double>* column = out.MutableColumn(c);
    for (double& v : *column) v += models_[c].Sample(&rng);
  }
  return out;
}

data::Dataset Randomizer::Perturb(const data::Dataset& dataset,
                                  engine::ThreadPool* pool,
                                  std::size_t shard_size) const {
  PPDM_CHECK_EQ(models_.size(), dataset.NumCols());
  data::Dataset out = dataset;  // copy schema, labels and values
  const Rng master(seed_);
  const std::vector<engine::ChunkRange> shards =
      engine::MakeChunks(dataset.NumRows(), shard_size);
  const std::size_t num_shards = shards.size();
  // One task per (attribute, shard) cell; each writes a disjoint slice of
  // one column, so tasks are independent and the result is deterministic.
  engine::ParallelFor(
      pool, dataset.NumCols() * num_shards, [&](std::size_t task) {
        const std::size_t c = task / num_shards;
        const std::size_t s = task % num_shards;
        if (models_[c].kind() == NoiseKind::kNone) return;
        Rng rng = master.Fork(task);
        std::vector<double>* column = out.MutableColumn(c);
        for (std::size_t r = shards[s].begin; r < shards[s].end; ++r) {
          (*column)[r] += models_[c].Sample(&rng);
        }
      });
  return out;
}

void Randomizer::PerturbRecord(std::vector<double>* record, Rng* rng) const {
  PPDM_CHECK(record != nullptr && rng != nullptr);
  PPDM_CHECK_EQ(record->size(), models_.size());
  for (std::size_t c = 0; c < record->size(); ++c) {
    (*record)[c] += models_[c].Sample(rng);
  }
}

}  // namespace ppdm::perturb
