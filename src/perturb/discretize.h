// Value-class membership (paper §2.1): instead of adding noise, a provider
// discloses only which of a fixed set of disjoint intervals its value falls
// in. Implemented as replacing the value by its interval midpoint; privacy
// at 100% confidence is then exactly the interval width.

#ifndef PPDM_PERTURB_DISCRETIZE_H_
#define PPDM_PERTURB_DISCRETIZE_H_

#include <cstddef>

#include "data/dataset.h"

namespace ppdm::perturb {

/// Discretization configuration.
struct DiscretizeOptions {
  /// Number of equi-width classes per attribute.
  std::size_t classes = 10;
};

/// Returns a copy of `dataset` where every attribute value is replaced by
/// the midpoint of its value class (equi-width over the schema range).
data::Dataset DiscretizeValues(const data::Dataset& dataset,
                               const DiscretizeOptions& options);

/// Privacy (interval width, at 100% confidence) of `classes`-way
/// discretization of an attribute with the given range, as a fraction of
/// that range (i.e. simply 1 / classes).
double DiscretizationPrivacyFraction(std::size_t classes);

}  // namespace ppdm::perturb

#endif  // PPDM_PERTURB_DISCRETIZE_H_
