#include "attack/interval_attack.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace ppdm::attack {

IntervalAttackResult RunIntervalAttack(
    const std::vector<double>& original, const std::vector<double>& perturbed,
    const reconstruct::Partition& partition,
    const perturb::NoiseModel& noise, const std::vector<double>& prior) {
  PPDM_CHECK_EQ(original.size(), perturbed.size());
  PPDM_CHECK_EQ(prior.size(), partition.intervals());

  IntervalAttackResult result;
  result.records = original.size();
  if (original.empty()) return result;

  const std::size_t num_intervals = partition.intervals();
  const auto prior_mode = static_cast<std::size_t>(
      std::max_element(prior.begin(), prior.end()) - prior.begin());

  std::size_t map_hits = 0, prior_hits = 0, covered = 0;
  double total_width = 0.0;
  std::vector<double> posterior(num_intervals);
  std::vector<std::size_t> order(num_intervals);

  for (std::size_t i = 0; i < original.size(); ++i) {
    const std::size_t truth = partition.IntervalOf(original[i]);
    if (truth == prior_mode) ++prior_hits;

    double total = 0.0;
    for (std::size_t k = 0; k < num_intervals; ++k) {
      posterior[k] = prior[k] * noise.Pdf(perturbed[i] - partition.Mid(k));
      total += posterior[k];
    }
    if (total <= 0.0) {
      // Perturbed value unreachable from every interval midpoint under
      // bounded noise: fall back to the nearest interval.
      std::fill(posterior.begin(), posterior.end(), 0.0);
      posterior[partition.IntervalOf(perturbed[i])] = 1.0;
      total = 1.0;
    }
    for (double& p : posterior) p /= total;

    const auto map = static_cast<std::size_t>(
        std::max_element(posterior.begin(), posterior.end()) -
        posterior.begin());
    if (map == truth) ++map_hits;

    // Smallest credible set: take intervals in decreasing posterior order
    // until 95% of the mass is covered.
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return posterior[a] > posterior[b];
    });
    double mass = 0.0;
    std::size_t picked = 0;
    bool truth_in_set = false;
    for (std::size_t k : order) {
      mass += posterior[k];
      ++picked;
      if (k == truth) truth_in_set = true;
      if (mass >= 0.95) break;
    }
    total_width += static_cast<double>(picked) * partition.width();
    if (truth_in_set) ++covered;
  }

  const auto n = static_cast<double>(original.size());
  result.map_hit_rate = static_cast<double>(map_hits) / n;
  result.prior_hit_rate = static_cast<double>(prior_hits) / n;
  result.mean_credible_width95 = total_width / n;
  result.credible_coverage = static_cast<double>(covered) / n;
  return result;
}

}  // namespace ppdm::attack
