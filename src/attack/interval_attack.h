// Adversarial validation of the privacy quantification (paper §3): a
// Bayesian server that knows the noise model and the reconstructed
// distribution attacks each record, inferring a posterior over the
// intervals the true value could lie in. If the §3 privacy accounting is
// honest, the attacker's hit rate must stay near the prior's and its
// credible intervals must be as wide as the claimed privacy.
//
// This is the strongest inference consistent with the paper's model
// (per-record independence; follow-up work showed *correlated* attributes
// enable stronger spectral attacks, which is out of the 1-D model's scope
// and noted in DESIGN.md).

#ifndef PPDM_ATTACK_INTERVAL_ATTACK_H_
#define PPDM_ATTACK_INTERVAL_ATTACK_H_

#include <cstddef>
#include <vector>

#include "perturb/noise_model.h"
#include "reconstruct/partition.h"

namespace ppdm::attack {

/// Aggregate outcome of attacking a set of records.
struct IntervalAttackResult {
  /// Fraction of records whose maximum-a-posteriori interval is the true
  /// interval.
  double map_hit_rate = 0.0;

  /// Baseline: hit rate of always guessing the prior's modal interval.
  double prior_hit_rate = 0.0;

  /// Mean width (in value units) of the smallest posterior-credible set
  /// of intervals covering 95% — the attacker's *achieved* 95% confidence
  /// interval, directly comparable to the §3 privacy claim.
  double mean_credible_width95 = 0.0;

  /// Fraction of records whose true interval lies inside that 95%
  /// credible set (calibration check; should be ≈ 0.95 or higher).
  double credible_coverage = 0.0;

  std::size_t records = 0;
};

/// Bayesian per-record attack. For each record i the attacker computes
/// P(interval k | w_i) ∝ prior[k] · f_Y(w_i − m_k) and reports the MAP
/// interval plus a 95% credible set. `original` supplies ground truth for
/// scoring only.
IntervalAttackResult RunIntervalAttack(
    const std::vector<double>& original, const std::vector<double>& perturbed,
    const reconstruct::Partition& partition,
    const perturb::NoiseModel& noise, const std::vector<double>& prior);

}  // namespace ppdm::attack

#endif  // PPDM_ATTACK_INTERVAL_ATTACK_H_
