#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <utility>

namespace ppdm::obs {
namespace {

std::uint32_t ThreadTraceId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// The thread's current trace position ({0,0} outside any trace).
thread_local TraceContext t_current_context;

/// splitmix64 finaliser — spreads a counter into id space.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

Counter& TraceRecordedCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("ppdm_trace_recorded_total");
  return *counter;
}

Counter& TraceDroppedCounter() {
  static Counter* const counter =
      MetricsRegistry::Global().GetCounter("ppdm_trace_dropped_total");
  return *counter;
}

void AppendJsonEscaped(std::string* out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string HexId(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

TraceContext TraceContext::Current() { return t_current_context; }

std::uint64_t NewTraceId() {
  // Counter mixed with a per-process steady-clock seed: sequential within
  // one process, but two daemons (or restarts) diverge immediately.
  static const std::uint64_t seed = Mix64(SteadyNowNs() ^ 0x5050444d'74726163ull);
  static std::atomic<std::uint64_t> next{0};
  const std::uint64_t id =
      Mix64(seed + next.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;
}

std::uint64_t NewSpanId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SteadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : saved_(t_current_context) {
  t_current_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { t_current_context = saved_; }

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceRing& TraceRing::Global() {
  static TraceRing* const ring = [] {
    // Touch the loss counters so the exposition carries them from the
    // first scrape, not the first record.
    TraceRecordedCounter();
    TraceDroppedCounter();
    return new TraceRing;  // leaked on purpose
  }();
  return *ring;
}

void TraceRing::Record(std::string name, std::uint64_t start_ns,
                       std::uint64_t duration_ns) {
  SpanEvent event;
  event.name = std::move(name);
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  Record(std::move(event));
}

void TraceRing::Record(SpanEvent event) {
  event.thread = ThreadTraceId();
  bool overwrote = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(std::move(event));
    } else {
      events_[next_] = std::move(event);
      overwrote = true;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
  }
  if (this == &Global()) {
    TraceRecordedCounter().Increment();
    if (overwrote) TraceDroppedCounter().Increment();
  }
}

std::vector<SpanEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> ordered;
  ordered.reserve(events_.size());
  if (events_.size() < capacity_) {
    ordered = events_;
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < events_.size(); ++i) {
      ordered.push_back(events_[(next_ + i) % capacity_]);
    }
  }
  return ordered;
}

std::uint64_t TraceRing::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRing::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - events_.size();
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* histogram, TraceRing* ring,
                       std::string labels)
    : name_(TimingEnabled() ? name : nullptr),
      histogram_(histogram),
      ring_(ring),
      start_(name_ != nullptr ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{}) {
  if (name_ == nullptr) return;
  parent_ = TraceContext::Current();
  span_id_ = NewSpanId();
  labels_ = std::move(labels);
  t_current_context = TraceContext{parent_.trace_id, span_id_};
}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  t_current_context = parent_;
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start_)
          .count());
  if (ring_ != nullptr) {
    SpanEvent event;
    event.name = name_;
    event.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
    event.duration_ns = duration_ns;
    event.trace_id = parent_.trace_id;
    event.span_id = span_id_;
    event.parent_id = parent_.span_id;
    event.labels = std::move(labels_);
    ring_->Record(std::move(event));
  }
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(duration_ns) * 1e-9);
  }
}

PendingSpan BeginSpan(const char* name, TraceContext parent,
                      std::string labels) {
  PendingSpan span;
  if (!TimingEnabled()) return span;
  span.name = name;
  span.labels = std::move(labels);
  span.trace_id = parent.trace_id;
  span.parent_id = parent.span_id;
  span.span_id = NewSpanId();
  span.start_ns = SteadyNowNs();
  return span;
}

void EndSpan(PendingSpan* span, TraceRing* ring) {
  if (span == nullptr || span->name == nullptr) return;
  const std::uint64_t now_ns = SteadyNowNs();
  SpanEvent event;
  event.name = span->name;
  event.start_ns = span->start_ns;
  event.duration_ns = now_ns > span->start_ns ? now_ns - span->start_ns : 0;
  event.trace_id = span->trace_id;
  event.span_id = span->span_id;
  event.parent_id = span->parent_id;
  event.labels = std::move(span->labels);
  span->name = nullptr;
  if (ring != nullptr) ring->Record(std::move(event));
}

void RecordSpan(const char* name, std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point stop,
                Histogram* histogram, TraceRing* ring) {
  if (!TimingEnabled()) return;
  const auto elapsed = stop - start;
  const std::uint64_t duration_ns =
      elapsed.count() > 0
          ? static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count())
          : 0;
  if (ring != nullptr) {
    const TraceContext parent = TraceContext::Current();
    SpanEvent event;
    event.name = name;
    event.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start.time_since_epoch())
            .count());
    event.duration_ns = duration_ns;
    event.trace_id = parent.trace_id;
    event.span_id = NewSpanId();
    event.parent_id = parent.span_id;
    ring->Record(std::move(event));
  }
  if (histogram != nullptr) {
    histogram->Observe(static_cast<double>(duration_ns) * 1e-9);
  }
}

std::string RenderSpans(const std::vector<SpanEvent>& events) {
  std::string out;
  char line[256];
  // Starts print relative to the oldest span so the column is readable.
  std::uint64_t base = 0;
  for (const SpanEvent& event : events) {
    if (base == 0 || event.start_ns < base) base = event.start_ns;
  }
  for (const SpanEvent& event : events) {
    std::snprintf(line, sizeof(line), "%-32s t+%12.3fms %10.3fms thread %u",
                  event.name.c_str(),
                  static_cast<double>(event.start_ns - base) * 1e-6,
                  static_cast<double>(event.duration_ns) * 1e-6,
                  event.thread);
    out += line;
    if (event.trace_id != 0) {
      std::snprintf(line, sizeof(line), " trace=%s span=%llu parent=%llu",
                    HexId(event.trace_id).c_str(),
                    static_cast<unsigned long long>(event.span_id),
                    static_cast<unsigned long long>(event.parent_id));
      out += line;
    }
    if (!event.labels.empty()) {
      out += " {";
      out += event.labels;
      out += "}";
    }
    out += "\n";
  }
  return out;
}

std::string RenderChromeTrace(const std::vector<SpanEvent>& events) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const SpanEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, event.name);
    out += "\",\"cat\":\"ppdm\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf),
                  ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                  static_cast<double>(event.start_ns) * 1e-3,
                  static_cast<double>(event.duration_ns) * 1e-3, event.thread);
    out += buf;
    out += ",\"args\":{\"trace\":\"" + HexId(event.trace_id) +
           "\",\"span\":\"" + HexId(event.span_id) + "\",\"parent\":\"" +
           HexId(event.parent_id) + "\"";
    if (!event.labels.empty()) {
      out += ",\"labels\":\"";
      AppendJsonEscaped(&out, event.labels);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}\n";
  return out;
}

std::string RenderSpanTree(const std::vector<SpanEvent>& events,
                           std::uint64_t trace_id) {
  // Collect this trace's spans and index them by span id.
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].trace_id == trace_id) members.push_back(i);
  }
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "trace %s (%zu spans)\n",
                HexId(trace_id).c_str(), members.size());
  out += line;
  if (members.empty()) return out;

  std::vector<std::size_t> roots;
  std::vector<std::vector<std::size_t>> children(members.size());
  // span id → member position; a parent id absent from the map means the
  // parent span was evicted from the ring (or never closed) — render the
  // orphan as a root rather than dropping it.
  std::vector<std::pair<std::uint64_t, std::size_t>> by_id;
  by_id.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    by_id.emplace_back(events[members[m]].span_id, m);
  }
  std::sort(by_id.begin(), by_id.end());
  const auto find_member = [&](std::uint64_t span_id) -> std::size_t {
    const auto it = std::lower_bound(
        by_id.begin(), by_id.end(),
        std::make_pair(span_id, static_cast<std::size_t>(0)));
    if (it != by_id.end() && it->first == span_id) return it->second;
    return members.size();  // not present
  };
  for (std::size_t m = 0; m < members.size(); ++m) {
    const SpanEvent& event = events[members[m]];
    const std::size_t parent =
        event.parent_id == 0 ? members.size() : find_member(event.parent_id);
    if (parent == members.size() ||
        events[members[parent]].span_id == event.span_id) {
      roots.push_back(m);
    } else {
      children[parent].push_back(m);
    }
  }
  const auto by_start = [&](std::size_t a, std::size_t b) {
    const SpanEvent& ea = events[members[a]];
    const SpanEvent& eb = events[members[b]];
    return ea.start_ns != eb.start_ns ? ea.start_ns < eb.start_ns
                                      : ea.span_id < eb.span_id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& list : children) std::sort(list.begin(), list.end(), by_start);

  // Iterative pre-order walk; each member appears in exactly one list, so
  // the walk terminates without a visited set.
  std::vector<std::pair<std::size_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    const auto [m, depth] = stack.back();
    stack.pop_back();
    const SpanEvent& event = events[members[m]];
    const int indent = std::min(depth, 16) * 2;
    std::snprintf(line, sizeof(line), "%*s%-s %.3fms", indent, "",
                  event.name.c_str(),
                  static_cast<double>(event.duration_ns) * 1e-6);
    out += line;
    if (!event.labels.empty()) {
      out += " {";
      out += event.labels;
      out += "}";
    }
    std::snprintf(line, sizeof(line), " thread %u\n", event.thread);
    out += line;
    for (auto it = children[m].rbegin(); it != children[m].rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return out;
}

}  // namespace ppdm::obs
