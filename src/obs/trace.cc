#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <utility>

namespace ppdm::obs {
namespace {

std::uint32_t ThreadTraceId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceRing& TraceRing::Global() {
  static TraceRing* const ring = new TraceRing;  // leaked on purpose
  return *ring;
}

void TraceRing::Record(std::string name, std::uint64_t start_ns,
                       std::uint64_t duration_ns) {
  SpanEvent event;
  event.name = std::move(name);
  event.start_ns = start_ns;
  event.duration_ns = duration_ns;
  event.thread = ThreadTraceId();

  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() < capacity_) {
    events_.push_back(std::move(event));
  } else {
    events_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<SpanEvent> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> ordered;
  ordered.reserve(events_.size());
  if (events_.size() < capacity_) {
    ordered = events_;
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < events_.size(); ++i) {
      ordered.push_back(events_[(next_ + i) % capacity_]);
    }
  }
  return ordered;
}

std::uint64_t TraceRing::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t TraceRing::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_ - events_.size();
}

void TraceRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  next_ = 0;
  total_ = 0;
}

ScopedSpan::ScopedSpan(const char* name, Histogram* histogram,
                       TraceRing* ring)
    : name_(TimingEnabled() ? name : nullptr),
      histogram_(histogram),
      ring_(ring),
      start_(name_ != nullptr ? std::chrono::steady_clock::now()
                              : std::chrono::steady_clock::time_point{}) {}

ScopedSpan::~ScopedSpan() {
  if (name_ == nullptr) return;
  const auto stop = std::chrono::steady_clock::now();
  const std::uint64_t duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start_)
          .count());
  if (ring_ != nullptr) {
    ring_->Record(name_,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          start_.time_since_epoch())
                          .count()),
                  duration_ns);
  }
  if (histogram_ != nullptr) {
    histogram_->Observe(static_cast<double>(duration_ns) * 1e-9);
  }
}

std::string RenderSpans(const std::vector<SpanEvent>& events) {
  std::string out;
  char line[160];
  // Starts print relative to the oldest span so the column is readable.
  std::uint64_t base = 0;
  for (const SpanEvent& event : events) {
    if (base == 0 || event.start_ns < base) base = event.start_ns;
  }
  for (const SpanEvent& event : events) {
    std::snprintf(line, sizeof(line), "%-32s t+%12.3fms %10.3fms thread %u\n",
                  event.name.c_str(),
                  static_cast<double>(event.start_ns - base) * 1e-6,
                  static_cast<double>(event.duration_ns) * 1e-6,
                  event.thread);
    out += line;
  }
  return out;
}

}  // namespace ppdm::obs
