#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace ppdm::obs {
namespace {

std::atomic<bool> g_timing_enabled{true};

/// %.9g is enough to round-trip the bucket bounds and sums we render and
/// keeps exposition lines compact.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

/// Identity of a family's shared past-the-bound series.
constexpr const char* kOverflowLabels = "overflow=\"true\"";

void AppendEscapedLabelValue(std::string* out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

}  // namespace

std::string RenderLabelSet(const LabelSet& labels) {
  std::vector<const Label*> sorted;
  sorted.reserve(labels.size());
  for (const Label& label : labels) sorted.push_back(&label);
  std::sort(sorted.begin(), sorted.end(),
            [](const Label* a, const Label* b) {
              return a->key != b->key ? a->key < b->key : a->value < b->value;
            });
  std::string out;
  for (const Label* label : sorted) {
    if (!out.empty()) out += ",";
    out += label->key;
    out += "=\"";
    AppendEscapedLabelValue(&out, label->value);
    out += "\"";
  }
  return out;
}

void SetTimingEnabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

namespace internal {

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(internal::kShards * (bounds_.size() + 1)) {}

void Histogram::Observe(double value) {
  if (!TimingEnabled()) return;
  // First bucket whose upper bound admits the sample; the +Inf bucket
  // (index bounds_.size()) catches the rest.
  const std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  const std::size_t shard = internal::ThreadShard();
  cells_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  // The sum cell is this shard's alone, so the CAS loop only ever retries
  // against increments from threads that happen to share the stripe.
  std::atomic<std::uint64_t>& sum = sums_[shard].bits;
  std::uint64_t observed = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  const std::size_t num_buckets = bounds_.size() + 1;
  std::vector<std::uint64_t> counts(num_buckets, 0);
  for (std::size_t s = 0; s < internal::kShards; ++s) {
    for (std::size_t b = 0; b < num_buckets; ++b) {
      counts[b] +=
          cells_[s * num_buckets + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const SumCell& cell : sums_) {
    total += BitsDouble(cell.bits.load(std::memory_order_relaxed));
  }
  return total;
}

double Histogram::Quantile(double q) const {
  const std::vector<std::uint64_t> counts = BucketCounts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based; walk the cumulative counts.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double hi = bounds_[b];
    const double lo = b == 0 ? 0.0 : bounds_[b - 1];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (internal::Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (SumCell& cell : sums_) {
    cell.bits.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry;  // leaked
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindLocked(
    const std::string& name, const std::string& labels) {
  for (Instrument& instrument : instruments_) {
    if (instrument.name == name && instrument.labels == labels) {
      return &instrument;
    }
  }
  return nullptr;
}

MetricsRegistry::Instrument* MetricsRegistry::GetOrCreateLocked(
    Kind kind, const std::string& name, const std::string& labels,
    std::vector<double>* bounds) {
  if (Instrument* existing = FindLocked(name, labels)) {
    return existing;  // kind-mismatch Gets return a null member — first wins
  }
  Instrument& instrument = instruments_.emplace_back();
  instrument.kind = kind;
  instrument.name = name;
  instrument.labels = labels;
  switch (kind) {
    case Kind::kCounter:
      instrument.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      instrument.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      instrument.histogram = std::make_unique<Histogram>(
          bounds != nullptr ? std::move(*bounds) : std::vector<double>{});
      break;
  }
  return &instrument;
}

std::string MetricsRegistry::AdmitSeriesLocked(const std::string& name,
                                               const std::string& labels) {
  // Unlabeled series and re-Gets of existing series are always admitted;
  // the bound only gates the *creation* of new labeled series.
  if (labels.empty() || labels == kOverflowLabels ||
      FindLocked(name, labels) != nullptr) {
    return labels;
  }
  std::size_t labeled = 0;
  for (const Instrument& instrument : instruments_) {
    if (instrument.name == name && !instrument.labels.empty() &&
        instrument.labels != kOverflowLabels) {
      ++labeled;
    }
  }
  if (labeled < max_series_per_family_) return labels;
  GetOrCreateLocked(Kind::kCounter, "ppdm_obs_series_overflow_total", "",
                    nullptr)
      ->counter->Increment();
  return kOverflowLabels;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(Kind::kCounter, name,
                           AdmitSeriesLocked(name, labels), nullptr)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(Kind::kGauge, name,
                           AdmitSeriesLocked(name, labels), nullptr)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  return GetOrCreateLocked(Kind::kHistogram, name,
                           AdmitSeriesLocked(name, labels), &bounds)
      ->histogram.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const LabelSet& labels) {
  return GetCounter(name, RenderLabelSet(labels));
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const LabelSet& labels) {
  return GetGauge(name, RenderLabelSet(labels));
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const LabelSet& labels) {
  return GetHistogram(name, std::move(bounds), RenderLabelSet(labels));
}

void MetricsRegistry::set_max_series_per_family(std::size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  max_series_per_family_ = max == 0 ? 1 : max;
}

std::size_t MetricsRegistry::max_series_per_family() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_series_per_family_;
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Instrument& instrument : instruments_) {
    if (instrument.name == name && instrument.labels == labels) {
      return instrument.histogram.get();
    }
  }
  return nullptr;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group instruments into families (same name, different labels) and
  // render families in name order for a stable exposition.
  std::map<std::string, std::vector<const Instrument*>> families;
  for (const Instrument& instrument : instruments_) {
    families[instrument.name].push_back(&instrument);
  }
  std::string out;
  for (const auto& [name, members] : families) {
    const char* type = members.front()->kind == Kind::kCounter ? "counter"
                       : members.front()->kind == Kind::kGauge
                           ? "gauge"
                           : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const Instrument* instrument : members) {
      const std::string& labels = instrument->labels;
      switch (instrument->kind) {
        case Kind::kCounter:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(instrument->counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(instrument->gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument->histogram;
          const std::vector<std::uint64_t> counts = h.BucketCounts();
          const std::string prefix = labels.empty() ? "" : labels + ",";
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            cumulative += counts[b];
            out += name + "_bucket{" + prefix + "le=\"" +
                   FormatDouble(h.bounds()[b]) + "\"} " +
                   std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += name + "_bucket{" + prefix + "le=\"+Inf\"} " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" +
                 (labels.empty() ? "" : "{" + labels + "}") + " " +
                 FormatDouble(h.Sum()) + "\n";
          out += name + "_count" +
                 (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Instrument& instrument : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        instrument.counter->Reset();
        break;
      case Kind::kGauge:
        instrument.gauge->Reset();
        break;
      case Kind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  }
}

}  // namespace ppdm::obs
