#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

namespace ppdm::obs {
namespace {

std::atomic<bool> g_timing_enabled{true};

/// %.9g is enough to round-trip the bucket bounds and sums we render and
/// keeps exposition lines compact.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::uint64_t DoubleBits(double value) {
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace

void SetTimingEnabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

namespace internal {

std::size_t ThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      cells_(internal::kShards * (bounds_.size() + 1)) {}

void Histogram::Observe(double value) {
  if (!TimingEnabled()) return;
  // First bucket whose upper bound admits the sample; the +Inf bucket
  // (index bounds_.size()) catches the rest.
  const std::size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  const std::size_t shard = internal::ThreadShard();
  cells_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  // The sum cell is this shard's alone, so the CAS loop only ever retries
  // against increments from threads that happen to share the stripe.
  std::atomic<std::uint64_t>& sum = sums_[shard].bits;
  std::uint64_t observed = sum.load(std::memory_order_relaxed);
  while (!sum.compare_exchange_weak(
      observed, DoubleBits(BitsDouble(observed) + value),
      std::memory_order_relaxed)) {
  }
}

std::vector<double> Histogram::ExponentialBuckets(double start, double factor,
                                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  const std::size_t num_buckets = bounds_.size() + 1;
  std::vector<std::uint64_t> counts(num_buckets, 0);
  for (std::size_t s = 0; s < internal::kShards; ++s) {
    for (std::size_t b = 0; b < num_buckets; ++b) {
      counts[b] +=
          cells_[s * num_buckets + b].value.load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (std::uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const SumCell& cell : sums_) {
    total += BitsDouble(cell.bits.load(std::memory_order_relaxed));
  }
  return total;
}

double Histogram::Quantile(double q) const {
  const std::vector<std::uint64_t> counts = BucketCounts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  // Rank of the target sample, 1-based; walk the cumulative counts.
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds_.size()) return bounds_.empty() ? 0.0 : bounds_.back();
    const double hi = bounds_[b];
    const double lo = b == 0 ? 0.0 : bounds_[b - 1];
    const double within =
        (rank - static_cast<double>(before)) / static_cast<double>(counts[b]);
    return lo + (hi - lo) * std::min(std::max(within, 0.0), 1.0);
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::Reset() {
  for (internal::Cell& cell : cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (SumCell& cell : sums_) {
    cell.bits.store(0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry;  // leaked
  return *registry;
}

MetricsRegistry::Instrument* MetricsRegistry::FindLocked(
    const std::string& name, const std::string& labels) {
  for (Instrument& instrument : instruments_) {
    if (instrument.name == name && instrument.labels == labels) {
      return &instrument;
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    return existing->counter.get();  // null on kind mismatch — first wins
  }
  Instrument& instrument = instruments_.emplace_back();
  instrument.kind = Kind::kCounter;
  instrument.name = name;
  instrument.labels = labels;
  instrument.counter = std::make_unique<Counter>();
  return instrument.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    return existing->gauge.get();
  }
  Instrument& instrument = instruments_.emplace_back();
  instrument.kind = Kind::kGauge;
  instrument.name = name;
  instrument.labels = labels;
  instrument.gauge = std::make_unique<Gauge>();
  return instrument.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Instrument* existing = FindLocked(name, labels)) {
    return existing->histogram.get();
  }
  Instrument& instrument = instruments_.emplace_back();
  instrument.kind = Kind::kHistogram;
  instrument.name = name;
  instrument.labels = labels;
  instrument.histogram = std::make_unique<Histogram>(std::move(bounds));
  return instrument.histogram.get();
}

const Histogram* MetricsRegistry::FindHistogram(
    const std::string& name, const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Instrument& instrument : instruments_) {
    if (instrument.name == name && instrument.labels == labels) {
      return instrument.histogram.get();
    }
  }
  return nullptr;
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Group instruments into families (same name, different labels) and
  // render families in name order for a stable exposition.
  std::map<std::string, std::vector<const Instrument*>> families;
  for (const Instrument& instrument : instruments_) {
    families[instrument.name].push_back(&instrument);
  }
  std::string out;
  for (const auto& [name, members] : families) {
    const char* type = members.front()->kind == Kind::kCounter ? "counter"
                       : members.front()->kind == Kind::kGauge
                           ? "gauge"
                           : "histogram";
    out += "# TYPE " + name + " " + type + "\n";
    for (const Instrument* instrument : members) {
      const std::string& labels = instrument->labels;
      switch (instrument->kind) {
        case Kind::kCounter:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(instrument->counter->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += name + (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(instrument->gauge->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& h = *instrument->histogram;
          const std::vector<std::uint64_t> counts = h.BucketCounts();
          const std::string prefix = labels.empty() ? "" : labels + ",";
          std::uint64_t cumulative = 0;
          for (std::size_t b = 0; b < h.bounds().size(); ++b) {
            cumulative += counts[b];
            out += name + "_bucket{" + prefix + "le=\"" +
                   FormatDouble(h.bounds()[b]) + "\"} " +
                   std::to_string(cumulative) + "\n";
          }
          cumulative += counts.back();
          out += name + "_bucket{" + prefix + "le=\"+Inf\"} " +
                 std::to_string(cumulative) + "\n";
          out += name + "_sum" +
                 (labels.empty() ? "" : "{" + labels + "}") + " " +
                 FormatDouble(h.Sum()) + "\n";
          out += name + "_count" +
                 (labels.empty() ? "" : "{" + labels + "}") + " " +
                 std::to_string(cumulative) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Instrument& instrument : instruments_) {
    switch (instrument.kind) {
      case Kind::kCounter:
        instrument.counter->Reset();
        break;
      case Kind::kGauge:
        instrument.gauge->Reset();
        break;
      case Kind::kHistogram:
        instrument.histogram->Reset();
        break;
    }
  }
}

}  // namespace ppdm::obs
