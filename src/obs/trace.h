// Lightweight trace spans: named wall-clock intervals pushed into a
// bounded in-memory ring of recent events. The ring is the "what just
// happened" complement to the metrics registry's aggregates — an operator
// scraping p99s sees *that* refreshes are slow; the last-N spans show
// *which* refresh, on which thread, overlapping what.
//
// Spans are call-granularity (one per ingest batch, refresh, snapshot
// put…), never per-record, so a mutex-guarded ring is plenty: pushes are
// rare relative to the work they bracket, and the mutex keeps the layer
// trivially ThreadSanitizer-clean. The ring is fixed-capacity and
// overwrites oldest-first; DroppedCount() says how much history was lost.
//
// Like ScopedTimer, spans honour the global timing-enabled flag and are
// free when disabled. They never affect computation — determinism is
// identical with tracing on or off.

#ifndef PPDM_OBS_TRACE_H_
#define PPDM_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ppdm::obs {

/// One completed span.
struct SpanEvent {
  std::string name;
  /// Start, nanoseconds since the process's steady-clock epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Stable small id of the recording thread (per-process, first-use
  /// ordered) — enough to see interleavings without OS thread ids.
  std::uint32_t thread = 0;
};

/// Bounded ring of recent spans.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// The process-wide ring (leaky singleton; never destroyed).
  static TraceRing& Global();

  void Record(std::string name, std::uint64_t start_ns,
              std::uint64_t duration_ns);

  /// Recent spans, oldest first (at most `capacity` of them).
  std::vector<SpanEvent> Snapshot() const;

  /// Spans recorded since construction / Clear().
  std::uint64_t TotalRecorded() const;

  /// Spans overwritten before ever being snapshot — total minus retained.
  std::uint64_t DroppedCount() const;

  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;  // ring storage, guarded by mu_
  std::size_t next_ = 0;           // guarded by mu_
  std::uint64_t total_ = 0;        // guarded by mu_
};

/// RAII span: records [construction, destruction) into the ring (and,
/// when given one, the same duration into a latency Histogram, so a code
/// path gets aggregate percentiles and recent-event tracing from a single
/// annotation).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* histogram = nullptr,
                      TraceRing* ring = &TraceRing::Global());

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  const char* const name_;  // null when disarmed (timing disabled)
  Histogram* const histogram_;
  TraceRing* const ring_;
  std::chrono::steady_clock::time_point start_;
};

/// Renders `events` as one fixed-width text line each (the `ppdm metrics
/// --spans` dump).
std::string RenderSpans(const std::vector<SpanEvent>& events);

}  // namespace ppdm::obs

#endif  // PPDM_OBS_TRACE_H_
