// Request-scoped causal tracing: named wall-clock intervals pushed into
// a bounded in-memory ring of recent events, each carrying trace/span/
// parent ids so the spans of one request reassemble into a tree. The
// ring is the "what just happened" complement to the metrics registry's
// aggregates — an operator scraping p99s sees *that* requests are slow;
// the span tree of the slow request shows *where* the time went (queue
// wait vs. EM fan-out vs. snapshot I/O).
//
// Causality propagates through a thread_local TraceContext: a scope that
// opens a span installs itself as the current context, so spans opened
// beneath it (same thread) become children automatically. Work that hops
// threads — a service job crossing the queue, ParallelFor shards —
// captures TraceContext::Current() at the submission site and adopts it
// on the worker via ScopedTraceContext, stitching the tree back together.
//
// Spans are call-granularity (one per request, ingest batch, refresh,
// snapshot put…), never per-record, so a mutex-guarded ring is plenty:
// pushes are rare relative to the work they bracket, and the mutex keeps
// the layer trivially ThreadSanitizer-clean. The ring is fixed-capacity
// and overwrites oldest-first; DroppedCount() says how much history was
// lost, and the global ring exports recorded/dropped totals as counters.
//
// Like ScopedTimer, spans honour the global timing-enabled flag and are
// free when disabled. They never affect computation — determinism is
// identical with tracing on or off, at any thread count.

#ifndef PPDM_OBS_TRACE_H_
#define PPDM_OBS_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ppdm::obs {

/// Position in a trace: which request (trace_id) and which span within it
/// is currently open on this thread. span_id 0 means "no enclosing span"
/// — spans opened under such a context become roots of the trace.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  /// This thread's current context ({0, 0} outside any trace).
  static TraceContext Current();
};

/// Fresh process-unique ids. Trace ids are mixed so concurrent daemons
/// restarted at different times rarely collide; both are never 0 (0 is
/// the "absent" sentinel).
std::uint64_t NewTraceId();
std::uint64_t NewSpanId();

/// Nanoseconds since the process's steady-clock epoch (the timestamp
/// base every SpanEvent uses).
std::uint64_t SteadyNowNs();

/// RAII adopt: installs `context` as this thread's current context and
/// restores the previous one on destruction. This is the capture/adopt
/// half of propagation — capture Current() where work is submitted,
/// adopt it where the work runs (queue jobs, pool shards).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  ~ScopedTraceContext();

 private:
  TraceContext saved_;
};

/// One completed span.
struct SpanEvent {
  std::string name;
  /// Start, nanoseconds since the process's steady-clock epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Stable small id of the recording thread (per-process, first-use
  /// ordered) — enough to see interleavings without OS thread ids.
  std::uint32_t thread = 0;
  /// Causal ids: which trace this span belongs to, its own id, and the
  /// id of the enclosing span (0 = root). All 0 for spans recorded
  /// outside any trace — they still land in the ring, just flat.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  /// Small rendered label set ('key="value",...'), e.g. the tenant and
  /// verb of a request span. Empty for most spans.
  std::string labels;
};

/// Bounded ring of recent spans.
class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// The process-wide ring (leaky singleton; never destroyed). Records
  /// into this ring bump ppdm_trace_recorded_total, and overwrites bump
  /// ppdm_trace_dropped_total, so scrapes see ring loss.
  static TraceRing& Global();

  void Record(std::string name, std::uint64_t start_ns,
              std::uint64_t duration_ns);

  /// Full-event overload: `event.thread` is stamped here.
  void Record(SpanEvent event);

  /// Recent spans, oldest first (at most `capacity` of them).
  std::vector<SpanEvent> Snapshot() const;

  /// Spans recorded since construction / Clear().
  std::uint64_t TotalRecorded() const;

  /// Spans overwritten before ever being snapshot — total minus retained.
  std::uint64_t DroppedCount() const;

  std::size_t capacity() const { return capacity_; }

  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;  // ring storage, guarded by mu_
  std::size_t next_ = 0;           // guarded by mu_
  std::uint64_t total_ = 0;        // guarded by mu_
};

/// RAII span: records [construction, destruction) into the ring (and,
/// when given one, the same duration into a latency Histogram, so a code
/// path gets aggregate percentiles and recent-event tracing from a single
/// annotation). While open, the span is this thread's current context,
/// so spans opened beneath it become its children.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, Histogram* histogram = nullptr,
                      TraceRing* ring = &TraceRing::Global(),
                      std::string labels = "");

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan();

 private:
  const char* const name_;  // null when disarmed (timing disabled)
  Histogram* const histogram_;
  TraceRing* const ring_;
  std::chrono::steady_clock::time_point start_;
  TraceContext parent_;      // context to restore on close
  std::uint64_t span_id_ = 0;
  std::string labels_;
};

/// A span whose open and close happen in different stack frames (or on
/// different threads): the daemon opens one per request at dispatch and
/// closes it in the completion callback. Value-copyable so it can ride
/// inside a std::function.
struct PendingSpan {
  const char* name = nullptr;  // null when disarmed or already ended
  std::string labels;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
};

/// Opens a pending span as a child of `parent` (does NOT touch the
/// thread-local context — install {parent.trace_id, span.span_id} with
/// ScopedTraceContext wherever descendants should attach). Disarmed
/// (name null, ids 0) when timing is disabled.
PendingSpan BeginSpan(const char* name, TraceContext parent,
                      std::string labels = "");

/// Closes `span` into `ring` and disarms it; safe to call twice.
void EndSpan(PendingSpan* span, TraceRing* ring = &TraceRing::Global());

/// Records an already-measured interval as a span under this thread's
/// current context (and, when given one, into `histogram`) — for
/// intervals whose endpoints are not scoped to one stack frame, like a
/// job's queue wait. No-op when timing is disabled.
void RecordSpan(const char* name,
                std::chrono::steady_clock::time_point start,
                std::chrono::steady_clock::time_point stop,
                Histogram* histogram = nullptr,
                TraceRing* ring = &TraceRing::Global());

/// Renders `events` as one fixed-width text line each (the `ppdm metrics
/// --spans` dump). Spans that belong to a trace get their ids appended.
std::string RenderSpans(const std::vector<SpanEvent>& events);

/// Renders `events` as Chrome trace-event JSON (chrome://tracing /
/// Perfetto "traceEvents" format, complete "X" phases in microseconds).
/// Trace/span/parent ids and labels ride in each event's args.
std::string RenderChromeTrace(const std::vector<SpanEvent>& events);

/// Renders the spans of `trace_id` as an indented tree, children under
/// parents ordered by start time — the slow-request-log format. Spans
/// whose parent is missing (evicted from the ring) print as roots.
std::string RenderSpanTree(const std::vector<SpanEvent>& events,
                           std::uint64_t trace_id);

}  // namespace ppdm::obs

#endif  // PPDM_OBS_TRACE_H_
