// Telemetry layer: a process-wide registry of named counters, gauges, and
// fixed-bucket latency histograms, with Prometheus-style text exposition.
//
// (Not to be confused with src/core/metrics.h, which computes the paper's
// *accuracy* metrics — confusion matrices and classifier evaluation. This
// header is operational telemetry: what the serving stack did and how long
// it took, never anything that feeds back into an estimate.)
//
// Design rules every instrumented hot path relies on:
//
//   * Increments never contend. Each instrument is a small array of
//     cache-line-padded per-shard atomic cells; a thread picks its shard
//     once (thread_local) and all its increments are relaxed fetch_adds on
//     that cell. Scrapes merge the shards — reads pay, writes don't.
//   * Telemetry never perturbs results. Instruments only observe (clock
//     reads, atomic bumps); no engine/api/store code path branches on a
//     metric value, so reconstruction output is byte-identical with
//     metrics enabled or disabled at any thread count (regression-tested
//     in tests/obs_test.cc).
//   * The whole layer is ThreadSanitizer-clean: atomics for the cells,
//     one mutex for registration (first-use slow path only).
//
// Instruments live in the registry and are never destroyed; fetch the
// pointer once (a function-local static in the instrumented .cc is the
// idiom) and increment forever. The global registry is a leaky singleton
// so instruments outlive every static destructor.
//
// Timing instruments (ScopedTimer, trace spans) honour a global enable
// flag — SetTimingEnabled(false) elides the clock reads and histogram
// samples for benchmarking the instrumentation itself. Plain counters and
// gauges are always on: they are paired (queue depth ++/--) and cost one
// relaxed atomic op.

#ifndef PPDM_OBS_METRICS_H_
#define PPDM_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppdm::obs {

/// When false, ScopedTimer / ScopedSpan / Histogram::Observe are no-ops
/// (no clock reads, no samples). Counters and gauges are unaffected.
void SetTimingEnabled(bool enabled);
bool TimingEnabled();

/// One label dimension of an instrument (e.g. {tenant, "t7"}).
struct Label {
  std::string key;
  std::string value;
};

/// An instrument's label dimensions. Order-insensitive: the registry
/// canonicalises via RenderLabelSet, so {a,b} and {b,a} are one series.
using LabelSet = std::vector<Label>;

/// Canonical Prometheus label body for `labels`: key-sorted `key="value"`
/// pairs joined with commas, values escaped (backslash, quote, newline).
/// The rendered string is the registry's series identity.
std::string RenderLabelSet(const LabelSet& labels);

namespace internal {

/// Number of independent cells an instrument stripes its increments over.
inline constexpr std::size_t kShards = 16;

/// This thread's fixed cell index (round-robin assigned on first use).
std::size_t ThreadShard();

/// One cache line holding one atomic, so two threads' cells never share.
struct alignas(64) Cell {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace internal

/// Monotone event count. Increment is wait-free and uncontended.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) {
    cells_[internal::ThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Merged value across shards (scrape side).
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const internal::Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (internal::Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  internal::Cell cells_[internal::kShards];
};

/// Instantaneous signed level (queue depth, open sessions). Add() stripes
/// like a counter; Set() collapses the stripes to one cell, so mixing
/// Set and concurrent Add is last-writer-wins on the Set.
class Gauge {
 public:
  void Add(std::int64_t delta) {
    cells_[internal::ThreadShard()].value.fetch_add(
        static_cast<std::uint64_t>(delta), std::memory_order_relaxed);
  }

  void Set(std::int64_t value) {
    cells_[0].value.store(static_cast<std::uint64_t>(value),
                          std::memory_order_relaxed);
    for (std::size_t s = 1; s < internal::kShards; ++s) {
      cells_[s].value.store(0, std::memory_order_relaxed);
    }
  }

  std::int64_t Value() const {
    std::uint64_t total = 0;
    for (const internal::Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return static_cast<std::int64_t>(total);
  }

  void Reset() { Set(0); }

 private:
  internal::Cell cells_[internal::kShards];
};

/// Fixed-bucket histogram: cumulative-style buckets with explicit upper
/// bounds plus an implicit +Inf bucket, a sample count, and a sample sum.
/// Observe() is two relaxed atomic adds on this thread's shard; p50/p90/
/// p99 are derived from the merged buckets on the scrape side (linear
/// interpolation inside the winning bucket — resolution is the bucket
/// width, which is what fixed-bucket quantiles always cost).
class Histogram {
 public:
  /// `bounds` must be strictly increasing upper bounds; the +Inf bucket
  /// is appended implicitly.
  explicit Histogram(std::vector<double> bounds);

  /// Records one sample (no-op while timing is disabled).
  void Observe(double value);

  /// Exponential bucket bounds: start, start*factor, ... (`count` bounds).
  static std::vector<double> ExponentialBuckets(double start, double factor,
                                                std::size_t count);

  /// The default latency grid: 1µs … ~8.4s, doubling each bucket.
  static std::vector<double> LatencyBucketsSeconds() {
    return ExponentialBuckets(1e-6, 2.0, 24);
  }

  /// Iteration-count grid for EM convergence (1 … 512, doubling).
  static std::vector<double> IterationBuckets() {
    return ExponentialBuckets(1.0, 2.0, 10);
  }

  const std::vector<double>& bounds() const { return bounds_; }

  /// Merged per-bucket counts (bounds().size() + 1 entries; the last is
  /// the +Inf bucket). A consistent-enough snapshot for reporting: each
  /// cell is read once, concurrent Observes land in this scrape or the
  /// next.
  std::vector<std::uint64_t> BucketCounts() const;

  std::uint64_t Count() const;
  double Sum() const;

  /// The q-quantile (q in [0,1]) estimated from the merged buckets; 0
  /// when empty. Samples beyond the last finite bound clamp to it.
  double Quantile(double q) const;

  void Reset();

 private:
  struct alignas(64) SumCell {
    std::atomic<std::uint64_t> bits{0};  // IEEE-754 pattern of the sum
  };

  const std::vector<double> bounds_;
  /// cells_[shard * (bounds+1) + bucket].
  std::vector<internal::Cell> cells_;
  SumCell sums_[internal::kShards];
};

/// RAII wall-clock timer recording seconds into a Histogram on scope exit.
/// Null histogram or disabled timing make it free.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(TimingEnabled() ? histogram : nullptr),
        start_(histogram_ != nullptr ? std::chrono::steady_clock::now()
                                     : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and disarms; returns the elapsed seconds (0 if disarmed).
  double Stop() {
    if (histogram_ == nullptr) return 0.0;
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
    histogram_->Observe(seconds);
    histogram_ = nullptr;
    return seconds;
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) Stop();
  }

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Process-wide instrument registry with Prometheus-style exposition.
///
/// Names follow the Prometheus grammar ([a-zA-Z_][a-zA-Z0-9_]*); the
/// optional `labels` string is the rendered label body without braces,
/// e.g. `kind="uniform"`. (name, labels) identifies the instrument:
/// re-Get'ing returns the same pointer, so function-local statics in
/// instrumented code are cheap and safe. Getting an existing name with a
/// mismatched kind or bucket layout returns the existing instrument (the
/// first registration wins) — exposition must stay consistent.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (leaky singleton; never destroyed).
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name,
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds,
                          const std::string& labels = "");

  /// Labeled-family getters: identity is (name, canonical label render),
  /// so {a,b} and {b,a} resolve to one series. Cardinality is hard-
  /// bounded: each family admits at most max_series_per_family() labeled
  /// series; once full, further *new* label sets all resolve to the
  /// family's shared `overflow="true"` series (and bump
  /// ppdm_obs_series_overflow_total) instead of evicting anything —
  /// existing series keep their pointers and identity forever, so a
  /// hostile tenant churning label values cannot unbound the exposition
  /// or invalidate a cached instrument pointer.
  Counter* GetCounter(const std::string& name, const LabelSet& labels);
  Gauge* GetGauge(const std::string& name, const LabelSet& labels);
  Histogram* GetHistogram(const std::string& name, std::vector<double> bounds,
                          const LabelSet& labels);

  /// Per-family cap on distinct labeled series (unlabeled series are
  /// exempt; the overflow series doesn't count toward it).
  static constexpr std::size_t kDefaultMaxSeriesPerFamily = 64;

  /// Test hook: tightens/loosens the labeled-series cap. Takes effect for
  /// future registrations only; never evicts.
  void set_max_series_per_family(std::size_t max);
  std::size_t max_series_per_family() const;

  /// The already-registered histogram, or null — the read-only side used
  /// by reporters that render percentiles for instruments someone else
  /// owns (bench_util's ThroughputReporter).
  const Histogram* FindHistogram(const std::string& name,
                                 const std::string& labels = "") const;

  /// Prometheus text exposition: `# TYPE` per family, then one
  /// `name{labels} value` line per sample — counters and gauges one line
  /// each, histograms the cumulative `_bucket{le=...}` series plus
  /// `_sum`/`_count`. Families render in lexicographic name order, so the
  /// output is stable across runs for a fixed set of touched instruments.
  std::string RenderText() const;

  /// Zeroes every registered instrument (instruments stay registered and
  /// pointers stay valid). Test/bench hook.
  void ResetAll();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Instrument {
    Kind kind;
    std::string name;
    std::string labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Instrument* FindLocked(const std::string& name, const std::string& labels);
  Instrument* GetOrCreateLocked(Kind kind, const std::string& name,
                                const std::string& labels,
                                std::vector<double>* bounds);
  /// `labels` if the family still has room for it, else the overflow
  /// identity (bumping the overflow counter).
  std::string AdmitSeriesLocked(const std::string& name,
                                const std::string& labels);

  mutable std::mutex mu_;
  /// Registration order; deque so Instrument addresses are stable.
  std::deque<Instrument> instruments_;
  std::size_t max_series_per_family_ = kDefaultMaxSeriesPerFamily;  // mu_
};

}  // namespace ppdm::obs

#endif  // PPDM_OBS_METRICS_H_
