// Blocking client for the serving daemon's frame protocol: one TCP
// connection, synchronous request/response, typed wrappers per verb. The
// loadgen driver, the daemon loopback tests, and the serve benchmark all
// speak through this class; raw Send/Read escape hatches exist so tests
// can pipeline frames and inject hostile bytes.
//
// Error surfaces are kept distinct on purpose: transport and framing
// failures come back as the Call()'s own Status (kIoError, kUnavailable,
// kDataLoss...), while a server-side refusal (rate limit, shed, expired
// deadline, handler error) arrives as a *successful* Call whose response
// envelope carries the error — exactly what the daemon promised: protocol
// errors are data, the connection keeps serving.

#ifndef PPDM_NET_CLIENT_H_
#define PPDM_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/dataset_session.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/socket.h"

namespace ppdm::net {

/// What an open verb answered.
struct OpenResult {
  /// True when the daemon served existing state (already open, or
  /// re-admitted from a checkpoint under --resume) instead of opening
  /// fresh.
  bool resumed = false;
  std::uint64_t record_count = 0;
};

/// One attribute's reconstruction as it travels over the wire.
struct AttributeEstimate {
  std::vector<double> masses;
  std::uint64_t iterations = 0;
  std::uint64_t sample_count = 0;
};

/// A connected daemon client. Move-only (owns the socket); not
/// thread-safe — one connection per thread is the intended shape.
class Client {
 public:
  static Result<Client> Connect(const std::string& host, int port);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One request/response round trip. The returned Status covers
  /// transport and framing only; the server's verdict (possibly an error)
  /// is the ResponseBody's status.
  Result<ResponseBody> Call(Verb verb, std::uint64_t tenant,
                            std::uint32_t ttl_ms, std::string_view payload);

  // Typed wrappers: Call + payload codec, with the envelope's error
  // status propagated as the wrapper's error.

  Result<OpenResult> Open(std::uint64_t tenant,
                          const api::DatasetSessionSpec& spec,
                          std::uint32_t ttl_ms = 0);

  /// Sends `rows * cols` row-major perturbed values; returns the tenant's
  /// record count after the fold.
  Result<std::uint64_t> Ingest(std::uint64_t tenant, std::uint64_t rows,
                               std::uint64_t cols,
                               const std::vector<double>& values,
                               std::uint32_t ttl_ms = 0);

  Result<std::vector<AttributeEstimate>> Reconstruct(std::uint64_t tenant,
                                                     std::uint32_t ttl_ms = 0);

  /// Checkpoints the tenant through the daemon's store; returns the
  /// capture size in bytes.
  Result<std::uint64_t> Snapshot(std::uint64_t tenant,
                                 std::uint32_t ttl_ms = 0);

  Status CloseTenant(std::uint64_t tenant, std::uint32_t ttl_ms = 0);

  /// The daemon's metrics exposition (the stats verb).
  Result<std::string> Stats(std::uint32_t ttl_ms = 0);

  /// The daemon's recent-span ring as Chrome trace-event JSON (the stats
  /// verb with the trace flag byte).
  Result<std::string> Trace(std::uint32_t ttl_ms = 0);

  /// Trace id attached to every subsequent Call (0 = none; requests then
  /// ride v1 frames and the daemon mints its own ids). Lets a caller
  /// stitch the daemon's span tree into its own trace.
  void set_trace_id(std::uint64_t trace_id) { trace_id_ = trace_id; }
  std::uint64_t trace_id() const { return trace_id_; }

  // Escape hatches for protocol tests.

  /// Writes arbitrary bytes on the connection (hostile frames, pipelined
  /// batches).
  Status SendRaw(std::string_view bytes);

  /// Reads exactly one response frame (header + verified body).
  Result<Frame> ReadFrame();

  int fd() const { return sock_.fd(); }

 private:
  explicit Client(Socket sock) : sock_(std::move(sock)) {}

  Socket sock_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t trace_id_ = 0;
};

}  // namespace ppdm::net

#endif  // PPDM_NET_CLIENT_H_
