// Thin POSIX socket layer under the net subsystem: an owning fd wrapper
// and the handful of TCP operations the server and client need. Every
// failure is a Status carrying errno context — callers never see raw
// return codes — and EINTR is retried at this layer so nothing above it
// has to care.

#ifndef PPDM_NET_SOCKET_H_
#define PPDM_NET_SOCKET_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace ppdm::net {

/// Owning file descriptor; move-only, closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  /// Closes now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to host:port (port 0 picks an ephemeral
/// port — read it back with BoundPort). SO_REUSEADDR is set; the socket
/// is left blocking (the event loop switches accepted fds as needed).
Result<Socket> ListenTcp(const std::string& host, int port, int backlog);

/// The locally bound port of a listening socket.
Result<int> BoundPort(const Socket& socket);

/// A connected blocking TCP socket to host:port (TCP_NODELAY set — the
/// protocol is request/response over small frames).
Result<Socket> ConnectTcp(const std::string& host, int port);

/// Marks `fd` non-blocking.
Status SetNonBlocking(int fd);

/// Writes all of `bytes` to a blocking socket (EINTR-safe loop). Sends
/// with MSG_NOSIGNAL: a peer that reset the connection is an EPIPE
/// Status, never a process-killing SIGPIPE.
Status WriteAll(int fd, std::string_view bytes);

/// Reads exactly `size` bytes into `buf` from a blocking socket;
/// kUnavailable("connection closed") on EOF before `size` bytes.
Status ReadExact(int fd, char* buf, std::size_t size);

}  // namespace ppdm::net

#endif  // PPDM_NET_SOCKET_H_
