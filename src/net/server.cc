#include "net/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "obs/trace.h"
#include "store/codec.h"
#include "store/session_codec.h"

namespace ppdm::net {
namespace {

/// Read chunk per POLLIN wakeup; frames larger than this assemble across
/// chunks in the connection's input buffer.
constexpr std::size_t kReadChunk = 64 * 1024;

/// Poll timeouts: long when idle (the self-pipe delivers wakeups), short
/// while draining so the exit condition is re-checked promptly.
constexpr int kIdlePollMs = 200;
constexpr int kDrainPollMs = 20;

obs::Counter* NetCounter(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name);
}

}  // namespace

std::string TenantName(std::uint64_t tenant) {
  return StrFormat("t%llu", static_cast<unsigned long long>(tenant));
}

/// One live client connection. The event-loop thread owns the socket, the
/// input buffer, and the parse/close state; the outbox is the one piece
/// workers touch (completion callbacks append responses), so it sits
/// behind its own mutex.
struct Server::Connection {
  Socket sock;

  // Event-loop thread only.
  std::string inbuf;
  bool close_after_flush = false;
  bool paused = false;

  std::mutex mu;
  std::string outbuf;       // guarded by mu
  std::size_t out_pos = 0;  // guarded by mu

  /// Requests dispatched and not yet answered (paired with the server's
  /// global count); atomics because workers decrement on completion.
  std::atomic<std::size_t> in_flight{0};
  /// Set by CloseConnection so late completions drop their responses.
  std::atomic<bool> closed{false};
};

Server::Server(const ServerOptions& options)
    : options_(options),
      limiter_(options.tenant_rate, options.tenant_burst),
      connections_total_(NetCounter("ppdm_net_connections_total")),
      connections_open_(
          obs::MetricsRegistry::Global().GetGauge("ppdm_net_connections_open")),
      protocol_errors_(NetCounter("ppdm_net_protocol_errors_total")),
      rate_limited_(NetCounter("ppdm_net_rate_limited_total")),
      read_pauses_(NetCounter("ppdm_net_read_pauses_total")),
      bytes_read_(NetCounter("ppdm_net_bytes_read_total")),
      bytes_written_(NetCounter("ppdm_net_bytes_written_total")),
      drain_checkpoints_metric_(
          NetCounter("ppdm_net_drain_checkpoints_total")),
      request_seconds_(obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_net_request_seconds",
          obs::Histogram::LatencyBucketsSeconds())),
      slow_requests_(NetCounter("ppdm_net_slow_requests_total")) {
  for (std::uint32_t v = 0; v <= 6; ++v) {
    verb_requests_[v] = obs::MetricsRegistry::Global().GetCounter(
        "ppdm_net_requests_total",
        StrFormat("verb=\"%s\"", v == 0 ? "unknown" : VerbName(v).c_str()));
  }
}

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  if (options.max_connections == 0) {
    return Status::InvalidArgument("max_connections must be positive");
  }
  if (options.connection_window == 0) {
    return Status::InvalidArgument("connection_window must be positive");
  }
  std::unique_ptr<Server> server(new Server(options));
  PPDM_RETURN_IF_ERROR(server->Init());
  return server;
}

Status Server::Init() {
  if (!options_.checkpoint_dir.empty()) {
    PPDM_ASSIGN_OR_RETURN(store::SnapshotStore store,
                          store::SnapshotStore::Open(options_.checkpoint_dir));
    snapshots_.emplace(store);
    spill_.emplace(std::move(store));
  }

  engine::BatchOptions batch;
  batch.num_threads = options_.num_threads;
  batch.shard_size = options_.shard_size;
  api::ServiceOptions service_options;
  service_options.max_pending = options_.max_pending;
  PPDM_ASSIGN_OR_RETURN(service_,
                        api::Service::Create(batch, service_options));

  api::SessionRegistryOptions registry_options;
  registry_options.max_bytes = options_.registry_max_bytes;
  registry_options.spill = spill_.has_value() ? &*spill_ : nullptr;
  registry_ = std::make_unique<api::SessionRegistry>(registry_options,
                                                     service_->pool());

  PPDM_ASSIGN_OR_RETURN(
      listener_, ListenTcp(options_.host, options_.port, /*backlog=*/128));
  PPDM_RETURN_IF_ERROR(SetNonBlocking(listener_.fd()));
  PPDM_ASSIGN_OR_RETURN(port_, BoundPort(listener_));

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::IoError(
        StrFormat("pipe: %s", std::strerror(errno)));
  }
  wake_read_ = Socket(pipe_fds[0]);
  wake_write_ = Socket(pipe_fds[1]);
  PPDM_RETURN_IF_ERROR(SetNonBlocking(wake_read_.fd()));
  PPDM_RETURN_IF_ERROR(SetNonBlocking(wake_write_.fd()));

  loop_thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

Server::~Server() { (void)Stop(); }

void Server::RequestStop() {
  draining_.store(true, std::memory_order_release);
  // Async-signal-safe wakeup; a full pipe already guarantees a wakeup.
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_write_.fd(), &byte, 1);
}

void Server::Wake() {
  const char byte = 0;
  [[maybe_unused]] ssize_t n = ::write(wake_write_.fd(), &byte, 1);
}

void Server::AwaitLoopExit() {
  std::unique_lock<std::mutex> lock(loop_mu_);
  loop_cv_.wait(lock, [this] { return loop_exited_; });
}

Status Server::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (stopped_) return stop_status_;
  RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop exited with every dispatched request answered; Drain() closes
  // admission and catches any straggler the loop could not wait for.
  service_->Drain();
  stop_status_ = CheckpointAll();
  stopped_ = true;
  return stop_status_;
}

std::size_t Server::tenant_count() const {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  return tenants_.size();
}

Status Server::CheckpointAll() {
  drained_checkpoints_ = 0;
  if (!snapshots_.has_value()) return Status::Ok();
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    names = tenants_;
  }
  Status first_failure = Status::Ok();
  for (const std::string& name : names) {
    Result<std::shared_ptr<api::DatasetSession>> session =
        registry_->TryLookup(name);
    if (!session.ok()) {
      if (session.status().code() == StatusCode::kNotFound) continue;
      if (first_failure.ok()) first_failure = session.status();
      continue;
    }
    const std::string bytes = store::EncodeDatasetSession(*session.value());
    if (Status put = snapshots_->Put(name, bytes); !put.ok()) {
      if (first_failure.ok()) first_failure = put;
      continue;
    }
    ++drained_checkpoints_;
    drain_checkpoints_metric_->Increment();
  }
  return first_failure;
}

void Server::Loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  while (true) {
    const bool draining = draining_.load(std::memory_order_acquire);

    // Paused connections re-check their window each iteration (a worker
    // completing a request wakes the loop); buffered frames parse first.
    for (const std::shared_ptr<Connection>& conn : connections_) {
      if (conn->paused && !draining) ParseFrames(conn);
    }

    fds.clear();
    polled.clear();
    fds.push_back({wake_read_.fd(), POLLIN, 0});
    const bool accepting =
        !draining && connections_.size() < options_.max_connections;
    if (accepting) fds.push_back({listener_.fd(), POLLIN, 0});

    // Drain exit needs "no in-flight work AND every outbox flushed".
    // In-flight is loaded BEFORE the outbox scan: a completion appends its
    // response before decrementing, so a zero read here guarantees the
    // scan below sees every append — the reverse order could miss one.
    const bool no_in_flight =
        global_in_flight_.load(std::memory_order_acquire) == 0;

    bool pending_writes = false;
    for (const std::shared_ptr<Connection>& conn : connections_) {
      short events = 0;
      if (!draining && !conn->paused && !conn->close_after_flush) {
        events |= POLLIN;
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->out_pos < conn->outbuf.size()) {
          events |= POLLOUT;
          pending_writes = true;
        }
      }
      if (events == 0) continue;
      fds.push_back({conn->sock.fd(), events, 0});
      polled.push_back(conn);
    }

    if (draining && no_in_flight && !pending_writes) break;

    const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                             draining ? kDrainPollMs : kIdlePollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;

    std::size_t index = 0;
    if (fds[index].revents & POLLIN) {
      char buf[256];
      while (::read(wake_read_.fd(), buf, sizeof(buf)) > 0) {
      }
    }
    ++index;
    if (accepting) {
      if (fds[index].revents & POLLIN) AcceptReady();
      ++index;
    }

    for (std::size_t c = 0; c < polled.size(); ++c, ++index) {
      const std::shared_ptr<Connection>& conn = polled[c];
      const short revents = fds[index].revents;
      if (revents == 0 || conn->closed.load(std::memory_order_acquire)) {
        continue;
      }
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (revents & POLLOUT) FlushWrites(conn);
      if (conn->closed.load(std::memory_order_acquire)) continue;
      if (revents & (POLLIN | POLLHUP)) {
        if (ReadReady(conn)) {
          ParseFrames(conn);
        } else {
          CloseConnection(conn);
        }
      }
    }
  }

  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    loop_exited_ = true;
  }
  loop_cv_.notify_all();
}

void Server::AcceptReady() {
  while (connections_.size() < options_.max_connections) {
    const int fd = ::accept(listener_.fd(), nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN/EWOULDBLOCK: backlog drained; anything else waits for the
      // next poll round too (a dying peer must not kill the loop).
      return;
    }
    auto conn = std::make_shared<Connection>();
    conn->sock = Socket(fd);
    if (!SetNonBlocking(fd).ok()) continue;  // conn closes on scope exit
    connections_.push_back(std::move(conn));
    connections_total_->Increment();
    connections_open_->Add(1);
  }
}

bool Server::ReadReady(const std::shared_ptr<Connection>& conn) {
  char buf[kReadChunk];
  while (true) {
    const ssize_t n = ::read(conn->sock.fd(), buf, sizeof(buf));
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<std::size_t>(n));
      bytes_read_->Increment(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool Server::ShouldPause(const Connection& conn) const {
  if (conn.in_flight.load(std::memory_order_acquire) >=
      options_.connection_window) {
    return true;
  }
  return options_.max_pending > 0 &&
         global_in_flight_.load(std::memory_order_acquire) >=
             options_.max_pending;
}

void Server::ParseFrames(const std::shared_ptr<Connection>& conn) {
  std::size_t pos = 0;
  bool paused = false;
  while (!conn->close_after_flush) {
    if (ShouldPause(*conn)) {
      paused = true;
      break;
    }
    const std::string_view rest =
        std::string_view(conn->inbuf).substr(pos);
    // Headers are variable-length since protocol v2 (optional trace id):
    // HeaderBytesNeeded answers "wait for more" vs. "judge now".
    if (HeaderBytesNeeded(rest) > 0) break;
    Result<FrameHeader> header =
        DecodeHeader(rest, options_.max_body_bytes);
    if (!header.ok()) {
      // HeaderBytesNeeded returned 0, so this is never mere truncation —
      // every failure (bad magic, future version, hostile trace id,
      // oversized body) is a poisoned stream: answer once, flush, close.
      protocol_errors_->Increment();
      EnqueueResponse(conn, FrameHeader{}, header.status(), "");
      conn->close_after_flush = true;
      break;
    }
    const std::size_t header_size = header.value().header_size;
    if (rest.size() - header_size < header.value().body_length) break;
    const std::string_view body =
        rest.substr(header_size,
                    static_cast<std::size_t>(header.value().body_length));
    if (Status verified = VerifyBody(header.value(), body); !verified.ok()) {
      protocol_errors_->Increment();
      EnqueueResponse(conn, header.value(), verified, "");
      conn->close_after_flush = true;
      break;
    }
    pos += header_size + body.size();
    Dispatch(conn, header.value(), std::string(body));
  }
  if (paused && !conn->paused) read_pauses_->Increment();
  conn->paused = paused;
  if (pos > 0) conn->inbuf.erase(0, pos);
}

void Server::Dispatch(const std::shared_ptr<Connection>& conn,
                      const FrameHeader& header, std::string body) {
  verb_requests_[KnownVerb(header.verb) ? header.verb : 0]->Increment();
  if (!KnownVerb(header.verb)) {
    // Framing is intact — the connection survives an unknown verb.
    EnqueueResponse(
        conn, header,
        Status::InvalidArgument(StrFormat(
            "unknown verb %s", VerbName(header.verb).c_str())),
        "");
    return;
  }
  if (static_cast<Verb>(header.verb) == Verb::kStats) {
    // Cheap and read-only: answered inline on the event loop, so stats
    // stay scrapeable even when the workers are saturated. The flag byte
    // 0x01 also appends the span ring as Chrome trace JSON.
    const bool want_trace = body.size() == 1 && body[0] == '\x01';
    if (!body.empty() && !want_trace) {
      EnqueueResponse(conn, header,
                      Status::InvalidArgument("unknown stats request flags"),
                      "");
      return;
    }
    EnqueueResponse(conn, header, Status::Ok(), [want_trace] {
      store::Writer writer;
      writer.PutString(obs::MetricsRegistry::Global().RenderText());
      if (want_trace) {
        writer.PutString(
            obs::RenderChromeTrace(obs::TraceRing::Global().Snapshot()));
      }
      return writer.Take();
    }());
    return;
  }
  if (!limiter_.Admit(header.tenant, std::chrono::steady_clock::now())) {
    rate_limited_->Increment();
    EnqueueResponse(conn, header,
                    Status::ResourceExhausted(StrFormat(
                        "tenant %llu rate-limited",
                        static_cast<unsigned long long>(header.tenant))),
                    "");
    return;
  }

  conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
  global_in_flight_.fetch_add(1, std::memory_order_acq_rel);
  api::SubmitOptions submit;
  if (header.ttl_ms > 0) {
    submit = api::SubmitOptions::After(
        std::chrono::microseconds(std::uint64_t{header.ttl_ms} * 1000));
  }
  const std::string tenant_name = TenantName(header.tenant);
  obs::MetricsRegistry::Global()
      .GetCounter("ppdm_tenant_requests_total", {{"tenant", tenant_name}})
      ->Increment();
  obs::MetricsRegistry::Global()
      .GetCounter("ppdm_tenant_bytes_total", {{"tenant", tenant_name}})
      ->Increment(body.size());
  // The request's root span: opened here, closed in the completion
  // callback (possibly on a worker). A v2 frame's client trace id wins
  // so the caller can stitch our tree into its own; otherwise mint one.
  const std::uint64_t trace_id =
      header.trace_id != 0 ? header.trace_id : obs::NewTraceId();
  obs::PendingSpan request_span = obs::BeginSpan(
      "net.request", obs::TraceContext{trace_id, 0},
      obs::RenderLabelSet(
          {{"tenant", tenant_name}, {"verb", VerbName(header.verb)}}));
  const auto started = std::chrono::steady_clock::now();
  // Installed for the duration of Submit: the service captures it with
  // the job, so the queue/run spans (and everything under the handler)
  // become children of the request span, whichever worker runs them.
  obs::ScopedTraceContext request_ctx(
      obs::TraceContext{trace_id, request_span.span_id});
  auto handle = service_->Submit<std::string>(
      [this, header, body = std::move(body)]() {
        return HandleVerb(header, body);
      },
      submit);
  handle.OnComplete([this, conn, header, started, tenant_name, trace_id,
                     request_span](const Result<std::string>& result) mutable {
    // Shed / expired / cancelled / handler errors all arrive here as the
    // result's Status and travel back inside the response envelope.
    obs::EndSpan(&request_span);
    if (obs::TimingEnabled()) {
      const double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        started)
              .count();
      request_seconds_->Observe(seconds);
      obs::MetricsRegistry::Global()
          .GetHistogram("ppdm_tenant_request_seconds",
                        obs::Histogram::LatencyBucketsSeconds(),
                        obs::LabelSet{{"tenant", tenant_name}})
          ->Observe(seconds);
      if (options_.slow_request_ms > 0.0 &&
          seconds * 1e3 >= options_.slow_request_ms) {
        slow_requests_->Increment();
        const std::string tree = obs::RenderSpanTree(
            obs::TraceRing::Global().Snapshot(), trace_id);
        std::fprintf(stderr,
                     "[served] slow request (%.1f ms >= %.1f ms): %s\n%s",
                     seconds * 1e3, options_.slow_request_ms,
                     tenant_name.c_str(), tree.c_str());
        std::lock_guard<std::mutex> lock(slow_mu_);
        last_slow_tree_ = tree;
      }
    }
    EnqueueResponse(conn, header,
                    result.ok() ? Status::Ok() : result.status(),
                    result.ok() ? result.value() : std::string());
    conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
    global_in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    Wake();
  });
}

std::string Server::LastSlowRequestTree() const {
  std::lock_guard<std::mutex> lock(slow_mu_);
  return last_slow_tree_;
}

void Server::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                             const FrameHeader& request, const Status& status,
                             std::string_view payload) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  const std::string frame =
      EncodeFrame(request.verb, request.request_id, request.tenant,
                  /*ttl_ms=*/0, EncodeResponseBody(status, payload));
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->outbuf.append(frame);
}

void Server::FlushWrites(const std::shared_ptr<Connection>& conn) {
  bool done = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (conn->out_pos < conn->outbuf.size()) {
      // MSG_NOSIGNAL: a client that resets with unread data must cost an
      // EPIPE on this connection, not a SIGPIPE that kills every tenant.
      const ssize_t n =
          ::send(conn->sock.fd(), conn->outbuf.data() + conn->out_pos,
                 conn->outbuf.size() - conn->out_pos, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        done = true;  // broken pipe: close below
        conn->close_after_flush = true;
        break;
      }
      conn->out_pos += static_cast<std::size_t>(n);
      bytes_written_->Increment(static_cast<std::uint64_t>(n));
    }
    if (conn->out_pos == conn->outbuf.size()) {
      conn->outbuf.clear();
      conn->out_pos = 0;
      done = true;
    }
  }
  if (done && conn->close_after_flush) CloseConnection(conn);
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  conn->sock.Close();
  connections_open_->Add(-1);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (it->get() == conn.get()) {
      connections_.erase(it);
      break;
    }
  }
}

Result<std::string> Server::HandleVerb(const FrameHeader& header,
                                       const std::string& body) {
  switch (static_cast<Verb>(header.verb)) {
    case Verb::kOpen:
      return HandleOpen(header.tenant, body);
    case Verb::kIngest:
      return HandleIngest(header.tenant, body);
    case Verb::kReconstruct:
      return HandleReconstruct(header.tenant);
    case Verb::kSnapshot:
      return HandleSnapshot(header.tenant);
    case Verb::kClose:
      return HandleClose(header.tenant);
    case Verb::kStats:
      break;  // answered inline in Dispatch
  }
  return Status::Internal(
      StrFormat("verb %s reached the worker path",
                VerbName(header.verb).c_str()));
}

Result<std::shared_ptr<api::DatasetSession>> Server::LookupTenant(
    std::uint64_t tenant) {
  Result<std::shared_ptr<api::DatasetSession>> session =
      registry_->TryLookup(TenantName(tenant));
  if (!session.ok() && session.status().code() == StatusCode::kNotFound) {
    return Status::NotFound(StrFormat(
        "tenant %llu is not open (send an open frame first)",
        static_cast<unsigned long long>(tenant)));
  }
  return session;
}

Result<std::string> Server::HandleOpen(std::uint64_t tenant,
                                       const std::string& body) {
  store::Reader reader(body);
  PPDM_ASSIGN_OR_RETURN(const api::DatasetSessionSpec spec,
                        store::DecodeDatasetSessionSpec(&reader));
  const std::string name = TenantName(tenant);

  bool known;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    known = tenants_.count(name) > 0;
  }
  if (!known && !options_.resume && snapshots_.has_value() &&
      snapshots_->Contains(name)) {
    // A fresh (non-resume) daemon must not silently resurrect a previous
    // life's capture: the first open of the tenant supersedes it.
    PPDM_RETURN_IF_ERROR(snapshots_->Delete(name));
  }

  bool resumed = false;
  std::shared_ptr<api::DatasetSession> session;
  Result<std::shared_ptr<api::DatasetSession>> looked =
      registry_->TryLookup(name);
  if (looked.ok()) {
    // Already open this life, or re-admitted from a capture (the resume
    // path). Open is idempotent either way.
    session = std::move(looked.value());
    resumed = true;
  } else if (looked.status().code() == StatusCode::kNotFound) {
    Result<std::shared_ptr<api::DatasetSession>> opened =
        registry_->Open(name, spec);
    if (opened.ok()) {
      session = std::move(opened.value());
    } else if (opened.status().code() == StatusCode::kFailedPrecondition) {
      // Lost an open race against a concurrent request for the same
      // tenant; serve the winner's session.
      PPDM_ASSIGN_OR_RETURN(session, registry_->TryLookup(name));
      resumed = true;
    } else {
      return opened.status();
    }
  } else {
    return looked.status();  // corrupt or unreadable capture
  }

  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_.insert(name);
  }
  store::Writer writer;
  writer.PutU8(resumed ? 1 : 0);
  writer.PutU64(session->record_count());
  return writer.Take();
}

Result<std::string> Server::HandleIngest(std::uint64_t tenant,
                                         const std::string& body) {
  store::Reader reader(body);
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t rows, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t cols, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::vector<double> values,
                        reader.ReadDoubleArray());
  // Exact shape match, division-only so rows*cols can never overflow:
  // values.size() == rows*cols iff size/rows == cols && size%rows == 0.
  if (cols == 0 ||
      (rows == 0 ? !values.empty()
                 : (values.size() / rows != cols ||
                    values.size() % rows != 0))) {
    return Status::InvalidArgument(
        StrFormat("ingest shape %llux%llu does not match %zu values",
                  static_cast<unsigned long long>(rows),
                  static_cast<unsigned long long>(cols), values.size()));
  }
  PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> session,
                        LookupTenant(tenant));
  const std::size_t width = session->spec().schema.NumFields();
  if (static_cast<std::size_t>(cols) != width) {
    return Status::InvalidArgument(
        StrFormat("ingest rows are %llu wide, tenant schema has %zu fields",
                  static_cast<unsigned long long>(cols), width));
  }
  if (rows > 0) {
    const data::RowBatch batch(values.data(),
                               static_cast<std::size_t>(rows),
                               static_cast<std::size_t>(cols));
    PPDM_RETURN_IF_ERROR(session->Ingest(batch));
  }
  store::Writer writer;
  writer.PutU64(session->record_count());
  return writer.Take();
}

Result<std::string> Server::HandleReconstruct(std::uint64_t tenant) {
  PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> session,
                        LookupTenant(tenant));
  PPDM_ASSIGN_OR_RETURN(
      const std::vector<reconstruct::Reconstruction> estimates,
      session->ReconstructAll());
  store::Writer writer;
  writer.PutU64(estimates.size());
  for (const reconstruct::Reconstruction& estimate : estimates) {
    writer.PutU64(estimate.iterations);
    writer.PutU64(estimate.sample_count);
    writer.PutDoubleArray(estimate.masses);
  }
  return writer.Take();
}

Result<std::string> Server::HandleSnapshot(std::uint64_t tenant) {
  if (!snapshots_.has_value()) {
    return Status::FailedPrecondition(
        "daemon has no checkpoint directory (start with --checkpoint-dir)");
  }
  PPDM_ASSIGN_OR_RETURN(const std::shared_ptr<api::DatasetSession> session,
                        LookupTenant(tenant));
  const std::string bytes = store::EncodeDatasetSession(*session);
  PPDM_RETURN_IF_ERROR(snapshots_->Put(TenantName(tenant), bytes));
  store::Writer writer;
  writer.PutU64(bytes.size());
  return writer.Take();
}

Result<std::string> Server::HandleClose(std::uint64_t tenant) {
  const std::string name = TenantName(tenant);
  if (!registry_->Close(name)) {
    return Status::NotFound(StrFormat(
        "tenant %llu is not open", static_cast<unsigned long long>(tenant)));
  }
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants_.erase(name);
  }
  limiter_.Forget(tenant);
  return std::string();
}

}  // namespace ppdm::net
