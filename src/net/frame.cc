#include "net/frame.h"

#include "common/strings.h"
#include "store/codec.h"

namespace ppdm::net {

std::string VerbName(std::uint32_t verb) {
  switch (static_cast<Verb>(verb)) {
    case Verb::kOpen: return "open";
    case Verb::kIngest: return "ingest";
    case Verb::kReconstruct: return "reconstruct";
    case Verb::kSnapshot: return "snapshot";
    case Verb::kClose: return "close";
    case Verb::kStats: return "stats";
  }
  return StrFormat("verb#%u", verb);
}

bool KnownVerb(std::uint32_t verb) {
  return verb >= static_cast<std::uint32_t>(Verb::kOpen) &&
         verb <= static_cast<std::uint32_t>(Verb::kStats);
}

namespace {

/// Little-endian u32 read straight off the buffer — HeaderBytesNeeded
/// peeks at the version and trace-length words before a Reader pass is
/// worth setting up.
std::uint32_t PeekU32(std::string_view bytes, std::size_t offset) {
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(bytes[offset + i]));
  };
  return byte(0) | byte(1) << 8 | byte(2) << 16 | byte(3) << 24;
}

/// Offset of the v2 trace-length word (just after ttl_ms).
constexpr std::size_t kTraceLenOffset = 32;

/// Wire size of a v2 header with `trace_chars` hex chars of trace id.
constexpr std::size_t V2HeaderSize(std::size_t trace_chars) {
  return 48 + trace_chars;
}

}  // namespace

std::string EncodeFrame(std::uint32_t verb, std::uint64_t request_id,
                        std::uint64_t tenant, std::uint32_t ttl_ms,
                        std::string_view body, std::uint64_t trace_id) {
  store::Writer writer;
  writer.PutU32(kFrameMagic);
  writer.PutU32(trace_id == 0 ? 1u : 2u);  // v1 unless a trace id rides
  writer.PutU32(verb);
  writer.PutU64(request_id);
  writer.PutU64(tenant);
  writer.PutU32(ttl_ms);
  std::string frame;
  if (trace_id != 0) {
    writer.PutU32(kMaxTraceHexChars);
    frame = writer.Take();
    frame += StrFormat("%016llx", static_cast<unsigned long long>(trace_id));
  } else {
    frame = writer.Take();
  }
  store::Writer tail;
  tail.PutU64(body.size());
  tail.PutU32(store::Crc32(body));
  frame += tail.Take();
  frame.append(body.data(), body.size());
  return frame;
}

std::size_t HeaderBytesNeeded(std::string_view bytes) {
  // Enough to check the magic first: a non-frame prefix must fail fast,
  // not wait for bytes that will never come.
  if (bytes.size() < 4) return 4 - bytes.size();
  if (PeekU32(bytes, 0) != kFrameMagic) return 0;
  if (bytes.size() < 8) return 8 - bytes.size();
  if (PeekU32(bytes, 4) != 2) {
    // v1 (and any unsupported version, which a 44-byte prefix suffices
    // to report) uses the fixed layout.
    return bytes.size() < kHeaderSize ? kHeaderSize - bytes.size() : 0;
  }
  if (bytes.size() < kTraceLenOffset + 4) {
    return kTraceLenOffset + 4 - bytes.size();
  }
  const std::uint32_t trace_chars = PeekU32(bytes, kTraceLenOffset);
  if (trace_chars > kMaxTraceHexChars) return 0;  // hostile — report now
  const std::size_t total = V2HeaderSize(trace_chars);
  return bytes.size() < total ? total - bytes.size() : 0;
}

Result<FrameHeader> DecodeHeader(std::string_view bytes,
                                 std::uint64_t max_body_bytes) {
  if (bytes.size() >= 4 && PeekU32(bytes, 0) != kFrameMagic) {
    return Status::InvalidArgument("not a ppdm net frame (bad magic)");
  }
  if (bytes.size() < 8) {
    return Status::IoError(
        StrFormat("truncated frame header: %zu of at least %zu bytes",
                  bytes.size(), static_cast<std::size_t>(8)));
  }
  FrameHeader header;
  header.version = PeekU32(bytes, 4);
  if (header.version == 0 || header.version > kProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("frame version %u not supported (this peer speaks 1..%u)",
                  header.version, kProtocolVersion));
  }
  std::size_t trace_chars = 0;
  if (header.version == 2) {
    if (bytes.size() < kTraceLenOffset + 4) {
      return Status::IoError(
          StrFormat("truncated frame header: %zu of at least %zu bytes",
                    bytes.size(), kTraceLenOffset + 4));
    }
    const std::uint32_t declared = PeekU32(bytes, kTraceLenOffset);
    if (declared > kMaxTraceHexChars) {
      return Status::InvalidArgument(
          StrFormat("trace id of %u chars exceeds the %u-char cap", declared,
                    kMaxTraceHexChars));
    }
    trace_chars = declared;
    header.header_size = V2HeaderSize(trace_chars);
  } else {
    header.header_size = kHeaderSize;
  }
  if (bytes.size() < header.header_size) {
    return Status::IoError(
        StrFormat("truncated frame header: %zu of %zu bytes", bytes.size(),
                  header.header_size));
  }
  store::Reader reader(bytes.substr(8, 24));
  PPDM_ASSIGN_OR_RETURN(header.verb, reader.ReadU32());
  PPDM_ASSIGN_OR_RETURN(header.request_id, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(header.tenant, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(header.ttl_ms, reader.ReadU32());
  std::size_t tail_offset = kTraceLenOffset;
  if (header.version == 2) {
    // Trace id: hex chars from an untrusted peer. Anything but lowercase
    // hex naming a nonzero u64 is hostile.
    for (std::size_t i = 0; i < trace_chars; ++i) {
      const char c = bytes[kTraceLenOffset + 4 + i];
      const std::uint64_t digit =
          c >= '0' && c <= '9'   ? static_cast<std::uint64_t>(c - '0')
          : c >= 'a' && c <= 'f' ? static_cast<std::uint64_t>(c - 'a' + 10)
                                 : 16;
      if (digit >= 16) {
        return Status::InvalidArgument(
            "frame trace id holds non-hex characters");
      }
      header.trace_id = header.trace_id << 4 | digit;
    }
    if (trace_chars > 0 && header.trace_id == 0) {
      return Status::InvalidArgument("frame trace id must be nonzero");
    }
    tail_offset = kTraceLenOffset + 4 + trace_chars;
  }
  store::Reader tail(bytes.substr(tail_offset, 12));
  PPDM_ASSIGN_OR_RETURN(header.body_length, tail.ReadU64());
  if (header.body_length > max_body_bytes) {
    return Status::ResourceExhausted(
        StrFormat("frame body of %llu bytes exceeds the %llu-byte cap",
                  static_cast<unsigned long long>(header.body_length),
                  static_cast<unsigned long long>(max_body_bytes)));
  }
  PPDM_ASSIGN_OR_RETURN(header.body_crc, tail.ReadU32());
  return header;
}

Status VerifyBody(const FrameHeader& header, std::string_view body) {
  if (body.size() != header.body_length) {
    return Status::IoError(
        StrFormat("frame body is %zu bytes, header promised %llu",
                  body.size(),
                  static_cast<unsigned long long>(header.body_length)));
  }
  if (store::Crc32(body) != header.body_crc) {
    return Status::DataLoss("frame body CRC mismatch");
  }
  return Status::Ok();
}

Result<Frame> DecodeFrame(std::string_view bytes,
                          std::uint64_t max_body_bytes) {
  PPDM_ASSIGN_OR_RETURN(const FrameHeader header,
                        DecodeHeader(bytes, max_body_bytes));
  const std::string_view rest = bytes.substr(header.header_size);
  if (rest.size() < header.body_length) {
    return Status::IoError(
        StrFormat("truncated frame body: %zu of %llu bytes", rest.size(),
                  static_cast<unsigned long long>(header.body_length)));
  }
  if (rest.size() > header.body_length) {
    return Status::InvalidArgument(
        StrFormat("%zu trailing bytes after the frame body",
                  rest.size() - static_cast<std::size_t>(header.body_length)));
  }
  Frame frame;
  frame.header = header;
  frame.body.assign(rest.data(), rest.size());
  PPDM_RETURN_IF_ERROR(VerifyBody(frame.header, frame.body));
  return frame;
}

std::string EncodeResponseBody(const Status& status,
                               std::string_view payload) {
  store::Writer writer;
  writer.PutU32(static_cast<std::uint32_t>(status.code()));
  writer.PutString(status.message());
  std::string body = writer.Take();
  body.append(payload.data(), payload.size());
  return body;
}

Result<ResponseBody> DecodeResponseBody(std::string_view body) {
  store::Reader reader(body);
  PPDM_ASSIGN_OR_RETURN(const std::uint32_t code, reader.ReadU32());
  if (code > static_cast<std::uint32_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument(
        StrFormat("response carries unknown status code %u", code));
  }
  PPDM_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  ResponseBody response;
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.payload.assign(body.substr(body.size() - reader.remaining()));
  return response;
}

}  // namespace ppdm::net
