#include "net/frame.h"

#include "common/strings.h"
#include "store/codec.h"

namespace ppdm::net {

std::string VerbName(std::uint32_t verb) {
  switch (static_cast<Verb>(verb)) {
    case Verb::kOpen: return "open";
    case Verb::kIngest: return "ingest";
    case Verb::kReconstruct: return "reconstruct";
    case Verb::kSnapshot: return "snapshot";
    case Verb::kClose: return "close";
    case Verb::kStats: return "stats";
  }
  return StrFormat("verb#%u", verb);
}

bool KnownVerb(std::uint32_t verb) {
  return verb >= static_cast<std::uint32_t>(Verb::kOpen) &&
         verb <= static_cast<std::uint32_t>(Verb::kStats);
}

std::string EncodeFrame(std::uint32_t verb, std::uint64_t request_id,
                        std::uint64_t tenant, std::uint32_t ttl_ms,
                        std::string_view body) {
  store::Writer writer;
  writer.PutU32(kFrameMagic);
  writer.PutU32(kProtocolVersion);
  writer.PutU32(verb);
  writer.PutU64(request_id);
  writer.PutU64(tenant);
  writer.PutU32(ttl_ms);
  writer.PutU64(body.size());
  writer.PutU32(store::Crc32(body));
  std::string frame = writer.Take();
  frame.append(body.data(), body.size());
  return frame;
}

Result<FrameHeader> DecodeHeader(std::string_view bytes,
                                 std::uint64_t max_body_bytes) {
  if (bytes.size() < kHeaderSize) {
    return Status::IoError(
        StrFormat("truncated frame header: %zu of %zu bytes", bytes.size(),
                  kHeaderSize));
  }
  store::Reader reader(bytes.substr(0, kHeaderSize));
  PPDM_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.ReadU32());
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("not a ppdm net frame (bad magic)");
  }
  FrameHeader header;
  PPDM_ASSIGN_OR_RETURN(header.version, reader.ReadU32());
  if (header.version == 0 || header.version > kProtocolVersion) {
    return Status::FailedPrecondition(
        StrFormat("frame version %u not supported (this peer speaks 1..%u)",
                  header.version, kProtocolVersion));
  }
  PPDM_ASSIGN_OR_RETURN(header.verb, reader.ReadU32());
  PPDM_ASSIGN_OR_RETURN(header.request_id, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(header.tenant, reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(header.ttl_ms, reader.ReadU32());
  PPDM_ASSIGN_OR_RETURN(header.body_length, reader.ReadU64());
  if (header.body_length > max_body_bytes) {
    return Status::ResourceExhausted(
        StrFormat("frame body of %llu bytes exceeds the %llu-byte cap",
                  static_cast<unsigned long long>(header.body_length),
                  static_cast<unsigned long long>(max_body_bytes)));
  }
  PPDM_ASSIGN_OR_RETURN(header.body_crc, reader.ReadU32());
  return header;
}

Status VerifyBody(const FrameHeader& header, std::string_view body) {
  if (body.size() != header.body_length) {
    return Status::IoError(
        StrFormat("frame body is %zu bytes, header promised %llu",
                  body.size(),
                  static_cast<unsigned long long>(header.body_length)));
  }
  if (store::Crc32(body) != header.body_crc) {
    return Status::DataLoss("frame body CRC mismatch");
  }
  return Status::Ok();
}

Result<Frame> DecodeFrame(std::string_view bytes,
                          std::uint64_t max_body_bytes) {
  PPDM_ASSIGN_OR_RETURN(const FrameHeader header,
                        DecodeHeader(bytes, max_body_bytes));
  const std::string_view rest = bytes.substr(kHeaderSize);
  if (rest.size() < header.body_length) {
    return Status::IoError(
        StrFormat("truncated frame body: %zu of %llu bytes", rest.size(),
                  static_cast<unsigned long long>(header.body_length)));
  }
  if (rest.size() > header.body_length) {
    return Status::InvalidArgument(
        StrFormat("%zu trailing bytes after the frame body",
                  rest.size() - static_cast<std::size_t>(header.body_length)));
  }
  Frame frame;
  frame.header = header;
  frame.body.assign(rest.data(), rest.size());
  PPDM_RETURN_IF_ERROR(VerifyBody(frame.header, frame.body));
  return frame;
}

std::string EncodeResponseBody(const Status& status,
                               std::string_view payload) {
  store::Writer writer;
  writer.PutU32(static_cast<std::uint32_t>(status.code()));
  writer.PutString(status.message());
  std::string body = writer.Take();
  body.append(payload.data(), payload.size());
  return body;
}

Result<ResponseBody> DecodeResponseBody(std::string_view body) {
  store::Reader reader(body);
  PPDM_ASSIGN_OR_RETURN(const std::uint32_t code, reader.ReadU32());
  if (code > static_cast<std::uint32_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument(
        StrFormat("response carries unknown status code %u", code));
  }
  PPDM_ASSIGN_OR_RETURN(std::string message, reader.ReadString());
  ResponseBody response;
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.payload.assign(body.substr(body.size() - reader.remaining()));
  return response;
}

}  // namespace ppdm::net
