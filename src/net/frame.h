// Length-prefixed binary frame protocol — the wire layer of the network
// serving daemon. One frame per request and per response, in both
// directions:
//
//   v1: [u32 magic "PPDN"][u32 version][u32 verb][u64 request id]
//       [u64 tenant id][u32 ttl_ms][u64 body length][u32 body crc32][body]
//   v2: same through ttl_ms, then [u32 trace len][trace-id hex chars]
//       [u64 body length][u32 body crc32][body]
//
// Version 2 adds an optional client-supplied trace id — 1..16 lowercase
// hex chars naming a nonzero u64 — so a caller can stitch the daemon's
// span tree into its own trace. Encoders emit v1 whenever no trace id is
// attached, so v1-only peers interoperate untouched; decoders accept
// both. Because the v2 header is variable-length, readers first ask
// HeaderBytesNeeded() how many bytes to accumulate.
//
// All integers little-endian via the src/store codec primitives, the body
// CRC32-guarded the same way store sections are, and every decode failure
// (short header, wrong magic, future version, oversized body, hostile
// trace id, CRC mismatch, truncated payload) a Status, never an abort —
// these bytes come off a socket from untrusted peers.
//
// Request bodies are verb-specific payloads (open carries an encoded
// DatasetSessionSpec, ingest a row-major record block, …). Response
// bodies share one envelope: [u32 status code][status message][payload],
// so protocol-level failures (shed, rate-limited, expired, store fault)
// travel as first-class Status values and the connection keeps serving.

#ifndef PPDM_NET_FRAME_H_
#define PPDM_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace ppdm::net {

/// "PPDN" little-endian — distinct from the store's 8-byte "PPDMSNAP".
inline constexpr std::uint32_t kFrameMagic = 0x4E445050;

/// Current protocol version. Peers accept 1..kProtocolVersion.
inline constexpr std::uint32_t kProtocolVersion = 2;

/// Fixed wire size of a version-1 header (the body follows immediately).
/// A version-2 header is 48 bytes plus its trace-id hex chars.
inline constexpr std::size_t kHeaderSize = 44;

/// Longest accepted trace-id field: a u64 is at most 16 hex chars. A
/// larger length prefix is hostile and rejected before any buffering.
inline constexpr std::uint32_t kMaxTraceHexChars = 16;

/// Default cap on a frame body; anything larger is rejected before any
/// allocation happens (a hostile length prefix must not OOM the server).
inline constexpr std::uint64_t kDefaultMaxBodyBytes = 64ull << 20;

/// Request verbs. Responses echo the request's verb (and request id).
enum class Verb : std::uint32_t {
  kOpen = 1,         ///< Open (or resume) a tenant's dataset session.
  kIngest = 2,       ///< Fold one perturbed record batch into the session.
  kReconstruct = 3,  ///< Reconstruct every tracked attribute's distribution.
  kSnapshot = 4,     ///< Checkpoint the session through the daemon's store.
  kClose = 5,        ///< Close the tenant (drops RAM state and captures).
  kStats = 6,        ///< Metrics exposition (obs::RenderText) — GET /metrics.
                     ///< A body of the single flag byte 0x01 also appends
                     ///< the Chrome trace JSON of the server's span ring.
};

/// "open" / "ingest" / ... / "verb#N" for unknown values.
std::string VerbName(std::uint32_t verb);

/// True when `verb` names a verb this protocol version defines.
bool KnownVerb(std::uint32_t verb);

/// Decoded frame header. `body_length`/`body_crc` describe the body that
/// follows on the wire.
struct FrameHeader {
  std::uint32_t version = kProtocolVersion;
  std::uint32_t verb = 0;
  std::uint64_t request_id = 0;
  std::uint64_t tenant = 0;
  /// Request time-to-live in milliseconds; 0 means no deadline. The
  /// server maps a nonzero TTL onto the service's submit deadline.
  std::uint32_t ttl_ms = 0;
  /// Client-supplied trace id (v2 frames); 0 = absent, and the server
  /// mints its own.
  std::uint64_t trace_id = 0;
  std::uint64_t body_length = 0;
  std::uint32_t body_crc = 0;
  /// Wire size of this header — kHeaderSize for v1, 48 + hex chars for
  /// v2. The body starts at this offset.
  std::size_t header_size = kHeaderSize;
};

/// A fully decoded frame.
struct Frame {
  FrameHeader header;
  std::string body;
};

/// Serializes one frame (header + body) for the wire: a v1 header when
/// `trace_id` is 0, a v2 header carrying it otherwise. The uint32
/// overload exists so a response can echo a request's verb even when that
/// verb is not one this peer defines.
std::string EncodeFrame(std::uint32_t verb, std::uint64_t request_id,
                        std::uint64_t tenant, std::uint32_t ttl_ms,
                        std::string_view body, std::uint64_t trace_id = 0);
inline std::string EncodeFrame(Verb verb, std::uint64_t request_id,
                               std::uint64_t tenant, std::uint32_t ttl_ms,
                               std::string_view body,
                               std::uint64_t trace_id = 0) {
  return EncodeFrame(static_cast<std::uint32_t>(verb), request_id, tenant,
                     ttl_ms, body, trace_id);
}

/// How many more bytes of `bytes` a reader must accumulate before
/// DecodeHeader can fully judge the header; 0 means decode now (the
/// header is complete — or already undecodably hostile, which DecodeHeader
/// will report). Handles the v2 variable length: the answer grows as the
/// version word and then the trace-length word arrive.
std::size_t HeaderBytesNeeded(std::string_view bytes);

/// Decodes and validates a header from the front of `bytes` (at least
/// header_size bytes — accumulate until HeaderBytesNeeded says 0).
/// Failures: kIoError for a truncated header (wait for more),
/// kInvalidArgument for a wrong magic or a hostile trace id (oversized
/// length, non-hex chars, zero value), kFailedPrecondition for a version
/// newer than kProtocolVersion, and kResourceExhausted for a body length
/// past `max_body_bytes`.
Result<FrameHeader> DecodeHeader(std::string_view bytes,
                                 std::uint64_t max_body_bytes);

/// Verifies `body` (which must be header.body_length long) against the
/// header's CRC32; a mismatch is kDataLoss (bit rot or stream desync).
Status VerifyBody(const FrameHeader& header, std::string_view body);

/// One-shot decode of a complete frame (client side, tests). The frame
/// must span `bytes` exactly; trailing bytes are kInvalidArgument.
Result<Frame> DecodeFrame(std::string_view bytes,
                          std::uint64_t max_body_bytes = kDefaultMaxBodyBytes);

/// Response envelope: status code + message, then the verb's payload.
struct ResponseBody {
  Status status;
  std::string payload;
};

/// Encodes the response envelope ([u32 code][message][payload]).
std::string EncodeResponseBody(const Status& status,
                               std::string_view payload);

/// Decodes a response envelope; a wire code outside the StatusCode enum
/// is itself a decode error (kInvalidArgument).
Result<ResponseBody> DecodeResponseBody(std::string_view body);

}  // namespace ppdm::net

#endif  // PPDM_NET_FRAME_H_
