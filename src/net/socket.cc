#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <functional>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/strings.h"

namespace ppdm::net {
namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::IoError(StrFormat("%s: %s", what, std::strerror(err)));
}

/// getaddrinfo for one numeric-or-named IPv4/IPv6 host; the callback is
/// tried per candidate address until one succeeds.
Result<Socket> ForEachAddress(const std::string& host, int port,
                              bool passive,
                              const std::function<Status(int, const addrinfo&)>&
                                  bind_or_connect) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string service = StrFormat("%d", port);
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               service.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::IoError(StrFormat("resolve %s:%d: %s", host.c_str(), port,
                                     ::gai_strerror(rc)));
  }
  Status last = Status::IoError(
      StrFormat("no usable address for %s:%d", host.c_str(), port));
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = ErrnoStatus("socket", errno);
      continue;
    }
    Socket socket(fd);
    if (Status s = bind_or_connect(fd, *ai); !s.ok()) {
      last = std::move(s);
      continue;  // socket closes on scope exit
    }
    ::freeaddrinfo(results);
    return socket;
  }
  ::freeaddrinfo(results);
  return last;
}

}  // namespace

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ListenTcp(const std::string& host, int port, int backlog) {
  return ForEachAddress(host, port, /*passive=*/true,
                        [backlog](int fd, const addrinfo& ai) -> Status {
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai.ai_addr, ai.ai_addrlen) != 0) {
      return ErrnoStatus("bind", errno);
    }
    if (::listen(fd, backlog) != 0) return ErrnoStatus("listen", errno);
    return Status::Ok();
  });
}

Result<int> BoundPort(const Socket& socket) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoStatus("getsockname", errno);
  }
  if (addr.ss_family == AF_INET) {
    return static_cast<int>(
        ntohs(reinterpret_cast<const sockaddr_in&>(addr).sin_port));
  }
  if (addr.ss_family == AF_INET6) {
    return static_cast<int>(
        ntohs(reinterpret_cast<const sockaddr_in6&>(addr).sin6_port));
  }
  return Status::Internal("unknown socket address family");
}

Result<Socket> ConnectTcp(const std::string& host, int port) {
  Result<Socket> socket = ForEachAddress(
      host, port, /*passive=*/false, [](int fd, const addrinfo& ai) -> Status {
        int rc;
        do {
          rc = ::connect(fd, ai.ai_addr, ai.ai_addrlen);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) return ErrnoStatus("connect", errno);
        return Status::Ok();
      });
  if (socket.ok()) {
    const int one = 1;
    (void)::setsockopt(socket.value().fd(), IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
  }
  return socket;
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::Ok();
}

Status WriteAll(int fd, std::string_view bytes) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    // MSG_NOSIGNAL: a peer that reset the connection surfaces as an EPIPE
    // Status instead of a process-killing SIGPIPE.
    const ssize_t n = ::send(fd, bytes.data() + written,
                             bytes.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", errno);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status ReadExact(int fd, char* buf, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, buf + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("read", errno);
    }
    if (n == 0) {
      return Status::Unavailable(
          StrFormat("connection closed after %zu of %zu bytes", got, size));
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace ppdm::net
