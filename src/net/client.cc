#include "net/client.h"

#include <utility>

#include "common/strings.h"
#include "store/codec.h"
#include "store/session_codec.h"

namespace ppdm::net {

Result<Client> Client::Connect(const std::string& host, int port) {
  PPDM_ASSIGN_OR_RETURN(Socket sock, ConnectTcp(host, port));
  return Client(std::move(sock));
}

Status Client::SendRaw(std::string_view bytes) {
  return WriteAll(sock_.fd(), bytes);
}

Result<Frame> Client::ReadFrame() {
  // Headers are variable-length since protocol v2 (optional trace id):
  // accumulate exactly the bytes HeaderBytesNeeded asks for — at most
  // three reads (magic+version, fixed prefix, trace tail).
  std::string header_bytes;
  for (std::size_t needed = HeaderBytesNeeded(header_bytes); needed > 0;
       needed = HeaderBytesNeeded(header_bytes)) {
    const std::size_t have = header_bytes.size();
    header_bytes.resize(have + needed);
    PPDM_RETURN_IF_ERROR(
        ReadExact(sock_.fd(), header_bytes.data() + have, needed));
  }
  Frame frame;
  PPDM_ASSIGN_OR_RETURN(frame.header,
                        DecodeHeader(header_bytes, kDefaultMaxBodyBytes));
  frame.body.resize(static_cast<std::size_t>(frame.header.body_length));
  if (!frame.body.empty()) {
    PPDM_RETURN_IF_ERROR(
        ReadExact(sock_.fd(), frame.body.data(), frame.body.size()));
  }
  PPDM_RETURN_IF_ERROR(VerifyBody(frame.header, frame.body));
  return frame;
}

Result<ResponseBody> Client::Call(Verb verb, std::uint64_t tenant,
                                  std::uint32_t ttl_ms,
                                  std::string_view payload) {
  const std::uint64_t request_id = next_request_id_++;
  PPDM_RETURN_IF_ERROR(SendRaw(
      EncodeFrame(verb, request_id, tenant, ttl_ms, payload, trace_id_)));
  PPDM_ASSIGN_OR_RETURN(const Frame frame, ReadFrame());
  if (frame.header.request_id != request_id) {
    return Status::Internal(StrFormat(
        "response correlates request %llu, expected %llu",
        static_cast<unsigned long long>(frame.header.request_id),
        static_cast<unsigned long long>(request_id)));
  }
  return DecodeResponseBody(frame.body);
}

namespace {

/// Unwraps a Call: transport errors pass through; an error envelope
/// becomes the wrapper's error; otherwise yields the payload.
Result<std::string> Payload(Result<ResponseBody> response) {
  PPDM_RETURN_IF_ERROR(response.status());
  if (!response.value().status.ok()) return response.value().status;
  return std::move(response.value().payload);
}

}  // namespace

Result<OpenResult> Client::Open(std::uint64_t tenant,
                                const api::DatasetSessionSpec& spec,
                                std::uint32_t ttl_ms) {
  store::Writer writer;
  store::EncodeDatasetSessionSpec(spec, &writer);
  PPDM_ASSIGN_OR_RETURN(
      const std::string payload,
      Payload(Call(Verb::kOpen, tenant, ttl_ms, writer.Take())));
  store::Reader reader(payload);
  OpenResult result;
  PPDM_ASSIGN_OR_RETURN(const std::uint8_t resumed, reader.ReadU8());
  result.resumed = resumed != 0;
  PPDM_ASSIGN_OR_RETURN(result.record_count, reader.ReadU64());
  return result;
}

Result<std::uint64_t> Client::Ingest(std::uint64_t tenant, std::uint64_t rows,
                                     std::uint64_t cols,
                                     const std::vector<double>& values,
                                     std::uint32_t ttl_ms) {
  store::Writer writer;
  writer.PutU64(rows);
  writer.PutU64(cols);
  writer.PutDoubleArray(values);
  PPDM_ASSIGN_OR_RETURN(
      const std::string payload,
      Payload(Call(Verb::kIngest, tenant, ttl_ms, writer.Take())));
  store::Reader reader(payload);
  return reader.ReadU64();
}

Result<std::vector<AttributeEstimate>> Client::Reconstruct(
    std::uint64_t tenant, std::uint32_t ttl_ms) {
  PPDM_ASSIGN_OR_RETURN(const std::string payload,
                        Payload(Call(Verb::kReconstruct, tenant, ttl_ms, "")));
  store::Reader reader(payload);
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t count, reader.ReadU64());
  std::vector<AttributeEstimate> estimates;
  estimates.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t a = 0; a < count; ++a) {
    AttributeEstimate estimate;
    PPDM_ASSIGN_OR_RETURN(estimate.iterations, reader.ReadU64());
    PPDM_ASSIGN_OR_RETURN(estimate.sample_count, reader.ReadU64());
    PPDM_ASSIGN_OR_RETURN(estimate.masses, reader.ReadDoubleArray());
    estimates.push_back(std::move(estimate));
  }
  return estimates;
}

Result<std::uint64_t> Client::Snapshot(std::uint64_t tenant,
                                       std::uint32_t ttl_ms) {
  PPDM_ASSIGN_OR_RETURN(const std::string payload,
                        Payload(Call(Verb::kSnapshot, tenant, ttl_ms, "")));
  store::Reader reader(payload);
  return reader.ReadU64();
}

Status Client::CloseTenant(std::uint64_t tenant, std::uint32_t ttl_ms) {
  return Payload(Call(Verb::kClose, tenant, ttl_ms, "")).status();
}

Result<std::string> Client::Stats(std::uint32_t ttl_ms) {
  PPDM_ASSIGN_OR_RETURN(const std::string payload,
                        Payload(Call(Verb::kStats, /*tenant=*/0, ttl_ms, "")));
  store::Reader reader(payload);
  return reader.ReadString();
}

Result<std::string> Client::Trace(std::uint32_t ttl_ms) {
  PPDM_ASSIGN_OR_RETURN(
      const std::string payload,
      Payload(Call(Verb::kStats, /*tenant=*/0, ttl_ms,
                   std::string_view("\x01", 1))));
  store::Reader reader(payload);
  PPDM_RETURN_IF_ERROR(reader.ReadString().status());  // exposition text
  return reader.ReadString();
}

}  // namespace ppdm::net
