// Per-tenant token-bucket rate limiting for the serving daemon. A bucket
// holds up to `burst` tokens and refills at `rate` tokens/second; each
// admitted request spends one token, and an empty bucket maps onto a
// protocol-level kResourceExhausted response — the same shedding currency
// the service's admission control speaks.
//
// Time is passed in by the caller (the server's event loop reads the
// clock once per poll iteration), which keeps the arithmetic trivially
// testable with a fake clock. The class is not thread-safe: the daemon
// consults its buckets from the event-loop thread only.

#ifndef PPDM_NET_RATE_LIMITER_H_
#define PPDM_NET_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>

namespace ppdm::net {

/// One tenant's bucket.
class TokenBucket {
 public:
  /// `rate` tokens/second refill, capacity `burst` (both > 0). The bucket
  /// starts full.
  TokenBucket(double rate, double burst,
              std::chrono::steady_clock::time_point now)
      : rate_(rate), burst_(burst), tokens_(burst), last_(now) {}

  /// Spends one token if available at `now`; false means rate-limited.
  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    Refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  void Refill(std::chrono::steady_clock::time_point now) {
    if (now <= last_) return;
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

/// Lazily created bucket per tenant id. rate <= 0 disables limiting
/// (Admit always true).
class TenantRateLimiter {
 public:
  /// `burst` <= 0 defaults to max(rate, 1).
  TenantRateLimiter(double rate, double burst)
      : rate_(rate), burst_(burst > 0 ? burst : std::max(rate, 1.0)) {}

  bool enabled() const { return rate_ > 0; }

  /// Spends one of `tenant`'s tokens at `now`; true when admitted.
  bool Admit(std::uint64_t tenant, std::chrono::steady_clock::time_point now) {
    if (!enabled()) return true;
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      it = buckets_.emplace(tenant, TokenBucket(rate_, burst_, now)).first;
    }
    return it->second.TryAcquire(now);
  }

  /// Drops `tenant`'s bucket (a closed tenant stops costing memory).
  void Forget(std::uint64_t tenant) { buckets_.erase(tenant); }

 private:
  double rate_;
  double burst_;
  std::map<std::uint64_t, TokenBucket> buckets_;
};

}  // namespace ppdm::net

#endif  // PPDM_NET_RATE_LIMITER_H_
