// Per-tenant token-bucket rate limiting for the serving daemon. A bucket
// holds up to `burst` tokens and refills at `rate` tokens/second; each
// admitted request spends one token, and an empty bucket maps onto a
// protocol-level kResourceExhausted response — the same shedding currency
// the service's admission control speaks.
//
// Time is passed in by the caller (the server's event loop reads the
// clock once per poll iteration), which keeps the arithmetic trivially
// testable with a fake clock. The class is thread-safe: Admit runs on the
// event-loop thread while Forget arrives from worker threads handling the
// close verb.
//
// Memory: tenant ids are attacker-chosen values off an unauthenticated
// socket, so the bucket map must not grow without bound. Closed tenants
// drop their bucket via Forget, and whenever the map reaches
// kSweepThreshold, buckets that have refilled to burst are swept — a full
// bucket is behaviourally identical to no bucket (new buckets start
// full), so only tenants actively spending tokens retain an entry.

#ifndef PPDM_NET_RATE_LIMITER_H_
#define PPDM_NET_RATE_LIMITER_H_

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>

namespace ppdm::net {

/// One tenant's bucket.
class TokenBucket {
 public:
  /// `rate` tokens/second refill, capacity `burst` (both > 0). The bucket
  /// starts full.
  TokenBucket(double rate, double burst,
              std::chrono::steady_clock::time_point now)
      : rate_(rate), burst_(burst), tokens_(burst), last_(now) {}

  /// Spends one token if available at `now`; false means rate-limited.
  bool TryAcquire(std::chrono::steady_clock::time_point now) {
    Refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  /// True when the bucket has refilled to capacity at `now` — equivalent
  /// to a bucket that was never created, so it is safe to drop.
  bool IsFull(std::chrono::steady_clock::time_point now) {
    Refill(now);
    return tokens_ >= burst_;
  }

  double tokens() const { return tokens_; }

 private:
  void Refill(std::chrono::steady_clock::time_point now) {
    if (now <= last_) return;
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    tokens_ = std::min(burst_, tokens_ + elapsed * rate_);
    last_ = now;
  }

  double rate_;
  double burst_;
  double tokens_;
  std::chrono::steady_clock::time_point last_;
};

/// Lazily created bucket per tenant id. rate <= 0 disables limiting
/// (Admit always true).
class TenantRateLimiter {
 public:
  /// Map size that triggers a sweep of refilled-full buckets on the next
  /// insert (bounds memory against hostile tenant-id churn).
  static constexpr std::size_t kSweepThreshold = 4096;

  /// `burst` <= 0 defaults to max(rate, 1).
  TenantRateLimiter(double rate, double burst)
      : rate_(rate), burst_(burst > 0 ? burst : std::max(rate, 1.0)) {}

  bool enabled() const { return rate_ > 0; }

  /// Spends one of `tenant`'s tokens at `now`; true when admitted.
  bool Admit(std::uint64_t tenant, std::chrono::steady_clock::time_point now) {
    if (!enabled()) return true;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(tenant);
    if (it == buckets_.end()) {
      if (buckets_.size() >= kSweepThreshold) SweepFullLocked(now);
      it = buckets_.emplace(tenant, TokenBucket(rate_, burst_, now)).first;
    }
    return it->second.TryAcquire(now);
  }

  /// Drops `tenant`'s bucket (a closed tenant stops costing memory).
  void Forget(std::uint64_t tenant) {
    std::lock_guard<std::mutex> lock(mu_);
    buckets_.erase(tenant);
  }

  /// Live bucket count (tenants that have spent tokens recently).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buckets_.size();
  }

 private:
  void SweepFullLocked(std::chrono::steady_clock::time_point now) {
    for (auto it = buckets_.begin(); it != buckets_.end();) {
      if (it->second.IsFull(now)) {
        it = buckets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double rate_;
  double burst_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, TokenBucket> buckets_;  // guarded by mu_
};

}  // namespace ppdm::net

#endif  // PPDM_NET_RATE_LIMITER_H_
