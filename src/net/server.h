// The multi-tenant network serving daemon (`ppdm served`): a TCP
// listener + poll() event loop feeding the api::Service worker pool, with
// the whole engine→session→registry→store→obs→resilience stack behind a
// socket for the first time.
//
// Thread model — listener/worker split:
//   * One event-loop thread owns every socket: it accepts connections
//     (bounded by max_connections), reads bytes into per-connection
//     buffers, parses frames, and flushes per-connection write queues.
//   * Request execution runs as api::Service jobs on the engine pool.
//     Completion callbacks enqueue the response on the connection's
//     outbox and wake the loop through a self-pipe. num_threads == 0
//     degenerates to a synchronous service (jobs run inline on the event
//     loop) — same byte-exact behaviour, no concurrency.
//
// Admission, backpressure, degradation (mapping straight onto the PR 7
// primitives):
//   * Per-tenant token-bucket rate limiting: an empty bucket is a
//     protocol-level kResourceExhausted response, no work queued.
//   * ServiceOptions::max_pending sheds excess jobs — the shed Status
//     travels back as the response envelope, the connection lives on.
//   * A frame's ttl_ms becomes the job's deadline: expired requests
//     answer kDeadlineExceeded without running.
//   * Backpressure: the loop stops *reading* a connection (and stops
//     parsing its buffered frames) while its in-flight requests reach the
//     connection window, or the server-wide in-flight total reaches
//     max_pending — TCP flow control then pushes back on the client.
//   * Every malformed frame (bad magic, future version, oversized body,
//     CRC mismatch) gets an error response and a connection close after
//     flush; the process keeps serving other connections.
//
// Durability: with a checkpoint directory the registry gets a spill tier
// (evictions demote instead of destroy) and graceful shutdown — Stop(),
// normally triggered by SIGTERM via the async-signal-safe RequestStop()
// — drains in-flight requests, flushes every response, then checkpoints
// every tenant through the store. A daemon restarted with resume=true
// re-admits tenants from their captures on the next open verb.

#ifndef PPDM_NET_SERVER_H_
#define PPDM_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/registry.h"
#include "api/service.h"
#include "common/status.h"
#include "net/frame.h"
#include "net/rate_limiter.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "store/snapshot_store.h"
#include "store/spill_store.h"

namespace ppdm::net {

/// Everything a daemon needs up front. Validated by Server::Start.
struct ServerOptions {
  /// Bind address; loopback by default (an operator opts into exposure).
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with Server::port().
  int port = 0;

  /// Worker pool size (api::Service); 0 runs requests inline on the
  /// event loop.
  std::size_t num_threads = 0;
  /// Engine shard size for session ingest/reconstruct decomposition.
  std::size_t shard_size = 16384;

  /// Admitted-but-unstarted job bound (service shedding) and the
  /// server-wide read-pause high-water mark; 0 = unbounded.
  std::size_t max_pending = 0;
  /// Concurrent connection cap; the listener stops accepting at the cap
  /// (further connects queue in the TCP backlog).
  std::size_t max_connections = 64;
  /// Reject frames whose body exceeds this many bytes.
  std::uint64_t max_body_bytes = kDefaultMaxBodyBytes;
  /// Per-connection in-flight request window; reads pause at the window.
  std::size_t connection_window = 16;

  /// Registry byte budget (0 = unbounded).
  std::size_t registry_max_bytes = 0;

  /// Snapshot store directory; empty disables persistence (snapshot verb
  /// then answers kFailedPrecondition and shutdown skips checkpoints).
  std::string checkpoint_dir;
  /// Admit pre-existing captures on open (crash/drain recovery). When
  /// false, a stale capture of a newly opened tenant is deleted instead.
  bool resume = false;

  /// Per-tenant token bucket: rate tokens/sec, burst capacity (burst <= 0
  /// defaults to max(rate, 1)); rate <= 0 disables rate limiting.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;

  /// Slow-request log threshold: a request whose wall time reaches this
  /// many milliseconds gets its rendered span tree logged to stderr (and
  /// kept for LastSlowRequestTree). 0 disables the log.
  double slow_request_ms = 0.0;
};

/// A running daemon. Construction via Start(); destruction stops it.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The port actually bound (resolves port 0).
  int port() const { return port_; }
  const ServerOptions& options() const { return options_; }

  /// Requests shutdown from any thread — async-signal-safe (an atomic
  /// store plus a self-pipe write), so a SIGTERM handler may call it.
  void RequestStop();

  /// Blocks until the event loop has drained and exited (after
  /// RequestStop, from this or another thread).
  void AwaitLoopExit();

  /// Full graceful shutdown: RequestStop + drain + join, then checkpoint
  /// every tenant through the store. Idempotent. Returns the first
  /// checkpoint failure (kOk without a store or on success).
  Status Stop();

  /// Tenants opened and not yet closed (RAM or spill tier).
  std::size_t tenant_count() const;

  /// Tenants checkpointed by the last Stop().
  std::size_t drained_checkpoints() const { return drained_checkpoints_; }

  /// The most recent slow-request span tree (empty until a request
  /// crosses options().slow_request_ms). Test/diagnostic hook; the same
  /// text goes to stderr when it is captured.
  std::string LastSlowRequestTree() const;

 private:
  struct Connection;

  explicit Server(const ServerOptions& options);

  Status Init();
  void Loop();
  void Wake();
  void AcceptReady();
  /// Reads available bytes; false when the connection died.
  bool ReadReady(const std::shared_ptr<Connection>& conn);
  /// Parses complete frames out of the connection's input buffer until
  /// exhausted, paused, or a protocol error schedules a close.
  void ParseFrames(const std::shared_ptr<Connection>& conn);
  /// True when `conn` must not parse further frames right now.
  bool ShouldPause(const Connection& conn) const;
  void FlushWrites(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void Dispatch(const std::shared_ptr<Connection>& conn,
                const FrameHeader& header, std::string body);
  void EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       const FrameHeader& request, const Status& status,
                       std::string_view payload);

  /// Verb handlers — run inside service jobs (any worker). Each returns
  /// the response payload; errors become the response envelope's Status.
  Result<std::string> HandleVerb(const FrameHeader& header,
                                 const std::string& body);
  Result<std::string> HandleOpen(std::uint64_t tenant,
                                 const std::string& body);
  Result<std::string> HandleIngest(std::uint64_t tenant,
                                   const std::string& body);
  Result<std::string> HandleReconstruct(std::uint64_t tenant);
  Result<std::string> HandleSnapshot(std::uint64_t tenant);
  Result<std::string> HandleClose(std::uint64_t tenant);

  Result<std::shared_ptr<api::DatasetSession>> LookupTenant(
      std::uint64_t tenant);

  /// Serializes every open tenant to the snapshot store (drain step).
  Status CheckpointAll();

  const ServerOptions options_;
  int port_ = 0;

  std::optional<store::SnapshotStore> snapshots_;
  std::optional<store::SessionSpillStore> spill_;
  std::unique_ptr<api::SessionRegistry> registry_;

  mutable std::mutex tenants_mu_;
  std::set<std::string> tenants_;  // guarded by tenants_mu_

  // Thread-safe: Admit on the event loop, Forget from close-verb workers.
  TenantRateLimiter limiter_;

  Socket listener_;
  Socket wake_read_;
  Socket wake_write_;
  std::vector<std::shared_ptr<Connection>> connections_;  // loop thread only

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> global_in_flight_{0};

  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool loop_exited_ = false;  // guarded by loop_mu_

  std::mutex stop_mu_;
  bool stopped_ = false;            // guarded by stop_mu_
  Status stop_status_;              // guarded by stop_mu_
  std::size_t drained_checkpoints_ = 0;

  mutable std::mutex slow_mu_;
  std::string last_slow_tree_;  // guarded by slow_mu_

  // Instruments (process metrics registry; never destroyed).
  obs::Counter* connections_total_;
  obs::Gauge* connections_open_;
  obs::Counter* protocol_errors_;
  obs::Counter* rate_limited_;
  obs::Counter* read_pauses_;
  obs::Counter* bytes_read_;
  obs::Counter* bytes_written_;
  obs::Counter* drain_checkpoints_metric_;
  obs::Histogram* request_seconds_;
  obs::Counter* verb_requests_[7];  // indexed by verb, 0 = unknown
  obs::Counter* slow_requests_;

  std::thread loop_thread_;

  // Declared last so its destructor (which drains every in-flight job,
  // whose completion callbacks touch the members above) runs first.
  std::unique_ptr<api::Service> service_;
};

/// The registry/store name of a tenant id ("t42").
std::string TenantName(std::uint64_t tenant);

}  // namespace ppdm::net

#endif  // PPDM_NET_SERVER_H_
