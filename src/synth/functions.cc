#include "synth/functions.h"

#include "common/check.h"

namespace ppdm::synth {
namespace {

bool Between(double x, double lo, double hi) { return lo <= x && x <= hi; }

bool GroupA1(const FunctionInputs& in) {
  return in.age < 40.0 || in.age >= 60.0;
}

bool GroupA2(const FunctionInputs& in) {
  if (in.age < 40.0) return Between(in.salary, 50000.0, 100000.0);
  if (in.age < 60.0) return Between(in.salary, 75000.0, 125000.0);
  return Between(in.salary, 25000.0, 75000.0);
}

bool GroupA3(const FunctionInputs& in) {
  if (in.age < 40.0) return Between(in.elevel, 0.0, 1.0);
  if (in.age < 60.0) return Between(in.elevel, 1.0, 3.0);
  return Between(in.elevel, 2.0, 4.0);
}

bool GroupA4(const FunctionInputs& in) {
  if (in.age < 40.0) {
    return Between(in.elevel, 0.0, 1.0)
               ? Between(in.salary, 25000.0, 75000.0)
               : Between(in.salary, 50000.0, 100000.0);
  }
  if (in.age < 60.0) {
    return Between(in.elevel, 1.0, 3.0)
               ? Between(in.salary, 50000.0, 100000.0)
               : Between(in.salary, 75000.0, 125000.0);
  }
  return Between(in.elevel, 2.0, 4.0)
             ? Between(in.salary, 50000.0, 100000.0)
             : Between(in.salary, 25000.0, 75000.0);
}

bool GroupA5(const FunctionInputs& in) {
  if (in.age < 40.0) {
    return Between(in.salary, 50000.0, 100000.0)
               ? Between(in.loan, 100000.0, 300000.0)
               : Between(in.loan, 200000.0, 400000.0);
  }
  if (in.age < 60.0) {
    return Between(in.salary, 75000.0, 125000.0)
               ? Between(in.loan, 200000.0, 400000.0)
               : Between(in.loan, 300000.0, 500000.0);
  }
  return Between(in.salary, 25000.0, 75000.0)
             ? Between(in.loan, 300000.0, 500000.0)
             : Between(in.loan, 100000.0, 300000.0);
}

}  // namespace

std::string FunctionName(Function fn) {
  switch (fn) {
    case Function::kF1:
      return "Fn1";
    case Function::kF2:
      return "Fn2";
    case Function::kF3:
      return "Fn3";
    case Function::kF4:
      return "Fn4";
    case Function::kF5:
      return "Fn5";
  }
  return "Fn?";
}

bool IsGroupA(Function fn, const FunctionInputs& in) {
  switch (fn) {
    case Function::kF1:
      return GroupA1(in);
    case Function::kF2:
      return GroupA2(in);
    case Function::kF3:
      return GroupA3(in);
    case Function::kF4:
      return GroupA4(in);
    case Function::kF5:
      return GroupA5(in);
  }
  PPDM_CHECK_MSG(false, "unknown classification function");
  return false;
}

int LabelOf(Function fn, const FunctionInputs& in) {
  return IsGroupA(fn, in) ? 0 : 1;
}

}  // namespace ppdm::synth
