// Synthetic training-data generator reproducing the benchmark the paper
// evaluates on: nine attributes with the published distributions, labels
// assigned by one of the functions Fn1..Fn5, and an optional label-noise
// ("perturbation factor") knob from the original benchmark.

#ifndef PPDM_SYNTH_GENERATOR_H_
#define PPDM_SYNTH_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "data/row_batch.h"
#include "synth/functions.h"

namespace ppdm::synth {

/// Column indices of the benchmark attributes (order fixed by the schema).
enum AttributeIndex : std::size_t {
  kSalary = 0,
  kCommission,
  kAge,
  kElevel,
  kCar,
  kZipcode,
  kHvalue,
  kHyears,
  kLoan,
  kNumAttributes,
};

/// Attribute declarations for the benchmark:
///   salary     ~ U[20000, 150000]
///   commission = 0 if salary >= 75000 else ~U[10000, 75000]
///   age        ~ U[20, 80]
///   elevel     ~ uniform {0..4}
///   car        ~ uniform {1..20}
///   zipcode    ~ uniform {0..8}
///   hvalue     ~ U[k*50000, k*150000] with k = zipcode + 1
///   hyears     ~ uniform {1..30}
///   loan       ~ U[0, 500000]
data::Schema BenchmarkSchema();

/// Generator configuration.
struct GeneratorOptions {
  std::size_t num_records = 10000;
  Function function = Function::kF1;
  std::uint64_t seed = 1;
  /// Probability that a record's label is flipped (the benchmark's
  /// "perturbation factor"); 0 reproduces the paper's noiseless setting.
  double label_noise = 0.0;
};

/// Generates a labelled dataset (2 classes: 0 = Group A, 1 = Group B).
data::Dataset Generate(const GeneratorOptions& options);

/// Streams the exact record sequence Generate(options) would produce as
/// row-major labelled batches, without materializing a Dataset — the
/// provider-side arrival shape for record-oriented ingestion. Each Next()
/// view aliases an internal buffer and is valid until the next call.
class RecordStream {
 public:
  explicit RecordStream(const GeneratorOptions& options);

  /// Records not yet emitted.
  std::size_t remaining() const { return options_.num_records - emitted_; }
  bool Done() const { return remaining() == 0; }

  /// The next min(max_rows, remaining()) records as a labelled RowBatch
  /// (empty once the stream is exhausted). max_rows must be positive.
  data::RowBatch Next(std::size_t max_rows);

 private:
  GeneratorOptions options_;
  Rng rng_;
  std::size_t emitted_ = 0;
  std::vector<double> values_;  // row-major scratch, kNumAttributes wide
  std::vector<int> labels_;
};

/// Draws a single benchmark record (attribute values only) — exposed so
/// tests and examples can construct records without a Dataset.
std::vector<double> SampleRecord(Rng* rng);

/// Same draw, written into `out[0..kNumAttributes)` without allocating.
void SampleRecordInto(Rng* rng, double* out);

/// Extracts the function inputs from a record laid out per AttributeIndex.
FunctionInputs InputsOf(const std::vector<double>& record);

/// Same extraction from a raw row of kNumAttributes values (row-major
/// batch paths that never materialize a per-record vector).
FunctionInputs InputsOf(const double* record);

}  // namespace ppdm::synth

#endif  // PPDM_SYNTH_GENERATOR_H_
