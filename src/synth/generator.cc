#include "synth/generator.h"

#include <algorithm>

#include "common/check.h"

namespace ppdm::synth {

data::Schema BenchmarkSchema() {
  using data::AttributeKind;
  using data::FieldSpec;
  std::vector<FieldSpec> fields(kNumAttributes);
  fields[kSalary] = {"salary", AttributeKind::kContinuous, 20000.0, 150000.0};
  fields[kCommission] = {"commission", AttributeKind::kContinuous, 0.0,
                         75000.0};
  fields[kAge] = {"age", AttributeKind::kContinuous, 20.0, 80.0};
  fields[kElevel] = {"elevel", AttributeKind::kDiscrete, 0.0, 4.0};
  fields[kCar] = {"car", AttributeKind::kDiscrete, 1.0, 20.0};
  fields[kZipcode] = {"zipcode", AttributeKind::kDiscrete, 0.0, 8.0};
  fields[kHvalue] = {"hvalue", AttributeKind::kContinuous, 50000.0,
                     1350000.0};
  fields[kHyears] = {"hyears", AttributeKind::kDiscrete, 1.0, 30.0};
  fields[kLoan] = {"loan", AttributeKind::kContinuous, 0.0, 500000.0};
  return data::Schema(std::move(fields));
}

void SampleRecordInto(Rng* rng, double* out) {
  PPDM_CHECK(rng != nullptr);
  out[kSalary] = rng->UniformReal(20000.0, 150000.0);
  out[kCommission] =
      out[kSalary] >= 75000.0 ? 0.0 : rng->UniformReal(10000.0, 75000.0);
  out[kAge] = rng->UniformReal(20.0, 80.0);
  out[kElevel] = static_cast<double>(rng->UniformInt(0, 4));
  out[kCar] = static_cast<double>(rng->UniformInt(1, 20));
  out[kZipcode] = static_cast<double>(rng->UniformInt(0, 8));
  const double k = out[kZipcode] + 1.0;
  out[kHvalue] = rng->UniformReal(k * 50000.0, k * 150000.0);
  out[kHyears] = static_cast<double>(rng->UniformInt(1, 30));
  out[kLoan] = rng->UniformReal(0.0, 500000.0);
}

std::vector<double> SampleRecord(Rng* rng) {
  std::vector<double> r(kNumAttributes);
  SampleRecordInto(rng, r.data());
  return r;
}

FunctionInputs InputsOf(const double* record) {
  FunctionInputs in;
  in.salary = record[kSalary];
  in.commission = record[kCommission];
  in.age = record[kAge];
  in.elevel = record[kElevel];
  in.loan = record[kLoan];
  return in;
}

FunctionInputs InputsOf(const std::vector<double>& record) {
  PPDM_CHECK_EQ(record.size(), static_cast<std::size_t>(kNumAttributes));
  return InputsOf(record.data());
}

RecordStream::RecordStream(const GeneratorOptions& options)
    : options_(options), rng_(options.seed) {
  PPDM_CHECK(options.label_noise >= 0.0 && options.label_noise <= 1.0);
}

data::RowBatch RecordStream::Next(std::size_t max_rows) {
  PPDM_CHECK_GT(max_rows, 0u);
  const std::size_t take = std::min(max_rows, remaining());
  values_.resize(take * kNumAttributes);
  labels_.resize(take);
  for (std::size_t i = 0; i < take; ++i) {
    double* row = values_.data() + i * kNumAttributes;
    SampleRecordInto(&rng_, row);
    int label = LabelOf(options_.function, InputsOf(row));
    if (options_.label_noise > 0.0 && rng_.Bernoulli(options_.label_noise)) {
      label = 1 - label;
    }
    labels_[i] = label;
  }
  emitted_ += take;
  return data::RowBatch(values_.data(), take, kNumAttributes,
                        labels_.data());
}

data::Dataset Generate(const GeneratorOptions& options) {
  data::Dataset dataset(BenchmarkSchema(), /*num_classes=*/2);
  dataset.Reserve(options.num_records);
  RecordStream stream(options);
  while (!stream.Done()) {
    dataset.AddRows(stream.Next(/*max_rows=*/4096));
  }
  return dataset;
}

}  // namespace ppdm::synth
