#include "synth/generator.h"

#include "common/check.h"

namespace ppdm::synth {

data::Schema BenchmarkSchema() {
  using data::AttributeKind;
  using data::FieldSpec;
  std::vector<FieldSpec> fields(kNumAttributes);
  fields[kSalary] = {"salary", AttributeKind::kContinuous, 20000.0, 150000.0};
  fields[kCommission] = {"commission", AttributeKind::kContinuous, 0.0,
                         75000.0};
  fields[kAge] = {"age", AttributeKind::kContinuous, 20.0, 80.0};
  fields[kElevel] = {"elevel", AttributeKind::kDiscrete, 0.0, 4.0};
  fields[kCar] = {"car", AttributeKind::kDiscrete, 1.0, 20.0};
  fields[kZipcode] = {"zipcode", AttributeKind::kDiscrete, 0.0, 8.0};
  fields[kHvalue] = {"hvalue", AttributeKind::kContinuous, 50000.0,
                     1350000.0};
  fields[kHyears] = {"hyears", AttributeKind::kDiscrete, 1.0, 30.0};
  fields[kLoan] = {"loan", AttributeKind::kContinuous, 0.0, 500000.0};
  return data::Schema(std::move(fields));
}

std::vector<double> SampleRecord(Rng* rng) {
  PPDM_CHECK(rng != nullptr);
  std::vector<double> r(kNumAttributes);
  r[kSalary] = rng->UniformReal(20000.0, 150000.0);
  r[kCommission] =
      r[kSalary] >= 75000.0 ? 0.0 : rng->UniformReal(10000.0, 75000.0);
  r[kAge] = rng->UniformReal(20.0, 80.0);
  r[kElevel] = static_cast<double>(rng->UniformInt(0, 4));
  r[kCar] = static_cast<double>(rng->UniformInt(1, 20));
  r[kZipcode] = static_cast<double>(rng->UniformInt(0, 8));
  const double k = r[kZipcode] + 1.0;
  r[kHvalue] = rng->UniformReal(k * 50000.0, k * 150000.0);
  r[kHyears] = static_cast<double>(rng->UniformInt(1, 30));
  r[kLoan] = rng->UniformReal(0.0, 500000.0);
  return r;
}

FunctionInputs InputsOf(const std::vector<double>& record) {
  PPDM_CHECK_EQ(record.size(), static_cast<std::size_t>(kNumAttributes));
  FunctionInputs in;
  in.salary = record[kSalary];
  in.commission = record[kCommission];
  in.age = record[kAge];
  in.elevel = record[kElevel];
  in.loan = record[kLoan];
  return in;
}

data::Dataset Generate(const GeneratorOptions& options) {
  PPDM_CHECK(options.label_noise >= 0.0 && options.label_noise <= 1.0);
  Rng rng(options.seed);
  data::Dataset dataset(BenchmarkSchema(), /*num_classes=*/2);
  for (std::size_t i = 0; i < options.num_records; ++i) {
    const std::vector<double> record = SampleRecord(&rng);
    int label = LabelOf(options.function, InputsOf(record));
    if (options.label_noise > 0.0 && rng.Bernoulli(options.label_noise)) {
      label = 1 - label;
    }
    dataset.AddRow(record, label);
  }
  return dataset;
}

}  // namespace ppdm::synth
