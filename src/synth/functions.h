// The five classification functions of the classic synthetic benchmark
// (Agrawal, Ghosh, Imielinski, Iyer, Swami — the generator also used by
// SLIQ/SPRINT and by the SIGMOD 2000 evaluation). Each function maps a
// record to Group A (label 0) or Group B (label 1).

#ifndef PPDM_SYNTH_FUNCTIONS_H_
#define PPDM_SYNTH_FUNCTIONS_H_

#include <string>

namespace ppdm::synth {

/// Identifier of a benchmark classification function.
enum class Function { kF1 = 1, kF2, kF3, kF4, kF5 };

/// "Fn1" .. "Fn5".
std::string FunctionName(Function fn);

/// The attribute values a function may consult.
struct FunctionInputs {
  double salary = 0.0;
  double commission = 0.0;
  double age = 0.0;
  double elevel = 0.0;  // 0..4
  double loan = 0.0;
};

/// True iff the record belongs to Group A under `fn`.
///
/// Definitions (Group A conditions):
///   Fn1: age < 40 ∨ age ≥ 60
///   Fn2: (age < 40 ∧ 50K ≤ salary ≤ 100K) ∨
///        (40 ≤ age < 60 ∧ 75K ≤ salary ≤ 125K) ∨
///        (age ≥ 60 ∧ 25K ≤ salary ≤ 75K)
///   Fn3: (age < 40 ∧ elevel ∈ [0,1]) ∨ (40 ≤ age < 60 ∧ elevel ∈ [1,3]) ∨
///        (age ≥ 60 ∧ elevel ∈ [2,4])
///   Fn4: like Fn3 but the elevel test selects which salary band applies.
///   Fn5: like Fn2 but the salary test selects which loan band applies.
bool IsGroupA(Function fn, const FunctionInputs& in);

/// Label for a record: 0 for Group A, 1 for Group B.
int LabelOf(Function fn, const FunctionInputs& in);

}  // namespace ppdm::synth

#endif  // PPDM_SYNTH_FUNCTIONS_H_
