// Dataset-level streaming reconstruction — the record-oriented serving
// shape of the paper's server. Providers submit whole perturbed *records*;
// an attribute-shaped serving layer (one ReconstructionSession per column)
// pays N ingest passes over every arriving batch. A DatasetSession owns
// one AttributeState per tracked attribute and folds a record batch into
// all of them in a SINGLE pass over the rows: row-major arrival,
// column-major fold, sharded over the pool.
//
// Determinism: each ingestion shard accumulates its own integer ShardStats
// per attribute and the shards merge in ascending order, so the per-
// attribute counts — and therefore every ReconstructAll() estimate — are
// byte-identical to N independent per-attribute sessions fed the same
// columns, at any thread count (property-tested in tests/api_test.cc).
//
// Thread safety: Ingest() and ReconstructAll() may race from different
// service jobs, and a SessionRegistry may evict (drop) the session while
// either is in flight — callers hold the session via shared_ptr, so an
// evicted session simply finishes its in-flight calls and dies with the
// last reference. Ingestion folds under the session lock; ReconstructAll
// snapshots counts under the lock and runs the per-attribute EM fan-out
// outside it.

#ifndef PPDM_API_DATASET_SESSION_H_
#define PPDM_API_DATASET_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "api/attribute_state.h"
#include "api/session.h"
#include "common/status.h"
#include "data/row_batch.h"
#include "data/schema.h"
#include "engine/thread_pool.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::api {

/// Reconstruction request for one attribute of a dataset session. The
/// attribute's domain [lo, hi] comes from the shared schema; everything
/// else (interval count, the noise its providers applied, EM tuning) is
/// declared here.
struct AttributeSpec {
  /// Schema column this spec reconstructs.
  std::size_t column = 0;

  /// Intervals the attribute's domain is partitioned into.
  std::size_t intervals = 30;

  /// The providers' noise over this attribute.
  perturb::NoiseKind noise = perturb::NoiseKind::kUniform;
  double privacy_fraction = 1.0;
  double confidence = 0.95;

  /// EM tuning; `binned` must stay true (streaming folds binned counts).
  reconstruct::ReconstructionOptions reconstruction;
};

/// Everything a dataset-level session needs up front: the shared record
/// layout and one AttributeSpec per reconstructed attribute. Validated on
/// Open.
struct DatasetSessionSpec {
  /// Record layout all attribute specs are validated against; arriving
  /// RowBatches must be exactly this wide.
  data::Schema schema;

  /// Attributes to reconstruct (need not cover the schema; each column at
  /// most once).
  std::vector<AttributeSpec> attributes;

  /// Records per ingestion shard when a batch is folded over the pool.
  /// Affects only throughput, never the counts.
  std::size_t shard_size = 16384;

  /// Warm-start refreshes from each attribute's previous estimate.
  bool warm_start = true;

  /// kOk, or kInvalidArgument naming the offending attribute/field.
  Status Validate() const;

  /// The per-attribute SessionSpec an independent ReconstructionSession
  /// over attributes[index] would use — the equivalence contract between
  /// the dataset path and N single-attribute sessions, and what Open uses
  /// to build each AttributeState.
  SessionSpec AttributeSession(std::size_t index) const;
};

/// The mutable half of a DatasetSession, detached for persistence: what a
/// snapshot must carry beyond the spec (the fixed layouts are rebuilt
/// deterministically from the spec on restore). Produced by ExportState()
/// and consumed by Restore(); the store subsystem serializes it.
struct DatasetSessionState {
  std::uint64_t rows = 0;
  std::uint64_t batches = 0;
  /// One entry per attribute, in spec order.
  std::vector<engine::ShardStats> stats;
  /// Warm-start masses per attribute; an empty vector means no estimate.
  std::vector<std::vector<double>> last_masses;
};

/// A server-side streaming reconstruction of a whole dataset.
class DatasetSession {
 public:
  /// Validates `spec` and opens a session. `pool` (borrowed, may be null)
  /// parallelizes ingestion and the reconstruction fan-out; results are
  /// identical for every pool.
  static Result<std::unique_ptr<DatasetSession>> Open(
      const DatasetSessionSpec& spec, engine::ThreadPool* pool = nullptr);

  /// Rebuilds a session from a snapshot: validates `spec`, re-derives
  /// every attribute's fixed layout from it, and installs `state`.
  /// Rejects (kInvalidArgument, never a CHECK abort) a state whose shape
  /// disagrees with the spec — wrong attribute count, counts tables not
  /// matching the derived bin layout, masses of the wrong length or
  /// non-finite, or per-attribute record counts diverging from `rows`.
  /// A restored session continues byte-identically: Ingest +
  /// ReconstructAll match a never-snapshotted session with the same
  /// history, at any thread count.
  static Result<std::unique_ptr<DatasetSession>> Restore(
      const DatasetSessionSpec& spec, DatasetSessionState state,
      engine::ThreadPool* pool = nullptr);

  /// Deep-copies the mutable half of the session under its lock — safe
  /// concurrently with Ingest()/ReconstructAll(); the copy is a
  /// consistent point-in-time snapshot.
  DatasetSessionState ExportState() const;

  /// Folds one record batch into every attribute state in a single pass
  /// over the rows. `rows` must be schema-wide. Rejects a non-finite value
  /// in any tracked column with kInvalidArgument (nothing is folded).
  /// Safe to call concurrently with ReconstructAll().
  Status Ingest(const data::RowBatch& rows);

  /// Fans one warm-started FitFromCounts per attribute over the pool and
  /// returns the estimates in spec order. Byte-identical to calling
  /// Reconstruct() on N independent per-attribute sessions with the same
  /// ingestion history, at any thread count.
  Result<std::vector<reconstruct::Reconstruction>> ReconstructAll();

  /// Records ingested so far.
  std::uint64_t record_count() const;

  /// Batches ingested so far.
  std::uint64_t batch_count() const;

  /// Approximate resident bytes of the session (all attribute states plus
  /// the session itself) — what SessionRegistry budgets account.
  std::size_t ApproxMemoryBytes() const;

  std::size_t num_attributes() const { return states_.size(); }
  const DatasetSessionSpec& spec() const { return spec_; }
  const reconstruct::Partition& partition(std::size_t index) const {
    return states_[index].partition();
  }
  const perturb::NoiseModel& noise_model(std::size_t index) const {
    return states_[index].noise_model();
  }

 private:
  DatasetSession(const DatasetSessionSpec& spec, engine::ThreadPool* pool);

  const DatasetSessionSpec spec_;
  engine::ThreadPool* const pool_;
  /// attributes[a].column, hoisted out of the ingest inner loop.
  std::vector<std::size_t> columns_;

  mutable std::mutex mu_;
  std::vector<AttributeState> states_;  // counts + masses guarded by mu_
  std::uint64_t rows_ = 0;              // guarded by mu_
  std::uint64_t batches_ = 0;           // guarded by mu_
};

}  // namespace ppdm::api

#endif  // PPDM_API_DATASET_SESSION_H_
