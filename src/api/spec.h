// The unified, validated specification layer of the serving API.
//
// Every layer of the library grew its own option struct (RandomizerOptions,
// ReconstructionOptions, BatchOptions, TreeOptions, ExperimentConfig), and
// none of them validated anything: a negative privacy fraction or a
// zero-interval partition sailed through until a PPDM_CHECK aborted deep in
// the stack — acceptable for a research harness, not for a server fed by
// untrusted requests. api::Spec composes those structs into one request
// description with a Validate() -> Status layer, and the granular
// Validate*() helpers let each entry point reject exactly the slice of the
// spec it consumes. All rejections use StatusCode::kInvalidArgument.

#ifndef PPDM_API_SPEC_H_
#define PPDM_API_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/experiment.h"
#include "engine/batch.h"
#include "perturb/randomizer.h"
#include "reconstruct/reconstructor.h"
#include "tree/trainer.h"

namespace ppdm::api {

/// Rejects invalid noise configuration: a non-finite or negative privacy
/// fraction, a confidence outside (0, 1), kNone with a nonzero fraction, or
/// a perturbing kind with a zero fraction.
Status ValidateNoise(const perturb::RandomizerOptions& options);

/// Rejects invalid EM tuning: zero max_iterations, or a negative /
/// non-finite chi_square_epsilon.
Status ValidateReconstruction(
    const reconstruct::ReconstructionOptions& options);

/// Rejects implausible engine configuration (thread counts beyond any
/// machine this library targets). shard_size is unconstrained: 0 means one
/// shard by contract.
Status ValidateEngine(const engine::BatchOptions& options);

/// Rejects invalid tree induction parameters: fewer than 2 intervals (or
/// more than the uint16 interval assignment can index), zero depth,
/// a holdout fraction outside [0, 1), negative gain/leaf thresholds, and
/// an invalid nested reconstruction spec.
Status ValidateTree(const tree::TreeOptions& options);

/// Rejects an invalid attribute domain: non-finite or empty [lo, hi], or
/// fewer than 2 intervals (zero intervals would divide by zero in the
/// partition; one admits no split).
Status ValidateDomain(double lo, double hi, std::size_t intervals);

/// Validates a full experiment cell (record counts plus every nested
/// option struct) for callers holding a core::ExperimentConfig directly
/// (benches, migration code). Spec-based callers get the same checks from
/// Spec::Validate(); core::PrepareData/RunModes themselves stay
/// unvalidated internals — route new entry points through one of these.
Status ValidateExperiment(const core::ExperimentConfig& config);

/// One validated request against the serving API: the experiment shape
/// plus every layer's options, composed instead of scattered.
struct Spec {
  /// Synthetic workload shape (paper benchmark functions).
  synth::Function function = synth::Function::kF1;
  std::size_t train_records = 20000;
  std::size_t test_records = 5000;
  /// Master seed; data generation and noise streams derive from it.
  std::uint64_t seed = 1;

  /// Provider-side perturbation. `noise.seed` is ignored by experiment
  /// conversion (streams derive from `seed`) but honoured by direct
  /// perturbation jobs.
  perturb::RandomizerOptions noise;

  /// Tree induction, including the nested reconstruction tuning and the
  /// per-attribute interval count.
  tree::TreeOptions tree;

  /// Parallel execution engine: worker threads and shard grain.
  engine::BatchOptions engine;

  /// kOk, or the first kInvalidArgument found.
  Status Validate() const;

  /// Lowers the spec onto the experiment driver's config. Call Validate()
  /// first; conversion itself never fails.
  core::ExperimentConfig ToExperimentConfig() const;

  /// Lifts an existing config into a Spec (for callers migrating to the
  /// validated layer).
  static Spec FromExperimentConfig(const core::ExperimentConfig& config);
};

/// The validated experiment façade: rejects an invalid spec with
/// kInvalidArgument, otherwise runs core::RunModes over one shared
/// prepared dataset and engine pool.
Result<std::vector<core::ModeResult>> RunExperiment(
    const Spec& spec, const std::vector<tree::TrainingMode>& modes);

}  // namespace ppdm::api

#endif  // PPDM_API_SPEC_H_
