#include "api/registry.h"

#include <utility>
#include <vector>

namespace ppdm::api {

SessionRegistry::SessionRegistry(SessionRegistryOptions options,
                                 engine::ThreadPool* pool)
    : options_(std::move(options)), pool_(pool) {}

std::chrono::steady_clock::time_point SessionRegistry::Now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

void SessionRegistry::TouchLocked(Entry* entry) {
  entry->last_used = Now();
  entry->recency = ++tick_;
}

std::size_t SessionRegistry::SweepExpiredLocked() {
  if (options_.ttl.count() <= 0) return 0;
  const auto now = Now();
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->second.last_used >= options_.ttl) {
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  evictions_ += evicted;
  ttl_evictions_ += evicted;
  return evicted;
}

std::size_t SessionRegistry::TotalBytesLocked() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) {
    total += entry.session->ApproxMemoryBytes();
  }
  return total;
}

void SessionRegistry::EnforceBudgetLocked(const std::string& keep) {
  if (options_.max_bytes == 0) return;
  while (entries_.size() > 1 && TotalBytesLocked() > options_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.recency < victim->second.recency) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // only `keep` is left
    entries_.erase(victim);
    ++evictions_;
  }
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Open(
    const std::string& name, const DatasetSessionSpec& spec) {
  // Refuse a taken name before paying for session construction (states,
  // layouts, counts). The name is re-checked under the same lock at
  // insertion in case a racing Open claimed it in between.
  {
    std::lock_guard<std::mutex> lock(mu_);
    SweepExpiredLocked();
    if (entries_.count(name) != 0) {
      return Status::FailedPrecondition("session '" + name +
                                        "' is already open");
    }
  }
  PPDM_ASSIGN_OR_RETURN(std::unique_ptr<DatasetSession> session,
                        DatasetSession::Open(spec, pool_));
  std::shared_ptr<DatasetSession> shared = std::move(session);

  std::lock_guard<std::mutex> lock(mu_);
  SweepExpiredLocked();
  if (entries_.count(name) != 0) {
    return Status::FailedPrecondition("session '" + name +
                                      "' is already open");
  }
  Entry& entry = entries_[name];
  entry.session = shared;
  TouchLocked(&entry);
  EnforceBudgetLocked(name);
  return shared;
}

std::shared_ptr<DatasetSession> SessionRegistry::Lookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  SweepExpiredLocked();
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  TouchLocked(&it->second);
  return it->second.session;
}

bool SessionRegistry::Close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.erase(name) != 0;
}

std::size_t SessionRegistry::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  return SweepExpiredLocked();
}

SessionRegistry::Stats SessionRegistry::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.open_sessions = entries_.size();
  stats.approx_bytes = TotalBytesLocked();
  stats.evictions = evictions_;
  stats.ttl_evictions = ttl_evictions_;
  stats.lookups = lookups_;
  stats.misses = misses_;
  return stats;
}

}  // namespace ppdm::api
