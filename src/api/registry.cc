#include "api/registry.h"

#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace ppdm::api {
namespace {

// Registry telemetry, mirrored from the mutex-guarded counters so an
// exposition scrape never takes the registry lock. Process-wide across
// registries (a server runs one).
struct RegistryMetrics {
  obs::Counter& lookups;
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& evictions;
  obs::Counter& ttl_evictions;
  obs::Counter& spills;
  obs::Counter& readmissions;
  obs::Counter& spill_failures;
  obs::Gauge& open_sessions;
  obs::Gauge& spilled_sessions;

  static RegistryMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static RegistryMetrics* const metrics = new RegistryMetrics{
        *registry.GetCounter("ppdm_registry_lookups_total"),
        *registry.GetCounter("ppdm_registry_hits_total"),
        *registry.GetCounter("ppdm_registry_misses_total"),
        *registry.GetCounter("ppdm_registry_evictions_total"),
        *registry.GetCounter("ppdm_registry_ttl_evictions_total"),
        *registry.GetCounter("ppdm_registry_spills_total"),
        *registry.GetCounter("ppdm_registry_readmissions_total"),
        *registry.GetCounter("ppdm_registry_spill_failures_total"),
        *registry.GetGauge("ppdm_registry_open_sessions"),
        *registry.GetGauge("ppdm_registry_spilled_sessions")};
    return *metrics;
  }
};

obs::Histogram& AdmitSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_registry_readmit_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

}  // namespace

SessionRegistry::SessionRegistry(SessionRegistryOptions options,
                                 engine::ThreadPool* pool)
    : options_(std::move(options)), pool_(pool) {}

std::chrono::steady_clock::time_point SessionRegistry::Now() const {
  return options_.clock ? options_.clock()
                        : std::chrono::steady_clock::now();
}

void SessionRegistry::TouchLocked(Entry* entry) {
  entry->last_used = Now();
  entry->recency = ++tick_;
}

std::map<std::string, SessionRegistry::Entry>::iterator
SessionRegistry::DemoteLocked(
    std::map<std::string, Entry>::iterator victim, bool* demoted) {
  *demoted = false;
  if (options_.spill != nullptr) {
    Entry& entry = victim->second;
    // A degraded entry inside its backoff window is not even attempted —
    // hammering a failing backend from every touch would serialize the
    // registry behind hopeless I/O.
    if (entry.spill_failures > 0 && Now() < entry.spill_retry_after) {
      return std::next(victim);
    }
    const Result<std::uint64_t> spilled =
        options_.spill->Spill(victim->first, *victim->second.session);
    if (!spilled.ok()) {
      // Graceful degradation: keep the session resident (over budget if
      // need be) rather than destroy evidence the backend failed to
      // capture. Mark it and double the backoff; the next touch past the
      // window retries. A previous capture of the name, if any, stays
      // accounted — still on disk, still re-admittable.
      ++spill_failures_;
      RegistryMetrics::Get().spill_failures.Increment();
      auto backoff = options_.spill_retry_backoff;
      for (std::uint32_t k = 0; k < entry.spill_failures && k < 16; ++k) {
        backoff *= 2;
      }
      ++entry.spill_failures;
      entry.spill_retry_after = Now() + backoff;
      return std::next(victim);
    }
    ++spills_;
    RegistryMetrics::Get().spills.Increment();
    spilled_[victim->first] = spilled.value();
  }
  ++evictions_;
  RegistryMetrics::Get().evictions.Increment();
  *demoted = true;
  return entries_.erase(victim);
}

std::size_t SessionRegistry::SweepExpiredLocked(const std::string* touching) {
  if (options_.ttl.count() <= 0) return 0;
  const auto now = Now();
  std::size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    const bool exempt = touching != nullptr && options_.spill != nullptr &&
                        it->first == *touching;
    if (!exempt && now - it->second.last_used >= options_.ttl) {
      bool demoted = false;
      it = DemoteLocked(it, &demoted);
      if (demoted) ++evicted;
    } else {
      ++it;
    }
  }
  ttl_evictions_ += evicted;
  if (evicted > 0) RegistryMetrics::Get().ttl_evictions.Increment(evicted);
  return evicted;
}

std::size_t SessionRegistry::TotalBytesLocked() const {
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) {
    total += entry.session->ApproxMemoryBytes();
  }
  return total;
}

bool SessionRegistry::NameTakenLocked(const std::string& name) const {
  return entries_.count(name) != 0 ||
         (options_.spill != nullptr && options_.spill->Contains(name));
}

void SessionRegistry::EnforceBudgetLocked(const std::string& keep) {
  if (options_.max_bytes == 0) return;

  // Pass 1: an entry that alone exceeds the whole budget can never be
  // retained once any other name is touched — demote oversized entries
  // up front so they don't flush within-budget tenants in pass 2.
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first != keep &&
        it->second.session->ApproxMemoryBytes() > options_.max_bytes) {
      bool demoted = false;
      it = DemoteLocked(it, &demoted);
    } else {
      ++it;
    }
  }

  // Pass 2: LRU demotion down to the budget. When `keep` itself exceeds
  // the budget the target is unreachable, so charge the other tenants as
  // if keep were absent rather than flushing them all; keep stays
  // resident only until the next touch of another name demotes it in
  // pass 1 above. Deterministic: no thrash, and the transient overage is
  // visible in Stats::approx_bytes.
  const auto keep_it = entries_.find(keep);
  const bool keep_oversized =
      keep_it != entries_.end() &&
      keep_it->second.session->ApproxMemoryBytes() > options_.max_bytes;
  // Names whose demotion failed (or is inside its backoff window) this
  // call: skipped as victims so a failing spill backend degrades to
  // "over budget, all data retained" instead of an infinite loop.
  std::set<std::string> attempted;
  while (true) {
    std::size_t charged = 0;
    for (const auto& [name, entry] : entries_) {
      if (keep_oversized && name == keep) continue;
      charged += entry.session->ApproxMemoryBytes();
    }
    if (charged <= options_.max_bytes) return;
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep || attempted.count(it->first) != 0) continue;
      if (victim == entries_.end() ||
          it->second.recency < victim->second.recency) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // no demotable victim left
    bool demoted = false;
    const std::string victim_name = victim->first;
    DemoteLocked(victim, &demoted);
    if (!demoted) attempted.insert(victim_name);
  }
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::Open(
    const std::string& name, const DatasetSessionSpec& spec) {
  // Refuse a taken name before paying for session construction (states,
  // layouts, counts). The name is re-checked under the same lock at
  // insertion in case a racing Open claimed it in between.
  {
    std::lock_guard<std::mutex> lock(mu_);
    SweepExpiredLocked();
    if (NameTakenLocked(name)) {
      return Status::FailedPrecondition("session '" + name +
                                        "' is already open");
    }
  }
  PPDM_ASSIGN_OR_RETURN(std::unique_ptr<DatasetSession> session,
                        DatasetSession::Open(spec, pool_));
  std::shared_ptr<DatasetSession> shared = std::move(session);

  std::lock_guard<std::mutex> lock(mu_);
  SweepExpiredLocked();
  if (NameTakenLocked(name)) {
    return Status::FailedPrecondition("session '" + name +
                                      "' is already open");
  }
  Entry& entry = entries_[name];
  entry.session = shared;
  TouchLocked(&entry);
  EnforceBudgetLocked(name);
  UpdateGaugesLocked();
  return shared;
}

std::shared_ptr<DatasetSession> SessionRegistry::Lookup(
    const std::string& name) {
  Result<std::shared_ptr<DatasetSession>> found = TryLookup(name);
  return found.ok() ? std::move(found).value() : nullptr;
}

Result<std::shared_ptr<DatasetSession>> SessionRegistry::TryLookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  ++lookups_;
  RegistryMetrics::Get().lookups.Increment();
  SweepExpiredLocked(&name);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    ++hits_;
    RegistryMetrics::Get().hits.Increment();
    TouchLocked(&it->second);
    std::shared_ptr<DatasetSession> session = it->second.session;
    // Re-enforce on every touch: sessions grow through Ingest between
    // touches, and an oversized session resident since its own Open is
    // demoted by the first touch of any other name (see
    // SessionRegistryOptions::max_bytes). This rescans every entry's
    // ApproxMemoryBytes (a session-mutex hop each) — fine at the session
    // counts served today; a cached byte total is the ROADMAP follow-up
    // before registries grow to thousands of tenants.
    EnforceBudgetLocked(name);
    UpdateGaugesLocked();
    return session;
  }
  // Transparent re-admission from the spill tier.
  if (options_.spill != nullptr && options_.spill->Contains(name)) {
    obs::ScopedTimer admit_timer(&AdmitSecondsHistogram());
    Result<std::shared_ptr<DatasetSession>> admitted =
        options_.spill->Admit(name, pool_);
    if (!admitted.ok()) {
      // Corrupt or unreadable capture: count the failure, keep the bytes
      // for inspection (Close() discards them), and surface the backend's
      // Status untouched. Registry state is unchanged — no entry was
      // registered, so a transient failure can succeed on retry.
      ++spill_failures_;
      ++misses_;
      RegistryMetrics::Get().spill_failures.Increment();
      RegistryMetrics::Get().misses.Increment();
      return admitted.status();
    }
    ++readmissions_;
    ++hits_;
    RegistryMetrics::Get().readmissions.Increment();
    RegistryMetrics::Get().hits.Increment();
    spilled_.erase(name);  // resident again; the RAM copy is authoritative
    Entry& entry = entries_[name];
    entry.session = std::move(admitted).value();
    TouchLocked(&entry);
    EnforceBudgetLocked(name);
    UpdateGaugesLocked();
    return entries_[name].session;
  }
  ++misses_;
  RegistryMetrics::Get().misses.Increment();
  return Status::NotFound("no session named '" + name + "'");
}

bool SessionRegistry::Close(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool resident = entries_.erase(name) != 0;
  bool dropped = false;
  if (options_.spill != nullptr && options_.spill->Contains(name)) {
    if (options_.spill->Drop(name).ok()) {
      dropped = true;
    } else {
      // The capture survives the failed Drop: it still blocks the name
      // (NameTakenLocked) and must stay accounted in the spill stats
      // until a later Close succeeds. The failure is visible in the
      // counter; the name did exist, so report true.
      ++spill_failures_;
      return true;
    }
  }
  // Either the capture was dropped or none exists — clear any (possibly
  // stale) spill accounting for the name.
  spilled_.erase(name);
  UpdateGaugesLocked();
  return resident || dropped;
}

std::size_t SessionRegistry::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t evicted = SweepExpiredLocked();
  UpdateGaugesLocked();
  return evicted;
}

void SessionRegistry::UpdateGaugesLocked() const {
  RegistryMetrics::Get().open_sessions.Set(
      static_cast<std::int64_t>(entries_.size()));
  RegistryMetrics::Get().spilled_sessions.Set(
      static_cast<std::int64_t>(spilled_.size()));
}

SessionRegistry::Stats SessionRegistry::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.open_sessions = entries_.size();
  stats.approx_bytes = TotalBytesLocked();
  stats.evictions = evictions_;
  stats.ttl_evictions = ttl_evictions_;
  stats.lookups = lookups_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.spills = spills_;
  stats.readmissions = readmissions_;
  stats.spill_failures = spill_failures_;
  stats.spilled_sessions = spilled_.size();
  for (const auto& [name, bytes] : spilled_) {
    stats.spilled_bytes += bytes;
  }
  for (const auto& [name, entry] : entries_) {
    if (entry.spill_failures > 0) ++stats.degraded_sessions;
  }
  return stats;
}

}  // namespace ppdm::api
