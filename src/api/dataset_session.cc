#include "api/dataset_session.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <utility>

#include "engine/simd.h"

#include "api/spec.h"
#include "common/strings.h"
#include "engine/shard_stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdm::api {
namespace {

// Session telemetry, recorded per call (one batch, one refresh) — the
// sharded fold itself is untouched. Latencies also land in the global
// trace ring, so `ppdm metrics --spans` shows recent ingests/refreshes.
obs::Histogram& IngestSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_session_ingest_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& ReconstructSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_session_reconstruct_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Counter& IngestRecordsCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_session_ingest_records_total");
  return counter;
}

obs::Counter& IngestBatchesCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_session_ingest_batches_total");
  return counter;
}

obs::Counter& IngestRejectedCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_session_ingest_rejected_total");
  return counter;
}

}  // namespace

Status DatasetSessionSpec::Validate() const {
  PPDM_RETURN_IF_ERROR(schema.Validate());
  if (attributes.empty()) {
    return Status::InvalidArgument(
        "dataset session needs at least one attribute spec");
  }
  std::vector<bool> seen(schema.NumFields(), false);
  for (std::size_t a = 0; a < attributes.size(); ++a) {
    const AttributeSpec& attr = attributes[a];
    if (attr.column >= schema.NumFields()) {
      return Status::InvalidArgument(
          StrFormat("attribute %zu: column %zu out of range for a %zu-field "
                    "schema",
                    a, attr.column, schema.NumFields()));
    }
    if (seen[attr.column]) {
      return Status::InvalidArgument(StrFormat(
          "attribute %zu: column %zu appears more than once", a,
          attr.column));
    }
    seen[attr.column] = true;
    const Status s = AttributeSession(a).Validate();
    if (!s.ok()) {
      return Status::InvalidArgument(
          StrFormat("attribute %zu ('%s'): %s", a,
                    schema.Field(attr.column).name.c_str(),
                    s.message().c_str()));
    }
  }
  return Status::Ok();
}

SessionSpec DatasetSessionSpec::AttributeSession(std::size_t index) const {
  const AttributeSpec& attr = attributes[index];
  const data::FieldSpec& field = schema.Field(attr.column);
  SessionSpec spec;
  spec.lo = field.lo;
  spec.hi = field.hi;
  spec.intervals = attr.intervals;
  spec.noise = attr.noise;
  spec.privacy_fraction = attr.privacy_fraction;
  spec.confidence = attr.confidence;
  spec.reconstruction = attr.reconstruction;
  spec.shard_size = shard_size;
  spec.warm_start = warm_start;
  return spec;
}

DatasetSession::DatasetSession(const DatasetSessionSpec& spec,
                               engine::ThreadPool* pool)
    : spec_(spec), pool_(pool) {
  states_.reserve(spec_.attributes.size());
  columns_.reserve(spec_.attributes.size());
  for (std::size_t a = 0; a < spec_.attributes.size(); ++a) {
    const SessionSpec attr = spec_.AttributeSession(a);
    states_.emplace_back(attr.lo, attr.hi, attr.intervals,
                         perturb::NoiseForPrivacy(attr.noise,
                                                  attr.privacy_fraction,
                                                  attr.hi - attr.lo,
                                                  attr.confidence),
                         attr.reconstruction);
    columns_.push_back(spec_.attributes[a].column);
  }
}

Result<std::unique_ptr<DatasetSession>> DatasetSession::Open(
    const DatasetSessionSpec& spec, engine::ThreadPool* pool) {
  PPDM_RETURN_IF_ERROR(spec.Validate());
  return std::unique_ptr<DatasetSession>(new DatasetSession(spec, pool));
}

Result<std::unique_ptr<DatasetSession>> DatasetSession::Restore(
    const DatasetSessionSpec& spec, DatasetSessionState state,
    engine::ThreadPool* pool) {
  PPDM_RETURN_IF_ERROR(spec.Validate());
  std::unique_ptr<DatasetSession> session(new DatasetSession(spec, pool));

  const std::size_t num_attrs = session->states_.size();
  if (state.stats.size() != num_attrs ||
      state.last_masses.size() != num_attrs) {
    return Status::InvalidArgument(StrFormat(
        "snapshot state carries %zu/%zu attribute entries, spec has %zu",
        state.stats.size(), state.last_masses.size(), num_attrs));
  }
  for (std::size_t a = 0; a < num_attrs; ++a) {
    const AttributeState& derived = session->states_[a];
    const engine::ShardStats& stats = state.stats[a];
    if (stats.num_bins() != derived.num_bins() ||
        stats.num_classes() != 1) {
      return Status::InvalidArgument(StrFormat(
          "attribute %zu: snapshot counts are %zu bins x %zu classes; the "
          "spec derives %zu bins x 1",
          a, stats.num_bins(), stats.num_classes(), derived.num_bins()));
    }
    if (stats.record_count() != state.rows) {
      return Status::InvalidArgument(StrFormat(
          "attribute %zu: %llu records in counts, session claims %llu",
          a, static_cast<unsigned long long>(stats.record_count()),
          static_cast<unsigned long long>(state.rows)));
    }
    const std::vector<double>& masses = state.last_masses[a];
    if (!masses.empty() &&
        masses.size() != derived.partition().intervals()) {
      return Status::InvalidArgument(StrFormat(
          "attribute %zu: %zu warm-start masses for a %zu-interval "
          "partition",
          a, masses.size(), derived.partition().intervals()));
    }
    for (double m : masses) {
      if (!std::isfinite(m) || m < 0.0) {
        return Status::InvalidArgument(StrFormat(
            "attribute %zu: non-finite or negative warm-start mass", a));
      }
    }
  }

  // Shapes agree; install. No lock needed — the session has not escaped.
  for (std::size_t a = 0; a < num_attrs; ++a) {
    session->states_[a].RestoreAccumulation(std::move(state.stats[a]),
                                            std::move(state.last_masses[a]));
  }
  session->rows_ = state.rows;
  session->batches_ = state.batches;
  return session;
}

DatasetSessionState DatasetSession::ExportState() const {
  std::lock_guard<std::mutex> lock(mu_);
  DatasetSessionState state;
  state.rows = rows_;
  state.batches = batches_;
  state.stats.reserve(states_.size());
  state.last_masses.reserve(states_.size());
  for (const AttributeState& attr : states_) {
    state.stats.push_back(attr.stats());
    state.last_masses.push_back(attr.last_masses());
  }
  return state;
}

Status DatasetSession::Ingest(const data::RowBatch& rows) {
  obs::ScopedSpan span("session.ingest", &IngestSecondsHistogram());
  if (rows.num_rows() > 0 && rows.num_cols() != spec_.schema.NumFields()) {
    IngestRejectedCounter().Increment();
    return Status::InvalidArgument(
        StrFormat("row batch is %zu columns wide, schema expects %zu",
                  rows.num_cols(), spec_.schema.NumFields()));
  }

  // One pass over the arriving records, sharded over the pool and outside
  // the session lock: each shard bins every tracked attribute of its rows
  // into its own integer counts. Shard boundaries depend only on
  // shard_size, and the per-attribute merge below runs in ascending shard
  // order, so the folded counts are byte-identical to N independent
  // per-attribute ingests of the same columns, for every pool size.
  const std::size_t num_attrs = states_.size();
  const std::vector<engine::ChunkRange> shards =
      engine::MakeChunks(rows.num_rows(), spec_.shard_size);
  std::vector<std::vector<engine::ShardStats>> partials(shards.size());
  for (std::vector<engine::ShardStats>& shard : partials) {
    shard.reserve(num_attrs);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      shard.emplace_back(states_[a].num_bins(), /*num_classes=*/1);
    }
  }
  std::atomic<bool> finite{true};
  engine::ParallelFor(pool_, shards.size(), [&](std::size_t s) {
    std::vector<engine::ShardStats>& local = partials[s];
    const std::size_t begin = shards[s].begin;
    const std::size_t end = shards[s].end;
    // Finiteness gate first: ingestion is all-or-nothing per batch, so
    // validating before any counting lets the bin+increment fold below run
    // branch-free over contiguous column batches.
    for (std::size_t r = begin; r < end; ++r) {
      const double* row = rows.row(r);
      for (std::size_t a = 0; a < num_attrs; ++a) {
        if (!std::isfinite(row[columns_[a]])) {
          finite.store(false, std::memory_order_relaxed);
          return;  // abandon the shard; nothing is folded below
        }
      }
    }
    // Per attribute: gather the column into a small scratch batch and bin
    // it with the dispatched batch kernel. Identical indices to BinOf on
    // every SIMD path, and integer counts, so the fold is byte-identical
    // to the per-value loop it replaces.
    constexpr std::size_t kBatch = 256;
    double vals[kBatch];
    std::uint32_t idx[kBatch];
    for (std::size_t a = 0; a < num_attrs; ++a) {
      const stats::Histogram& layout = states_[a].layout();
      const std::size_t col = columns_[a];
      for (std::size_t r0 = begin; r0 < end; r0 += kBatch) {
        const std::size_t n = std::min(kBatch, end - r0);
        for (std::size_t j = 0; j < n; ++j) {
          vals[j] = rows.row(r0 + j)[col];
        }
        engine::simd::BinIndices(vals, n, layout.lo(), layout.hi(),
                                 layout.width(), layout.bins(), idx);
        for (std::size_t j = 0; j < n; ++j) {
          local[a].Add(idx[j], 0);
        }
      }
    }
  });
  if (!finite.load(std::memory_order_relaxed)) {
    IngestRejectedCounter().Increment();
    return Status::InvalidArgument(
        "batch contains a non-finite value in a tracked column; batch "
        "rejected");
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::vector<engine::ShardStats>& shard : partials) {
      for (std::size_t a = 0; a < num_attrs; ++a) {
        states_[a].stats().MergeFrom(shard[a]);
      }
    }
    rows_ += rows.num_rows();
    ++batches_;
  }
  IngestRecordsCounter().Increment(rows.num_rows());
  IngestBatchesCounter().Increment();
  return Status::Ok();
}

Result<std::vector<reconstruct::Reconstruction>>
DatasetSession::ReconstructAll() {
  obs::ScopedSpan span("session.reconstruct_all",
                       &ReconstructSecondsHistogram());
  // Snapshot every attribute's counts (and warm-start masses) under the
  // lock; run the EM fan-out outside it so ingestion continues while the
  // estimates refresh.
  const std::size_t num_attrs = states_.size();
  std::vector<std::vector<double>> weights(num_attrs);
  std::vector<double> totals(num_attrs);
  std::vector<std::vector<double>> warm(num_attrs);  // empty == cold
  std::vector<std::shared_ptr<const reconstruct::KernelTable>> kernels(
      num_attrs);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      weights[a] = states_[a].stats().BinWeights();
      totals[a] = static_cast<double>(states_[a].stats().record_count());
      if (spec_.warm_start && states_[a].has_estimate()) {
        warm[a] = states_[a].last_masses();
      }
      kernels[a] = states_[a].kernel_cache();
    }
  }

  // One warm-started fit per attribute over the pool, each reusing its
  // cached kernel table when the layout still matches (a refresh rebuild
  // is the dominant fixed cost the cache removes). FitFromCounts is
  // thread-count invariant and its nested engine primitives run inline on
  // a worker, so each attribute's estimate matches a standalone session's
  // Reconstruct() byte for byte.
  std::vector<reconstruct::Reconstruction> estimates(num_attrs);
  engine::ParallelFor(pool_, num_attrs, [&](std::size_t a) {
    kernels[a] = states_[a].ResolveKernelTable(std::move(kernels[a]), pool_);
    estimates[a] = states_[a].reconstructor().FitFromCounts(
        weights[a], totals[a], states_[a].partition(), pool_,
        warm[a].empty() ? nullptr : &warm[a], kernels[a].get());
  });

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t a = 0; a < num_attrs; ++a) {
      states_[a].set_last_masses(estimates[a].masses);
      states_[a].set_kernel_cache(std::move(kernels[a]));
    }
  }
  return estimates;
}

std::uint64_t DatasetSession::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_;
}

std::uint64_t DatasetSession::batch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

std::size_t DatasetSession::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t bytes = sizeof(*this) +
                      columns_.capacity() * sizeof(std::size_t);
  for (const AttributeState& state : states_) {
    bytes += state.ApproxMemoryBytes();
  }
  return bytes;
}

}  // namespace ppdm::api
