#include "api/attribute_state.h"

#include <utility>

#include "obs/metrics.h"

namespace ppdm::api {
namespace {

// Kernel-cache effectiveness: hits skip the O(wbins·K) table rebuild on a
// warm-start refresh, builds paid for it (first fit or layout change).
obs::Counter& KernelCacheHitsCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_kernel_cache_hits_total");
  return counter;
}

obs::Counter& KernelCacheBuildsCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_kernel_cache_builds_total");
  return counter;
}

}  // namespace

AttributeState::AttributeState(double lo, double hi, std::size_t intervals,
                               perturb::NoiseModel model,
                               const reconstruct::ReconstructionOptions&
                                   options)
    : partition_(lo, hi, intervals),
      reconstructor_(std::move(model), options),
      layout_(reconstructor_.PerturbedBinning(partition_)),
      stats_(layout_.bins(), /*num_classes=*/1) {}

void AttributeState::set_last_masses(std::vector<double> masses) {
  last_masses_ = std::move(masses);
}

void AttributeState::RestoreAccumulation(engine::ShardStats stats,
                                         std::vector<double> masses) {
  stats_ = std::move(stats);
  last_masses_ = std::move(masses);
}

std::shared_ptr<const reconstruct::KernelTable>
AttributeState::ResolveKernelTable(
    std::shared_ptr<const reconstruct::KernelTable> cached,
    engine::ThreadPool* pool) const {
  if (cached != nullptr &&
      cached->Matches(noise_model(), partition_, layout_)) {
    KernelCacheHitsCounter().Increment();
    return cached;
  }
  KernelCacheBuildsCounter().Increment();
  return std::make_shared<const reconstruct::KernelTable>(
      reconstructor_.BuildKernelTable(partition_, pool));
}

std::size_t AttributeState::ApproxHeapBytes() const {
  return stats_.ApproxHeapBytes() +
         layout_.bins() * sizeof(std::size_t) +  // histogram counts
         last_masses_.capacity() * sizeof(double);
}

}  // namespace ppdm::api
