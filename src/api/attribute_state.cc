#include "api/attribute_state.h"

#include <utility>

namespace ppdm::api {

AttributeState::AttributeState(double lo, double hi, std::size_t intervals,
                               perturb::NoiseModel model,
                               const reconstruct::ReconstructionOptions&
                                   options)
    : partition_(lo, hi, intervals),
      reconstructor_(std::move(model), options),
      layout_(reconstructor_.PerturbedBinning(partition_)),
      stats_(layout_.bins(), /*num_classes=*/1) {}

void AttributeState::set_last_masses(std::vector<double> masses) {
  last_masses_ = std::move(masses);
}

void AttributeState::RestoreAccumulation(engine::ShardStats stats,
                                         std::vector<double> masses) {
  stats_ = std::move(stats);
  last_masses_ = std::move(masses);
}

std::size_t AttributeState::ApproxHeapBytes() const {
  return stats_.ApproxHeapBytes() +
         layout_.bins() * sizeof(std::size_t) +  // histogram counts
         last_masses_.capacity() * sizeof(double);
}

}  // namespace ppdm::api
