#include "api/spec.h"

#include <cmath>
#include <limits>

#include "common/strings.h"

namespace ppdm::api {
namespace {

// Any thread count past this is a typo, not a machine.
constexpr std::size_t kMaxThreads = 4096;

bool Finite(double v) { return std::isfinite(v); }

}  // namespace

Status ValidateNoise(const perturb::RandomizerOptions& options) {
  if (!Finite(options.privacy_fraction) || options.privacy_fraction < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "privacy_fraction must be finite and >= 0, got %g",
        options.privacy_fraction));
  }
  if (!Finite(options.confidence) || options.confidence <= 0.0 ||
      options.confidence >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "confidence must lie in (0, 1), got %g", options.confidence));
  }
  if (options.kind == perturb::NoiseKind::kNone &&
      options.privacy_fraction != 0.0) {
    return Status::InvalidArgument(
        "noise kind 'none' offers no privacy; privacy_fraction must be 0");
  }
  if (options.kind != perturb::NoiseKind::kNone &&
      options.privacy_fraction == 0.0) {
    return Status::InvalidArgument(
        "privacy_fraction 0 requires noise kind 'none'");
  }
  return Status::Ok();
}

Status ValidateReconstruction(
    const reconstruct::ReconstructionOptions& options) {
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (!Finite(options.chi_square_epsilon) ||
      options.chi_square_epsilon < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "chi_square_epsilon must be finite and >= 0, got %g",
        options.chi_square_epsilon));
  }
  return Status::Ok();
}

Status ValidateEngine(const engine::BatchOptions& options) {
  if (options.num_threads > kMaxThreads) {
    return Status::InvalidArgument(StrFormat(
        "num_threads %zu exceeds the supported maximum %zu",
        options.num_threads, kMaxThreads));
  }
  return Status::Ok();
}

Status ValidateTree(const tree::TreeOptions& options) {
  if (options.intervals < 2) {
    return Status::InvalidArgument(StrFormat(
        "intervals must be >= 2 (reconstruction needs a partition, splits "
        "need a boundary), got %zu", options.intervals));
  }
  if (options.intervals > std::numeric_limits<std::uint16_t>::max()) {
    return Status::InvalidArgument(StrFormat(
        "intervals must fit the uint16 interval index, got %zu",
        options.intervals));
  }
  if (options.max_depth == 0) {
    return Status::InvalidArgument("max_depth must be >= 1");
  }
  if (!Finite(options.min_leaf_records) || options.min_leaf_records < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "min_leaf_records must be finite and >= 0, got %g",
        options.min_leaf_records));
  }
  if (!Finite(options.min_gain) || options.min_gain < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "min_gain must be finite and >= 0, got %g", options.min_gain));
  }
  if (!Finite(options.holdout_fraction) || options.holdout_fraction < 0.0 ||
      options.holdout_fraction >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "holdout_fraction must lie in [0, 1), got %g",
        options.holdout_fraction));
  }
  if (!Finite(options.pruning_z) || options.pruning_z < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "pruning_z must be finite and >= 0, got %g", options.pruning_z));
  }
  return ValidateReconstruction(options.reconstruction);
}

Status ValidateDomain(double lo, double hi, std::size_t intervals) {
  if (!Finite(lo) || !Finite(hi) || lo >= hi) {
    return Status::InvalidArgument(StrFormat(
        "domain [%g, %g] must be a finite non-empty interval", lo, hi));
  }
  if (intervals < 2) {
    return Status::InvalidArgument(StrFormat(
        "intervals must be >= 2, got %zu", intervals));
  }
  return Status::Ok();
}

Status ValidateExperiment(const core::ExperimentConfig& config) {
  if (config.train_records == 0) {
    return Status::InvalidArgument("train_records must be >= 1");
  }
  if (config.test_records == 0) {
    return Status::InvalidArgument("test_records must be >= 1");
  }
  // The experiment driver switches to kNone itself when the fraction is 0,
  // so unlike ValidateNoise a perturbing kind with fraction 0 is fine here.
  if (!Finite(config.privacy_fraction) || config.privacy_fraction < 0.0) {
    return Status::InvalidArgument(StrFormat(
        "privacy_fraction must be finite and >= 0, got %g",
        config.privacy_fraction));
  }
  if (config.noise == perturb::NoiseKind::kNone &&
      config.privacy_fraction != 0.0) {
    return Status::InvalidArgument(
        "noise kind 'none' offers no privacy; privacy_fraction must be 0");
  }
  if (!Finite(config.confidence) || config.confidence <= 0.0 ||
      config.confidence >= 1.0) {
    return Status::InvalidArgument(StrFormat(
        "confidence must lie in (0, 1), got %g", config.confidence));
  }
  PPDM_RETURN_IF_ERROR(ValidateTree(config.tree));
  return ValidateEngine(config.batch);
}

Status Spec::Validate() const {
  if (train_records == 0) {
    return Status::InvalidArgument("train_records must be >= 1");
  }
  if (test_records == 0) {
    return Status::InvalidArgument("test_records must be >= 1");
  }
  PPDM_RETURN_IF_ERROR(ValidateNoise(noise));
  PPDM_RETURN_IF_ERROR(ValidateTree(tree));
  return ValidateEngine(engine);
}

core::ExperimentConfig Spec::ToExperimentConfig() const {
  core::ExperimentConfig config;
  config.function = function;
  config.train_records = train_records;
  config.test_records = test_records;
  config.noise = noise.kind;
  config.privacy_fraction = noise.privacy_fraction;
  config.confidence = noise.confidence;
  config.tree = tree;
  config.seed = seed;
  config.batch = engine;
  return config;
}

Spec Spec::FromExperimentConfig(const core::ExperimentConfig& config) {
  Spec spec;
  spec.function = config.function;
  spec.train_records = config.train_records;
  spec.test_records = config.test_records;
  spec.seed = config.seed;
  spec.noise.kind = config.privacy_fraction == 0.0
                        ? perturb::NoiseKind::kNone
                        : config.noise;
  spec.noise.privacy_fraction = config.privacy_fraction;
  spec.noise.confidence = config.confidence;
  spec.tree = config.tree;
  spec.engine = config.batch;
  return spec;
}

Result<std::vector<core::ModeResult>> RunExperiment(
    const Spec& spec, const std::vector<tree::TrainingMode>& modes) {
  PPDM_RETURN_IF_ERROR(spec.Validate());
  if (modes.empty()) {
    return Status::InvalidArgument("at least one training mode is required");
  }
  return core::RunModes(spec.ToExperimentConfig(), modes);
}

}  // namespace ppdm::api
