#include "api/service.h"

namespace ppdm::api {

Service::Service(const engine::BatchOptions& options)
    : options_(options),
      pool_(options.num_threads == 0
                ? nullptr
                : std::make_unique<engine::ThreadPool>(options.num_threads)) {}

Result<std::unique_ptr<Service>> Service::Create(
    const engine::BatchOptions& options) {
  PPDM_RETURN_IF_ERROR(ValidateEngine(options));
  return std::unique_ptr<Service>(new Service(options));
}

}  // namespace ppdm::api
