#include "api/service.h"

namespace ppdm::api {
namespace internal {

obs::Histogram& ServiceQueueWaitHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_service_queue_wait_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& ServiceRunHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_service_run_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Counter& ServiceJobsCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_service_jobs_total");
  return counter;
}

}  // namespace internal

Service::Service(const engine::BatchOptions& options)
    : options_(options),
      pool_(options.num_threads == 0
                ? nullptr
                : std::make_unique<engine::ThreadPool>(options.num_threads)) {}

Result<std::unique_ptr<Service>> Service::Create(
    const engine::BatchOptions& options) {
  PPDM_RETURN_IF_ERROR(ValidateEngine(options));
  return std::unique_ptr<Service>(new Service(options));
}

}  // namespace ppdm::api
