#include "api/service.h"

#include "common/fault.h"
#include "common/retry.h"
#include "common/strings.h"

namespace ppdm::api {
namespace {

fault::FaultPoint& EnqueueFault() {
  static fault::FaultPoint& point = fault::Point("service.enqueue");
  return point;
}

}  // namespace

namespace internal {

obs::Histogram& ServiceQueueWaitHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_service_queue_wait_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& ServiceRunHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_service_run_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Counter& ServiceJobsCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_service_jobs_total");
  return counter;
}

obs::Counter& ServiceShedCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_service_shed_jobs_total");
  return counter;
}

obs::Counter& ServiceExpiredCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_service_expired_jobs_total");
  return counter;
}

obs::Counter& ServiceCancelledCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_service_cancelled_jobs_total");
  return counter;
}

}  // namespace internal

Service::Service(const engine::BatchOptions& options,
                 const ServiceOptions& service)
    : options_(options),
      service_options_(service),
      pool_(options.num_threads == 0
                ? nullptr
                : std::make_unique<engine::ThreadPool>(options.num_threads)) {}

Result<std::unique_ptr<Service>> Service::Create(
    const engine::BatchOptions& options) {
  return Create(options, ServiceOptions{});
}

Result<std::unique_ptr<Service>> Service::Create(
    const engine::BatchOptions& options, const ServiceOptions& service) {
  PPDM_RETURN_IF_ERROR(ValidateEngine(options));
  // Register the resilience counters up front so a chaos run's exposition
  // shows them (as 0) even when nothing was shed or retried.
  internal::ServiceShedCounter();
  internal::ServiceExpiredCounter();
  internal::ServiceCancelledCounter();
  retry::internal::TouchMetrics();
  return std::unique_ptr<Service>(new Service(options, service));
}

Status Service::TryAdmit() {
  if (Status injected = EnqueueFault().Fire(); !injected.ok()) {
    return injected;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    return Status::Unavailable("service is draining; resubmit after Resume");
  }
  if (service_options_.max_pending > 0 &&
      queued_ >= service_options_.max_pending) {
    return Status::ResourceExhausted(
        StrFormat("pending-job queue full (%zu jobs)", queued_));
  }
  ++queued_;
  ++in_flight_;
  return Status::Ok();
}

void Service::OnJobStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  --queued_;
}

void Service::OnJobFinished() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
    if (in_flight_ > 0) return;
  }
  drained_cv_.notify_all();
}

void Service::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void Service::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

std::size_t Service::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace ppdm::api
