// Session-oriented streaming reconstruction — the serving shape of the
// paper's server: perturbed records arrive from providers in batches over
// time, and the miner wants an estimate of the true distribution at any
// point, not only after the last record.
//
// A ReconstructionSession folds arriving batches into the engine's
// mergeable per-bin counts (ShardStats) as they arrive — binning each
// perturbed value once, on arrival — and runs EM on demand. Because the
// folded counts are integers, the accumulated statistics are identical for
// every batching of the same records, so a session's first Reconstruct()
// is byte-identical to the batch BayesReconstructor::FitParallel over the
// concatenated column, for every pool size. Subsequent Reconstruct() calls
// warm-start EM from the previous estimate, which is what makes periodic
// re-estimation cheap as the stream grows.
//
// Thread safety: Ingest() and Reconstruct() may be called concurrently
// from different service jobs. Ingestion folds under a lock; Reconstruct()
// snapshots the counts under the lock and runs EM outside it, so a long
// EM never stalls the ingest path.

#ifndef PPDM_API_SESSION_H_
#define PPDM_API_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "api/attribute_state.h"
#include "common/status.h"
#include "engine/thread_pool.h"
#include "perturb/noise_model.h"
#include "reconstruct/partition.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::api {

/// Everything a streaming reconstruction session needs to know up front:
/// the attribute domain, the (public) noise the providers applied, and the
/// EM tuning. Validated on Open.
struct SessionSpec {
  /// Attribute domain [lo, hi), partitioned into `intervals` equal cells.
  double lo = 0.0;
  double hi = 1.0;
  std::size_t intervals = 30;

  /// The providers' noise: kind plus the privacy it was calibrated to
  /// offer over this attribute's range at `confidence`.
  perturb::NoiseKind noise = perturb::NoiseKind::kUniform;
  double privacy_fraction = 1.0;
  double confidence = 0.95;

  /// EM tuning. `reconstruction.binned` must stay true: a session folds
  /// binned counts on arrival, so the per-sample exact path is not
  /// available (Validate rejects binned == false).
  reconstruct::ReconstructionOptions reconstruction;

  /// Records per ingestion shard when a batch is folded over the pool.
  /// Affects only ingestion throughput, never the counts.
  std::size_t shard_size = 16384;

  /// Warm-start each Reconstruct() after the first from the previous
  /// estimate. Off, every call runs cold from the uniform prior (and so
  /// stays byte-identical to the batch path at any point in the stream).
  bool warm_start = true;

  /// kOk, or kInvalidArgument naming the offending field.
  Status Validate() const;
};

/// A server-side streaming reconstruction of one attribute.
class ReconstructionSession {
 public:
  /// Validates `spec` and opens a session. `pool` (borrowed, may be null)
  /// parallelizes ingestion and the EM E-step; the session's results are
  /// identical for every pool.
  static Result<std::unique_ptr<ReconstructionSession>> Open(
      const SessionSpec& spec, engine::ThreadPool* pool = nullptr);

  /// Folds one batch of perturbed observations into the session counts.
  /// Safe to call concurrently with Reconstruct(). Rejects non-finite
  /// values with kInvalidArgument (nothing from the batch is folded).
  Status Ingest(const double* values, std::size_t count);
  Status Ingest(const std::vector<double>& values);

  /// Runs EM over everything ingested so far and returns the estimate.
  /// The first call (or every call with warm_start off) starts from the
  /// uniform prior and is byte-identical to FitParallel over the
  /// concatenated batches; later calls warm-start from the previous
  /// estimate. An empty session yields the uniform distribution.
  Result<reconstruct::Reconstruction> Reconstruct();

  /// Records ingested so far.
  std::uint64_t record_count() const;

  /// Batches ingested so far.
  std::uint64_t batch_count() const;

  /// True once Reconstruct() has produced an estimate.
  bool has_estimate() const;

  /// Approximate resident bytes of the session (state plus counts) — the
  /// unit registry byte budgets account in.
  std::size_t ApproxMemoryBytes() const;

  const SessionSpec& spec() const { return spec_; }
  const reconstruct::Partition& partition() const {
    return state_.partition();
  }
  const perturb::NoiseModel& noise_model() const {
    return state_.noise_model();
  }

 private:
  ReconstructionSession(const SessionSpec& spec, perturb::NoiseModel model,
                        engine::ThreadPool* pool);

  const SessionSpec spec_;
  engine::ThreadPool* const pool_;

  mutable std::mutex mu_;
  AttributeState state_;       // counts + warm masses guarded by mu_
  std::uint64_t batches_ = 0;  // guarded by mu_
};

}  // namespace ppdm::api

#endif  // PPDM_API_SESSION_H_
