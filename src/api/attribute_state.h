// Per-attribute streaming reconstruction state — the unit both session
// shapes are built from. A ReconstructionSession owns one AttributeState;
// a DatasetSession owns one per tracked attribute and folds a record
// batch into all of them in a single pass.
//
// An AttributeState bundles the fixed layout of one attribute's streaming
// reconstruction (interval partition, noise-aware reconstructor, the
// perturbed-value bin layout) with its mutable accumulation (mergeable
// ShardStats counts and the warm-start masses of the last fit). It is NOT
// thread-safe: the owning session guards the mutable parts with its own
// mutex and keeps EM outside the lock by snapshotting the counts.

#ifndef PPDM_API_ATTRIBUTE_STATE_H_
#define PPDM_API_ATTRIBUTE_STATE_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "engine/shard_stats.h"
#include "perturb/noise_model.h"
#include "reconstruct/partition.h"
#include "reconstruct/reconstructor.h"
#include "stats/histogram.h"

namespace ppdm::api {

/// Streaming reconstruction state of one attribute: fixed layout plus
/// accumulated counts and warm-start masses (owner-synchronized).
class AttributeState {
 public:
  AttributeState(double lo, double hi, std::size_t intervals,
                 perturb::NoiseModel model,
                 const reconstruct::ReconstructionOptions& options);

  // Fixed layout — immutable after construction, safe to read without the
  // owner's lock.
  const reconstruct::Partition& partition() const { return partition_; }
  const reconstruct::BayesReconstructor& reconstructor() const {
    return reconstructor_;
  }
  const perturb::NoiseModel& noise_model() const {
    return reconstructor_.noise();
  }
  const stats::Histogram& layout() const { return layout_; }
  std::size_t num_bins() const { return layout_.bins(); }

  /// Perturbed-value bin of one arriving observation.
  std::size_t BinOf(double value) const { return layout_.BinOf(value); }

  // Mutable accumulation — owner's lock required.
  engine::ShardStats& stats() { return stats_; }
  const engine::ShardStats& stats() const { return stats_; }

  bool has_estimate() const { return !last_masses_.empty(); }
  const std::vector<double>& last_masses() const { return last_masses_; }
  void set_last_masses(std::vector<double> masses);

  /// The kernel table of the last fit, or null before the first one. The
  /// table depends only on the fixed layout, so warm-start refreshes reuse
  /// it and skip the O(wbins·K) rebuild; reconstruct::KernelTable::Matches
  /// is still checked before every reuse (a stale table is rebuilt, never
  /// trusted). shared_ptr so the owning session can fit from the table
  /// outside its lock while a concurrent caller swaps the cache.
  /// Owner's lock required for both accessors.
  std::shared_ptr<const reconstruct::KernelTable> kernel_cache() const {
    return kernel_cache_;
  }
  void set_kernel_cache(std::shared_ptr<const reconstruct::KernelTable> t) {
    kernel_cache_ = std::move(t);
  }

  /// Returns `cached` when it matches this attribute's layout, else builds
  /// a fresh table. Reads only the immutable layout, so it runs outside
  /// the owner's lock (snapshot the cache under the lock, resolve outside,
  /// store the result back under the lock). Increments the process-wide
  /// ppdm_kernel_cache_hits_total / ppdm_kernel_cache_builds_total
  /// counters; the returned table's contents never depend on which branch
  /// ran, so reconstruction bits are cache-independent.
  std::shared_ptr<const reconstruct::KernelTable> ResolveKernelTable(
      std::shared_ptr<const reconstruct::KernelTable> cached,
      engine::ThreadPool* pool) const;

  /// Installs restored accumulation (snapshot decode / registry
  /// re-admission). Preconditions — validated by the decoding caller,
  /// which surfaces violations as Status errors: `stats` shaped
  /// num_bins() x 1 class; `masses` empty or partition().intervals()
  /// entries. Owner's lock required.
  void RestoreAccumulation(engine::ShardStats stats,
                           std::vector<double> masses);

  /// Approximate heap bytes behind this state (counts, layout, warm-start
  /// masses) — excludes sizeof(AttributeState) so owners embedding the
  /// state by value don't double-count it, and excludes the kernel cache:
  /// the cache is rebuildable derived data (dropping it costs a rebuild,
  /// never correctness), so counting it would shrink the registry's
  /// admission budget for payload state. Owner's lock required.
  std::size_t ApproxHeapBytes() const;

  /// Heap bytes plus the struct itself — the per-state unit a session
  /// registry's byte budget accounts in. Owner's lock required.
  std::size_t ApproxMemoryBytes() const {
    return sizeof(*this) + ApproxHeapBytes();
  }

 private:
  const reconstruct::Partition partition_;
  const reconstruct::BayesReconstructor reconstructor_;
  /// Perturbed-value bin layout; fixed for the state's lifetime.
  const stats::Histogram layout_;

  engine::ShardStats stats_;
  std::vector<double> last_masses_;  // empty until first fit
  std::shared_ptr<const reconstruct::KernelTable> kernel_cache_;  // may be null
};

}  // namespace ppdm::api

#endif  // PPDM_API_ATTRIBUTE_STATE_H_
