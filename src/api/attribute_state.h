// Per-attribute streaming reconstruction state — the unit both session
// shapes are built from. A ReconstructionSession owns one AttributeState;
// a DatasetSession owns one per tracked attribute and folds a record
// batch into all of them in a single pass.
//
// An AttributeState bundles the fixed layout of one attribute's streaming
// reconstruction (interval partition, noise-aware reconstructor, the
// perturbed-value bin layout) with its mutable accumulation (mergeable
// ShardStats counts and the warm-start masses of the last fit). It is NOT
// thread-safe: the owning session guards the mutable parts with its own
// mutex and keeps EM outside the lock by snapshotting the counts.

#ifndef PPDM_API_ATTRIBUTE_STATE_H_
#define PPDM_API_ATTRIBUTE_STATE_H_

#include <cstddef>
#include <vector>

#include "engine/shard_stats.h"
#include "perturb/noise_model.h"
#include "reconstruct/partition.h"
#include "reconstruct/reconstructor.h"
#include "stats/histogram.h"

namespace ppdm::api {

/// Streaming reconstruction state of one attribute: fixed layout plus
/// accumulated counts and warm-start masses (owner-synchronized).
class AttributeState {
 public:
  AttributeState(double lo, double hi, std::size_t intervals,
                 perturb::NoiseModel model,
                 const reconstruct::ReconstructionOptions& options);

  // Fixed layout — immutable after construction, safe to read without the
  // owner's lock.
  const reconstruct::Partition& partition() const { return partition_; }
  const reconstruct::BayesReconstructor& reconstructor() const {
    return reconstructor_;
  }
  const perturb::NoiseModel& noise_model() const {
    return reconstructor_.noise();
  }
  const stats::Histogram& layout() const { return layout_; }
  std::size_t num_bins() const { return layout_.bins(); }

  /// Perturbed-value bin of one arriving observation.
  std::size_t BinOf(double value) const { return layout_.BinOf(value); }

  // Mutable accumulation — owner's lock required.
  engine::ShardStats& stats() { return stats_; }
  const engine::ShardStats& stats() const { return stats_; }

  bool has_estimate() const { return !last_masses_.empty(); }
  const std::vector<double>& last_masses() const { return last_masses_; }
  void set_last_masses(std::vector<double> masses);

  /// Installs restored accumulation (snapshot decode / registry
  /// re-admission). Preconditions — validated by the decoding caller,
  /// which surfaces violations as Status errors: `stats` shaped
  /// num_bins() x 1 class; `masses` empty or partition().intervals()
  /// entries. Owner's lock required.
  void RestoreAccumulation(engine::ShardStats stats,
                           std::vector<double> masses);

  /// Approximate heap bytes behind this state (counts, layout, warm-start
  /// masses) — excludes sizeof(AttributeState) so owners embedding the
  /// state by value don't double-count it. Owner's lock required.
  std::size_t ApproxHeapBytes() const;

  /// Heap bytes plus the struct itself — the per-state unit a session
  /// registry's byte budget accounts in. Owner's lock required.
  std::size_t ApproxMemoryBytes() const {
    return sizeof(*this) + ApproxHeapBytes();
  }

 private:
  const reconstruct::Partition partition_;
  const reconstruct::BayesReconstructor reconstructor_;
  /// Perturbed-value bin layout; fixed for the state's lifetime.
  const stats::Histogram layout_;

  engine::ShardStats stats_;
  std::vector<double> last_masses_;  // empty until first fit
};

}  // namespace ppdm::api

#endif  // PPDM_API_ATTRIBUTE_STATE_H_
