#include "api/session.h"

#include <cmath>
#include <utility>

#include "api/spec.h"
#include "common/strings.h"

namespace ppdm::api {

Status SessionSpec::Validate() const {
  PPDM_RETURN_IF_ERROR(ValidateDomain(lo, hi, intervals));
  perturb::RandomizerOptions as_noise;
  as_noise.kind = noise;
  as_noise.privacy_fraction = privacy_fraction;
  as_noise.confidence = confidence;
  PPDM_RETURN_IF_ERROR(ValidateNoise(as_noise));
  if (!reconstruction.binned) {
    // Streaming folds binned counts on arrival; the per-sample FitExact
    // path needs every raw observation and cannot be honoured here. Reject
    // rather than silently diverge from the batch result.
    return Status::InvalidArgument(
        "streaming sessions require reconstruction.binned (the per-sample "
        "exact path needs the full column)");
  }
  return ValidateReconstruction(reconstruction);
}

ReconstructionSession::ReconstructionSession(const SessionSpec& spec,
                                             perturb::NoiseModel model,
                                             engine::ThreadPool* pool)
    : spec_(spec),
      pool_(pool),
      state_(spec.lo, spec.hi, spec.intervals, std::move(model),
             spec.reconstruction) {}

Result<std::unique_ptr<ReconstructionSession>> ReconstructionSession::Open(
    const SessionSpec& spec, engine::ThreadPool* pool) {
  PPDM_RETURN_IF_ERROR(spec.Validate());
  const perturb::NoiseModel model = perturb::NoiseForPrivacy(
      spec.noise, spec.privacy_fraction, spec.hi - spec.lo, spec.confidence);
  return std::unique_ptr<ReconstructionSession>(
      new ReconstructionSession(spec, model, pool));
}

Status ReconstructionSession::Ingest(const double* values,
                                     std::size_t count) {
  if (values == nullptr && count > 0) {
    return Status::InvalidArgument("null batch with nonzero count");
  }
  for (std::size_t i = 0; i < count; ++i) {
    if (!std::isfinite(values[i])) {
      return Status::InvalidArgument(StrFormat(
          "batch value %zu is not finite; batch rejected", i));
    }
  }

  // Bin the batch on arrival, sharded over the pool, outside the session
  // lock: each shard accumulates its own integer counts, so the merged
  // result is identical for every pool size and every batching. The
  // equi-width fast path computes bin indices with the dispatched batch
  // kernel — identical indices to BinOf on every SIMD path.
  const stats::Histogram& layout = state_.layout();
  engine::ShardStats binned = engine::IngestBinnedColumn(
      values, count, layout.lo(), layout.hi(), layout.width(), layout.bins(),
      pool_, spec_.shard_size);

  std::lock_guard<std::mutex> lock(mu_);
  state_.stats().MergeFrom(binned);
  ++batches_;
  return Status::Ok();
}

Status ReconstructionSession::Ingest(const std::vector<double>& values) {
  return Ingest(values.data(), values.size());
}

Result<reconstruct::Reconstruction> ReconstructionSession::Reconstruct() {
  // Snapshot under the lock; run EM outside it so ingestion continues
  // while the estimate is refreshed.
  std::vector<double> weights;
  double total_weight = 0.0;
  std::vector<double> initial;
  bool warm = false;
  std::shared_ptr<const reconstruct::KernelTable> kernel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    weights = state_.stats().BinWeights();
    total_weight = static_cast<double>(state_.stats().record_count());
    if (spec_.warm_start && state_.has_estimate()) {
      initial = state_.last_masses();
      warm = true;
    }
    kernel = state_.kernel_cache();
  }

  // Cache hit skips the O(wbins·K) table rebuild; either way the table
  // contents (and so the masses) are identical.
  kernel = state_.ResolveKernelTable(std::move(kernel), pool_);
  reconstruct::Reconstruction recon = state_.reconstructor().FitFromCounts(
      weights, total_weight, state_.partition(), pool_,
      warm ? &initial : nullptr, kernel.get());

  {
    std::lock_guard<std::mutex> lock(mu_);
    state_.set_last_masses(recon.masses);
    state_.set_kernel_cache(std::move(kernel));
  }
  return recon;
}

std::uint64_t ReconstructionSession::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_.stats().record_count();
}

std::uint64_t ReconstructionSession::batch_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batches_;
}

bool ReconstructionSession::has_estimate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_.has_estimate();
}

std::size_t ReconstructionSession::ApproxMemoryBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  // state_ is embedded by value, so sizeof(*this) already covers it.
  return sizeof(*this) + state_.ApproxHeapBytes();
}

}  // namespace ppdm::api
