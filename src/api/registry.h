// Bounded registry of named dataset sessions — the memory story for a
// long-lived service. A server holding thousands of streaming sessions
// needs an explicit resource bound: the registry accounts every session's
// ApproxMemoryBytes() against a configurable byte budget and evicts
// least-recently-used sessions when the budget is exceeded, plus any
// session idle longer than the TTL.
//
// Spill tier: with a SessionSpill backend configured, eviction *demotes*
// a session — its state is serialized to the backend before the in-RAM
// entry is dropped — and Lookup() transparently re-admits spilled
// sessions, so hours of accumulated, privacy-perturbed evidence survive
// memory pressure and process restarts. A spilled name still counts as
// open: Open() refuses it, Close() drops both tiers. Without a backend,
// eviction destroys the state (the pre-spill behaviour).
//
// Eviction safety: the registry hands out shared_ptr references, so
// evicting (or Close()-ing) a session concurrently with an in-flight
// Ingest()/ReconstructAll() on it is safe — the registry merely drops its
// reference; the session finishes its in-flight calls and is destroyed
// with the last reference. Race-checked under ThreadSanitizer in CI.
// A demotion serializes the state the session holds at demotion time;
// writes made later through still-held shared_ptrs are not captured —
// the same visibility contract plain eviction always had. Serving loops
// that want spill-exactness re-Lookup per batch instead of caching the
// pointer.
//
// Lock order: registry mutex, then (via ApproxMemoryBytes / the spill
// backend's ExportState) a session mutex. Sessions never call back into
// the registry, so the order never inverts. Spill/admit I/O runs under
// the registry mutex — re-admission latency serializes lookups; keep
// backends fast (bench_perf_store measures this path).

#ifndef PPDM_API_REGISTRY_H_
#define PPDM_API_REGISTRY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/dataset_session.h"
#include "common/status.h"
#include "engine/thread_pool.h"

namespace ppdm::api {

/// Durable demotion target for registry sessions. Implementations (the
/// store subsystem's SessionSpillStore) serialize a session's state on
/// Spill and rebuild an equivalent session on Admit. All methods are
/// called under the registry mutex; implementations need no locking of
/// their own but must not call back into the registry.
class SessionSpill {
 public:
  virtual ~SessionSpill() = default;

  /// Durably captures `session`'s current state under `name`, replacing
  /// any previous capture of that name. Returns the capture's size in
  /// bytes (the registry accounts spilled bytes from it).
  virtual Result<std::uint64_t> Spill(const std::string& name,
                                      const DatasetSession& session) = 0;

  /// Rebuilds the session spilled under `name` over `pool`. The capture
  /// stays put — it remains the name's durable checkpoint until the next
  /// Spill overwrites it or Drop discards it. kNotFound when absent;
  /// decode failures surface as the codec's Status (the capture is
  /// retained for inspection — Close() the name to discard it).
  virtual Result<std::shared_ptr<DatasetSession>> Admit(
      const std::string& name, engine::ThreadPool* pool) = 0;

  /// True when a capture named `name` exists.
  virtual bool Contains(const std::string& name) const = 0;

  /// Discards the capture named `name` (kNotFound when absent).
  virtual Status Drop(const std::string& name) = 0;
};

/// Resource bounds for a SessionRegistry.
struct SessionRegistryOptions {
  /// Total ApproxMemoryBytes() budget across registered sessions; 0 means
  /// unbounded. When an Open pushes the total over the budget, LRU
  /// sessions are evicted until it fits (the session just opened is never
  /// evicted by its own Open, so a single over-budget session still
  /// serves — the budget bounds what the registry *retains*).
  ///
  /// A session larger than the whole budget is handled deterministically
  /// rather than by thrashing: it never causes other (within-budget)
  /// sessions to be evicted, it stays resident only while it is the most
  /// recently touched name, and the first touch of any other name demotes
  /// it (to the spill tier when configured, else destroying it).
  std::size_t max_bytes = 0;

  /// Evict sessions idle (no Open/Lookup touch) longer than this; zero
  /// disables TTL eviction. Expiry is enforced on every Open/Lookup and
  /// via SweepExpired() for callers that want a periodic sweep.
  std::chrono::milliseconds ttl{0};

  /// Test hook: the clock TTL idleness is measured on. Defaults to
  /// std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;

  /// Borrowed demotion backend (must outlive the registry); null keeps
  /// the destructive-eviction behaviour.
  SessionSpill* spill = nullptr;

  /// After a failed spill the entry stays resident (degraded, possibly
  /// over budget) and demotion is not re-attempted until this long has
  /// passed, doubling per consecutive failure. Measured on `clock`.
  std::chrono::milliseconds spill_retry_backoff{100};
};

/// Named open/lookup/close of dataset sessions with LRU + TTL eviction
/// under a byte budget. All operations are thread-safe.
class SessionRegistry {
 public:
  explicit SessionRegistry(SessionRegistryOptions options,
                           engine::ThreadPool* pool = nullptr);

  /// Validates `spec`, opens a session backed by the registry's pool, and
  /// registers it under `name` (kFailedPrecondition if the name is taken,
  /// in RAM or in the spill tier). May evict/demote LRU and expired
  /// sessions to make room.
  Result<std::shared_ptr<DatasetSession>> Open(const std::string& name,
                                               const DatasetSessionSpec& spec);

  /// The session registered under `name` (touching its LRU recency), or
  /// null when absent or expired. A session demoted to the spill tier is
  /// transparently re-admitted — the caller cannot tell it ever left RAM
  /// beyond the latency; re-admission may demote other sessions to fit
  /// the budget. A spilled capture that fails to re-admit yields null
  /// (and a spill_failures tick); it is kept on disk until Close(). Use
  /// TryLookup when the *reason* for a failed re-admission matters.
  std::shared_ptr<DatasetSession> Lookup(const std::string& name);

  /// Lookup with the failure surfaced: kNotFound when the name is absent
  /// (or expired and demoted away), the spill backend's Status when a
  /// capture exists but cannot be re-admitted (corrupt bytes, I/O
  /// failure). A failed re-admission never corrupts registry state — the
  /// capture stays on disk (Close() discards it), no entry is registered,
  /// and a later TryLookup may succeed if the failure was transient.
  Result<std::shared_ptr<DatasetSession>> TryLookup(const std::string& name);

  /// Drops the registry's reference to `name` — both the in-RAM entry
  /// and any spilled capture. Returns false when neither exists.
  /// In-flight users holding the shared_ptr are unaffected.
  bool Close(const std::string& name);

  /// Evicts every TTL-expired session now; returns how many.
  std::size_t SweepExpired();

  /// Occupancy, eviction, and spill counters.
  struct Stats {
    std::size_t open_sessions = 0;  ///< Sessions currently resident in RAM.
    std::size_t approx_bytes = 0;   ///< Sum of resident ApproxMemoryBytes().
    std::uint64_t evictions = 0;    ///< Budget + TTL evictions (not Close).
    std::uint64_t ttl_evictions = 0;///< The TTL share of `evictions`.
    std::uint64_t lookups = 0;      ///< Lookup() calls.
    std::uint64_t hits = 0;         ///< Lookups served (RAM or re-admitted).
    std::uint64_t misses = 0;       ///< Lookups that found nothing anywhere.
    /// Sessions this registry demoted to the spill tier and has not
    /// since re-admitted or closed. (Checkpoints of resident sessions
    /// written outside the registry share the directory but are not
    /// spilled sessions and are not counted.)
    std::size_t spilled_sessions = 0;
    std::uint64_t spilled_bytes = 0;   ///< Their capture sizes in bytes.
    std::uint64_t spills = 0;          ///< Evictions demoted to the tier.
    std::uint64_t readmissions = 0;    ///< Lookups served from the tier.
    std::uint64_t spill_failures = 0;  ///< Spill/Admit calls that errored.
    /// Resident sessions whose last demotion attempt failed: retained
    /// (possibly over budget) rather than destroyed, awaiting their
    /// backoff window before the next attempt.
    std::size_t degraded_sessions = 0;
  };
  Stats GetStats() const;

  const SessionRegistryOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<DatasetSession> session;
    std::chrono::steady_clock::time_point last_used;
    std::uint64_t recency = 0;  ///< Monotone LRU tick of the last touch.
    /// Consecutive failed demotion attempts; nonzero marks the entry
    /// degraded. Reset by a successful spill.
    std::uint32_t spill_failures = 0;
    /// No demotion is re-attempted before this instant (backoff window).
    std::chrono::steady_clock::time_point spill_retry_after{};
  };

  std::chrono::steady_clock::time_point Now() const;
  void TouchLocked(Entry* entry);
  /// TTL-demotes expired entries. With a spill backend, `touching` (the
  /// name the caller is about to serve) is exempt: demoting it only to
  /// re-admit it in the same call would be a wasted encode/decode round
  /// trip, and the touch resets its idleness anyway. Without a backend
  /// the old destroy-on-expiry semantics hold for every entry.
  std::size_t SweepExpiredLocked(const std::string* touching = nullptr);
  /// Mirrors occupancy into the process metrics registry (obs gauges).
  void UpdateGaugesLocked() const;
  /// Demotes one entry: spills it when a backend is configured, then
  /// drops the in-RAM entry. Returns the iterator past the victim and
  /// sets *demoted accordingly. Graceful degradation: when the spill
  /// backend fails (or the entry's failure-backoff window is still open)
  /// the entry is NOT dropped — it stays resident and possibly over
  /// budget, marked degraded, to be retried after the backoff. Data is
  /// only destroyed when no backend is configured (the pre-spill
  /// destructive-eviction contract).
  std::map<std::string, Entry>::iterator DemoteLocked(
      std::map<std::string, Entry>::iterator victim, bool* demoted);
  /// Demotes entries (never `keep`) until the byte total fits: oversized
  /// entries first (they can never fit), then in LRU order. An oversized
  /// `keep` never triggers demotion of within-budget tenants. When every
  /// candidate victim fails to demote the registry gives up for this call
  /// and stays over budget (degraded) instead of looping or destroying
  /// state.
  void EnforceBudgetLocked(const std::string& keep);
  std::size_t TotalBytesLocked() const;
  bool NameTakenLocked(const std::string& name) const;

  const SessionRegistryOptions options_;
  engine::ThreadPool* const pool_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // guarded by mu_
  /// Capture size per session this registry demoted and has not since
  /// re-admitted or closed (the spill share of GetStats). Guarded by mu_.
  std::map<std::string, std::uint64_t> spilled_;
  std::uint64_t tick_ = 0;                // guarded by mu_
  std::uint64_t evictions_ = 0;           // guarded by mu_
  std::uint64_t ttl_evictions_ = 0;       // guarded by mu_
  std::uint64_t lookups_ = 0;             // guarded by mu_
  std::uint64_t hits_ = 0;                // guarded by mu_
  std::uint64_t misses_ = 0;              // guarded by mu_
  std::uint64_t spills_ = 0;              // guarded by mu_
  std::uint64_t readmissions_ = 0;        // guarded by mu_
  std::uint64_t spill_failures_ = 0;      // guarded by mu_
};

}  // namespace ppdm::api

#endif  // PPDM_API_REGISTRY_H_
