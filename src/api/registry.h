// Bounded registry of named dataset sessions — the memory story for a
// long-lived service. A server holding thousands of streaming sessions
// needs an explicit resource bound: the registry accounts every session's
// ApproxMemoryBytes() against a configurable byte budget and evicts
// least-recently-used sessions when the budget is exceeded, plus any
// session idle longer than the TTL.
//
// Eviction safety: the registry hands out shared_ptr references, so
// evicting (or Close()-ing) a session concurrently with an in-flight
// Ingest()/ReconstructAll() on it is safe — the registry merely drops its
// reference; the session finishes its in-flight calls and is destroyed
// with the last reference. Race-checked under ThreadSanitizer in CI.
//
// Lock order: registry mutex, then (via ApproxMemoryBytes) a session
// mutex. Sessions never call back into the registry, so the order never
// inverts.

#ifndef PPDM_API_REGISTRY_H_
#define PPDM_API_REGISTRY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "api/dataset_session.h"
#include "common/status.h"
#include "engine/thread_pool.h"

namespace ppdm::api {

/// Resource bounds for a SessionRegistry.
struct SessionRegistryOptions {
  /// Total ApproxMemoryBytes() budget across registered sessions; 0 means
  /// unbounded. When an Open pushes the total over the budget, LRU
  /// sessions are evicted until it fits (the session just opened is never
  /// evicted by its own Open, so a single over-budget session still
  /// serves — the budget bounds what the registry *retains*).
  std::size_t max_bytes = 0;

  /// Evict sessions idle (no Open/Lookup touch) longer than this; zero
  /// disables TTL eviction. Expiry is enforced on every Open/Lookup and
  /// via SweepExpired() for callers that want a periodic sweep.
  std::chrono::milliseconds ttl{0};

  /// Test hook: the clock TTL idleness is measured on. Defaults to
  /// std::chrono::steady_clock::now.
  std::function<std::chrono::steady_clock::time_point()> clock;
};

/// Named open/lookup/close of dataset sessions with LRU + TTL eviction
/// under a byte budget. All operations are thread-safe.
class SessionRegistry {
 public:
  explicit SessionRegistry(SessionRegistryOptions options,
                           engine::ThreadPool* pool = nullptr);

  /// Validates `spec`, opens a session backed by the registry's pool, and
  /// registers it under `name` (kFailedPrecondition if the name is taken).
  /// May evict LRU/expired sessions to make room.
  Result<std::shared_ptr<DatasetSession>> Open(const std::string& name,
                                               const DatasetSessionSpec& spec);

  /// The session registered under `name` (touching its LRU recency), or
  /// null when absent or expired.
  std::shared_ptr<DatasetSession> Lookup(const std::string& name);

  /// Drops the registry's reference to `name`. Returns false when absent.
  /// In-flight users holding the shared_ptr are unaffected.
  bool Close(const std::string& name);

  /// Evicts every TTL-expired session now; returns how many.
  std::size_t SweepExpired();

  /// Occupancy and eviction counters.
  struct Stats {
    std::size_t open_sessions = 0;  ///< Sessions currently registered.
    std::size_t approx_bytes = 0;   ///< Sum of ApproxMemoryBytes().
    std::uint64_t evictions = 0;    ///< Budget + TTL evictions (not Close).
    std::uint64_t ttl_evictions = 0;///< The TTL share of `evictions`.
    std::uint64_t lookups = 0;      ///< Lookup() calls.
    std::uint64_t misses = 0;       ///< Lookups that found nothing.
  };
  Stats GetStats() const;

  const SessionRegistryOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<DatasetSession> session;
    std::chrono::steady_clock::time_point last_used;
    std::uint64_t recency = 0;  ///< Monotone LRU tick of the last touch.
  };

  std::chrono::steady_clock::time_point Now() const;
  void TouchLocked(Entry* entry);
  std::size_t SweepExpiredLocked();
  /// Evicts LRU entries (never `keep`) until the byte total fits.
  void EnforceBudgetLocked(const std::string& keep);
  std::size_t TotalBytesLocked() const;

  const SessionRegistryOptions options_;
  engine::ThreadPool* const pool_;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // guarded by mu_
  std::uint64_t tick_ = 0;                // guarded by mu_
  std::uint64_t evictions_ = 0;           // guarded by mu_
  std::uint64_t ttl_evictions_ = 0;       // guarded by mu_
  std::uint64_t lookups_ = 0;             // guarded by mu_
  std::uint64_t misses_ = 0;              // guarded by mu_
};

}  // namespace ppdm::api

#endif  // PPDM_API_REGISTRY_H_
