// Async job front of the serving API: a server loop submits
// reconstruction / perturbation / training jobs and interleaves them,
// instead of blocking on each engine call in turn.
//
// api::Service owns the engine thread pool. Submit(job) enqueues the job
// on the pool's request queue and returns a JobHandle<T> immediately; the
// handle delivers the job's Result<T> via Poll() / Wait() / OnComplete().
// Jobs must be self-contained callables returning Result<T> — errors
// travel through the Result, never as exceptions.
//
// Scheduling model: each job occupies one pool worker for its duration;
// engine primitives invoked inside a job (ParallelFor et al.) run inline
// on that worker by the pool's no-nested-fan-out rule. Concurrency
// therefore comes from many in-flight jobs, which is exactly the serving
// workload. Every job is deterministic in its inputs, so N concurrent
// submissions return the same results as running them sequentially.
//
// Do not Wait() on a handle from inside another job: a worker blocked in
// Wait() cannot drain the queue in front of the awaited job. Frontend
// threads (outside the pool) may always Wait().
//
// Admission control and degradation: ServiceOptions::max_pending bounds
// the number of admitted-but-not-yet-started jobs; past the bound Submit
// sheds the job — its handle completes immediately with
// kResourceExhausted instead of queueing unbounded work. Each submission
// may carry a deadline (expired jobs complete with kDeadlineExceeded
// without running) and a CancellationToken (cancelled jobs complete with
// kCancelled without running). Drain() blocks new submissions
// (kUnavailable) and waits for every in-flight job; Resume() reopens
// admission. The service.enqueue fault point sits in the admission path.

#ifndef PPDM_API_SERVICE_H_
#define PPDM_API_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "api/dataset_session.h"
#include "api/session.h"
#include "api/spec.h"
#include "common/status.h"
#include "engine/batch.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdm::api {

namespace internal {

/// Service job telemetry (defined in service.cc): time a job sat in the
/// pool queue before a worker picked it up, time it ran, and how many
/// were submitted — the queue-wait-vs-run split that tells an operator
/// whether latency is load (wait) or work (run). The shed / expired /
/// cancelled counters track jobs that completed without running: refused
/// at admission, past their deadline, or cancelled before a worker
/// reached them.
obs::Histogram& ServiceQueueWaitHistogram();
obs::Histogram& ServiceRunHistogram();
obs::Counter& ServiceJobsCounter();
obs::Counter& ServiceShedCounter();
obs::Counter& ServiceExpiredCounter();
obs::Counter& ServiceCancelledCounter();

/// Shared completion state of one submitted job.
template <typename T>
struct JobState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<T>> result;                // set exactly once
  std::function<void(const Result<T>&)> callback; // chained registrations
};

}  // namespace internal

/// Cooperative cancellation flag shared between a submitter and its jobs.
/// Cancel() is sticky and thread-safe; a job whose token is cancelled
/// before a worker reaches it completes with kCancelled without running.
/// Jobs already running are not interrupted — cancellation is a promise
/// about work that has not started, never a preemption.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-submission controls; default-constructed means "run unconditionally".
struct SubmitOptions {
  /// Absolute deadline: a job still unstarted past this instant completes
  /// with kDeadlineExceeded instead of running.
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Cancellation token checked immediately before the job would run.
  std::shared_ptr<CancellationToken> cancel;

  /// Convenience: a deadline `timeout` from now.
  static SubmitOptions After(std::chrono::microseconds timeout) {
    SubmitOptions options;
    options.deadline = std::chrono::steady_clock::now() + timeout;
    return options;
  }
};

/// Handle to one in-flight job. Cheap to copy; all copies observe the same
/// completion.
template <typename T>
class JobHandle {
 public:
  /// True once the job has finished (successfully or not). Never blocks.
  bool Poll() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value();
  }

  /// Blocks until the job finishes and returns its Result. Must not be
  /// called from inside another job (see the header comment).
  Result<T> Wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->result.has_value(); });
    return *state_->result;
  }

  /// Blocks up to `timeout` for the job to finish; nullopt on timeout
  /// (the job keeps running — WaitFor bounds the wait, not the work).
  std::optional<Result<T>> WaitFor(std::chrono::microseconds timeout) const {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (!state_->cv.wait_for(lock, timeout, [this] {
          return state_->result.has_value();
        })) {
      return std::nullopt;
    }
    return *state_->result;
  }

  /// Registers a completion callback, invoked exactly once with the
  /// job's Result — immediately if the job already finished, otherwise on
  /// the worker that completes it. Multiple registrations (including via
  /// handle copies) all fire, in registration order.
  void OnComplete(std::function<void(const Result<T>&)> callback) {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->result.has_value()) {
      const Result<T>& result = *state_->result;
      lock.unlock();
      callback(result);
      return;
    }
    if (state_->callback) {
      state_->callback = [prev = std::move(state_->callback),
                          next = std::move(callback)](const Result<T>& r) {
        prev(r);
        next(r);
      };
    } else {
      state_->callback = std::move(callback);
    }
  }

 private:
  friend class Service;
  explicit JobHandle(std::shared_ptr<internal::JobState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState<T>> state_;
};

/// Service-level knobs beyond the engine options.
struct ServiceOptions {
  /// Maximum admitted-but-not-yet-started jobs; 0 means unbounded. Past
  /// the bound Submit sheds: the handle completes with kResourceExhausted.
  std::size_t max_pending = 0;
};

/// The session-oriented service facade: owns the pool, accepts jobs.
class Service {
 public:
  /// Validates the engine options and builds the service. num_threads == 0
  /// yields a synchronous service: Submit runs the job inline and returns
  /// an already-completed handle — same API, no concurrency.
  static Result<std::unique_ptr<Service>> Create(
      const engine::BatchOptions& options);
  static Result<std::unique_ptr<Service>> Create(
      const engine::BatchOptions& options, const ServiceOptions& service);

  /// Destruction drains the request queue: every submitted job completes
  /// before the pool joins.
  ~Service() = default;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const engine::BatchOptions& options() const { return options_; }

  /// The pool jobs run on; nullptr for a synchronous service. Borrow it
  /// for session-parallel work (e.g. ReconstructionSession ingestion).
  engine::ThreadPool* pool() const { return pool_.get(); }

  /// Enqueues `job` and returns its handle. The job runs at most once, on
  /// one pool worker (inline for a synchronous service). A shed, expired,
  /// or cancelled job never runs: its handle completes with the matching
  /// resilience status instead.
  template <typename T>
  JobHandle<T> Submit(std::function<Result<T>()> job) {
    return Submit(std::move(job), SubmitOptions{});
  }

  template <typename T>
  JobHandle<T> Submit(std::function<Result<T>()> job, SubmitOptions opts) {
    auto state = std::make_shared<internal::JobState<T>>();
    internal::ServiceJobsCounter().Increment();
    if (Status admitted = TryAdmit(); !admitted.ok()) {
      internal::ServiceShedCounter().Increment();
      Complete(state, Result<T>(std::move(admitted)));
      return JobHandle<T>(std::move(state));
    }
    const auto submitted = std::chrono::steady_clock::now();
    // Causality crosses the queue here: the submitter's trace context is
    // captured now and adopted on whichever worker runs the job, so the
    // queue-wait and run spans below land as sibling children of the
    // submitter's open span (the daemon's net.request).
    const obs::TraceContext trace = obs::TraceContext::Current();
    // The lambda captures `this` for the job-accounting hooks; safe
    // because ~Service joins the pool (draining every queued job) before
    // the counters it touches are destroyed.
    auto run = [this, state, job = std::move(job), opts = std::move(opts),
                submitted, trace] {
      OnJobStarted();
      obs::ScopedTraceContext adopt(trace);
      obs::RecordSpan("service.queue", submitted,
                      std::chrono::steady_clock::now(),
                      &internal::ServiceQueueWaitHistogram());
      if (opts.cancel != nullptr && opts.cancel->cancelled()) {
        internal::ServiceCancelledCounter().Increment();
        Complete(state, Result<T>(Status::Cancelled(
                            "job cancelled before it ran")));
        OnJobFinished();
        return;
      }
      if (opts.deadline.has_value() &&
          std::chrono::steady_clock::now() >= *opts.deadline) {
        internal::ServiceExpiredCounter().Increment();
        Complete(state, Result<T>(Status::DeadlineExceeded(
                            "job deadline passed before it ran")));
        OnJobFinished();
        return;
      }
      // The run span closes before Complete so the handle's callback
      // (which may render this request's finished tree) sees it.
      Result<T> result = [&] {
        obs::ScopedSpan run_span("service.run",
                                 &internal::ServiceRunHistogram());
        return job();
      }();
      Complete(state, std::move(result));
      OnJobFinished();
    };
    if (pool_ == nullptr) {
      run();
    } else {
      pool_->Submit(std::move(run));
    }
    return JobHandle<T>(std::move(state));
  }

  /// Blocks new submissions (they shed with kUnavailable) and waits until
  /// every in-flight job has completed. Resume() reopens admission. Call
  /// from a frontend thread only — never from inside a job.
  void Drain();
  void Resume();

  /// Jobs admitted but not yet picked up by a worker.
  std::size_t pending() const;

  /// Opens a streaming reconstruction session backed by this service's
  /// pool (Ingest fans out; Reconstruct's EM runs chunked over it).
  Result<std::unique_ptr<ReconstructionSession>> OpenSession(
      const SessionSpec& spec) const {
    return ReconstructionSession::Open(spec, pool_.get());
  }

  /// Opens a dataset-level session backed by this service's pool: record
  /// batches fold into every attribute in one pass, ReconstructAll fans
  /// one warm-started fit per attribute over the workers.
  Result<std::unique_ptr<DatasetSession>> OpenDatasetSession(
      const DatasetSessionSpec& spec) const {
    return DatasetSession::Open(spec, pool_.get());
  }

  const ServiceOptions& service_options() const { return service_options_; }

 private:
  Service(const engine::BatchOptions& options,
          const ServiceOptions& service);

  /// Admission check (defined in service.cc): fires the service.enqueue
  /// fault point, refuses while draining (kUnavailable) or past
  /// max_pending (kResourceExhausted); on success counts the job as
  /// queued and in flight.
  Status TryAdmit();
  void OnJobStarted();
  void OnJobFinished();

  template <typename T>
  static void Complete(const std::shared_ptr<internal::JobState<T>>& state,
                       Result<T> result) {
    std::function<void(const Result<T>&)> callback;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.emplace(std::move(result));
      callback = std::move(state->callback);
      state->callback = nullptr;
    }
    state->cv.notify_all();
    if (callback) callback(*state->result);
  }

  engine::BatchOptions options_;
  ServiceOptions service_options_;

  // Admission state. Declared before pool_ so the pool's destructor (which
  // drains queued jobs that touch these counters) runs first.
  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::size_t queued_ = 0;    // admitted, not yet started
  std::size_t in_flight_ = 0; // admitted, not yet completed
  bool draining_ = false;

  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace ppdm::api

#endif  // PPDM_API_SERVICE_H_
