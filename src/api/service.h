// Async job front of the serving API: a server loop submits
// reconstruction / perturbation / training jobs and interleaves them,
// instead of blocking on each engine call in turn.
//
// api::Service owns the engine thread pool. Submit(job) enqueues the job
// on the pool's request queue and returns a JobHandle<T> immediately; the
// handle delivers the job's Result<T> via Poll() / Wait() / OnComplete().
// Jobs must be self-contained callables returning Result<T> — errors
// travel through the Result, never as exceptions.
//
// Scheduling model: each job occupies one pool worker for its duration;
// engine primitives invoked inside a job (ParallelFor et al.) run inline
// on that worker by the pool's no-nested-fan-out rule. Concurrency
// therefore comes from many in-flight jobs, which is exactly the serving
// workload. Every job is deterministic in its inputs, so N concurrent
// submissions return the same results as running them sequentially.
//
// Do not Wait() on a handle from inside another job: a worker blocked in
// Wait() cannot drain the queue in front of the awaited job. Frontend
// threads (outside the pool) may always Wait().

#ifndef PPDM_API_SERVICE_H_
#define PPDM_API_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "api/dataset_session.h"
#include "api/session.h"
#include "api/spec.h"
#include "common/status.h"
#include "engine/batch.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"

namespace ppdm::api {

namespace internal {

/// Service job telemetry (defined in service.cc): time a job sat in the
/// pool queue before a worker picked it up, time it ran, and how many
/// were submitted — the queue-wait-vs-run split that tells an operator
/// whether latency is load (wait) or work (run).
obs::Histogram& ServiceQueueWaitHistogram();
obs::Histogram& ServiceRunHistogram();
obs::Counter& ServiceJobsCounter();

/// Shared completion state of one submitted job.
template <typename T>
struct JobState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<Result<T>> result;                // set exactly once
  std::function<void(const Result<T>&)> callback; // chained registrations
};

}  // namespace internal

/// Handle to one in-flight job. Cheap to copy; all copies observe the same
/// completion.
template <typename T>
class JobHandle {
 public:
  /// True once the job has finished (successfully or not). Never blocks.
  bool Poll() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->result.has_value();
  }

  /// Blocks until the job finishes and returns its Result. Must not be
  /// called from inside another job (see the header comment).
  Result<T> Wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->result.has_value(); });
    return *state_->result;
  }

  /// Registers a completion callback, invoked exactly once with the
  /// job's Result — immediately if the job already finished, otherwise on
  /// the worker that completes it. Multiple registrations (including via
  /// handle copies) all fire, in registration order.
  void OnComplete(std::function<void(const Result<T>&)> callback) {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (state_->result.has_value()) {
      const Result<T>& result = *state_->result;
      lock.unlock();
      callback(result);
      return;
    }
    if (state_->callback) {
      state_->callback = [prev = std::move(state_->callback),
                          next = std::move(callback)](const Result<T>& r) {
        prev(r);
        next(r);
      };
    } else {
      state_->callback = std::move(callback);
    }
  }

 private:
  friend class Service;
  explicit JobHandle(std::shared_ptr<internal::JobState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState<T>> state_;
};

/// The session-oriented service facade: owns the pool, accepts jobs.
class Service {
 public:
  /// Validates the engine options and builds the service. num_threads == 0
  /// yields a synchronous service: Submit runs the job inline and returns
  /// an already-completed handle — same API, no concurrency.
  static Result<std::unique_ptr<Service>> Create(
      const engine::BatchOptions& options);

  /// Destruction drains the request queue: every submitted job completes
  /// before the pool joins.
  ~Service() = default;

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  const engine::BatchOptions& options() const { return options_; }

  /// The pool jobs run on; nullptr for a synchronous service. Borrow it
  /// for session-parallel work (e.g. ReconstructionSession ingestion).
  engine::ThreadPool* pool() const { return pool_.get(); }

  /// Enqueues `job` and returns its handle. The job runs at most once, on
  /// one pool worker (inline for a synchronous service).
  template <typename T>
  JobHandle<T> Submit(std::function<Result<T>()> job) {
    auto state = std::make_shared<internal::JobState<T>>();
    const auto submitted = std::chrono::steady_clock::now();
    auto run = [state, job = std::move(job), submitted] {
      if (obs::TimingEnabled()) {
        internal::ServiceQueueWaitHistogram().Observe(
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          submitted)
                .count());
      }
      obs::ScopedTimer run_timer(&internal::ServiceRunHistogram());
      Complete(state, job());
    };
    internal::ServiceJobsCounter().Increment();
    if (pool_ == nullptr) {
      run();
    } else {
      pool_->Submit(std::move(run));
    }
    return JobHandle<T>(std::move(state));
  }

  /// Opens a streaming reconstruction session backed by this service's
  /// pool (Ingest fans out; Reconstruct's EM runs chunked over it).
  Result<std::unique_ptr<ReconstructionSession>> OpenSession(
      const SessionSpec& spec) const {
    return ReconstructionSession::Open(spec, pool_.get());
  }

  /// Opens a dataset-level session backed by this service's pool: record
  /// batches fold into every attribute in one pass, ReconstructAll fans
  /// one warm-started fit per attribute over the workers.
  Result<std::unique_ptr<DatasetSession>> OpenDatasetSession(
      const DatasetSessionSpec& spec) const {
    return DatasetSession::Open(spec, pool_.get());
  }

 private:
  explicit Service(const engine::BatchOptions& options);

  template <typename T>
  static void Complete(const std::shared_ptr<internal::JobState<T>>& state,
                       Result<T> result) {
    std::function<void(const Result<T>&)> callback;
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.emplace(std::move(result));
      callback = std::move(state->callback);
      state->callback = nullptr;
    }
    state->cv.notify_all();
    if (callback) callback(*state->result);
  }

  engine::BatchOptions options_;
  std::unique_ptr<engine::ThreadPool> pool_;
};

}  // namespace ppdm::api

#endif  // PPDM_API_SERVICE_H_
