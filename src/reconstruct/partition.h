// Interval partition of an attribute domain (paper §4.3 "partitioning into
// intervals"): reconstruction estimates one probability mass per interval,
// and the decision tree uses the interval boundaries as candidate splits.

#ifndef PPDM_RECONSTRUCT_PARTITION_H_
#define PPDM_RECONSTRUCT_PARTITION_H_

#include <cstddef>
#include <vector>

#include "data/schema.h"

namespace ppdm::reconstruct {

/// K equal-width intervals covering [lo, hi].
class Partition {
 public:
  Partition(double lo, double hi, std::size_t intervals);

  /// Partition over an attribute's declared domain.
  static Partition ForField(const data::FieldSpec& field,
                            std::size_t intervals);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t intervals() const { return intervals_; }
  double width() const { return width_; }

  /// Midpoint of interval k.
  double Mid(std::size_t k) const;

  /// Lower edge of interval k.
  double Lo(std::size_t k) const;

  /// Upper edge of interval k.
  double Hi(std::size_t k) const;

  /// All K+1 interval edges.
  std::vector<double> Edges() const;

  /// Interval containing `value` (values outside [lo, hi] clamp to the
  /// first / last interval, matching the paper's treatment of overshooting
  /// perturbed values).
  std::size_t IntervalOf(double value) const;

 private:
  double lo_, hi_, width_;
  std::size_t intervals_;
};

}  // namespace ppdm::reconstruct

#endif  // PPDM_RECONSTRUCT_PARTITION_H_
