#include "reconstruct/assign.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace ppdm::reconstruct {

std::vector<std::size_t> ApportionCounts(const std::vector<double>& masses,
                                         std::size_t total) {
  PPDM_CHECK(!masses.empty());
  double mass_total = 0.0;
  for (double m : masses) {
    PPDM_CHECK_GE(m, 0.0);
    mass_total += m;
  }
  if (total == 0) return std::vector<std::size_t>(masses.size(), 0);
  PPDM_CHECK_MSG(mass_total > 0.0, "cannot apportion against zero mass");

  const auto n = static_cast<double>(total);
  std::vector<std::size_t> counts(masses.size());
  std::vector<std::pair<double, std::size_t>> remainders(masses.size());
  std::size_t assigned = 0;
  for (std::size_t k = 0; k < masses.size(); ++k) {
    const double ideal = masses[k] / mass_total * n;
    counts[k] = static_cast<std::size_t>(std::floor(ideal));
    assigned += counts[k];
    remainders[k] = {ideal - std::floor(ideal), k};
  }
  PPDM_CHECK_LE(assigned, total);
  // Hand the leftover items to the largest fractional remainders; tie-break
  // on index for determinism.
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t i = 0; i < total - assigned; ++i) {
    ++counts[remainders[i % remainders.size()].second];
  }
  return counts;
}

std::vector<std::size_t> AssignByOrderStatistics(
    const std::vector<double>& perturbed_values,
    const std::vector<double>& masses) {
  const std::size_t n = perturbed_values.size();
  std::vector<std::size_t> assignment(n, 0);
  if (n == 0) return assignment;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (perturbed_values[a] != perturbed_values[b]) {
      return perturbed_values[a] < perturbed_values[b];
    }
    return a < b;
  });

  const std::vector<std::size_t> counts = ApportionCounts(masses, n);
  std::size_t interval = 0;
  std::size_t used_in_interval = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    while (interval + 1 < counts.size() &&
           used_in_interval >= counts[interval]) {
      ++interval;
      used_in_interval = 0;
    }
    assignment[order[rank]] = interval;
    ++used_in_interval;
  }
  return assignment;
}

}  // namespace ppdm::reconstruct
