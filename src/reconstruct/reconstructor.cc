#include "reconstruct/reconstructor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "engine/shard_stats.h"
#include "engine/simd.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "stats/histogram.h"

namespace ppdm::reconstruct {
namespace {

namespace simd = engine::simd;

constexpr double kTinyDensity = 1e-300;

// EM telemetry: wall time per fit and iterations-to-converge, recorded
// once per RunEm call (never inside the iteration loop — the hot path
// stays untouched and the output bits cannot depend on the telemetry).
obs::Histogram& EmFitSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_em_fit_seconds", obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& EmIterationsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_em_iterations", obs::Histogram::IterationBuckets());
  return histogram;
}

// E-step grain of the parallel binned path: w-bins per chunk. Fixed (never
// derived from the thread count) so the partial-sum tree — and therefore
// every output bit — is invariant under the pool size.
constexpr std::size_t kEmChunkBins = 32;

// Row grain for embarrassingly parallel per-row work (kernel rows).
constexpr std::size_t kKernelChunkRows = 64;

// Floor applied to warm-start masses before renormalization: EM can never
// resurrect an exactly-zero component, so a stale zero in a previous
// session estimate must not permanently absorb an interval.
constexpr double kWarmStartFloor = 1e-12;

std::vector<double> UniformMasses(std::size_t k) {
  return std::vector<double>(k, 1.0 / static_cast<double>(k));
}

// Exact histogram — the degenerate reconstruction when there is no noise.
// An empty sample yields the uniform distribution (the EM prior).
Reconstruction HistogramMasses(const std::vector<double>& values,
                               const Partition& partition) {
  Reconstruction out;
  out.sample_count = values.size();
  if (values.empty()) {
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  std::vector<double> counts(partition.intervals(), 0.0);
  for (double v : values) counts[partition.IntervalOf(v)] += 1.0;
  for (double& c : counts) c /= static_cast<double>(values.size());
  out.masses = std::move(counts);
  return out;
}

// Shared EM loop over a prebuilt likelihood table: `weights[j]` perturbed
// observations sit in table row j. The E-step is decomposed into fixed
// chunks of `em_chunk` observations; per-chunk partial sums are folded in
// ascending chunk order, so for a fixed em_chunk the output is
// bit-identical regardless of `pool` (nullptr runs the identical
// decomposition inline). em_chunk == 0 keeps everything in one chunk,
// reproducing the sequential accumulation order exactly.
//
// The inner product and scale-accumulate run on the dispatched SIMD path
// (engine::simd::ActivePath()): kOff preserves the historical sequential
// accumulation bit for bit; kScalar and kAvx2 share one lane-blocked
// decomposition and are byte-identical to each other. Mass vectors live in
// stride-wide buffers whose padding lanes hold exact zeros, so the blocked
// kernels never need a remainder tail (the padded products are +0.0 —
// exact).
//
// `initial` (optional) seeds the iteration in place of the uniform prior —
// the warm-start path of streaming sessions. Floored and renormalized so no
// component starts at exactly zero.
Reconstruction RunEm(const std::vector<double>& weights,
                     const KernelTable& table, double total_weight,
                     const ReconstructionOptions& options,
                     engine::ThreadPool* pool, std::size_t em_chunk,
                     const std::vector<double>* initial = nullptr) {
  obs::ScopedTimer fit_timer(&EmFitSecondsHistogram());
  PPDM_CHECK_EQ(weights.size(), table.wbins);
  const std::size_t num_intervals = table.intervals;
  const std::size_t stride = table.stride;
  const std::vector<double>& kernel = table.kernel;
  const std::vector<std::size_t>& fallback = table.fallback;
  const simd::Path path = simd::ActivePath();

  Reconstruction out;
  out.sample_count = static_cast<std::size_t>(total_weight + 0.5);
  std::vector<double> p(stride, 0.0);
  if (initial != nullptr) {
    PPDM_CHECK_EQ(initial->size(), num_intervals);
    double start_mass = 0.0;
    for (std::size_t k = 0; k < num_intervals; ++k) {
      p[k] = std::max((*initial)[k], kWarmStartFloor);
      start_mass += p[k];
    }
    for (std::size_t k = 0; k < num_intervals; ++k) p[k] /= start_mass;
  } else {
    const double uniform = 1.0 / static_cast<double>(num_intervals);
    for (std::size_t k = 0; k < num_intervals; ++k) p[k] = uniform;
  }
  std::vector<double> next(stride, 0.0);

  const std::vector<engine::ChunkRange> chunks =
      engine::MakeChunks(weights.size(), em_chunk);
  // Per-chunk accumulators in one arena, each chunk's slice rounded up to
  // a whole number of cache lines and the arena 64-byte-aligned, so pool
  // threads never write into each other's cache lines (no false sharing).
  const std::size_t acc_stride = (stride + 7) / 8 * 8;
  simd::AlignedDoubles partial_arena(chunks.size() * acc_stride);
  std::vector<double> partial_ll(chunks.size(), 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    engine::ParallelFor(pool, chunks.size(), [&](std::size_t c) {
      double* local = partial_arena.data() + c * acc_stride;
      std::fill(local, local + acc_stride, 0.0);
      double ll = 0.0;
      for (std::size_t j = chunks[c].begin; j < chunks[c].end; ++j) {
        if (weights[j] == 0.0) continue;
        const double* row = &kernel[j * stride];
        double denom;
        if (path == simd::Path::kOff) {
          denom = 0.0;
          for (std::size_t k = 0; k < num_intervals; ++k) {
            denom += row[k] * p[k];
          }
        } else {
          denom = simd::Dot(row, p.data(), stride, path);
        }
        if (denom <= kTinyDensity) {
          // No component reaches this observation (clamped edge bin under
          // bounded noise): attribute it wholly to the nearest interval.
          local[fallback[j]] += weights[j];
          ll += weights[j] * std::log(kTinyDensity);
          continue;
        }
        ll += weights[j] * std::log(denom);
        const double scale = weights[j] / denom;
        if (path == simd::Path::kOff) {
          for (std::size_t k = 0; k < num_intervals; ++k) {
            local[k] += scale * row[k] * p[k];
          }
        } else {
          simd::ScaleAdd(local, row, p.data(), scale, stride, path);
        }
      }
      partial_ll[c] = ll;
    });
    // Ordered fold of the chunk partials — the only place chunk results
    // meet, and it is sequential in chunk index by construction.
    std::fill(next.begin(), next.end(), 0.0);
    double log_likelihood = 0.0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const double* local = partial_arena.data() + c * acc_stride;
      for (std::size_t k = 0; k < num_intervals; ++k) {
        next[k] += local[k];
      }
      log_likelihood += partial_ll[c];
    }
    for (std::size_t k = 0; k < num_intervals; ++k) next[k] /= total_weight;

    // Numerical safety: renormalize so the masses stay a distribution.
    double mass = 0.0;
    for (std::size_t k = 0; k < num_intervals; ++k) mass += next[k];
    PPDM_CHECK_GT(mass, 0.0);
    for (std::size_t k = 0; k < num_intervals; ++k) next[k] /= mass;

    const double chi2 = stats::ChiSquareDistance(next, p);
    out.log_likelihood_trace.push_back(log_likelihood);
    out.chi_square_trace.push_back(chi2);
    p.swap(next);
    ++out.iterations;
    if (chi2 < options.chi_square_epsilon) break;
  }
  out.masses.assign(p.begin(), p.begin() + num_intervals);
  EmIterationsHistogram().Observe(static_cast<double>(out.iterations));
  return out;
}

// Builds the binned-EM component likelihood table (see KernelTable):
// kernel[j*stride + k] is P(W ∈ w-bin j | X = m_k), integrated exactly
// over the w bin via the noise CDF. Integration (rather than a midpoint
// pdf evaluation) kills the half-bin boundary bias that bounded noise
// would otherwise exhibit. Each row is independent and writes only its
// own slots, so the table is identical for every pool size; uniform-noise
// CDF rows go through the dispatched batch kernel, whose scalar and
// vector variants compute the very operations NoiseModel::Cdf does — the
// table contents are therefore identical on every SIMD path too.
KernelTable BuildBinnedKernelTable(const stats::Histogram& whist,
                                   const Partition& partition,
                                   const perturb::NoiseModel& noise,
                                   engine::ThreadPool* pool) {
  KernelTable table;
  table.wbins = whist.bins();
  table.intervals = partition.intervals();
  table.stride = simd::PadLanes(table.intervals);
  table.kernel.assign(table.wbins * table.stride, 0.0);
  table.fallback.resize(table.wbins);
  table.noise_kind = noise.kind();
  table.noise_scale = noise.scale();
  table.partition_lo = partition.lo();
  table.partition_hi = partition.hi();
  table.whist_lo = whist.lo();
  table.whist_hi = whist.hi();

  const std::size_t num_wbins = table.wbins;
  const std::size_t num_intervals = table.intervals;
  std::vector<double> mids(num_intervals);
  for (std::size_t k = 0; k < num_intervals; ++k) mids[k] = partition.Mid(k);

  // The batch CDF kernel only exists for uniform noise; Gaussian (erf) and
  // the historical kOff path evaluate the scalar CDF per cell.
  const bool batch_cdf = noise.kind() == perturb::NoiseKind::kUniform &&
                         simd::ActivePath() != simd::Path::kOff;
  const double alpha = noise.scale();

  const std::vector<engine::ChunkRange> rows =
      engine::MakeChunks(num_wbins, pool == nullptr ? 0 : kKernelChunkRows);
  engine::ParallelFor(pool, rows.size(), [&](std::size_t c) {
    std::vector<double> upper(num_intervals), lower(num_intervals);
    for (std::size_t j = rows[c].begin; j < rows[c].end; ++j) {
      const double bin_lo = whist.BinLo(j);
      const double bin_hi = whist.BinHi(j);
      table.fallback[j] = partition.IntervalOf(whist.BinMid(j));
      double* row = &table.kernel[j * table.stride];
      if (batch_cdf) {
        // The outermost bins also absorb the clamped tails.
        if (j + 1 == num_wbins) {
          std::fill(upper.begin(), upper.end(), 1.0);
        } else {
          simd::UniformCdfShift(mids.data(), num_intervals, bin_hi, alpha,
                                upper.data());
        }
        if (j == 0) {
          std::fill(lower.begin(), lower.end(), 0.0);
        } else {
          simd::UniformCdfShift(mids.data(), num_intervals, bin_lo, alpha,
                                lower.data());
        }
        simd::Sub(upper.data(), lower.data(), num_intervals, row);
      } else {
        for (std::size_t k = 0; k < num_intervals; ++k) {
          const double mid = mids[k];
          const double u =
              j + 1 == num_wbins ? 1.0 : noise.Cdf(bin_hi - mid);
          const double l = j == 0 ? 0.0 : noise.Cdf(bin_lo - mid);
          row[k] = u - l;
        }
      }
    }
  });
  return table;
}

}  // namespace

bool KernelTable::Matches(const perturb::NoiseModel& noise,
                          const Partition& partition,
                          const stats::Histogram& whist) const {
  return noise_kind == noise.kind() && noise_scale == noise.scale() &&
         partition_lo == partition.lo() &&
         partition_hi == partition.hi() &&
         intervals == partition.intervals() && whist_lo == whist.lo() &&
         whist_hi == whist.hi() && wbins == whist.bins() &&
         stride == engine::simd::PadLanes(intervals) &&
         kernel.size() == wbins * stride && fallback.size() == wbins;
}

std::size_t KernelTable::ApproxHeapBytes() const {
  return kernel.capacity() * sizeof(double) +
         fallback.capacity() * sizeof(std::size_t);
}

double Reconstruction::CdfAtEdge(std::size_t k) const {
  PPDM_CHECK_LE(k, masses.size());
  double c = 0.0;
  for (std::size_t i = 0; i < k; ++i) c += masses[i];
  return c;
}

BayesReconstructor::BayesReconstructor(perturb::NoiseModel noise,
                                       ReconstructionOptions options)
    : noise_(noise), options_(options) {
  PPDM_CHECK_GT(options.max_iterations, 0u);
  PPDM_CHECK_GE(options.chi_square_epsilon, 0.0);
}

Reconstruction BayesReconstructor::Fit(const std::vector<double>& perturbed,
                                       const Partition& partition) const {
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    return HistogramMasses(perturbed, partition);
  }
  if (perturbed.empty()) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  // em_chunk 0 = one chunk: reproduces the sequential reference bitwise.
  return options_.binned
             ? FitBinned(perturbed, partition, nullptr, 0, 0)
             : FitExact(perturbed, partition, nullptr, 0);
}

Reconstruction BayesReconstructor::FitParallel(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t shard_size) const {
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    return HistogramMasses(perturbed, partition);
  }
  if (perturbed.empty()) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  return options_.binned
             ? FitBinned(perturbed, partition, pool, shard_size, kEmChunkBins)
             : FitExact(perturbed, partition, pool, shard_size);
}

stats::Histogram BayesReconstructor::PerturbedBinning(
    const Partition& partition) const {
  // Perturbed values live on a range widened by the noise support; bin them
  // with the same width so kernel evaluations use aligned midpoints.
  const double width = partition.width();
  const auto extension = static_cast<std::size_t>(
      std::ceil(noise_.EffectiveHalfWidth() / width));
  return stats::Histogram(
      partition.lo() - width * static_cast<double>(extension),
      partition.hi() + width * static_cast<double>(extension),
      partition.intervals() + 2 * extension);
}

KernelTable BayesReconstructor::BuildKernelTable(
    const Partition& partition, engine::ThreadPool* pool) const {
  return BuildBinnedKernelTable(PerturbedBinning(partition), partition,
                                noise_, pool);
}

Reconstruction BayesReconstructor::FitBinned(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t shard_size,
    std::size_t em_chunk) const {
  // Sharded ingestion: per-shard integer bin counts merged in shard order
  // are exactly the sequential histogram, for every pool size. The bin
  // index is computed by the dispatched batch kernel, which reproduces
  // Histogram::BinOf exactly on every path (integer outputs — no rounding
  // freedom).
  const stats::Histogram whist = PerturbedBinning(partition);
  const engine::ShardStats ingested = engine::IngestBinnedColumn(
      perturbed.data(), perturbed.size(), whist.lo(), whist.hi(),
      whist.width(), whist.bins(), pool, shard_size);

  const KernelTable table =
      BuildBinnedKernelTable(whist, partition, noise_, pool);
  return RunEm(ingested.BinWeights(), table,
               static_cast<double>(perturbed.size()), options_, pool,
               em_chunk);
}

Reconstruction BayesReconstructor::FitFromCounts(
    const std::vector<double>& weights, double total_weight,
    const Partition& partition, engine::ThreadPool* pool,
    const std::vector<double>* initial, const KernelTable* kernel) const {
  const stats::Histogram whist = PerturbedBinning(partition);
  PPDM_CHECK_EQ(weights.size(), whist.bins());
  if (total_weight <= 0.0) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    // No noise: the w bins are the partition intervals and the estimate is
    // the exact histogram — the same degenerate path FitParallel takes.
    Reconstruction out;
    out.sample_count = static_cast<std::size_t>(total_weight + 0.5);
    out.masses.assign(weights.begin(), weights.end());
    for (double& m : out.masses) m /= total_weight;
    return out;
  }
  // Reuse the caller's cached table only when it was built from exactly
  // this layout; a stale or absent cache triggers a fresh build, whose
  // contents are identical — the result never depends on the cache.
  KernelTable built;
  if (kernel == nullptr || !kernel->Matches(noise_, partition, whist)) {
    built = BuildBinnedKernelTable(whist, partition, noise_, pool);
    kernel = &built;
  }
  // kEmChunkBins matches FitParallel's decomposition, so a cold start
  // (initial == nullptr) reproduces the batch masses bit for bit.
  return RunEm(weights, *kernel, total_weight, options_, pool, kEmChunkBins,
               initial);
}

Reconstruction BayesReconstructor::FitExact(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t em_chunk) const {
  const std::size_t num_intervals = partition.intervals();
  std::vector<double> weights(perturbed.size(), 1.0);
  // Ad-hoc per-sample table: row j holds f_Y(w_j − m_k). Same padded
  // layout as the binned table so RunEm's blocked kernels apply.
  KernelTable table;
  table.wbins = perturbed.size();
  table.intervals = num_intervals;
  table.stride = simd::PadLanes(num_intervals);
  table.kernel.assign(table.wbins * table.stride, 0.0);
  table.fallback.resize(table.wbins);
  const std::vector<engine::ChunkRange> rows = engine::MakeChunks(
      perturbed.size(), pool == nullptr ? 0 : kKernelChunkRows);
  engine::ParallelFor(pool, rows.size(), [&](std::size_t c) {
    for (std::size_t j = rows[c].begin; j < rows[c].end; ++j) {
      table.fallback[j] = partition.IntervalOf(perturbed[j]);
      double* row = &table.kernel[j * table.stride];
      for (std::size_t k = 0; k < num_intervals; ++k) {
        row[k] = noise_.Pdf(perturbed[j] - partition.Mid(k));
      }
    }
  });
  return RunEm(weights, table, static_cast<double>(perturbed.size()),
               options_, pool, em_chunk);
}

}  // namespace ppdm::reconstruct
