#include "reconstruct/reconstructor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/histogram.h"

namespace ppdm::reconstruct {
namespace {

constexpr double kTinyDensity = 1e-300;

std::vector<double> UniformMasses(std::size_t k) {
  return std::vector<double>(k, 1.0 / static_cast<double>(k));
}

// Exact histogram — the degenerate reconstruction when there is no noise.
Reconstruction HistogramMasses(const std::vector<double>& values,
                               const Partition& partition) {
  Reconstruction out;
  out.sample_count = values.size();
  if (values.empty()) {
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  std::vector<double> counts(partition.intervals(), 0.0);
  for (double v : values) counts[partition.IntervalOf(v)] += 1.0;
  for (double& c : counts) c /= static_cast<double>(values.size());
  out.masses = std::move(counts);
  return out;
}

// Shared EM loop. `weights[j]` perturbed observations sit at `points[j]`;
// `kernel[j*K + k]` holds f_Y(points[j] − m_k). `fallback[j]` is the
// interval that absorbs observation j if every component density vanishes
// (possible only at the clamped edges of the binned variant).
Reconstruction RunEm(const std::vector<double>& weights,
                     const std::vector<double>& kernel,
                     const std::vector<std::size_t>& fallback,
                     std::size_t num_intervals, double total_weight,
                     const ReconstructionOptions& options) {
  Reconstruction out;
  out.sample_count = static_cast<std::size_t>(total_weight + 0.5);
  std::vector<double> p = UniformMasses(num_intervals);
  std::vector<double> next(num_intervals, 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double log_likelihood = 0.0;
    for (std::size_t j = 0; j < weights.size(); ++j) {
      if (weights[j] == 0.0) continue;
      const double* row = &kernel[j * num_intervals];
      double denom = 0.0;
      for (std::size_t k = 0; k < num_intervals; ++k) denom += row[k] * p[k];
      if (denom <= kTinyDensity) {
        // No component reaches this observation (clamped edge bin under
        // bounded noise): attribute it wholly to the nearest interval.
        next[fallback[j]] += weights[j];
        log_likelihood += weights[j] * std::log(kTinyDensity);
        continue;
      }
      log_likelihood += weights[j] * std::log(denom);
      const double scale = weights[j] / denom;
      for (std::size_t k = 0; k < num_intervals; ++k) {
        next[k] += scale * row[k] * p[k];
      }
    }
    for (std::size_t k = 0; k < num_intervals; ++k) next[k] /= total_weight;

    // Numerical safety: renormalize so the masses stay a distribution.
    double mass = 0.0;
    for (double m : next) mass += m;
    PPDM_CHECK_GT(mass, 0.0);
    for (double& m : next) m /= mass;

    const double chi2 = stats::ChiSquareDistance(next, p);
    out.log_likelihood_trace.push_back(log_likelihood);
    out.chi_square_trace.push_back(chi2);
    p.swap(next);
    ++out.iterations;
    if (chi2 < options.chi_square_epsilon) break;
  }
  out.masses = std::move(p);
  return out;
}

}  // namespace

double Reconstruction::CdfAtEdge(std::size_t k) const {
  PPDM_CHECK_LE(k, masses.size());
  double c = 0.0;
  for (std::size_t i = 0; i < k; ++i) c += masses[i];
  return c;
}

BayesReconstructor::BayesReconstructor(perturb::NoiseModel noise,
                                       ReconstructionOptions options)
    : noise_(noise), options_(options) {
  PPDM_CHECK_GT(options.max_iterations, 0u);
  PPDM_CHECK_GE(options.chi_square_epsilon, 0.0);
}

Reconstruction BayesReconstructor::Fit(const std::vector<double>& perturbed,
                                       const Partition& partition) const {
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    return HistogramMasses(perturbed, partition);
  }
  if (perturbed.empty()) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  return options_.binned ? FitBinned(perturbed, partition)
                         : FitExact(perturbed, partition);
}

Reconstruction BayesReconstructor::FitBinned(
    const std::vector<double>& perturbed, const Partition& partition) const {
  const std::size_t num_intervals = partition.intervals();
  const double width = partition.width();

  // Perturbed values live on a range widened by the noise support; bin them
  // with the same width so kernel evaluations use aligned midpoints.
  const auto extension = static_cast<std::size_t>(
      std::ceil(noise_.EffectiveHalfWidth() / width));
  const std::size_t num_wbins = num_intervals + 2 * extension;
  const double wlo = partition.lo() - width * static_cast<double>(extension);
  const double whi = partition.hi() + width * static_cast<double>(extension);

  stats::Histogram whist(wlo, whi, num_wbins);
  whist.AddAll(perturbed);

  // Component j-given-k likelihood: P(W ∈ bin j | X = m_k), integrated
  // exactly over the w bin via the noise CDF. Integration (rather than a
  // midpoint pdf evaluation) kills the half-bin boundary bias that bounded
  // noise would otherwise exhibit.
  std::vector<double> weights(num_wbins);
  std::vector<std::size_t> fallback(num_wbins);
  std::vector<double> kernel(num_wbins * num_intervals);
  for (std::size_t j = 0; j < num_wbins; ++j) {
    weights[j] = static_cast<double>(whist.counts()[j]);
    const double bin_lo = whist.BinLo(j);
    const double bin_hi = whist.BinHi(j);
    fallback[j] = partition.IntervalOf(whist.BinMid(j));
    for (std::size_t k = 0; k < num_intervals; ++k) {
      const double mid = partition.Mid(k);
      // The outermost bins also absorb the clamped tails.
      const double upper = j + 1 == num_wbins ? 1.0
                                              : noise_.Cdf(bin_hi - mid);
      const double lower = j == 0 ? 0.0 : noise_.Cdf(bin_lo - mid);
      kernel[j * num_intervals + k] = upper - lower;
    }
  }
  return RunEm(weights, kernel, fallback, num_intervals,
               static_cast<double>(perturbed.size()), options_);
}

Reconstruction BayesReconstructor::FitExact(
    const std::vector<double>& perturbed, const Partition& partition) const {
  const std::size_t num_intervals = partition.intervals();
  std::vector<double> weights(perturbed.size(), 1.0);
  std::vector<std::size_t> fallback(perturbed.size());
  std::vector<double> kernel(perturbed.size() * num_intervals);
  for (std::size_t j = 0; j < perturbed.size(); ++j) {
    fallback[j] = partition.IntervalOf(perturbed[j]);
    for (std::size_t k = 0; k < num_intervals; ++k) {
      kernel[j * num_intervals + k] =
          noise_.Pdf(perturbed[j] - partition.Mid(k));
    }
  }
  return RunEm(weights, kernel, fallback, num_intervals,
               static_cast<double>(perturbed.size()), options_);
}

}  // namespace ppdm::reconstruct
