#include "reconstruct/reconstructor.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "engine/shard_stats.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "stats/histogram.h"

namespace ppdm::reconstruct {
namespace {

constexpr double kTinyDensity = 1e-300;

// EM telemetry: wall time per fit and iterations-to-converge, recorded
// once per RunEm call (never inside the iteration loop — the hot path
// stays untouched and the output bits cannot depend on the telemetry).
obs::Histogram& EmFitSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_em_fit_seconds", obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& EmIterationsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_em_iterations", obs::Histogram::IterationBuckets());
  return histogram;
}

// E-step grain of the parallel binned path: w-bins per chunk. Fixed (never
// derived from the thread count) so the partial-sum tree — and therefore
// every output bit — is invariant under the pool size.
constexpr std::size_t kEmChunkBins = 32;

// Row grain for embarrassingly parallel per-row work (kernel rows).
constexpr std::size_t kKernelChunkRows = 64;

// Floor applied to warm-start masses before renormalization: EM can never
// resurrect an exactly-zero component, so a stale zero in a previous
// session estimate must not permanently absorb an interval.
constexpr double kWarmStartFloor = 1e-12;

std::vector<double> UniformMasses(std::size_t k) {
  return std::vector<double>(k, 1.0 / static_cast<double>(k));
}

// Exact histogram — the degenerate reconstruction when there is no noise.
Reconstruction HistogramMasses(const std::vector<double>& values,
                               const Partition& partition) {
  Reconstruction out;
  out.sample_count = values.size();
  if (values.empty()) {
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  std::vector<double> counts(partition.intervals(), 0.0);
  for (double v : values) counts[partition.IntervalOf(v)] += 1.0;
  for (double& c : counts) c /= static_cast<double>(values.size());
  out.masses = std::move(counts);
  return out;
}

// Shared EM loop. `weights[j]` perturbed observations sit at `points[j]`;
// `kernel[j*K + k]` holds f_Y(points[j] − m_k). `fallback[j]` is the
// interval that absorbs observation j if every component density vanishes
// (possible only at the clamped edges of the binned variant).
//
// The E-step is decomposed into fixed chunks of `em_chunk` observations;
// per-chunk partial sums are folded in ascending chunk order, so for a
// fixed em_chunk the output is bit-identical regardless of `pool` (nullptr
// runs the identical decomposition inline). em_chunk == 0 keeps everything
// in one chunk, reproducing the sequential accumulation order exactly.
//
// `initial` (optional) seeds the iteration in place of the uniform prior —
// the warm-start path of streaming sessions. Floored and renormalized so no
// component starts at exactly zero.
Reconstruction RunEm(const std::vector<double>& weights,
                     const std::vector<double>& kernel,
                     const std::vector<std::size_t>& fallback,
                     std::size_t num_intervals, double total_weight,
                     const ReconstructionOptions& options,
                     engine::ThreadPool* pool, std::size_t em_chunk,
                     const std::vector<double>* initial = nullptr) {
  obs::ScopedTimer fit_timer(&EmFitSecondsHistogram());
  Reconstruction out;
  out.sample_count = static_cast<std::size_t>(total_weight + 0.5);
  std::vector<double> p;
  if (initial != nullptr) {
    PPDM_CHECK_EQ(initial->size(), num_intervals);
    p = *initial;
    double start_mass = 0.0;
    for (double& m : p) {
      m = std::max(m, kWarmStartFloor);
      start_mass += m;
    }
    for (double& m : p) m /= start_mass;
  } else {
    p = UniformMasses(num_intervals);
  }
  std::vector<double> next(num_intervals, 0.0);

  const std::vector<engine::ChunkRange> chunks =
      engine::MakeChunks(weights.size(), em_chunk);
  // Per-chunk workspaces, allocated once and reused across iterations.
  std::vector<std::vector<double>> partial_next(
      chunks.size(), std::vector<double>(num_intervals, 0.0));
  std::vector<double> partial_ll(chunks.size(), 0.0);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    engine::ParallelFor(pool, chunks.size(), [&](std::size_t c) {
      std::vector<double>& local = partial_next[c];
      std::fill(local.begin(), local.end(), 0.0);
      double ll = 0.0;
      for (std::size_t j = chunks[c].begin; j < chunks[c].end; ++j) {
        if (weights[j] == 0.0) continue;
        const double* row = &kernel[j * num_intervals];
        double denom = 0.0;
        for (std::size_t k = 0; k < num_intervals; ++k) denom += row[k] * p[k];
        if (denom <= kTinyDensity) {
          // No component reaches this observation (clamped edge bin under
          // bounded noise): attribute it wholly to the nearest interval.
          local[fallback[j]] += weights[j];
          ll += weights[j] * std::log(kTinyDensity);
          continue;
        }
        ll += weights[j] * std::log(denom);
        const double scale = weights[j] / denom;
        for (std::size_t k = 0; k < num_intervals; ++k) {
          local[k] += scale * row[k] * p[k];
        }
      }
      partial_ll[c] = ll;
    });
    // Ordered fold of the chunk partials — the only place chunk results
    // meet, and it is sequential in chunk index by construction.
    std::fill(next.begin(), next.end(), 0.0);
    double log_likelihood = 0.0;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      for (std::size_t k = 0; k < num_intervals; ++k) {
        next[k] += partial_next[c][k];
      }
      log_likelihood += partial_ll[c];
    }
    for (std::size_t k = 0; k < num_intervals; ++k) next[k] /= total_weight;

    // Numerical safety: renormalize so the masses stay a distribution.
    double mass = 0.0;
    for (double m : next) mass += m;
    PPDM_CHECK_GT(mass, 0.0);
    for (double& m : next) m /= mass;

    const double chi2 = stats::ChiSquareDistance(next, p);
    out.log_likelihood_trace.push_back(log_likelihood);
    out.chi_square_trace.push_back(chi2);
    p.swap(next);
    ++out.iterations;
    if (chi2 < options.chi_square_epsilon) break;
  }
  out.masses = std::move(p);
  EmIterationsHistogram().Observe(static_cast<double>(out.iterations));
  return out;
}

// Component likelihood table of the binned EM: kernel[j*K + k] is
// P(W ∈ w-bin j | X = m_k), integrated exactly over the w bin via the
// noise CDF. Integration (rather than a midpoint pdf evaluation) kills the
// half-bin boundary bias that bounded noise would otherwise exhibit.
// fallback[j] is the interval absorbing bin j if every component density
// vanishes there (possible only at the clamped edges of bounded noise).
// Each row is independent and writes only its own slots, so the table is
// identical for every pool size.
void BuildBinnedKernel(const stats::Histogram& whist,
                       const Partition& partition,
                       const perturb::NoiseModel& noise,
                       engine::ThreadPool* pool, std::vector<double>* kernel,
                       std::vector<std::size_t>* fallback) {
  const std::size_t num_wbins = whist.bins();
  const std::size_t num_intervals = partition.intervals();
  fallback->resize(num_wbins);
  kernel->resize(num_wbins * num_intervals);
  const std::vector<engine::ChunkRange> rows =
      engine::MakeChunks(num_wbins, pool == nullptr ? 0 : kKernelChunkRows);
  engine::ParallelFor(pool, rows.size(), [&](std::size_t c) {
    for (std::size_t j = rows[c].begin; j < rows[c].end; ++j) {
      const double bin_lo = whist.BinLo(j);
      const double bin_hi = whist.BinHi(j);
      (*fallback)[j] = partition.IntervalOf(whist.BinMid(j));
      for (std::size_t k = 0; k < num_intervals; ++k) {
        const double mid = partition.Mid(k);
        // The outermost bins also absorb the clamped tails.
        const double upper = j + 1 == num_wbins ? 1.0
                                                : noise.Cdf(bin_hi - mid);
        const double lower = j == 0 ? 0.0 : noise.Cdf(bin_lo - mid);
        (*kernel)[j * num_intervals + k] = upper - lower;
      }
    }
  });
}

}  // namespace

double Reconstruction::CdfAtEdge(std::size_t k) const {
  PPDM_CHECK_LE(k, masses.size());
  double c = 0.0;
  for (std::size_t i = 0; i < k; ++i) c += masses[i];
  return c;
}

BayesReconstructor::BayesReconstructor(perturb::NoiseModel noise,
                                       ReconstructionOptions options)
    : noise_(noise), options_(options) {
  PPDM_CHECK_GT(options.max_iterations, 0u);
  PPDM_CHECK_GE(options.chi_square_epsilon, 0.0);
}

Reconstruction BayesReconstructor::Fit(const std::vector<double>& perturbed,
                                       const Partition& partition) const {
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    return HistogramMasses(perturbed, partition);
  }
  if (perturbed.empty()) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  // em_chunk 0 = one chunk: reproduces the sequential reference bitwise.
  return options_.binned
             ? FitBinned(perturbed, partition, nullptr, 0, 0)
             : FitExact(perturbed, partition, nullptr, 0);
}

Reconstruction BayesReconstructor::FitParallel(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t shard_size) const {
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    return HistogramMasses(perturbed, partition);
  }
  if (perturbed.empty()) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  return options_.binned
             ? FitBinned(perturbed, partition, pool, shard_size, kEmChunkBins)
             : FitExact(perturbed, partition, pool, shard_size);
}

stats::Histogram BayesReconstructor::PerturbedBinning(
    const Partition& partition) const {
  // Perturbed values live on a range widened by the noise support; bin them
  // with the same width so kernel evaluations use aligned midpoints.
  const double width = partition.width();
  const auto extension = static_cast<std::size_t>(
      std::ceil(noise_.EffectiveHalfWidth() / width));
  return stats::Histogram(
      partition.lo() - width * static_cast<double>(extension),
      partition.hi() + width * static_cast<double>(extension),
      partition.intervals() + 2 * extension);
}

Reconstruction BayesReconstructor::FitBinned(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t shard_size,
    std::size_t em_chunk) const {
  // Sharded ingestion: per-shard integer bin counts merged in shard order
  // are exactly the sequential histogram, for every pool size.
  const stats::Histogram whist = PerturbedBinning(partition);
  const engine::ShardStats ingested = engine::IngestSharded(
      perturbed, /*labels=*/nullptr, /*num_classes=*/1,
      [&whist](double v) { return whist.BinOf(v); }, whist.bins(), pool,
      shard_size);

  std::vector<std::size_t> fallback;
  std::vector<double> kernel;
  BuildBinnedKernel(whist, partition, noise_, pool, &kernel, &fallback);
  return RunEm(ingested.BinWeights(), kernel, fallback,
               partition.intervals(), static_cast<double>(perturbed.size()),
               options_, pool, em_chunk);
}

Reconstruction BayesReconstructor::FitFromCounts(
    const std::vector<double>& weights, double total_weight,
    const Partition& partition, engine::ThreadPool* pool,
    const std::vector<double>* initial) const {
  const stats::Histogram whist = PerturbedBinning(partition);
  PPDM_CHECK_EQ(weights.size(), whist.bins());
  if (total_weight <= 0.0) {
    Reconstruction out;
    out.masses = UniformMasses(partition.intervals());
    return out;
  }
  if (noise_.kind() == perturb::NoiseKind::kNone) {
    // No noise: the w bins are the partition intervals and the estimate is
    // the exact histogram — the same degenerate path FitParallel takes.
    Reconstruction out;
    out.sample_count = static_cast<std::size_t>(total_weight + 0.5);
    out.masses.assign(weights.begin(), weights.end());
    for (double& m : out.masses) m /= total_weight;
    return out;
  }
  std::vector<std::size_t> fallback;
  std::vector<double> kernel;
  BuildBinnedKernel(whist, partition, noise_, pool, &kernel, &fallback);
  // kEmChunkBins matches FitParallel's decomposition, so a cold start
  // (initial == nullptr) reproduces the batch masses bit for bit.
  return RunEm(weights, kernel, fallback, partition.intervals(),
               total_weight, options_, pool, kEmChunkBins, initial);
}

Reconstruction BayesReconstructor::FitExact(
    const std::vector<double>& perturbed, const Partition& partition,
    engine::ThreadPool* pool, std::size_t em_chunk) const {
  const std::size_t num_intervals = partition.intervals();
  std::vector<double> weights(perturbed.size(), 1.0);
  std::vector<std::size_t> fallback(perturbed.size());
  std::vector<double> kernel(perturbed.size() * num_intervals);
  const std::vector<engine::ChunkRange> rows = engine::MakeChunks(
      perturbed.size(), pool == nullptr ? 0 : kKernelChunkRows);
  engine::ParallelFor(pool, rows.size(), [&](std::size_t c) {
    for (std::size_t j = rows[c].begin; j < rows[c].end; ++j) {
      fallback[j] = partition.IntervalOf(perturbed[j]);
      for (std::size_t k = 0; k < num_intervals; ++k) {
        kernel[j * num_intervals + k] =
            noise_.Pdf(perturbed[j] - partition.Mid(k));
      }
    }
  });
  return RunEm(weights, kernel, fallback, num_intervals,
               static_cast<double>(perturbed.size()), options_, pool,
               em_chunk);
}

}  // namespace ppdm::reconstruct
