// Order-statistics association of perturbed records with intervals
// (paper §5): once a reconstruction says interval k holds fraction p̂_k of
// the values, sort the records by perturbed value and deal the first
// round(N·p̂_1) into interval 1, the next round(N·p̂_2) into interval 2, …
// Rank statistics are far more stable under additive noise than the raw
// values, which is why this beats simply clamping each perturbed value.

#ifndef PPDM_RECONSTRUCT_ASSIGN_H_
#define PPDM_RECONSTRUCT_ASSIGN_H_

#include <cstddef>
#include <vector>

namespace ppdm::reconstruct {

/// Integer apportionment of `total` items proportional to `masses`
/// (largest-remainder method). The result sums to exactly `total`.
std::vector<std::size_t> ApportionCounts(const std::vector<double>& masses,
                                         std::size_t total);

/// Assigns each record (identified by position in `perturbed_values`) an
/// interval index in [0, masses.size()): records are ranked by perturbed
/// value and intervals filled in order with their apportioned counts.
/// Ties are broken by original position, making the result deterministic.
std::vector<std::size_t> AssignByOrderStatistics(
    const std::vector<double>& perturbed_values,
    const std::vector<double>& masses);

}  // namespace ppdm::reconstruct

#endif  // PPDM_RECONSTRUCT_ASSIGN_H_
