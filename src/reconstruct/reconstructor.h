// Reconstruction of an original value distribution from perturbed samples
// and the known noise density — the heart of the paper (§4).
//
// The iterative Bayes update of §4 is, in the interval-partitioned form of
// §4.3, exactly the EM algorithm for a finite mixture with known component
// densities f_Y(w − m_k) and unknown weights p_k (the observation made by
// Agrawal & Aggarwal, PODS '01). This implementation therefore exposes the
// log-likelihood trace, whose monotone increase is EM's signature and is
// property-tested in tests/reconstruct_test.cc.

#ifndef PPDM_RECONSTRUCT_RECONSTRUCTOR_H_
#define PPDM_RECONSTRUCT_RECONSTRUCTOR_H_

#include <cstddef>
#include <vector>

#include "engine/simd.h"
#include "engine/thread_pool.h"
#include "perturb/noise_model.h"
#include "reconstruct/partition.h"
#include "stats/histogram.h"

namespace ppdm::reconstruct {

/// Tuning knobs for the iterative reconstruction.
struct ReconstructionOptions {
  /// Hard cap on EM iterations.
  std::size_t max_iterations = 500;

  /// Stop when the χ² statistic between successive mass vectors drops
  /// below this threshold (the paper's stopping criterion: iterate until
  /// the estimate stops changing). EM deconvolution overfits if run to
  /// full convergence — the ML estimate itself grows spiky artifacts
  /// (exactly the Richardson–Lucy "night sky" effect) — so this default
  /// deliberately stops at the χ² level where reconstruction error
  /// bottoms out empirically across noise kinds and levels.
  double chi_square_epsilon = 1e-4;

  /// Use the paper's O(K²)-per-iteration accelerated form that bins the
  /// perturbed values first (§4.3). When false, iterate over every sample
  /// (O(N·K) per iteration) — numerically the reference implementation.
  bool binned = true;
};

/// Output of a reconstruction run.
struct Reconstruction {
  /// Estimated P(X ∈ I_k) per interval; sums to 1.
  std::vector<double> masses;

  /// Number of EM iterations performed.
  std::size_t iterations = 0;

  /// χ² between successive iterates, one entry per iteration.
  std::vector<double> chi_square_trace;

  /// Log-likelihood of the perturbed sample under the estimate, one entry
  /// per iteration; non-decreasing (EM).
  std::vector<double> log_likelihood_trace;

  /// Number of perturbed samples the estimate was fitted from.
  std::size_t sample_count = 0;

  /// Estimated cumulative mass strictly below interval `k`'s upper edge.
  double CdfAtEdge(std::size_t k) const;
};

/// Precomputed component-likelihood table of the binned EM:
/// `kernel[j * stride + k]` holds P(W ∈ w-bin j | X = m_k), integrated
/// exactly over the w bin via the noise CDF. Rows are padded from
/// `intervals` to `stride` (a SIMD lane multiple) with exact zeros, so the
/// blocked E-step kernels run without a remainder tail. `fallback[j]` is
/// the interval absorbing bin j if every component density vanishes there.
///
/// The table depends only on (noise params, partition edges, w-hist
/// edges) — the key fields below — never on the counts, the thread count,
/// or the dispatched SIMD path, so warm-start refreshes can cache it
/// (api::AttributeState does) and skip the O(wbins·K) rebuild.
struct KernelTable {
  std::size_t wbins = 0;      ///< perturbed-value bins (table rows)
  std::size_t intervals = 0;  ///< partition intervals (logical columns)
  std::size_t stride = 0;     ///< row stride: intervals padded to a lane multiple
  std::vector<double> kernel;          ///< wbins × stride, padding zero
  std::vector<std::size_t> fallback;   ///< absorbing interval per row

  // Cache key — the inputs the table was built from.
  perturb::NoiseKind noise_kind = perturb::NoiseKind::kNone;
  double noise_scale = 0.0;
  double partition_lo = 0.0;
  double partition_hi = 0.0;
  double whist_lo = 0.0;
  double whist_hi = 0.0;

  /// True when this table was built from exactly these layout inputs (and
  /// its shape is internally consistent) — the staleness check cached
  /// tables go through before reuse.
  bool Matches(const perturb::NoiseModel& noise, const Partition& partition,
               const stats::Histogram& whist) const;

  /// Heap bytes behind the table (cache-size reporting).
  std::size_t ApproxHeapBytes() const;
};

/// Fits interval masses to perturbed samples by iterated Bayes / EM.
class BayesReconstructor {
 public:
  BayesReconstructor(perturb::NoiseModel noise, ReconstructionOptions options);

  /// Reconstructs the distribution of X over `partition` from the
  /// perturbed values w_i = x_i + y_i. With kNone noise this degenerates
  /// to the exact histogram of the samples. An empty sample yields the
  /// uniform distribution (the EM prior).
  Reconstruction Fit(const std::vector<double>& perturbed,
                     const Partition& partition) const;

  /// Engine entry point: sharded ingestion plus a fixed-grain chunked
  /// E-step. For a given `shard_size` the result is bit-identical for every
  /// pool size (including pool == nullptr, which runs the same decomposition
  /// inline) — per-chunk partial sums are folded in chunk order, so the
  /// floating-point summation tree never depends on the thread count. The
  /// regrouped summation makes the masses differ from Fit()'s sequential
  /// accumulation by at most rounding noise.
  Reconstruction FitParallel(const std::vector<double>& perturbed,
                             const Partition& partition,
                             engine::ThreadPool* pool,
                             std::size_t shard_size) const;

  /// The perturbed-value binning the binned engine path uses for
  /// `partition`: the partition's grid extended on each side by
  /// ceil(EffectiveHalfWidth / width) bins, so overshooting perturbed
  /// values land in aligned edge bins. Streaming ingestion bins arriving
  /// observations with exactly this layout (the counts it accumulates are
  /// the ones FitParallel would ingest from the full column).
  stats::Histogram PerturbedBinning(const Partition& partition) const;

  /// Streaming entry point: fits from pre-binned perturbed-value counts —
  /// `weights[j]` observations fell in bin j of PerturbedBinning(partition),
  /// `total_weight` observations in all. Counts are integers, so any
  /// ingestion split (one batch, many batches, sharded) yields the same
  /// weights, and with `initial == nullptr` the result is byte-identical
  /// to FitParallel on the equivalent raw column for every pool size.
  /// A non-null `initial` (length partition.intervals(), summing to ~1)
  /// warm-starts EM from a previous estimate instead of the uniform prior:
  /// masses are floored at a tiny positive value and renormalized so a
  /// zero in the old estimate can never absorb an interval permanently.
  /// A non-null `kernel` skips rebuilding the O(wbins·K) likelihood table
  /// when it matches this fit's layout (stale tables are rebuilt, never
  /// trusted); the table's contents are identical to a fresh build, so
  /// the result is byte-identical with or without the cache.
  Reconstruction FitFromCounts(const std::vector<double>& weights,
                               double total_weight,
                               const Partition& partition,
                               engine::ThreadPool* pool,
                               const std::vector<double>* initial = nullptr,
                               const KernelTable* kernel = nullptr) const;

  /// Builds the binned-EM likelihood table for `partition` — what
  /// FitFromCounts does internally when handed no cached table. Depends
  /// only on the reconstructor's noise model and the partition layout;
  /// deterministic for every pool size and SIMD path.
  KernelTable BuildKernelTable(const Partition& partition,
                               engine::ThreadPool* pool) const;

  const perturb::NoiseModel& noise() const { return noise_; }
  const ReconstructionOptions& options() const { return options_; }

 private:
  Reconstruction FitBinned(const std::vector<double>& perturbed,
                           const Partition& partition,
                           engine::ThreadPool* pool, std::size_t shard_size,
                           std::size_t em_chunk) const;
  Reconstruction FitExact(const std::vector<double>& perturbed,
                          const Partition& partition,
                          engine::ThreadPool* pool,
                          std::size_t em_chunk) const;

  perturb::NoiseModel noise_;
  ReconstructionOptions options_;
};

}  // namespace ppdm::reconstruct

#endif  // PPDM_RECONSTRUCT_RECONSTRUCTOR_H_
