// Dataset-level reconstruction helpers: the per-class reconstructions that
// drive the ByClass / Local tree algorithms and the combined reconstruction
// used by Global.

#ifndef PPDM_RECONSTRUCT_BY_CLASS_H_
#define PPDM_RECONSTRUCT_BY_CLASS_H_

#include <vector>

#include "data/dataset.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::reconstruct {

/// Reconstructs attribute `col` of the (perturbed) dataset over all
/// records, ignoring class labels (paper's Global strategy).
Reconstruction ReconstructCombined(const data::Dataset& perturbed,
                                   std::size_t col,
                                   const Partition& partition,
                                   const BayesReconstructor& reconstructor);

/// Reconstructs attribute `col` separately for each class; entry c of the
/// result is the estimate of f(X | class = c) (paper's ByClass strategy).
std::vector<Reconstruction> ReconstructByClass(
    const data::Dataset& perturbed, std::size_t col,
    const Partition& partition, const BayesReconstructor& reconstructor);

/// Per-class fan-out of ReconstructByClass over a pool: each class's EM runs
/// as one independent task. Every per-class fit uses the sequential
/// reference path, so the result is bit-identical to ReconstructByClass for
/// any pool size (nullptr runs inline).
std::vector<Reconstruction> ReconstructByClassParallel(
    const data::Dataset& perturbed, std::size_t col,
    const Partition& partition, const BayesReconstructor& reconstructor,
    engine::ThreadPool* pool);

}  // namespace ppdm::reconstruct

#endif  // PPDM_RECONSTRUCT_BY_CLASS_H_
