#include "reconstruct/by_class.h"

#include "common/check.h"
#include "engine/thread_pool.h"

namespace ppdm::reconstruct {

Reconstruction ReconstructCombined(const data::Dataset& perturbed,
                                   std::size_t col,
                                   const Partition& partition,
                                   const BayesReconstructor& reconstructor) {
  return reconstructor.Fit(perturbed.Column(col), partition);
}

namespace {

// Splits attribute `col` into per-class value vectors (entry c holds the
// column values of records labelled c) — the fan-out's shared input.
std::vector<std::vector<double>> SplitColumnByClass(
    const data::Dataset& perturbed, std::size_t col) {
  std::vector<std::vector<double>> values(
      static_cast<std::size_t>(perturbed.num_classes()));
  const std::vector<double>& column = perturbed.Column(col);
  for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
    values[static_cast<std::size_t>(perturbed.Label(r))].push_back(column[r]);
  }
  return values;
}

}  // namespace

std::vector<Reconstruction> ReconstructByClass(
    const data::Dataset& perturbed, std::size_t col,
    const Partition& partition, const BayesReconstructor& reconstructor) {
  return ReconstructByClassParallel(perturbed, col, partition, reconstructor,
                                    nullptr);
}

std::vector<Reconstruction> ReconstructByClassParallel(
    const data::Dataset& perturbed, std::size_t col,
    const Partition& partition, const BayesReconstructor& reconstructor,
    engine::ThreadPool* pool) {
  const std::vector<std::vector<double>> values =
      SplitColumnByClass(perturbed, col);
  std::vector<Reconstruction> out(values.size());
  // One task per class; each fit is the sequential reference path writing
  // its own slot, so the fan-out cannot perturb any output bit.
  engine::ParallelFor(pool, values.size(), [&](std::size_t c) {
    out[c] = reconstructor.Fit(values[c], partition);
  });
  return out;
}

}  // namespace ppdm::reconstruct
