#include "reconstruct/by_class.h"

namespace ppdm::reconstruct {

Reconstruction ReconstructCombined(const data::Dataset& perturbed,
                                   std::size_t col,
                                   const Partition& partition,
                                   const BayesReconstructor& reconstructor) {
  return reconstructor.Fit(perturbed.Column(col), partition);
}

std::vector<Reconstruction> ReconstructByClass(
    const data::Dataset& perturbed, std::size_t col,
    const Partition& partition, const BayesReconstructor& reconstructor) {
  std::vector<Reconstruction> out;
  out.reserve(static_cast<std::size_t>(perturbed.num_classes()));
  const std::vector<double>& column = perturbed.Column(col);
  for (int c = 0; c < perturbed.num_classes(); ++c) {
    std::vector<double> values;
    for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
      if (perturbed.Label(r) == c) values.push_back(column[r]);
    }
    out.push_back(reconstructor.Fit(values, partition));
  }
  return out;
}

}  // namespace ppdm::reconstruct
