#include "reconstruct/partition.h"

#include <algorithm>

#include "common/check.h"

namespace ppdm::reconstruct {

Partition::Partition(double lo, double hi, std::size_t intervals)
    : lo_(lo),
      hi_(hi),
      width_((hi - lo) / static_cast<double>(intervals)),
      intervals_(intervals) {
  PPDM_CHECK_LT(lo, hi);
  PPDM_CHECK_GT(intervals, 0u);
}

Partition Partition::ForField(const data::FieldSpec& field,
                              std::size_t intervals) {
  return Partition(field.lo, field.hi, intervals);
}

double Partition::Mid(std::size_t k) const {
  PPDM_CHECK_LT(k, intervals_);
  return lo_ + width_ * (static_cast<double>(k) + 0.5);
}

double Partition::Lo(std::size_t k) const {
  PPDM_CHECK_LT(k, intervals_);
  return lo_ + width_ * static_cast<double>(k);
}

double Partition::Hi(std::size_t k) const {
  PPDM_CHECK_LT(k, intervals_);
  return lo_ + width_ * static_cast<double>(k + 1);
}

std::vector<double> Partition::Edges() const {
  std::vector<double> edges(intervals_ + 1);
  for (std::size_t k = 0; k <= intervals_; ++k) {
    edges[k] = lo_ + width_ * static_cast<double>(k);
  }
  edges.back() = hi_;  // avoid drift on the last edge
  return edges;
}

std::size_t Partition::IntervalOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return intervals_ - 1;
  auto k = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(k, intervals_ - 1);
}

}  // namespace ppdm::reconstruct
