// Entry point of the `ppdm` command-line tool. All logic lives in the
// testable ppdm_cli library; this file only maps Status to exit codes.

#include <iostream>

#include "cli/args.h"
#include "cli/commands.h"
#include "common/fault.h"
#include "engine/simd.h"

int main(int argc, char** argv) {
  using ppdm::cli::Args;

  // PPDM_FAULTS=<spec> arms the deterministic fault points before any
  // command runs, so every ppdm command can execute under injected
  // failures without a rebuild.
  if (ppdm::Status faults = ppdm::fault::ArmFromEnv(); !faults.ok()) {
    std::cerr << "ppdm: PPDM_FAULTS: " << faults.ToString() << "\n";
    return 2;
  }

  // PPDM_SIMD=off|scalar|avx2 pins the kernel dispatch path. Resolve it
  // eagerly so a typo fails loudly here instead of silently running the
  // default path (library users get the lenient lazy resolve instead).
  if (ppdm::Status simd = ppdm::engine::simd::InitFromEnv(); !simd.ok()) {
    std::cerr << "ppdm: PPDM_SIMD: " << simd.ToString() << "\n";
    return 2;
  }

  ppdm::Result<Args> args = Args::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "ppdm: " << args.status().ToString() << "\n\n"
              << ppdm::cli::UsageText();
    return 2;
  }
  const ppdm::Status status = ppdm::cli::RunCommand(args.value(), std::cout);
  if (!status.ok()) {
    std::cerr << "ppdm: " << status.ToString() << "\n";
    return 1;
  }
  return 0;
}
