// Minimal --key=value flag parsing for the ppdm command-line tool.

#ifndef PPDM_CLI_ARGS_H_
#define PPDM_CLI_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdm::cli {

/// Parsed command line: one positional command plus --key=value flags.
class Args {
 public:
  /// Parses argv[1..]: the first non-flag token is the command, the rest
  /// must be --key=value (or --flag, stored with an empty value).
  static Result<Args> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  /// True when the flag was supplied.
  bool Has(const std::string& key) const;

  /// String value with a default.
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;

  /// Typed accessors; the flag must parse when present.
  Result<double> GetDouble(const std::string& key, double fallback) const;
  Result<long long> GetInt(const std::string& key, long long fallback) const;

  /// Rejects any flag not in `known` (catches typos).
  Status CheckKnown(const std::vector<std::string>& known) const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
};

}  // namespace ppdm::cli

#endif  // PPDM_CLI_ARGS_H_
