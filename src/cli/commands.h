// The ppdm command-line workflows over CSV files (benchmark schema):
//
//   generate     synthesize labelled benchmark data
//   perturb      provider-side randomization of a CSV
//   reconstruct  recover one attribute's distribution from perturbed CSV
//   train        train + evaluate a classifier from (perturbed) CSV
//   serve-sim    simulate the streaming server: batches of perturbed
//                records arrive over time, a ReconstructionSession folds
//                them in, and periodic refreshes re-estimate by
//                warm-started EM; --checkpoint-dir snapshots the session
//                so a later --resume continues where a crash stopped
//   snapshot     list the snapshots in a store directory, or simulate a
//                perturbed stream and persist the resulting session
//   restore      rebuild a session from a snapshot and report (optionally
//                reconstruct) its state
//   metrics      run a small in-process stream through every instrumented
//                layer and dump the process metrics registry in
//                Prometheus text exposition format (--spans appends the
//                recent trace spans)
//   served       the real network daemon: serve the frame protocol
//                (open/ingest/reconstruct/snapshot/close/stats) to TCP
//                clients until SIGTERM, then drain and checkpoint every
//                tenant; --resume re-admits them on restart
//   loadgen      drive a running daemon with N tenants of sustained
//                ingest/reconstruct traffic and report QPS + p50/p99
//
// `ppdm <command> --help` prints this usage and exits 0.
//
// Each command validates its flags through the api spec layer (invalid
// requests come back as kInvalidArgument, never a CHECK abort), performs
// the work, writes any output file, prints a short report to `out`, and
// returns a Status. Commands are plain functions so they are
// unit-testable without a process spawn.

#ifndef PPDM_CLI_COMMANDS_H_
#define PPDM_CLI_COMMANDS_H_

#include <ostream>

#include "cli/args.h"
#include "common/status.h"

namespace ppdm::cli {

/// Dispatches to the command named in `args`. Unknown commands and flag
/// errors come back as InvalidArgument with a usage hint.
Status RunCommand(const Args& args, std::ostream& out);

/// Usage text for --help / errors.
const char* UsageText();

/// Individual commands (exposed for tests).
Status RunGenerate(const Args& args, std::ostream& out);
Status RunPerturb(const Args& args, std::ostream& out);
Status RunReconstruct(const Args& args, std::ostream& out);
Status RunTrain(const Args& args, std::ostream& out);
Status RunServeSim(const Args& args, std::ostream& out);
Status RunSnapshot(const Args& args, std::ostream& out);
Status RunRestore(const Args& args, std::ostream& out);
Status RunMetrics(const Args& args, std::ostream& out);
Status RunServed(const Args& args, std::ostream& out);
Status RunLoadgen(const Args& args, std::ostream& out);

}  // namespace ppdm::cli

#endif  // PPDM_CLI_COMMANDS_H_
