#include "cli/commands.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <memory>
#include <optional>
#include <ostream>
#include <thread>

#include "api/dataset_session.h"
#include "api/registry.h"
#include "api/service.h"
#include "api/session.h"
#include "api/spec.h"
#include "data/row_batch.h"
#include "common/fault.h"
#include "common/strings.h"
#include "core/metrics.h"
#include "data/csv.h"
#include "engine/batch.h"
#include "engine/simd.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perturb/randomizer.h"
#include "reconstruct/by_class.h"
#include "reconstruct/reconstructor.h"
#include "stats/histogram.h"
#include "store/session_codec.h"
#include "store/snapshot_store.h"
#include "store/spill_store.h"
#include "synth/generator.h"
#include "tree/trainer.h"

namespace ppdm::cli {
namespace {

Result<synth::Function> FunctionFromFlag(const Args& args) {
  Result<long long> fn = args.GetInt("function", 1);
  if (!fn.ok()) return fn.status();
  if (fn.value() < 1 || fn.value() > 5) {
    return Status::InvalidArgument("--function must be 1..5");
  }
  return static_cast<synth::Function>(fn.value());
}

Result<perturb::NoiseKind> NoiseFromFlag(const Args& args) {
  const std::string name = args.GetString("noise", "uniform");
  if (name == "uniform") return perturb::NoiseKind::kUniform;
  if (name == "gaussian") return perturb::NoiseKind::kGaussian;
  if (name == "none") return perturb::NoiseKind::kNone;
  return Status::InvalidArgument("--noise must be uniform|gaussian|none");
}

Result<tree::TrainingMode> ModeFromFlag(const Args& args) {
  const std::string name = args.GetString("mode", "byclass");
  if (name == "original") return tree::TrainingMode::kOriginal;
  if (name == "randomized") return tree::TrainingMode::kRandomized;
  if (name == "global") return tree::TrainingMode::kGlobal;
  if (name == "byclass") return tree::TrainingMode::kByClass;
  if (name == "local") return tree::TrainingMode::kLocal;
  return Status::InvalidArgument(
      "--mode must be original|randomized|global|byclass|local");
}

// Noise flags validated through the api spec layer: a bad --privacy or
// --confidence is a kInvalidArgument here, not a CHECK abort deeper down.
Result<perturb::RandomizerOptions> NoiseOptionsFromFlags(const Args& args) {
  PPDM_ASSIGN_OR_RETURN(const perturb::NoiseKind kind, NoiseFromFlag(args));
  PPDM_ASSIGN_OR_RETURN(const double privacy,
                        args.GetDouble("privacy", 1.0));
  PPDM_ASSIGN_OR_RETURN(const double confidence,
                        args.GetDouble("confidence", 0.95));
  PPDM_ASSIGN_OR_RETURN(const long long seed, args.GetInt("seed", 7));

  perturb::RandomizerOptions options;
  options.kind = privacy == 0.0 ? perturb::NoiseKind::kNone : kind;
  options.privacy_fraction = privacy;
  options.confidence = confidence;
  options.seed = static_cast<std::uint64_t>(seed);
  PPDM_RETURN_IF_ERROR(api::ValidateNoise(options));
  return options;
}

Result<perturb::Randomizer> RandomizerFromFlags(const Args& args,
                                                const data::Schema& schema) {
  PPDM_ASSIGN_OR_RETURN(const perturb::RandomizerOptions options,
                        NoiseOptionsFromFlags(args));
  return perturb::Randomizer(schema, options);
}

// --threads / --shard-size: the parallel execution engine. --threads=0
// (the default) keeps the sequential reference code paths.
Result<engine::BatchOptions> BatchFromFlags(const Args& args) {
  PPDM_ASSIGN_OR_RETURN(const long long threads, args.GetInt("threads", 0));
  if (threads < 0) {
    return Status::InvalidArgument("--threads must be >= 0");
  }
  PPDM_ASSIGN_OR_RETURN(const long long shard_size,
                        args.GetInt("shard-size", 16384));
  if (shard_size < 0) {
    return Status::InvalidArgument("--shard-size must be >= 0");
  }
  engine::BatchOptions options;
  options.num_threads = static_cast<std::size_t>(threads);
  options.shard_size = static_cast<std::size_t>(shard_size);
  PPDM_RETURN_IF_ERROR(api::ValidateEngine(options));
  return options;
}

// The flag names every command that builds a StreamSimSpec accepts
// (serve-sim, snapshot, metrics, loadgen). One list, so a new stream
// flag lands in every CheckKnown at once instead of drifting per
// command.
std::vector<std::string> StreamFlagNames() {
  return {"attribute",  "attrs",     "function", "noise",   "privacy",
          "confidence", "intervals", "seed",     "threads", "shard-size",
          "simd"};
}

// StreamFlagNames() + the command's own flags, for CheckKnown.
std::vector<std::string> WithStreamFlags(std::vector<std::string> own) {
  std::vector<std::string> known = StreamFlagNames();
  known.insert(known.end(), std::make_move_iterator(own.begin()),
               std::make_move_iterator(own.end()));
  return known;
}

// The shared shape of the streaming simulations (serve-sim, snapshot):
// which benchmark columns are tracked, the dataset-session spec over
// them, the provider noise, and the engine configuration.
struct StreamSimSpec {
  api::DatasetSessionSpec session;
  std::vector<std::size_t> columns;
  perturb::RandomizerOptions noise;
  engine::BatchOptions batch;
  synth::Function function = synth::Function::kF1;
};

// Builds a StreamSimSpec from the --attrs/--attribute/--noise/--privacy/
// --intervals/--function/engine flags, validated through the spec layer.
Result<StreamSimSpec> StreamSimSpecFromFlags(const Args& args) {
  StreamSimSpec sim;
  PPDM_ASSIGN_OR_RETURN(sim.function, FunctionFromFlag(args));
  PPDM_ASSIGN_OR_RETURN(sim.batch, BatchFromFlags(args));
  PPDM_ASSIGN_OR_RETURN(sim.noise, NoiseOptionsFromFlags(args));
  PPDM_ASSIGN_OR_RETURN(const long long intervals,
                        args.GetInt("intervals", 30));
  const data::Schema schema = synth::BenchmarkSchema();

  // Tracked attributes: the first --attrs benchmark columns, or the one
  // named by --attribute.
  PPDM_ASSIGN_OR_RETURN(const long long attrs, args.GetInt("attrs", 0));
  if (attrs < 0 || attrs > static_cast<long long>(schema.NumFields())) {
    return Status::InvalidArgument(
        StrFormat("--attrs must be in 0..%zu", schema.NumFields()));
  }
  if (attrs > 0) {
    if (args.Has("attribute")) {
      return Status::InvalidArgument(
          "--attrs and --attribute are alternatives; pass one");
    }
    for (long long c = 0; c < attrs; ++c) {
      sim.columns.push_back(static_cast<std::size_t>(c));
    }
  } else {
    const std::string attribute = args.GetString("attribute", "salary");
    PPDM_ASSIGN_OR_RETURN(const std::size_t col, schema.IndexOf(attribute));
    sim.columns.push_back(col);
  }

  sim.session.schema = schema;
  for (std::size_t col : sim.columns) {
    api::AttributeSpec attr;
    attr.column = col;
    attr.intervals =
        static_cast<std::size_t>(std::max<long long>(intervals, 0));
    attr.noise = sim.noise.kind;
    attr.privacy_fraction = sim.noise.privacy_fraction;
    attr.confidence = sim.noise.confidence;
    sim.session.attributes.push_back(attr);
  }
  sim.session.shard_size = sim.batch.shard_size;
  return sim;
}

// Provider side of the simulations: copies one true record batch into
// `scratch`, folds the tracked columns into `truth` (when non-null), and
// adds each tracked attribute's calibrated noise per record — the server
// sees only the perturbed rows.
data::RowBatch PerturbTracked(const data::RowBatch& true_rows,
                              const api::DatasetSession& session,
                              const std::vector<std::size_t>& columns,
                              std::vector<stats::Histogram>* truth,
                              Rng* noise_rng,
                              std::vector<double>* scratch) {
  scratch->assign(true_rows.values(),
                  true_rows.values() +
                      true_rows.num_rows() * true_rows.num_cols());
  for (std::size_t r = 0; r < true_rows.num_rows(); ++r) {
    double* row = scratch->data() + r * true_rows.num_cols();
    for (std::size_t a = 0; a < columns.size(); ++a) {
      if (truth != nullptr) (*truth)[a].Add(row[columns[a]]);
      row[columns[a]] += session.noise_model(a).Sample(noise_rng);
    }
  }
  return data::RowBatch(scratch->data(), true_rows.num_rows(),
                        true_rows.num_cols());
}

// Serve-sim wall-clock instruments: one sample per refresh and per whole
// stream. The per-batch ingest path is timed inside DatasetSession
// (ppdm_session_ingest_seconds), not here.
obs::Histogram& ServeRefreshHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_serve_refresh_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& ServeStreamHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_serve_stream_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

// "p50 1.23 / p99 4.56 ms (7 samples)" for the final report, or "n/a"
// when the histogram never saw a sample (e.g. metrics timing disabled).
std::string LatencyCell(const obs::Histogram* histogram) {
  if (histogram == nullptr || histogram->Count() == 0) return "n/a";
  return StrFormat("p50 %.2f / p99 %.2f ms (%llu sample(s))",
                   1e3 * histogram->Quantile(0.5),
                   1e3 * histogram->Quantile(0.99),
                   static_cast<unsigned long long>(histogram->Count()));
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::IoError(
        StrFormat("cannot open %s for writing", path.c_str()));
  }
  file << text;
  file.flush();
  if (!file) {
    return Status::IoError(StrFormat("short write to %s", path.c_str()));
  }
  return Status::Ok();
}

// --metrics-out=FILE: the full Prometheus-style exposition at exit.
Status WriteMetricsFile(const std::string& path) {
  return WriteTextFile(path, obs::MetricsRegistry::Global().RenderText());
}

}  // namespace

const char* UsageText() {
  return
      "usage: ppdm <command> [--flag=value ...]\n"
      "\n"
      "commands:\n"
      "  generate    --out=FILE [--function=1..5] [--records=N] [--seed=S]\n"
      "              [--label-noise=P]\n"
      "  perturb     --in=FILE --out=FILE [--noise=uniform|gaussian]\n"
      "              [--privacy=F] [--confidence=C] [--seed=S]\n"
      "              [--threads=T] [--shard-size=N]\n"
      "  reconstruct --in=FILE --attribute=NAME [--noise=...] [--privacy=F]\n"
      "              [--confidence=C] [--intervals=K] [--by-class]\n"
      "              [--threads=T] [--shard-size=N]\n"
      "  train       --train=FILE --test=FILE [--mode=byclass|...]\n"
      "              [--noise=...] [--privacy=F] [--confidence=C]\n"
      "              [--intervals=K] [--print-tree]\n"
      "              [--threads=T] [--shard-size=N]\n"
      "  serve-sim   [--records=N] [--batch-records=B] [--refresh=R]\n"
      "              [--attribute=NAME | --attrs=A] [--function=1..5]\n"
      "              [--noise=...] [--privacy=F] [--confidence=C]\n"
      "              [--intervals=K] [--registry-mb=M] [--seed=S]\n"
      "              [--threads=T] [--shard-size=N]\n"
      "              [--checkpoint-dir=DIR] [--checkpoint-every-batches=K]\n"
      "              [--resume] [--max-pending=N] [--faults=SPEC]\n"
      "              [--trace-out=FILE] [--slow-ms=N]\n"
      "  snapshot    --dir=DIR                      list stored snapshots\n"
      "              --dir=DIR --name=NAME [--records=N] [--batch-records=B]\n"
      "              [--reconstruct] [stream flags as in serve-sim]\n"
      "                                             simulate + persist\n"
      "  restore     --dir=DIR --name=NAME [--reconstruct] [--print-masses]\n"
      "              [--threads=T]\n"
      "  metrics     [--records=N] [--batch-records=B] [--spans]\n"
      "              [stream flags as in serve-sim]\n"
      "                                             exposition dump\n"
      "  trace       [--records=N] [--batch-records=B] [--out=FILE]\n"
      "              [--threads=T] [stream flags as in serve-sim]\n"
      "                                             Chrome trace dump\n"
      "  served      [--host=H] [--port=P] [--threads=T] [--shard-size=N]\n"
      "              [--max-pending=N] [--max-connections=N]\n"
      "              [--connection-window=N] [--max-body-mb=M]\n"
      "              [--registry-mb=M] [--checkpoint-dir=DIR] [--resume]\n"
      "              [--tenant-rate=R] [--tenant-burst=B] [--faults=SPEC]\n"
      "              [--trace-out=FILE] [--slow-ms=N]\n"
      "  loadgen     --port=P [--host=H] [--tenants=N] [--records=N]\n"
      "              [--batch-records=B] [--refresh=R] [--connections=C]\n"
      "              [--snapshot-every=K] [--ttl-ms=T] [--masses-out=FILE]\n"
      "              [--stats-out=FILE] [--trace-out=FILE]\n"
      "              [--tolerate-errors] [--close]\n"
      "              [stream flags as in serve-sim]\n"
      "\n"
      "ppdm <command> --help prints this usage and exits 0.\n"
      "\n"
      "Every command also accepts --simd=off|scalar|avx2, pinning the EM /\n"
      "ingest kernel dispatch (overrides the PPDM_SIMD env var; default is\n"
      "avx2 when the build and CPU support it, else scalar). All paths are\n"
      "byte-identical — the flag exists for benchmarking and for pinning a\n"
      "known path in CI; 'off' keeps the pre-dispatch sequential loops.\n"
      "\n"
      "serve-sim simulates the paper's server: providers submit perturbed\n"
      "records in batches of B; a DatasetSession folds each record batch\n"
      "into every tracked attribute in one pass and every R batches all\n"
      "estimates are refreshed (EM warm-started), reporting reconstruction\n"
      "error against the true distributions. --attrs=A tracks the first A\n"
      "benchmark attributes (--attribute tracks one by name); the session\n"
      "lives in a SessionRegistry whose byte budget --registry-mb=M (0 =\n"
      "unbounded) is reported with occupancy/evictions at the end.\n"
      "--checkpoint-dir=DIR wires a snapshot store under the registry\n"
      "(evictions spill instead of destroying state) and persists the\n"
      "session there — every K batches with --checkpoint-every-batches=K,\n"
      "and always at stream end. --resume re-admits the checkpoint and\n"
      "streams N further records, simulating crash recovery.\n"
      "\n"
      "Periodic serve-sim checkpoints run as async service jobs; a new\n"
      "checkpoint supersedes (cancels) a still-pending one. --max-pending=N\n"
      "bounds the service's admitted-but-unstarted job queue (jobs past it\n"
      "are shed with ResourceExhausted; 0 = unbounded). --faults=SPEC arms\n"
      "deterministic fault points (same grammar as the PPDM_FAULTS env\n"
      "var), e.g. --faults='store.put.io=every:50;spill.demote=once'.\n"
      "Triggers: every:N, prob:P[:SEED], once, off; append ,permanent for\n"
      "a non-retryable injected failure. serve-sim exits nonzero when the\n"
      "session ends in a permanent-error state (final checkpoint failed).\n"
      "\n"
      "snapshot/restore are the operator surface of the same store: \n"
      "'snapshot --dir' lists what a directory holds; with --name it\n"
      "simulates a perturbed stream (same flags as serve-sim) and persists\n"
      "the session; 'restore' rebuilds a session from its snapshot,\n"
      "reports it, and with --reconstruct re-estimates from the restored\n"
      "counts (--print-masses prints the distributions).\n"
      "\n"
      "served is the real network daemon: it speaks the length-prefixed\n"
      "frame protocol (open/ingest/reconstruct/snapshot/close/stats) on\n"
      "TCP, one poll() loop feeding an async worker service (--threads=0\n"
      "serves synchronously). --max-pending sheds excess queued requests\n"
      "with ResourceExhausted; --connection-window pauses reads on any\n"
      "connection with that many requests in flight (backpressure);\n"
      "--tenant-rate/--tenant-burst token-bucket each tenant's requests.\n"
      "SIGTERM drains: in-flight requests finish, every open tenant is\n"
      "checkpointed to --checkpoint-dir, and a restart with --resume\n"
      "re-admits them. loadgen drives a running daemon with N seeded\n"
      "tenants over C connections (ingest every batch, reconstruct every\n"
      "R rounds, optional snapshot verb every K rounds) and reports QPS\n"
      "and client-side p50/p99; --masses-out writes every tenant's\n"
      "reconstruction at full precision for byte-identity checks and\n"
      "--stats-out saves the daemon's stats-verb exposition.\n"
      "\n"
      "metrics runs a small in-process stream through every instrumented\n"
      "layer and prints the process metrics registry in Prometheus text\n"
      "exposition format (--spans appends the recent trace spans).\n"
      "serve-sim accepts --metrics-out=FILE to write the same exposition\n"
      "at stream end.\n"
      "\n"
      "trace runs the same small stream through the async service (so the\n"
      "request -> queue/run -> engine fan-out -> store levels all appear)\n"
      "and prints the span ring as Chrome trace-event JSON — load it at\n"
      "chrome://tracing or ui.perfetto.dev (--out=FILE writes it instead).\n"
      "served/serve-sim accept --trace-out=FILE for the same JSON at exit,\n"
      "and --slow-ms=N logs the rendered span tree of any request (or\n"
      "refresh) that takes at least N ms. loadgen --trace-out=FILE saves\n"
      "the daemon's ring via the stats verb's trace flag.\n"
      "\n"
      "All CSV files use the benchmark schema (salary..loan, class).\n"
      "For train/reconstruct, --noise/--privacy must describe the noise\n"
      "the input file was perturbed with (0 for unperturbed data).\n"
      "--threads=T runs the parallel engine with T workers; 0 (the\n"
      "default) keeps the sequential reference implementation, whose\n"
      "stream/summation layout differs from the engine's. For any\n"
      "T >= 1 results are identical for a fixed --shard-size.\n"
      "--shard-size shapes the perturb and single-attribute\n"
      "reconstruct decompositions; train and --by-class parallelize\n"
      "the per-attribute/per-class fan-out and do not use it.\n";
}

Status RunGenerate(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(
          {"out", "function", "records", "seed", "label-noise", "simd"});
      !s.ok()) {
    return s;
  }
  const std::string path = args.GetString("out", "");
  if (path.empty()) return Status::InvalidArgument("generate needs --out");
  Result<synth::Function> fn = FunctionFromFlag(args);
  if (!fn.ok()) return fn.status();
  Result<long long> records = args.GetInt("records", 10000);
  if (!records.ok()) return records.status();
  if (records.value() <= 0) {
    return Status::InvalidArgument("--records must be positive");
  }
  Result<long long> seed = args.GetInt("seed", 1);
  if (!seed.ok()) return seed.status();
  Result<double> label_noise = args.GetDouble("label-noise", 0.0);
  if (!label_noise.ok()) return label_noise.status();

  synth::GeneratorOptions options;
  options.function = fn.value();
  options.num_records = static_cast<std::size_t>(records.value());
  options.seed = static_cast<std::uint64_t>(seed.value());
  options.label_noise = label_noise.value();
  const data::Dataset dataset = synth::Generate(options);
  if (Status s = data::WriteCsv(dataset, path); !s.ok()) return s;
  out << StrFormat("wrote %zu %s records to %s\n", dataset.NumRows(),
                   synth::FunctionName(fn.value()).c_str(), path.c_str());
  return Status::Ok();
}

Status RunPerturb(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown({"in", "out", "noise", "privacy",
                                  "confidence", "seed", "threads",
                                  "shard-size", "simd"});
      !s.ok()) {
    return s;
  }
  const std::string in = args.GetString("in", "");
  const std::string out_path = args.GetString("out", "");
  if (in.empty() || out_path.empty()) {
    return Status::InvalidArgument("perturb needs --in and --out");
  }
  Result<engine::BatchOptions> batch_options = BatchFromFlags(args);
  if (!batch_options.ok()) return batch_options.status();
  Result<data::Dataset> dataset =
      data::ReadCsv(synth::BenchmarkSchema(), 2, in);
  if (!dataset.ok()) return dataset.status();
  Result<perturb::Randomizer> randomizer =
      RandomizerFromFlags(args, dataset.value().schema());
  if (!randomizer.ok()) return randomizer.status();

  const data::Dataset perturbed =
      batch_options.value().num_threads == 0
          ? randomizer.value().Perturb(dataset.value())
          : engine::Batch(batch_options.value())
                .PerturbShards(randomizer.value(), dataset.value());
  if (Status s = data::WriteCsv(perturbed, out_path); !s.ok()) return s;
  out << StrFormat(
      "perturbed %zu records (%s noise, privacy %.0f%% @%.0f%% conf.) -> %s\n",
      perturbed.NumRows(), args.GetString("noise", "uniform").c_str(),
      100.0 * args.GetDouble("privacy", 1.0).value_or(1.0),
      100.0 * args.GetDouble("confidence", 0.95).value_or(0.95),
      out_path.c_str());
  return Status::Ok();
}

Status RunReconstruct(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown({"in", "attribute", "noise", "privacy",
                                  "confidence", "intervals", "by-class",
                                  "seed", "threads", "shard-size", "simd"});
      !s.ok()) {
    return s;
  }
  Result<engine::BatchOptions> batch_options = BatchFromFlags(args);
  if (!batch_options.ok()) return batch_options.status();
  const std::string in = args.GetString("in", "");
  const std::string attribute = args.GetString("attribute", "");
  if (in.empty() || attribute.empty()) {
    return Status::InvalidArgument("reconstruct needs --in and --attribute");
  }
  Result<data::Dataset> dataset =
      data::ReadCsv(synth::BenchmarkSchema(), 2, in);
  if (!dataset.ok()) return dataset.status();
  Result<std::size_t> col = dataset.value().schema().IndexOf(attribute);
  if (!col.ok()) return col.status();
  Result<long long> intervals = args.GetInt("intervals", 30);
  if (!intervals.ok()) return intervals.status();
  if (intervals.value() < 2) {
    return Status::InvalidArgument("--intervals must be >= 2");
  }
  Result<perturb::Randomizer> randomizer =
      RandomizerFromFlags(args, dataset.value().schema());
  if (!randomizer.ok()) return randomizer.status();

  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      dataset.value().schema().Field(col.value()),
      static_cast<std::size_t>(intervals.value()));
  const reconstruct::BayesReconstructor reconstructor(
      randomizer.value().ModelFor(col.value()), {});

  const engine::Batch batch(batch_options.value());
  std::vector<reconstruct::Reconstruction> recons;
  if (args.Has("by-class")) {
    recons = batch.ReconstructByClassParallel(dataset.value(), col.value(),
                                              partition, reconstructor);
  } else if (batch.pool() == nullptr) {
    recons.push_back(reconstruct::ReconstructCombined(
        dataset.value(), col.value(), partition, reconstructor));
  } else {
    recons.push_back(batch.ReconstructParallel(
        dataset.value().Column(col.value()), partition, reconstructor));
  }
  for (std::size_t c = 0; c < recons.size(); ++c) {
    if (recons.size() > 1) out << StrFormat("class %zu:\n", c);
    for (std::size_t k = 0; k < partition.intervals(); ++k) {
      out << StrFormat("%12.6g %8.3f%%\n", partition.Mid(k),
                       100.0 * recons[c].masses[k]);
    }
    out << StrFormat("(%zu EM iterations, %zu samples)\n",
                     recons[c].iterations, recons[c].sample_count);
  }
  return Status::Ok();
}

Status RunTrain(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown({"train", "test", "mode", "noise",
                                  "privacy", "confidence", "intervals",
                                  "print-tree", "seed", "threads",
                                  "shard-size", "simd"});
      !s.ok()) {
    return s;
  }
  Result<engine::BatchOptions> batch_options = BatchFromFlags(args);
  if (!batch_options.ok()) return batch_options.status();
  const std::string train_path = args.GetString("train", "");
  const std::string test_path = args.GetString("test", "");
  if (train_path.empty() || test_path.empty()) {
    return Status::InvalidArgument("train needs --train and --test");
  }
  // Validate every flag before touching the filesystem.
  Result<tree::TrainingMode> mode = ModeFromFlag(args);
  if (!mode.ok()) return mode.status();
  Result<long long> intervals = args.GetInt("intervals", 30);
  if (!intervals.ok()) return intervals.status();
  Result<perturb::Randomizer> randomizer =
      RandomizerFromFlags(args, synth::BenchmarkSchema());
  if (!randomizer.ok()) return randomizer.status();

  Result<data::Dataset> train =
      data::ReadCsv(synth::BenchmarkSchema(), 2, train_path);
  if (!train.ok()) return train.status();
  Result<data::Dataset> test =
      data::ReadCsv(synth::BenchmarkSchema(), 2, test_path);
  if (!test.ok()) return test.status();

  tree::TreeOptions options;
  options.intervals = static_cast<std::size_t>(
      std::max<long long>(intervals.value(), 0));
  PPDM_RETURN_IF_ERROR(api::ValidateTree(options));
  const engine::Batch batch(batch_options.value());
  const tree::DecisionTree model = tree::TrainDecisionTree(
      train.value(), mode.value(), options,
      tree::ModeUsesReconstruction(mode.value()) ? &randomizer.value()
                                                 : nullptr,
      batch.pool());
  const core::ConfusionMatrix cm = core::EvaluateTree(model, test.value());
  out << StrFormat("%s: accuracy %.2f%% on %zu test records "
                   "(%zu nodes, depth %zu)\n",
                   tree::TrainingModeName(mode.value()).c_str(),
                   100.0 * cm.Accuracy(), cm.Total(), model.NumNodes(),
                   model.Depth());
  out << cm.ToString();
  if (args.Has("print-tree")) {
    out << model.Describe(train.value().schema());
  }
  return Status::Ok();
}

Status RunServeSim(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(WithStreamFlags(
          {"records", "batch-records", "refresh", "registry-mb",
           "checkpoint-dir", "checkpoint-every-batches", "resume",
           "metrics-out", "trace-out", "slow-ms", "faults", "max-pending"}));
      !s.ok()) {
    return s;
  }
  PPDM_ASSIGN_OR_RETURN(const double slow_ms, args.GetDouble("slow-ms", 0.0));
  if (slow_ms < 0.0) {
    return Status::InvalidArgument("--slow-ms must be >= 0");
  }
  // --faults arms the process-wide fault points for this run, on top of
  // whatever PPDM_FAULTS armed at startup (the chaos harness uses both).
  if (args.Has("faults")) {
    PPDM_RETURN_IF_ERROR(fault::ArmFromSpec(args.GetString("faults", "")));
  }
  PPDM_ASSIGN_OR_RETURN(const long long max_pending,
                        args.GetInt("max-pending", 0));
  if (max_pending < 0) {
    return Status::InvalidArgument("--max-pending must be >= 0");
  }
  PPDM_ASSIGN_OR_RETURN(const long long records,
                        args.GetInt("records", 20000));
  PPDM_ASSIGN_OR_RETURN(const long long batch_records,
                        args.GetInt("batch-records", 1000));
  PPDM_ASSIGN_OR_RETURN(const long long refresh, args.GetInt("refresh", 5));
  if (records <= 0 || batch_records <= 0 || refresh <= 0) {
    return Status::InvalidArgument(
        "--records, --batch-records and --refresh must be positive");
  }
  PPDM_ASSIGN_OR_RETURN(const long long registry_mb,
                        args.GetInt("registry-mb", 0));
  if (registry_mb < 0) {
    return Status::InvalidArgument("--registry-mb must be >= 0");
  }
  const std::string checkpoint_dir = args.GetString("checkpoint-dir", "");
  PPDM_ASSIGN_OR_RETURN(const long long checkpoint_every,
                        args.GetInt("checkpoint-every-batches", 0));
  if (checkpoint_every < 0) {
    return Status::InvalidArgument(
        "--checkpoint-every-batches must be >= 0");
  }
  if (checkpoint_every > 0 && checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "--checkpoint-every-batches needs --checkpoint-dir");
  }
  const bool resume = args.Has("resume");
  if (resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume needs --checkpoint-dir");
  }
  // The dataset-session spec is the validated contract; everything below
  // it is deterministic in (seed, shard_size).
  PPDM_ASSIGN_OR_RETURN(StreamSimSpec sim, StreamSimSpecFromFlags(args));

  // The snapshot store (when checkpointing) doubles as the registry's
  // spill tier: budget/TTL evictions demote instead of destroying.
  // Declared before the service on purpose: async checkpoint jobs capture
  // the store, and locals destroy LIFO — the service destructor drains
  // those jobs while the store is still alive.
  std::optional<store::SnapshotStore> snapshots;
  std::optional<store::SessionSpillStore> spill;
  if (!checkpoint_dir.empty()) {
    PPDM_ASSIGN_OR_RETURN(store::SnapshotStore opened,
                          store::SnapshotStore::Open(checkpoint_dir));
    snapshots = std::move(opened);
    spill.emplace(*snapshots);
  }
  api::ServiceOptions service_options;
  service_options.max_pending = static_cast<std::size_t>(max_pending);
  PPDM_ASSIGN_OR_RETURN(const std::unique_ptr<api::Service> service,
                        api::Service::Create(sim.batch, service_options));
  api::SessionRegistryOptions registry_options;
  registry_options.max_bytes =
      static_cast<std::size_t>(registry_mb) << 20;
  registry_options.spill = spill ? &*spill : nullptr;
  api::SessionRegistry registry(registry_options, service->pool());

  const std::string session_name = "serve-sim";
  std::shared_ptr<api::DatasetSession> session;
  bool resumed = false;
  if (snapshots && snapshots->Contains(session_name)) {
    if (resume) {
      // Transparent re-admission through the registry's spill path.
      session = registry.Lookup(session_name);
      if (session == nullptr) {
        return Status::IoError(StrFormat(
            "checkpoint '%s' in %s exists but cannot be re-admitted "
            "(corrupt?); delete it or run without --resume",
            session_name.c_str(), checkpoint_dir.c_str()));
      }
      resumed = true;
    } else {
      // A fresh (non-resume) run supersedes the stale checkpoint; the
      // name must be free for Open below.
      PPDM_RETURN_IF_ERROR(snapshots->Delete(session_name));
    }
  } else if (resume) {
    out << "no checkpoint to resume; starting a fresh session\n";
  }
  if (session == nullptr) {
    PPDM_ASSIGN_OR_RETURN(session, registry.Open(session_name, sim.session));
  }
  // After a resume the checkpointed spec is authoritative (it may track
  // different attributes or noise than today's flags): re-derive the
  // columns, and report the calibration PerturbTracked will actually
  // apply (session->noise_model) rather than the flag-derived one.
  if (resumed) {
    sim.columns.clear();
    for (const api::AttributeSpec& attr : session->spec().attributes) {
      sim.columns.push_back(attr.column);
    }
    const api::AttributeSpec& first = session->spec().attributes.front();
    sim.noise.kind = first.noise;
    sim.noise.privacy_fraction = first.privacy_fraction;
    sim.noise.confidence = first.confidence;
  }

  // Provider side, simulated: stream true records and add each tracked
  // attribute's calibrated noise per record — the server sees only the
  // perturbed rows. No Dataset is ever materialized. A resumed run
  // offsets the generator seed by the batches already folded so it
  // streams fresh records, not a replay.
  synth::GeneratorOptions gen;
  gen.num_records = static_cast<std::size_t>(records);
  gen.function = sim.function;
  gen.seed = sim.noise.seed + (resumed ? session->batch_count() : 0);
  synth::RecordStream stream(gen);
  Rng noise_rng(gen.seed ^ 0x9E3779B97F4A7C15ULL);

  // True per-attribute distributions, for the error column of the report.
  // After a resume they cover only the new stream — the tv column then
  // compares the all-records estimate against the new records' truth,
  // which agree in distribution (same generator function).
  std::vector<stats::Histogram> truth;
  for (std::size_t a = 0; a < sim.columns.size(); ++a) {
    const reconstruct::Partition& partition = session->partition(a);
    truth.emplace_back(partition.lo(), partition.hi(),
                       partition.intervals());
  }

  if (resumed) {
    out << StrFormat(
        "resumed '%s' from %s: %llu records in %llu batches already "
        "folded\n",
        session_name.c_str(), checkpoint_dir.c_str(),
        static_cast<unsigned long long>(session->record_count()),
        static_cast<unsigned long long>(session->batch_count()));
  }
  out << StrFormat(
      "serving %zu attribute(s) (%s noise, privacy %.0f%%): %lld records "
      "in batches of %lld, refresh every %lld batches\n",
      sim.columns.size(), perturb::NoiseKindName(sim.noise.kind).c_str(),
      100.0 * sim.noise.privacy_fraction, records, batch_records,
      refresh);
  out << StrFormat("%10s %10s %8s %10s %12s\n", "batch", "records",
                   "EM iter", "tv(truth)", "refresh ms");

  obs::ScopedTimer stream_timer(&ServeStreamHistogram());
  std::vector<double> perturbed;
  std::uint64_t checkpoints_written = 0;
  // Periodic checkpoints run as async service jobs: the frontend encodes
  // the session's state at the checkpoint instant (encoding must not race
  // the next Ingest) and a pool job performs the store I/O. A checkpoint
  // falling due while the previous is still pending supersedes it — the
  // older job's token is cancelled so a slow store degrades to "fewer,
  // fresher checkpoints" instead of an unbounded backlog of stale state.
  struct CheckpointJob {
    std::size_t batch;
    api::JobHandle<bool> handle;
    std::shared_ptr<api::CancellationToken> cancel;
  };
  std::vector<CheckpointJob> checkpoint_jobs;
  std::size_t batch_index =
      resumed ? static_cast<std::size_t>(session->batch_count()) : 0;
  while (!stream.Done()) {
    const data::RowBatch true_rows =
        stream.Next(static_cast<std::size_t>(batch_records));
    const data::RowBatch batch = PerturbTracked(
        true_rows, *session, sim.columns, &truth, &noise_rng, &perturbed);
    // Route each batch's access through Lookup so the registry's recency
    // and lookup counters reflect the traffic. (With one session and no
    // TTL it can never miss; eviction pressure needs a second tenant.)
    (void)registry.Lookup(session_name);
    PPDM_RETURN_IF_ERROR(session->Ingest(batch));
    ++batch_index;

    if (snapshots && checkpoint_every > 0 &&
        batch_index % static_cast<std::size_t>(checkpoint_every) == 0) {
      if (!checkpoint_jobs.empty() && !checkpoint_jobs.back().handle.Poll()) {
        checkpoint_jobs.back().cancel->Cancel();
      }
      auto cancel = std::make_shared<api::CancellationToken>();
      api::SubmitOptions submit;
      submit.cancel = cancel;
      api::JobHandle<bool> handle = service->Submit<bool>(
          [store = &*snapshots, name = session_name,
           bytes = store::EncodeDatasetSession(*session)]() -> Result<bool> {
            PPDM_RETURN_IF_ERROR(store->Put(name, bytes));
            return true;
          },
          submit);
      checkpoint_jobs.push_back(
          {batch_index, std::move(handle), std::move(cancel)});
    }

    const bool last = stream.Done();
    if (batch_index % static_cast<std::size_t>(refresh) != 0 && !last) {
      continue;
    }
    // Refresh from the frontend thread: the per-attribute fits fan out
    // over the service pool this way. (A real server would Submit() the
    // refresh and keep ingesting, but this loop blocks on the estimate
    // anyway, and a job occupies one worker, which would serialize the
    // fan-out and misreport the refresh latency.)
    obs::ScopedTimer refresh_timer(&ServeRefreshHistogram());
    // Each refresh is its own trace: the serve.refresh root span plus the
    // engine fan-out / EM spans beneath it, so --trace-out yields one
    // tree per refresh and --slow-ms can name the slow one.
    const std::uint64_t refresh_trace = obs::NewTraceId();
    Result<std::vector<reconstruct::Reconstruction>> refreshed = [&] {
      obs::ScopedTraceContext trace_scope(
          obs::TraceContext{refresh_trace, 0});
      obs::ScopedSpan refresh_span("serve.refresh");
      return session->ReconstructAll();
    }();
    PPDM_RETURN_IF_ERROR(refreshed.status());
    const std::vector<reconstruct::Reconstruction>& estimates =
        refreshed.value();
    const double fit_ms = 1e3 * refresh_timer.Stop();
    if (slow_ms > 0.0 && fit_ms >= slow_ms) {
      std::fprintf(stderr, "[serve-sim] slow refresh (%.1f ms >= %.1f ms)\n%s",
                   fit_ms, slow_ms,
                   obs::RenderSpanTree(obs::TraceRing::Global().Snapshot(),
                                       refresh_trace)
                       .c_str());
    }
    std::size_t max_iterations = 0;
    double tv_sum = 0.0;
    for (std::size_t a = 0; a < estimates.size(); ++a) {
      max_iterations = std::max(max_iterations, estimates[a].iterations);
      tv_sum += stats::TotalVariation(estimates[a].masses,
                                      truth[a].Masses());
    }
    out << StrFormat("%10zu %10zu %8zu %10.4f %12.2f\n", batch_index,
                     static_cast<std::size_t>(session->record_count()),
                     max_iterations,
                     tv_sum / static_cast<double>(estimates.size()),
                     fit_ms);
  }
  const double total_ms = 1e3 * stream_timer.Stop();
  // Quiesce the async checkpoints: Drain blocks new submissions and waits
  // for every in-flight job, then the settled handles are tallied. A
  // cancelled job was superseded by a fresher checkpoint — expected
  // degradation, not an error.
  service->Drain();
  std::uint64_t checkpoint_cancelled = 0;
  std::uint64_t checkpoint_failed = 0;
  Status last_checkpoint_failure = Status::Ok();
  for (const CheckpointJob& job : checkpoint_jobs) {
    const Result<bool> settled = job.handle.Wait();
    if (settled.ok()) {
      ++checkpoints_written;
    } else if (settled.status().code() == StatusCode::kCancelled) {
      ++checkpoint_cancelled;
    } else {
      ++checkpoint_failed;
      last_checkpoint_failure = settled.status();
    }
  }
  service->Resume();
  // The stream survived; make that durable before reporting. This is
  // never redundant with a batch-aligned checkpoint: the final refresh
  // above updated every attribute's warm-start masses after it. Its
  // failure is the session ending in a permanent-error state — reported
  // below and returned as the command's status after the report.
  Status final_checkpoint = Status::Ok();
  if (snapshots) {
    final_checkpoint =
        snapshots->Put(session_name, store::EncodeDatasetSession(*session));
    if (final_checkpoint.ok()) ++checkpoints_written;
  }
  out << StrFormat(
      "stream complete: %zu records, %zu batches, %.2f ms total "
      "(threads=%zu, warm-started refreshes)\n",
      static_cast<std::size_t>(session->record_count()), batch_index,
      total_ms, sim.batch.num_threads);
  const api::SessionRegistry::Stats registry_stats = registry.GetStats();
  const std::string budget =
      registry_mb == 0 ? "unbounded" : StrFormat("%lld MiB", registry_mb);
  out << StrFormat(
      "registry: %zu session(s), %.1f KiB resident (budget %s), "
      "%llu eviction(s), %zu spilled session(s), %.1f KiB on disk\n",
      registry_stats.open_sessions,
      static_cast<double>(registry_stats.approx_bytes) / 1024.0,
      budget.c_str(),
      static_cast<unsigned long long>(registry_stats.evictions),
      registry_stats.spilled_sessions,
      static_cast<double>(registry_stats.spilled_bytes) / 1024.0);
  // Cumulative traffic counters — monotone over the registry's lifetime,
  // unlike the occupancy numbers above.
  out << StrFormat(
      "registry traffic: %llu lookup(s) (%llu hit(s), %llu miss(es)), "
      "%llu ttl eviction(s), %llu spill(s), %llu readmission(s)\n",
      static_cast<unsigned long long>(registry_stats.lookups),
      static_cast<unsigned long long>(registry_stats.hits),
      static_cast<unsigned long long>(registry_stats.misses),
      static_cast<unsigned long long>(registry_stats.ttl_evictions),
      static_cast<unsigned long long>(registry_stats.spills),
      static_cast<unsigned long long>(registry_stats.readmissions));
  const obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  out << StrFormat(
      "latency: ingest %s, refresh %s\n",
      LatencyCell(metrics.FindHistogram("ppdm_session_ingest_seconds"))
          .c_str(),
      LatencyCell(metrics.FindHistogram("ppdm_serve_refresh_seconds"))
          .c_str());
  if (snapshots) {
    out << StrFormat(
        "store: %s — %llu checkpoint write(s), %llu spill(s), "
        "%llu readmission(s), %llu spill failure(s)\n",
        checkpoint_dir.c_str(),
        static_cast<unsigned long long>(checkpoints_written),
        static_cast<unsigned long long>(registry_stats.spills),
        static_cast<unsigned long long>(registry_stats.readmissions),
        static_cast<unsigned long long>(registry_stats.spill_failures));
  }
  // Resilience tallies: job dispositions, store retries, injected faults,
  // and sessions retained in a degraded (unspillable) state.
  auto& metric_registry = obs::MetricsRegistry::Global();
  out << StrFormat(
      "resilience: %llu job(s) (%llu shed, %llu expired, %llu cancelled), "
      "%llu retry(ies), %llu giveup(s), %llu fault(s) injected, "
      "%zu degraded session(s)\n",
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_service_jobs_total")->Value()),
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_service_shed_jobs_total")
              ->Value()),
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_service_expired_jobs_total")
              ->Value()),
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_service_cancelled_jobs_total")
              ->Value()),
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_retry_attempts_total")->Value()),
      static_cast<unsigned long long>(
          metric_registry.GetCounter("ppdm_retry_giveups_total")->Value()),
      static_cast<unsigned long long>(fault::TotalInjected()),
      registry_stats.degraded_sessions);
  if (!checkpoint_jobs.empty()) {
    out << StrFormat(
        "checkpoint jobs: %zu submitted, %llu superseded, %llu failed\n",
        checkpoint_jobs.size(),
        static_cast<unsigned long long>(checkpoint_cancelled),
        static_cast<unsigned long long>(checkpoint_failed));
    if (checkpoint_failed > 0) {
      out << StrFormat("  last failure: %s\n",
                       last_checkpoint_failure.ToString().c_str());
    }
  }
  if (!final_checkpoint.ok()) {
    out << StrFormat("final checkpoint FAILED: %s\n",
                     final_checkpoint.ToString().c_str());
  }
  const std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    PPDM_RETURN_IF_ERROR(WriteMetricsFile(metrics_out));
    out << StrFormat("metrics exposition written to %s\n",
                     metrics_out.c_str());
  }
  const std::string trace_out = args.GetString("trace-out", "");
  if (!trace_out.empty()) {
    PPDM_RETURN_IF_ERROR(WriteTextFile(
        trace_out,
        obs::RenderChromeTrace(obs::TraceRing::Global().Snapshot())));
    out << StrFormat("chrome trace written to %s\n", trace_out.c_str());
  }
  // A session whose final durable capture failed ended in a
  // permanent-error state: the report above still printed, but the
  // command exits nonzero.
  return final_checkpoint;
}

Status RunSnapshot(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(WithStreamFlags(
          {"dir", "name", "records", "batch-records", "reconstruct"}));
      !s.ok()) {
    return s;
  }
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) return Status::InvalidArgument("snapshot needs --dir");
  PPDM_ASSIGN_OR_RETURN(const store::SnapshotStore store,
                        store::SnapshotStore::Open(dir));

  if (!args.Has("name")) {
    // List mode: one row per snapshot; corrupt files are reported, not
    // fatal — an operator inspecting a damaged store must see the rest.
    PPDM_ASSIGN_OR_RETURN(const std::vector<std::string> names,
                          store.List());
    out << StrFormat("%-24s %8s %10s %8s %6s %10s\n", "name", "version",
                     "records", "batches", "attrs", "bytes");
    for (const std::string& name : names) {
      const Result<std::string> bytes = store.Get(name);
      if (!bytes.ok()) {
        out << StrFormat("%-24s unreadable: %s\n", name.c_str(),
                         bytes.status().message().c_str());
        continue;
      }
      const Result<store::SnapshotInfo> info =
          store::PeekDatasetSession(bytes.value());
      if (!info.ok()) {
        out << StrFormat("%-24s corrupt: %s\n", name.c_str(),
                         info.status().message().c_str());
        continue;
      }
      out << StrFormat("%-24s %8u %10llu %8llu %6zu %10zu\n", name.c_str(),
                       info.value().version,
                       static_cast<unsigned long long>(info.value().records),
                       static_cast<unsigned long long>(info.value().batches),
                       info.value().attributes, bytes.value().size());
    }
    out << StrFormat("%zu snapshot(s), %.1f KiB in %s\n", names.size(),
                     static_cast<double>(store.TotalBytes()) / 1024.0,
                     dir.c_str());
    return Status::Ok();
  }

  // Create mode: simulate the perturbed stream and persist the session.
  const std::string name = args.GetString("name", "");
  PPDM_ASSIGN_OR_RETURN(const long long records,
                        args.GetInt("records", 20000));
  PPDM_ASSIGN_OR_RETURN(const long long batch_records,
                        args.GetInt("batch-records", 4096));
  if (records <= 0 || batch_records <= 0) {
    return Status::InvalidArgument(
        "--records and --batch-records must be positive");
  }
  PPDM_ASSIGN_OR_RETURN(const StreamSimSpec sim,
                        StreamSimSpecFromFlags(args));
  std::optional<engine::ThreadPool> pool;
  if (sim.batch.num_threads > 0) pool.emplace(sim.batch.num_threads);
  PPDM_ASSIGN_OR_RETURN(
      const std::unique_ptr<api::DatasetSession> session,
      api::DatasetSession::Open(sim.session, pool ? &*pool : nullptr));

  synth::GeneratorOptions gen;
  gen.num_records = static_cast<std::size_t>(records);
  gen.function = sim.function;
  gen.seed = sim.noise.seed;
  synth::RecordStream stream(gen);
  Rng noise_rng(gen.seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<double> perturbed;
  while (!stream.Done()) {
    const data::RowBatch true_rows =
        stream.Next(static_cast<std::size_t>(batch_records));
    PPDM_RETURN_IF_ERROR(session->Ingest(
        PerturbTracked(true_rows, *session, sim.columns,
                       /*truth=*/nullptr, &noise_rng, &perturbed)));
  }
  if (args.Has("reconstruct")) {
    // Bake an estimate in so the snapshot carries warm-start masses.
    PPDM_RETURN_IF_ERROR(session->ReconstructAll().status());
  }
  const std::string bytes = store::EncodeDatasetSession(*session);
  PPDM_RETURN_IF_ERROR(store.Put(name, bytes));
  out << StrFormat(
      "snapshot '%s': %llu records, %llu batches, %zu attribute(s), "
      "%.1f KiB -> %s\n",
      name.c_str(),
      static_cast<unsigned long long>(session->record_count()),
      static_cast<unsigned long long>(session->batch_count()),
      session->num_attributes(), static_cast<double>(bytes.size()) / 1024.0,
      dir.c_str());
  return Status::Ok();
}

Status RunRestore(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown({"dir", "name", "reconstruct",
                                  "print-masses", "threads", "shard-size",
                                  "simd"});
      !s.ok()) {
    return s;
  }
  const std::string dir = args.GetString("dir", "");
  const std::string name = args.GetString("name", "");
  if (dir.empty() || name.empty()) {
    return Status::InvalidArgument("restore needs --dir and --name");
  }
  PPDM_ASSIGN_OR_RETURN(const engine::BatchOptions batch_options,
                        BatchFromFlags(args));
  PPDM_ASSIGN_OR_RETURN(const store::SnapshotStore store,
                        store::SnapshotStore::Open(dir));
  PPDM_ASSIGN_OR_RETURN(const std::string bytes, store.Get(name));
  std::optional<engine::ThreadPool> pool;
  if (batch_options.num_threads > 0) pool.emplace(batch_options.num_threads);
  PPDM_ASSIGN_OR_RETURN(
      const std::unique_ptr<api::DatasetSession> session,
      store::DecodeDatasetSession(bytes, pool ? &*pool : nullptr));

  out << StrFormat(
      "restored '%s': %llu records in %llu batches, %zu attribute(s), "
      "%.1f KiB on disk, ~%.1f KiB resident\n",
      name.c_str(),
      static_cast<unsigned long long>(session->record_count()),
      static_cast<unsigned long long>(session->batch_count()),
      session->num_attributes(), static_cast<double>(bytes.size()) / 1024.0,
      static_cast<double>(session->ApproxMemoryBytes()) / 1024.0);
  const api::DatasetSessionSpec& spec = session->spec();
  for (std::size_t a = 0; a < spec.attributes.size(); ++a) {
    const api::AttributeSpec& attr = spec.attributes[a];
    out << StrFormat(
        "  %-12s %zu intervals, %s noise, privacy %.0f%%\n",
        spec.schema.Field(attr.column).name.c_str(), attr.intervals,
        perturb::NoiseKindName(attr.noise).c_str(),
        100.0 * attr.privacy_fraction);
  }
  if (!args.Has("reconstruct")) return Status::Ok();

  PPDM_ASSIGN_OR_RETURN(
      const std::vector<reconstruct::Reconstruction> estimates,
      session->ReconstructAll());
  for (std::size_t a = 0; a < estimates.size(); ++a) {
    out << StrFormat("  %-12s reconstructed in %zu EM iteration(s) from "
                     "%zu samples\n",
                     spec.schema.Field(spec.attributes[a].column).name
                         .c_str(),
                     estimates[a].iterations, estimates[a].sample_count);
    if (args.Has("print-masses")) {
      const reconstruct::Partition& partition = session->partition(a);
      for (std::size_t k = 0; k < partition.intervals(); ++k) {
        out << StrFormat("%12.6g %8.3f%%\n", partition.Mid(k),
                         100.0 * estimates[a].masses[k]);
      }
    }
  }
  return Status::Ok();
}

Status RunMetrics(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(
          WithStreamFlags({"records", "batch-records", "spans"}));
      !s.ok()) {
    return s;
  }
  PPDM_ASSIGN_OR_RETURN(const long long records,
                        args.GetInt("records", 2000));
  PPDM_ASSIGN_OR_RETURN(const long long batch_records,
                        args.GetInt("batch-records", 500));
  if (records <= 0 || batch_records <= 0) {
    return Status::InvalidArgument(
        "--records and --batch-records must be positive");
  }
  PPDM_ASSIGN_OR_RETURN(const StreamSimSpec sim,
                        StreamSimSpecFromFlags(args));

  // A small in-process stream through every instrumented layer — service
  // job, session ingest + refresh, engine fan-out (with --threads), store
  // codec round trip — so the exposition below is populated, not empty.
  PPDM_ASSIGN_OR_RETURN(const std::unique_ptr<api::Service> service,
                        api::Service::Create(sim.batch));
  PPDM_ASSIGN_OR_RETURN(
      const std::unique_ptr<api::DatasetSession> session,
      api::DatasetSession::Open(sim.session, service->pool()));

  synth::GeneratorOptions gen;
  gen.num_records = static_cast<std::size_t>(records);
  gen.function = sim.function;
  gen.seed = sim.noise.seed;
  synth::RecordStream stream(gen);
  Rng noise_rng(gen.seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<double> perturbed;
  while (!stream.Done()) {
    const data::RowBatch true_rows =
        stream.Next(static_cast<std::size_t>(batch_records));
    PPDM_RETURN_IF_ERROR(session->Ingest(
        PerturbTracked(true_rows, *session, sim.columns,
                       /*truth=*/nullptr, &noise_rng, &perturbed)));
  }
  PPDM_RETURN_IF_ERROR(session->ReconstructAll().status());
  const std::string bytes = store::EncodeDatasetSession(*session);
  PPDM_RETURN_IF_ERROR(
      store::DecodeDatasetSession(bytes, service->pool()).status());

  out << obs::MetricsRegistry::Global().RenderText();
  if (args.Has("spans")) {
    out << "\n# recent trace spans (oldest first)\n";
    out << obs::RenderSpans(obs::TraceRing::Global().Snapshot());
  }
  return Status::Ok();
}

Status RunTrace(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(
          WithStreamFlags({"records", "batch-records", "out"}));
      !s.ok()) {
    return s;
  }
  PPDM_ASSIGN_OR_RETURN(const long long records,
                        args.GetInt("records", 2000));
  PPDM_ASSIGN_OR_RETURN(const long long batch_records,
                        args.GetInt("batch-records", 500));
  if (records <= 0 || batch_records <= 0) {
    return Status::InvalidArgument(
        "--records and --batch-records must be positive");
  }
  PPDM_ASSIGN_OR_RETURN(const StreamSimSpec sim,
                        StreamSimSpecFromFlags(args));

  // The same small stream as `ppdm metrics`, but each batch travels as a
  // traced request through the async service — so the dump shows the full
  // causal ladder (cli.request → service.queue/service.run →
  // session.ingest → engine.parallel_for), not just flat spans.
  PPDM_ASSIGN_OR_RETURN(const std::unique_ptr<api::Service> service,
                        api::Service::Create(sim.batch));
  PPDM_ASSIGN_OR_RETURN(
      const std::unique_ptr<api::DatasetSession> session,
      api::DatasetSession::Open(sim.session, service->pool()));

  synth::GeneratorOptions gen;
  gen.num_records = static_cast<std::size_t>(records);
  gen.function = sim.function;
  gen.seed = sim.noise.seed;
  synth::RecordStream stream(gen);
  Rng noise_rng(gen.seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<double> perturbed;
  const auto traced = [&](const char* verb,
                          std::function<Result<bool>()> job) -> Status {
    const std::uint64_t trace_id = obs::NewTraceId();
    obs::PendingSpan request_span =
        obs::BeginSpan("cli.request", obs::TraceContext{trace_id, 0},
                       obs::RenderLabelSet({{"verb", verb}}));
    const Result<bool> settled = [&] {
      obs::ScopedTraceContext ctx(
          obs::TraceContext{trace_id, request_span.span_id});
      return service->Submit<bool>(std::move(job)).Wait();
    }();
    obs::EndSpan(&request_span);
    return settled.status();
  };
  while (!stream.Done()) {
    const data::RowBatch true_rows =
        stream.Next(static_cast<std::size_t>(batch_records));
    const data::RowBatch rows =
        PerturbTracked(true_rows, *session, sim.columns,
                       /*truth=*/nullptr, &noise_rng, &perturbed);
    PPDM_RETURN_IF_ERROR(traced("ingest", [&]() -> Result<bool> {
      PPDM_RETURN_IF_ERROR(session->Ingest(rows));
      return true;
    }));
  }
  PPDM_RETURN_IF_ERROR(traced("reconstruct", [&]() -> Result<bool> {
    PPDM_RETURN_IF_ERROR(session->ReconstructAll().status());
    return true;
  }));

  const std::string json =
      obs::RenderChromeTrace(obs::TraceRing::Global().Snapshot());
  const std::string out_path = args.GetString("out", "");
  if (!out_path.empty()) {
    PPDM_RETURN_IF_ERROR(WriteTextFile(out_path, json));
    out << StrFormat("chrome trace written to %s (%zu spans)\n",
                     out_path.c_str(),
                     obs::TraceRing::Global().Snapshot().size());
  } else {
    out << json;
  }
  return Status::Ok();
}

namespace {

// SIGTERM/SIGINT → graceful drain: the handler forwards to whichever
// daemon is live. RequestStop() is async-signal-safe by contract (an
// atomic store plus a self-pipe write). The handlers are installed
// BEFORE Server::Start binds and accepts, so no window exists where a
// SIGTERM takes the default disposition and skips the drain/checkpoint;
// a signal that lands before the server pointer is published sets
// g_served_stop, which RunServed re-checks right after publishing.
std::atomic<net::Server*> g_served_server{nullptr};
std::atomic<bool> g_served_stop{false};

void ServedSignalHandler(int) {
  g_served_stop.store(true, std::memory_order_release);
  net::Server* server = g_served_server.load(std::memory_order_acquire);
  if (server != nullptr) server->RequestStop();
}

}  // namespace

Status RunServed(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(
          {"host", "port", "threads", "shard-size", "max-pending",
           "max-connections", "connection-window", "max-body-mb",
           "registry-mb", "checkpoint-dir", "resume", "tenant-rate",
           "tenant-burst", "faults", "simd", "trace-out", "slow-ms"});
      !s.ok()) {
    return s;
  }
  if (args.Has("faults")) {
    PPDM_RETURN_IF_ERROR(fault::ArmFromSpec(args.GetString("faults", "")));
  }
  PPDM_ASSIGN_OR_RETURN(const engine::BatchOptions batch,
                        BatchFromFlags(args));
  net::ServerOptions options;
  options.host = args.GetString("host", "127.0.0.1");
  PPDM_ASSIGN_OR_RETURN(const long long port, args.GetInt("port", 0));
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("--port must be in 0..65535");
  }
  options.port = static_cast<int>(port);
  options.num_threads = batch.num_threads;
  options.shard_size = batch.shard_size;
  PPDM_ASSIGN_OR_RETURN(const long long max_pending,
                        args.GetInt("max-pending", 0));
  PPDM_ASSIGN_OR_RETURN(const long long max_connections,
                        args.GetInt("max-connections", 64));
  PPDM_ASSIGN_OR_RETURN(const long long window,
                        args.GetInt("connection-window", 16));
  PPDM_ASSIGN_OR_RETURN(const long long max_body_mb,
                        args.GetInt("max-body-mb", 64));
  PPDM_ASSIGN_OR_RETURN(const long long registry_mb,
                        args.GetInt("registry-mb", 0));
  if (max_pending < 0 || registry_mb < 0) {
    return Status::InvalidArgument(
        "--max-pending and --registry-mb must be >= 0");
  }
  if (max_connections <= 0 || window <= 0 || max_body_mb <= 0) {
    return Status::InvalidArgument(
        "--max-connections, --connection-window and --max-body-mb must be "
        "positive");
  }
  options.max_pending = static_cast<std::size_t>(max_pending);
  options.max_connections = static_cast<std::size_t>(max_connections);
  options.connection_window = static_cast<std::size_t>(window);
  options.max_body_bytes = static_cast<std::uint64_t>(max_body_mb) << 20;
  options.registry_max_bytes = static_cast<std::size_t>(registry_mb) << 20;
  options.checkpoint_dir = args.GetString("checkpoint-dir", "");
  options.resume = args.Has("resume");
  if (options.resume && options.checkpoint_dir.empty()) {
    return Status::InvalidArgument("--resume needs --checkpoint-dir");
  }
  PPDM_ASSIGN_OR_RETURN(options.tenant_rate,
                        args.GetDouble("tenant-rate", 0.0));
  PPDM_ASSIGN_OR_RETURN(options.tenant_burst,
                        args.GetDouble("tenant-burst", 0.0));
  PPDM_ASSIGN_OR_RETURN(options.slow_request_ms,
                        args.GetDouble("slow-ms", 0.0));
  if (options.slow_request_ms < 0.0) {
    return Status::InvalidArgument("--slow-ms must be >= 0");
  }
  const std::string served_trace_out = args.GetString("trace-out", "");

  // A broken client pipe must be an EPIPE on that connection, never a
  // daemon-killing SIGPIPE; the drain handlers go in before the listener
  // binds so there is no window where SIGTERM bypasses the checkpoint.
  std::signal(SIGPIPE, SIG_IGN);
  g_served_stop.store(false, std::memory_order_release);
  std::signal(SIGTERM, ServedSignalHandler);
  std::signal(SIGINT, ServedSignalHandler);
  Result<std::unique_ptr<net::Server>> started = net::Server::Start(options);
  if (!started.ok()) {
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
    return started.status();
  }
  const std::unique_ptr<net::Server> server = std::move(started).value();
  g_served_server.store(server.get(), std::memory_order_release);
  if (g_served_stop.load(std::memory_order_acquire)) {
    // A signal raced server startup: drain immediately.
    server->RequestStop();
  }
  out << StrFormat(
      "ppdm served listening on %s:%d (threads=%zu, max-pending=%zu, "
      "max-connections=%zu%s%s)\n",
      options.host.c_str(), server->port(), options.num_threads,
      options.max_pending, options.max_connections,
      options.checkpoint_dir.empty()
          ? ""
          : StrFormat(", checkpoint-dir=%s",
                      options.checkpoint_dir.c_str()).c_str(),
      options.resume ? ", resume" : "");
  out << "send SIGTERM (or SIGINT) to drain and checkpoint\n" << std::flush;

  server->AwaitLoopExit();
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  g_served_server.store(nullptr, std::memory_order_release);

  const Status stopped = server->Stop();
  auto& metrics = obs::MetricsRegistry::Global();
  out << StrFormat(
      "drained: %llu connection(s) served, %zu tenant(s) open, "
      "%zu checkpointed%s\n",
      static_cast<unsigned long long>(
          metrics.GetCounter("ppdm_net_connections_total")->Value()),
      server->tenant_count(), server->drained_checkpoints(),
      options.checkpoint_dir.empty()
          ? " (no checkpoint dir)"
          : StrFormat(" to %s", options.checkpoint_dir.c_str()).c_str());
  if (!stopped.ok()) {
    out << StrFormat("final checkpoint FAILED: %s\n",
                     stopped.ToString().c_str());
  }
  if (!served_trace_out.empty()) {
    // Dumped after the drain so the final requests' spans are in the ring.
    PPDM_RETURN_IF_ERROR(WriteTextFile(
        served_trace_out,
        obs::RenderChromeTrace(obs::TraceRing::Global().Snapshot())));
    out << StrFormat("chrome trace written to %s\n",
                     served_trace_out.c_str());
  }
  return stopped;
}

Status RunLoadgen(const Args& args, std::ostream& out) {
  if (Status s = args.CheckKnown(WithStreamFlags(
          {"host", "port", "tenants", "records", "batch-records", "refresh",
           "connections", "snapshot-every", "ttl-ms", "masses-out",
           "stats-out", "trace-out", "tolerate-errors", "close"}));
      !s.ok()) {
    return s;
  }
  const std::string host = args.GetString("host", "127.0.0.1");
  PPDM_ASSIGN_OR_RETURN(const long long port, args.GetInt("port", 0));
  if (port <= 0 || port > 65535) {
    return Status::InvalidArgument("loadgen needs --port=1..65535");
  }
  PPDM_ASSIGN_OR_RETURN(const long long tenants, args.GetInt("tenants", 4));
  PPDM_ASSIGN_OR_RETURN(const long long records,
                        args.GetInt("records", 20000));
  PPDM_ASSIGN_OR_RETURN(const long long batch_records,
                        args.GetInt("batch-records", 1000));
  PPDM_ASSIGN_OR_RETURN(const long long refresh, args.GetInt("refresh", 5));
  PPDM_ASSIGN_OR_RETURN(const long long connections,
                        args.GetInt("connections", 2));
  PPDM_ASSIGN_OR_RETURN(const long long snapshot_every,
                        args.GetInt("snapshot-every", 0));
  PPDM_ASSIGN_OR_RETURN(const long long ttl_ms, args.GetInt("ttl-ms", 0));
  if (tenants <= 0 || batch_records <= 0 || connections <= 0) {
    return Status::InvalidArgument(
        "--tenants, --batch-records and --connections must be positive");
  }
  if (records < 0 || refresh < 0 || snapshot_every < 0 || ttl_ms < 0 ||
      ttl_ms > 0xFFFFFFFFLL) {
    return Status::InvalidArgument(
        "--records, --refresh, --snapshot-every and --ttl-ms must be >= 0");
  }
  const bool tolerate = args.Has("tolerate-errors");
  const std::uint32_t ttl = static_cast<std::uint32_t>(ttl_ms);
  // A daemon that dies mid-run must surface as an EPIPE Status on the
  // worker, not a SIGPIPE that kills the load driver.
  std::signal(SIGPIPE, SIG_IGN);
  PPDM_ASSIGN_OR_RETURN(const StreamSimSpec sim,
                        StreamSimSpecFromFlags(args));

  auto& metrics = obs::MetricsRegistry::Global();
  obs::Histogram* ingest_hist =
      metrics.GetHistogram("ppdm_loadgen_ingest_seconds",
                           obs::Histogram::LatencyBucketsSeconds());
  obs::Histogram* reconstruct_hist =
      metrics.GetHistogram("ppdm_loadgen_reconstruct_seconds",
                           obs::Histogram::LatencyBucketsSeconds());
  std::atomic<std::uint64_t> ok_requests{0};
  std::atomic<std::uint64_t> error_requests{0};
  std::atomic<std::uint64_t> snapshot_errors{0};

  // One worker thread per connection; tenants round-robin across workers,
  // and each worker interleaves its tenants batch by batch, so the daemon
  // sees sustained concurrent multi-tenant traffic. All streams are
  // seeded per tenant — two loadgen runs with the same flags send
  // byte-identical ingest traffic (the drain/resume CI check relies on
  // this).
  auto worker = [&](const std::vector<std::uint64_t>& mine) -> Status {
    PPDM_ASSIGN_OR_RETURN(net::Client client,
                          net::Client::Connect(host, static_cast<int>(port)));
    // A failed request under --tolerate-errors is counted and skipped;
    // without it the first failure aborts the worker.
    auto note = [&](const Status& s) -> Status {
      if (s.ok()) {
        ok_requests.fetch_add(1, std::memory_order_relaxed);
        return Status::Ok();
      }
      error_requests.fetch_add(1, std::memory_order_relaxed);
      return tolerate ? Status::Ok() : s;
    };
    const perturb::Randomizer randomizer(sim.session.schema, sim.noise);
    struct TenantStream {
      std::uint64_t id;
      synth::RecordStream stream;
      Rng noise_rng;
      std::uint64_t rounds = 0;
    };
    std::vector<TenantStream> streams;
    for (const std::uint64_t t : mine) {
      PPDM_RETURN_IF_ERROR(note(client.Open(t, sim.session, ttl).status()));
      synth::GeneratorOptions gen;
      gen.num_records = static_cast<std::size_t>(records);
      gen.function = sim.function;
      gen.seed = sim.noise.seed + t * 1000003ULL;
      streams.push_back(TenantStream{t, synth::RecordStream(gen),
                                     Rng(gen.seed ^ 0x9E3779B97F4A7C15ULL)});
    }
    std::vector<double> perturbed;
    bool progress = true;
    while (progress) {
      progress = false;
      for (TenantStream& ts : streams) {
        if (ts.stream.Done()) continue;
        progress = true;
        const data::RowBatch true_rows =
            ts.stream.Next(static_cast<std::size_t>(batch_records));
        // Provider-side perturbation with the same flag-derived
        // calibration the daemon's session evaluates during EM.
        perturbed.assign(true_rows.values(),
                         true_rows.values() +
                             true_rows.num_rows() * true_rows.num_cols());
        for (std::size_t r = 0; r < true_rows.num_rows(); ++r) {
          double* row = perturbed.data() + r * true_rows.num_cols();
          for (const std::size_t col : sim.columns) {
            row[col] += randomizer.ModelFor(col).Sample(&ts.noise_rng);
          }
        }
        Status ingested;
        {
          obs::ScopedTimer timer(ingest_hist);
          ingested = client.Ingest(ts.id, true_rows.num_rows(),
                                   true_rows.num_cols(), perturbed, ttl)
                         .status();
        }
        PPDM_RETURN_IF_ERROR(note(ingested));
        ++ts.rounds;
        if (refresh > 0 &&
            ts.rounds % static_cast<std::uint64_t>(refresh) == 0) {
          Status reconstructed;
          {
            obs::ScopedTimer timer(reconstruct_hist);
            reconstructed = client.Reconstruct(ts.id, ttl).status();
          }
          PPDM_RETURN_IF_ERROR(note(reconstructed));
        }
        if (snapshot_every > 0 &&
            ts.rounds % static_cast<std::uint64_t>(snapshot_every) == 0) {
          // Snapshot failures never abort the run: under chaos the store
          // is the component being shot at, and the daemon keeps serving.
          if (const Status s = client.Snapshot(ts.id, ttl).status(); s.ok()) {
            ok_requests.fetch_add(1, std::memory_order_relaxed);
          } else {
            snapshot_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
    if (args.Has("close")) {
      for (const TenantStream& ts : streams) {
        PPDM_RETURN_IF_ERROR(note(client.CloseTenant(ts.id, ttl)));
      }
    }
    return Status::Ok();
  };

  std::vector<std::vector<std::uint64_t>> shares(
      static_cast<std::size_t>(connections));
  for (long long t = 0; t < tenants; ++t) {
    shares[static_cast<std::size_t>(t % connections)].push_back(
        static_cast<std::uint64_t>(t));
  }
  const auto started = std::chrono::steady_clock::now();
  std::vector<Status> results(shares.size());
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < shares.size(); ++w) {
    threads.emplace_back(
        [&, w] { results[w] = worker(shares[w]); });
  }
  for (std::thread& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started)
          .count();
  for (const Status& result : results) {
    PPDM_RETURN_IF_ERROR(result);
  }

  const std::uint64_t ok = ok_requests.load(std::memory_order_relaxed);
  const std::uint64_t errors = error_requests.load(std::memory_order_relaxed);
  out << StrFormat(
      "loadgen: %lld tenant(s) over %zu connection(s), %llu request(s) ok, "
      "%llu error(s), %llu snapshot error(s) in %.2f s -> %.0f req/s\n",
      tenants, shares.size(), static_cast<unsigned long long>(ok),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(
          snapshot_errors.load(std::memory_order_relaxed)),
      elapsed, elapsed > 0 ? static_cast<double>(ok) / elapsed : 0.0);
  out << StrFormat(
      "latency: ingest %s, reconstruct %s\n",
      LatencyCell(metrics.FindHistogram("ppdm_loadgen_ingest_seconds"))
          .c_str(),
      LatencyCell(metrics.FindHistogram("ppdm_loadgen_reconstruct_seconds"))
          .c_str());

  // --masses-out: one deterministic cold reconstruct per tenant, written
  // with full precision — the byte-identity artifact the drain/resume CI
  // check diffs across daemon generations.
  const std::string masses_out = args.GetString("masses-out", "");
  if (!masses_out.empty()) {
    PPDM_ASSIGN_OR_RETURN(net::Client client,
                          net::Client::Connect(host, static_cast<int>(port)));
    std::string text;
    for (long long t = 0; t < tenants; ++t) {
      PPDM_ASSIGN_OR_RETURN(
          const std::vector<net::AttributeEstimate> estimates,
          client.Reconstruct(static_cast<std::uint64_t>(t), ttl));
      for (std::size_t a = 0; a < estimates.size(); ++a) {
        for (std::size_t k = 0; k < estimates[a].masses.size(); ++k) {
          text += StrFormat("t%lld a%zu %zu %.17g\n", t, a, k,
                            estimates[a].masses[k]);
        }
      }
    }
    PPDM_RETURN_IF_ERROR(WriteTextFile(masses_out, text));
    out << StrFormat("masses written to %s\n", masses_out.c_str());
  }
  const std::string stats_out = args.GetString("stats-out", "");
  if (!stats_out.empty()) {
    PPDM_ASSIGN_OR_RETURN(net::Client client,
                          net::Client::Connect(host, static_cast<int>(port)));
    PPDM_ASSIGN_OR_RETURN(const std::string exposition, client.Stats(ttl));
    PPDM_RETURN_IF_ERROR(WriteTextFile(stats_out, exposition));
    out << StrFormat("daemon stats written to %s\n", stats_out.c_str());
  }
  const std::string trace_out = args.GetString("trace-out", "");
  if (!trace_out.empty()) {
    PPDM_ASSIGN_OR_RETURN(net::Client client,
                          net::Client::Connect(host, static_cast<int>(port)));
    PPDM_ASSIGN_OR_RETURN(const std::string trace_json, client.Trace(ttl));
    PPDM_RETURN_IF_ERROR(WriteTextFile(trace_out, trace_json));
    out << StrFormat("daemon chrome trace written to %s\n",
                     trace_out.c_str());
  }
  return Status::Ok();
}

Status RunCommand(const Args& args, std::ostream& out) {
  // --help on any command prints the usage and succeeds — scripts probe
  // capabilities with it.
  if (args.Has("help")) {
    out << UsageText();
    return Status::Ok();
  }
  // --simd=off|scalar|avx2 pins the kernel dispatch for this run (it
  // overrides PPDM_SIMD). All paths are byte-identical; the flag exists
  // for benchmarking and for pinning a known path in CI.
  if (args.Has("simd")) {
    PPDM_RETURN_IF_ERROR(
        engine::simd::SetPathFromString(args.GetString("simd", "")));
  }
  if (args.command() == "generate") return RunGenerate(args, out);
  if (args.command() == "perturb") return RunPerturb(args, out);
  if (args.command() == "reconstruct") return RunReconstruct(args, out);
  if (args.command() == "train") return RunTrain(args, out);
  if (args.command() == "serve-sim") return RunServeSim(args, out);
  if (args.command() == "snapshot") return RunSnapshot(args, out);
  if (args.command() == "restore") return RunRestore(args, out);
  if (args.command() == "metrics") return RunMetrics(args, out);
  if (args.command() == "trace") return RunTrace(args, out);
  if (args.command() == "served") return RunServed(args, out);
  if (args.command() == "loadgen") return RunLoadgen(args, out);
  if (args.command() == "help") {
    out << UsageText();
    return Status::Ok();
  }
  return Status::InvalidArgument("unknown command '" + args.command() +
                                 "'; try 'ppdm help'");
}

}  // namespace ppdm::cli
