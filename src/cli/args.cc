#include "cli/args.h"

#include "common/strings.h"

namespace ppdm::cli {

Result<Args> Args::Parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      const std::size_t eq = token.find('=');
      const std::string key =
          eq == std::string::npos ? token.substr(2) : token.substr(2, eq - 2);
      const std::string value =
          eq == std::string::npos ? "" : token.substr(eq + 1);
      if (key.empty()) {
        return Status::InvalidArgument("malformed flag '" + token + "'");
      }
      args.flags_[key] = value;
    } else if (args.command_.empty()) {
      args.command_ = token;
    } else {
      return Status::InvalidArgument("unexpected positional argument '" +
                                     token + "'");
    }
  }
  if (args.command_.empty()) {
    return Status::InvalidArgument("no command given");
  }
  return args;
}

bool Args::Has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string Args::GetString(const std::string& key,
                            const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

Result<double> Args::GetDouble(const std::string& key,
                               double fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  Result<double> parsed = ParseDouble(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + key + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Result<long long> Args::GetInt(const std::string& key,
                               long long fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  Result<long long> parsed = ParseInt(it->second);
  if (!parsed.ok()) {
    return Status::InvalidArgument("--" + key + ": " +
                                   parsed.status().message());
  }
  return parsed;
}

Status Args::CheckKnown(const std::vector<std::string>& known) const {
  for (const auto& [key, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (k == key) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown flag --" + key);
    }
  }
  return Status::Ok();
}

}  // namespace ppdm::cli
