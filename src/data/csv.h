// CSV persistence for datasets. The format is a header row with the
// attribute names plus a final "class" column, then one row per record.

#ifndef PPDM_DATA_CSV_H_
#define PPDM_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace ppdm::data {

/// Writes `dataset` to `path`. Overwrites any existing file.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteCsv. The header must match the schema's
/// attribute names (in order) followed by "class".
Result<Dataset> ReadCsv(const Schema& schema, int num_classes,
                        const std::string& path);

}  // namespace ppdm::data

#endif  // PPDM_DATA_CSV_H_
