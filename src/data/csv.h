// CSV persistence for datasets. The format is a header row with the
// attribute names plus a final "class" column, then one row per record.
//
// Two read paths: ReadCsv materializes a column-major Dataset (pre-sized
// via Dataset::Reserve, so ingestion never regrows a column), and
// ReadCsvBatches streams the file as row-major RowBatch views for
// record-oriented consumers (dataset-level sessions) that never need the
// whole table in memory.

#ifndef PPDM_DATA_CSV_H_
#define PPDM_DATA_CSV_H_

#include <cstddef>
#include <functional>
#include <string>

#include "common/status.h"
#include "data/dataset.h"
#include "data/row_batch.h"

namespace ppdm::data {

/// Writes `dataset` to `path`. Overwrites any existing file.
Status WriteCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by WriteCsv. The header must match the schema's
/// attribute names (in order) followed by "class".
Result<Dataset> ReadCsv(const Schema& schema, int num_classes,
                        const std::string& path);

/// Streams a WriteCsv file as labelled record batches of at most
/// `batch_rows` rows each, invoking `sink` once per batch (the view is
/// valid only for the duration of the call). Stops at the first sink
/// error, which is returned as-is. Returns the total record count.
Result<std::size_t> ReadCsvBatches(
    const Schema& schema, int num_classes, const std::string& path,
    std::size_t batch_rows, const std::function<Status(const RowBatch&)>& sink);

}  // namespace ppdm::data

#endif  // PPDM_DATA_CSV_H_
