// Train / test partitioning.

#ifndef PPDM_DATA_SPLIT_H_
#define PPDM_DATA_SPLIT_H_

#include <utility>

#include "common/random.h"
#include "data/dataset.h"

namespace ppdm::data {

/// Result of a random split.
struct TrainTest {
  Dataset train;
  Dataset test;
};

/// Uniformly shuffles the rows and places `test_fraction` of them in the
/// test set. Requires 0 < test_fraction < 1 and at least 2 rows.
TrainTest TrainTestSplit(const Dataset& dataset, double test_fraction,
                         Rng* rng);

}  // namespace ppdm::data

#endif  // PPDM_DATA_SPLIT_H_
