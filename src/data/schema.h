// Attribute metadata. Every attribute declares its domain [lo, hi]; the
// perturbation layer scales noise to this range (privacy is expressed as a
// percentage of range) and the reconstruction layer partitions it into
// intervals.

#ifndef PPDM_DATA_SCHEMA_H_
#define PPDM_DATA_SCHEMA_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdm::data {

/// How an attribute's values are interpreted.
enum class AttributeKind {
  kContinuous,  ///< Real-valued, e.g. salary.
  kDiscrete,    ///< Integer-coded ordinal/categorical, e.g. elevel, zipcode.
};

/// Declaration of one attribute.
struct FieldSpec {
  std::string name;
  AttributeKind kind = AttributeKind::kContinuous;
  double lo = 0.0;  ///< Inclusive domain lower bound.
  double hi = 1.0;  ///< Inclusive domain upper bound.

  /// Width of the attribute's domain.
  double Range() const { return hi - lo; }
};

/// An ordered collection of attribute declarations.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields);

  std::size_t NumFields() const { return fields_.size(); }
  const FieldSpec& Field(std::size_t index) const;
  const std::vector<FieldSpec>& fields() const { return fields_; }

  /// Index of the attribute with the given name.
  Result<std::size_t> IndexOf(const std::string& name) const;

  /// Validation: non-empty unique names, lo < hi everywhere.
  Status Validate() const;

 private:
  std::vector<FieldSpec> fields_;
};

}  // namespace ppdm::data

#endif  // PPDM_DATA_SCHEMA_H_
