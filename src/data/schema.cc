#include "data/schema.h"

#include <unordered_set>

#include "common/check.h"

namespace ppdm::data {

Schema::Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {}

const FieldSpec& Schema::Field(std::size_t index) const {
  PPDM_CHECK_LT(index, fields_.size());
  return fields_[index];
}

Result<std::size_t> Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

Status Schema::Validate() const {
  std::unordered_set<std::string> seen;
  for (const FieldSpec& f : fields_) {
    if (f.name.empty()) {
      return Status::InvalidArgument("attribute with empty name");
    }
    if (!seen.insert(f.name).second) {
      return Status::InvalidArgument("duplicate attribute name '" + f.name +
                                     "'");
    }
    if (!(f.lo < f.hi)) {
      return Status::InvalidArgument("attribute '" + f.name +
                                     "' has empty domain (lo >= hi)");
    }
  }
  return Status::Ok();
}

}  // namespace ppdm::data
