#include "data/dataset.h"

#include "common/check.h"
#include "common/strings.h"

namespace ppdm::data {

Dataset::Dataset(Schema schema, int num_classes)
    : schema_(std::move(schema)), num_classes_(num_classes) {
  PPDM_CHECK_GT(num_classes, 0);
  columns_.resize(schema_.NumFields());
}

void Dataset::Reserve(std::size_t rows) {
  for (std::vector<double>& column : columns_) column.reserve(rows);
  labels_.reserve(rows);
}

void Dataset::AddRow(const std::vector<double>& values, int label) {
  PPDM_CHECK_EQ(values.size(), columns_.size());
  PPDM_CHECK(label >= 0 && label < num_classes_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].push_back(values[c]);
  }
  labels_.push_back(label);
}

void Dataset::AddRows(const RowBatch& rows) {
  PPDM_CHECK_EQ(rows.num_cols(), columns_.size());
  PPDM_CHECK(rows.has_labels() || rows.empty());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    std::vector<double>& column = columns_[c];
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      column.push_back(rows.At(r, c));
    }
  }
  for (std::size_t r = 0; r < rows.num_rows(); ++r) {
    const int label = rows.Label(r);
    PPDM_CHECK(label >= 0 && label < num_classes_);
    labels_.push_back(label);
  }
}

double Dataset::At(std::size_t row, std::size_t col) const {
  PPDM_CHECK_LT(col, columns_.size());
  PPDM_CHECK_LT(row, labels_.size());
  return columns_[col][row];
}

void Dataset::Set(std::size_t row, std::size_t col, double value) {
  PPDM_CHECK_LT(col, columns_.size());
  PPDM_CHECK_LT(row, labels_.size());
  columns_[col][row] = value;
}

const std::vector<double>& Dataset::Column(std::size_t col) const {
  PPDM_CHECK_LT(col, columns_.size());
  return columns_[col];
}

std::vector<double>* Dataset::MutableColumn(std::size_t col) {
  PPDM_CHECK_LT(col, columns_.size());
  return &columns_[col];
}

int Dataset::Label(std::size_t row) const {
  PPDM_CHECK_LT(row, labels_.size());
  return labels_[row];
}

std::vector<double> Dataset::Row(std::size_t row) const {
  PPDM_CHECK_LT(row, labels_.size());
  std::vector<double> values(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    values[c] = columns_[c][row];
  }
  return values;
}

Dataset Dataset::Select(const std::vector<std::size_t>& rows) const {
  Dataset out(schema_, num_classes_);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.columns_[c].reserve(rows.size());
  }
  out.labels_.reserve(rows.size());
  for (std::size_t r : rows) {
    PPDM_CHECK_LT(r, labels_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      out.columns_[c].push_back(columns_[c][r]);
    }
    out.labels_.push_back(labels_[r]);
  }
  return out;
}

std::vector<std::size_t> Dataset::RowsWithLabel(int label) const {
  std::vector<std::size_t> rows;
  for (std::size_t r = 0; r < labels_.size(); ++r) {
    if (labels_[r] == label) rows.push_back(r);
  }
  return rows;
}

std::vector<std::size_t> Dataset::ClassCounts() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (int label : labels_) ++counts[static_cast<std::size_t>(label)];
  return counts;
}

Status Dataset::Validate() const {
  if (columns_.size() != schema_.NumFields()) {
    return Status::Internal("column count does not match schema");
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].size() != labels_.size()) {
      return Status::Internal(
          StrFormat("column %zu has %zu values for %zu rows", c,
                    columns_[c].size(), labels_.size()));
    }
  }
  for (int label : labels_) {
    if (label < 0 || label >= num_classes_) {
      return Status::Internal(StrFormat("label %d out of range", label));
    }
  }
  return Status::Ok();
}

}  // namespace ppdm::data
