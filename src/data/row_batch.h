// Record-oriented batch view: the arrival shape of the paper's setting.
//
// Providers submit whole perturbed *records*, so ingestion paths (CSV
// streaming, the synth record stream, dataset-level sessions) deal in
// row-major batches. A RowBatch is a non-owning view over a contiguous
// row-major buffer — num_rows × num_cols doubles plus an optional label
// per row — so record batches can flow through the system without
// materializing a column-major Dataset first. The viewed buffers must
// outlive the batch.

#ifndef PPDM_DATA_ROW_BATCH_H_
#define PPDM_DATA_ROW_BATCH_H_

#include <cstddef>

#include "common/check.h"

namespace ppdm::data {

/// A borrowed view of `num_rows` records of `num_cols` attributes each,
/// laid out row-major, with an optional per-row class label.
class RowBatch {
 public:
  RowBatch() = default;

  /// Views `num_rows * num_cols` doubles at `values` (row-major) and, when
  /// `labels` is non-null, `num_rows` ints at `labels`.
  RowBatch(const double* values, std::size_t num_rows, std::size_t num_cols,
           const int* labels = nullptr)
      : values_(values),
        labels_(labels),
        num_rows_(num_rows),
        num_cols_(num_cols) {
    PPDM_CHECK(values != nullptr || num_rows == 0);
    PPDM_CHECK_GT(num_cols, 0u);
  }

  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_cols() const { return num_cols_; }
  bool empty() const { return num_rows_ == 0; }
  bool has_labels() const { return labels_ != nullptr; }

  /// Pointer to row `r`'s `num_cols()` attribute values.
  const double* row(std::size_t r) const {
    PPDM_CHECK_LT(r, num_rows_);
    return values_ + r * num_cols_;
  }

  /// Value of attribute `c` in row `r`.
  double At(std::size_t r, std::size_t c) const {
    PPDM_CHECK_LT(c, num_cols_);
    return row(r)[c];
  }

  /// Class label of row `r`; only valid when has_labels().
  int Label(std::size_t r) const {
    PPDM_CHECK(labels_ != nullptr);
    PPDM_CHECK_LT(r, num_rows_);
    return labels_[r];
  }

  const double* values() const { return values_; }
  const int* labels() const { return labels_; }

  /// Sub-view of rows [begin, begin + count).
  RowBatch Slice(std::size_t begin, std::size_t count) const {
    PPDM_CHECK(begin + count <= num_rows_);
    return RowBatch(values_ + begin * num_cols_, count, num_cols_,
                    labels_ == nullptr ? nullptr : labels_ + begin);
  }

 private:
  const double* values_ = nullptr;
  const int* labels_ = nullptr;
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
};

}  // namespace ppdm::data

#endif  // PPDM_DATA_ROW_BATCH_H_
