#include "data/split.h"

#include <numeric>

#include "common/check.h"

namespace ppdm::data {

TrainTest TrainTestSplit(const Dataset& dataset, double test_fraction,
                         Rng* rng) {
  PPDM_CHECK(test_fraction > 0.0 && test_fraction < 1.0);
  PPDM_CHECK_GE(dataset.NumRows(), 2u);
  PPDM_CHECK(rng != nullptr);

  std::vector<std::size_t> order(dataset.NumRows());
  std::iota(order.begin(), order.end(), 0u);
  rng->Shuffle(&order);

  auto num_test = static_cast<std::size_t>(
      test_fraction * static_cast<double>(dataset.NumRows()));
  num_test = std::max<std::size_t>(1, num_test);
  num_test = std::min(num_test, dataset.NumRows() - 1);

  const std::vector<std::size_t> test_rows(order.begin(),
                                           order.begin() + num_test);
  const std::vector<std::size_t> train_rows(order.begin() + num_test,
                                            order.end());
  return TrainTest{dataset.Select(train_rows), dataset.Select(test_rows)};
}

}  // namespace ppdm::data
