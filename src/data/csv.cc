#include "data/csv.h"

#include <fstream>

#include "common/strings.h"

namespace ppdm::data {

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");

  const Schema& schema = dataset.schema();
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    out << schema.Field(c).name << ',';
  }
  out << "class\n";

  for (std::size_t r = 0; r < dataset.NumRows(); ++r) {
    for (std::size_t c = 0; c < dataset.NumCols(); ++c) {
      out << StrFormat("%.17g", dataset.At(r, c)) << ',';
    }
    out << dataset.Label(r) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<Dataset> ReadCsv(const Schema& schema, int num_classes,
                        const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  const std::vector<std::string> header = Split(Trim(line), ',');
  if (header.size() != schema.NumFields() + 1) {
    return Status::InvalidArgument(
        StrFormat("header has %zu columns, schema expects %zu", header.size(),
                  schema.NumFields() + 1));
  }
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    if (Trim(header[c]) != schema.Field(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match schema attribute '" +
                                     schema.Field(c).name + "'");
    }
  }
  if (Trim(header.back()) != "class") {
    return Status::InvalidArgument("last header column must be 'class'");
  }

  Dataset dataset(schema, num_classes);
  std::vector<double> row(schema.NumFields());
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != schema.NumFields() + 1) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), schema.NumFields() + 1));
    }
    for (std::size_t c = 0; c < schema.NumFields(); ++c) {
      PPDM_ASSIGN_OR_RETURN(row[c], ParseDouble(fields[c]));
    }
    PPDM_ASSIGN_OR_RETURN(const long long label, ParseInt(fields.back()));
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("line %zu: label %lld out of range [0, %d)", line_no,
                    label, num_classes));
    }
    dataset.AddRow(row, static_cast<int>(label));
  }
  return dataset;
}

}  // namespace ppdm::data
