#include "data/csv.h"

#include <fstream>

#include "common/strings.h"

namespace ppdm::data {
namespace {

/// Validates the header line against the schema (attribute names in order,
/// then "class").
Status CheckHeader(const std::string& line, const Schema& schema) {
  const std::vector<std::string> header = Split(Trim(line), ',');
  if (header.size() != schema.NumFields() + 1) {
    return Status::InvalidArgument(
        StrFormat("header has %zu columns, schema expects %zu", header.size(),
                  schema.NumFields() + 1));
  }
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    if (Trim(header[c]) != schema.Field(c).name) {
      return Status::InvalidArgument("header column '" + header[c] +
                                     "' does not match schema attribute '" +
                                     schema.Field(c).name + "'");
    }
  }
  if (Trim(header.back()) != "class") {
    return Status::InvalidArgument("last header column must be 'class'");
  }
  return Status::Ok();
}

/// Non-empty data lines after the header, so ReadCsv can Reserve exactly.
Result<std::size_t> CountDataLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) ++rows;
  }
  return rows;
}

}  // namespace

Status WriteCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");

  const Schema& schema = dataset.schema();
  for (std::size_t c = 0; c < schema.NumFields(); ++c) {
    out << schema.Field(c).name << ',';
  }
  out << "class\n";

  for (std::size_t r = 0; r < dataset.NumRows(); ++r) {
    for (std::size_t c = 0; c < dataset.NumCols(); ++c) {
      out << StrFormat("%.17g", dataset.At(r, c)) << ',';
    }
    out << dataset.Label(r) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write to '" + path + "' failed");
  return Status::Ok();
}

Result<std::size_t> ReadCsvBatches(
    const Schema& schema, int num_classes, const std::string& path,
    std::size_t batch_rows,
    const std::function<Status(const RowBatch&)>& sink) {
  if (batch_rows == 0) {
    return Status::InvalidArgument("batch_rows must be positive");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("'" + path + "' is empty");
  }
  PPDM_RETURN_IF_ERROR(CheckHeader(line, schema));

  const std::size_t cols = schema.NumFields();
  std::vector<double> values(batch_rows * cols);
  std::vector<int> labels(batch_rows);
  std::size_t filled = 0;
  std::size_t total = 0;
  std::size_t line_no = 1;

  const auto flush = [&]() -> Status {
    if (filled == 0) return Status::Ok();
    const Status s = sink(RowBatch(values.data(), filled, cols,
                                   labels.data()));
    filled = 0;
    return s;
  };

  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != cols + 1) {
      return Status::InvalidArgument(
          StrFormat("line %zu has %zu fields, expected %zu", line_no,
                    fields.size(), cols + 1));
    }
    double* row = values.data() + filled * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      PPDM_ASSIGN_OR_RETURN(row[c], ParseDouble(fields[c]));
    }
    PPDM_ASSIGN_OR_RETURN(const long long label, ParseInt(fields.back()));
    if (label < 0 || label >= num_classes) {
      return Status::InvalidArgument(
          StrFormat("line %zu: label %lld out of range [0, %d)", line_no,
                    label, num_classes));
    }
    labels[filled] = static_cast<int>(label);
    ++filled;
    ++total;
    if (filled == batch_rows) PPDM_RETURN_IF_ERROR(flush());
  }
  PPDM_RETURN_IF_ERROR(flush());
  return total;
}

Result<Dataset> ReadCsv(const Schema& schema, int num_classes,
                        const std::string& path) {
  PPDM_ASSIGN_OR_RETURN(const std::size_t rows, CountDataLines(path));
  Dataset dataset(schema, num_classes);
  dataset.Reserve(rows);
  PPDM_RETURN_IF_ERROR(ReadCsvBatches(schema, num_classes, path,
                                      /*batch_rows=*/4096,
                                      [&dataset](const RowBatch& batch) {
                                        dataset.AddRows(batch);
                                        return Status::Ok();
                                      })
                           .status());
  return dataset;
}

}  // namespace ppdm::data
