// Column-major labelled dataset: the training table of the paper's setting.
//
// Columns are stored contiguously because every algorithm in this library
// (perturbation, reconstruction, gini scans) iterates one attribute at a
// time over all records — the same reason analytic stores are columnar.

#ifndef PPDM_DATA_DATASET_H_
#define PPDM_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "data/row_batch.h"
#include "data/schema.h"

namespace ppdm::data {

/// A table of numeric attribute columns plus an integer class label per row.
class Dataset {
 public:
  /// Creates an empty dataset with the given schema and number of classes.
  Dataset(Schema schema, int num_classes);

  const Schema& schema() const { return schema_; }
  int num_classes() const { return num_classes_; }
  std::size_t NumRows() const { return labels_.size(); }
  std::size_t NumCols() const { return columns_.size(); }

  /// Pre-sizes every column (and the label vector) for `rows` total rows,
  /// so a loader that knows its record count ahead of AddRow/AddRows never
  /// regrows a column vector mid-ingest.
  void Reserve(std::size_t rows);

  /// Appends one row. `values` must have exactly NumCols() entries and
  /// `label` must be in [0, num_classes).
  void AddRow(const std::vector<double>& values, int label);

  /// Appends a labelled record batch (column-major scatter of the
  /// row-major view). `rows` must have NumCols() columns and labels.
  void AddRows(const RowBatch& rows);

  /// Value of attribute `col` in row `row`.
  double At(std::size_t row, std::size_t col) const;

  /// Overwrites one cell (used by perturbation-in-place paths).
  void Set(std::size_t row, std::size_t col, double value);

  /// Whole attribute column.
  const std::vector<double>& Column(std::size_t col) const;

  /// Mutable attribute column.
  std::vector<double>* MutableColumn(std::size_t col);

  /// Class label of a row.
  int Label(std::size_t row) const;

  const std::vector<int>& labels() const { return labels_; }

  /// Materializes one full row (for prediction / display).
  std::vector<double> Row(std::size_t row) const;

  /// New dataset containing only the given rows, in order.
  Dataset Select(const std::vector<std::size_t>& rows) const;

  /// Row indices with the given class label.
  std::vector<std::size_t> RowsWithLabel(int label) const;

  /// Number of rows per class label.
  std::vector<std::size_t> ClassCounts() const;

  /// Structural invariants: column sizes agree, labels in range.
  Status Validate() const;

 private:
  Schema schema_;
  int num_classes_;
  std::vector<std::vector<double>> columns_;
  std::vector<int> labels_;
};

}  // namespace ppdm::data

#endif  // PPDM_DATA_DATASET_H_
