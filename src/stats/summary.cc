#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppdm::stats {

void KahanSum::Add(double x) {
  const double t = sum_ + x;
  if (std::fabs(sum_) >= std::fabs(x)) {
    compensation_ += (sum_ - t) + x;
  } else {
    compensation_ += (x - t) + sum_;
  }
  sum_ = t;
}

void DescriptiveStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double DescriptiveStats::min() const {
  PPDM_CHECK_GT(count_, 0u);
  return min_;
}

double DescriptiveStats::max() const {
  PPDM_CHECK_GT(count_, 0u);
  return max_;
}

double DescriptiveStats::mean() const {
  PPDM_CHECK_GT(count_, 0u);
  return mean_;
}

double DescriptiveStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double DescriptiveStats::stddev() const { return std::sqrt(variance()); }

DescriptiveStats DescriptiveStats::Of(const std::vector<double>& values) {
  DescriptiveStats s;
  for (double v : values) s.Add(v);
  return s;
}

}  // namespace ppdm::stats
