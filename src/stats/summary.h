// Streaming descriptive statistics and compensated summation.

#ifndef PPDM_STATS_SUMMARY_H_
#define PPDM_STATS_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace ppdm::stats {

/// Kahan–Babuška compensated accumulator; keeps O(1) rounding error when
/// summing millions of histogram masses or likelihood terms.
class KahanSum {
 public:
  /// Adds one term.
  void Add(double x);

  /// Current compensated total.
  double Total() const { return sum_ + compensation_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Single-pass count/min/max/mean/variance via Welford's update.
class DescriptiveStats {
 public:
  /// Folds one observation into the summary.
  void Add(double x);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;

  /// Unbiased sample variance (n−1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;

  /// Convenience: summarizes a whole vector.
  static DescriptiveStats Of(const std::vector<double>& values);

 private:
  std::size_t count_ = 0;
  double min_ = 0.0, max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
};

}  // namespace ppdm::stats

#endif  // PPDM_STATS_SUMMARY_H_
