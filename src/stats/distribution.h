// One-dimensional probability distributions used throughout ppdm: as noise
// models, as ground-truth generators for the reconstruction experiments
// (the paper's "plateau" and "triangle" figures), and in tests.

#ifndef PPDM_STATS_DISTRIBUTION_H_
#define PPDM_STATS_DISTRIBUTION_H_

#include <memory>
#include <vector>

#include "common/random.h"

namespace ppdm::stats {

/// Abstract continuous distribution on the real line.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Density at x.
  virtual double Pdf(double x) const = 0;

  /// P(X <= x).
  virtual double Cdf(double x) const = 0;

  /// Inverse CDF for p in (0,1).
  virtual double Quantile(double p) const = 0;

  /// Draws one variate.
  virtual double Sample(Rng* rng) const = 0;

  /// Expected value.
  virtual double Mean() const = 0;

  /// Lower edge of the support (-inf allowed).
  virtual double SupportLo() const = 0;

  /// Upper edge of the support (+inf allowed).
  virtual double SupportHi() const = 0;
};

/// Uniform distribution on [lo, hi].
class UniformDistribution final : public Distribution {
 public:
  UniformDistribution(double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double SupportLo() const override { return lo_; }
  double SupportHi() const override { return hi_; }

 private:
  double lo_, hi_;
};

/// Normal distribution N(mean, stddev^2).
class GaussianDistribution final : public Distribution {
 public:
  GaussianDistribution(double mean, double stddev);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;
  double Mean() const override { return mean_; }
  double SupportLo() const override;
  double SupportHi() const override;

  double stddev() const { return stddev_; }

 private:
  double mean_, stddev_;
};

/// Symmetric triangle distribution on [lo, hi] peaking at the midpoint —
/// the "triangles" ground truth of the paper's reconstruction figure.
class TriangleDistribution final : public Distribution {
 public:
  TriangleDistribution(double lo, double hi);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double SupportLo() const override { return lo_; }
  double SupportHi() const override { return hi_; }

 private:
  double lo_, hi_, mid_;
};

/// Trapezoidal "plateau" on [lo, hi]: linear ramp-up on the first
/// `ramp_frac` of the span, flat plateau, linear ramp-down on the last
/// `ramp_frac` — the paper's second reconstruction ground truth.
class PlateauDistribution final : public Distribution {
 public:
  PlateauDistribution(double lo, double hi, double ramp_frac = 0.25);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Sample(Rng* rng) const override;
  double Mean() const override { return 0.5 * (lo_ + hi_); }
  double SupportLo() const override { return lo_; }
  double SupportHi() const override { return hi_; }

 private:
  double lo_, hi_, ramp_;  // ramp_ = absolute ramp width
  double peak_;            // plateau density height
};

/// Finite mixture of component distributions with the given weights.
class MixtureDistribution final : public Distribution {
 public:
  /// Weights must be positive; they are normalized internally.
  MixtureDistribution(std::vector<std::shared_ptr<const Distribution>> parts,
                      std::vector<double> weights);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  double Quantile(double p) const override;  // bisection on the CDF
  double Sample(Rng* rng) const override;
  double Mean() const override;
  double SupportLo() const override;
  double SupportHi() const override;

 private:
  std::vector<std::shared_ptr<const Distribution>> parts_;
  std::vector<double> weights_;  // normalized
};

}  // namespace ppdm::stats

#endif  // PPDM_STATS_DISTRIBUTION_H_
