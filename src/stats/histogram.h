// Equi-width histogram plus the distances used by the reconstruction
// convergence test (χ²) and accuracy reporting (total variation, KS).

#ifndef PPDM_STATS_HISTOGRAM_H_
#define PPDM_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

namespace ppdm::stats {

/// Fixed-width binning of [lo, hi] into `bins` cells. Values outside the
/// range are clamped into the first / last bin — perturbed values routinely
/// overshoot the true domain, and the paper folds them back the same way.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  /// Adds one observation.
  void Add(double value);

  /// Adds a batch of observations.
  void AddAll(const std::vector<double>& values);

  /// Bin index for a value (after clamping).
  std::size_t BinOf(double value) const;

  /// Inclusive lower edge of bin b.
  double BinLo(std::size_t b) const;

  /// Exclusive upper edge of bin b (inclusive for the last bin).
  double BinHi(std::size_t b) const;

  /// Midpoint of bin b.
  double BinMid(std::size_t b) const;

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double width() const { return width_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  const std::vector<std::size_t>& counts() const { return counts_; }

  /// Probability masses per bin (sum to 1; all-zero when empty).
  std::vector<double> Masses() const;

  /// Density estimate per bin (mass / bin width).
  std::vector<double> Densities() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Total variation distance ½·Σ|p_k − q_k| between two mass vectors of
/// equal length. Both inputs must sum to ~1.
double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q);

/// χ² statistic Σ (p_k − q_k)² / q_k, skipping bins where q_k ≈ 0 — the
/// paper's stopping criterion compares successive reconstruction iterates
/// with this statistic.
double ChiSquareDistance(const std::vector<double>& p,
                         const std::vector<double>& q);

/// Kolmogorov–Smirnov distance max_k |P_k − Q_k| between the running sums.
double KolmogorovSmirnov(const std::vector<double>& p,
                         const std::vector<double>& q);

}  // namespace ppdm::stats

#endif  // PPDM_STATS_HISTOGRAM_H_
