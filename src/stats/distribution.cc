#include "stats/distribution.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/normal.h"

namespace ppdm::stats {

// ---------------------------------------------------------------- Uniform

UniformDistribution::UniformDistribution(double lo, double hi)
    : lo_(lo), hi_(hi) {
  PPDM_CHECK_LT(lo, hi);
}

double UniformDistribution::Pdf(double x) const {
  return (x < lo_ || x > hi_) ? 0.0 : 1.0 / (hi_ - lo_);
}

double UniformDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformDistribution::Quantile(double p) const {
  PPDM_CHECK(p >= 0.0 && p <= 1.0);
  return lo_ + p * (hi_ - lo_);
}

double UniformDistribution::Sample(Rng* rng) const {
  return rng->UniformReal(lo_, hi_);
}

// ---------------------------------------------------------------- Gaussian

GaussianDistribution::GaussianDistribution(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  PPDM_CHECK_GT(stddev, 0.0);
}

double GaussianDistribution::Pdf(double x) const {
  return NormalPdf((x - mean_) / stddev_) / stddev_;
}

double GaussianDistribution::Cdf(double x) const {
  return NormalCdf((x - mean_) / stddev_);
}

double GaussianDistribution::Quantile(double p) const {
  return mean_ + stddev_ * NormalQuantile(p);
}

double GaussianDistribution::Sample(Rng* rng) const {
  return rng->Gaussian(mean_, stddev_);
}

double GaussianDistribution::SupportLo() const {
  return -std::numeric_limits<double>::infinity();
}

double GaussianDistribution::SupportHi() const {
  return std::numeric_limits<double>::infinity();
}

// ---------------------------------------------------------------- Triangle

TriangleDistribution::TriangleDistribution(double lo, double hi)
    : lo_(lo), hi_(hi), mid_(0.5 * (lo + hi)) {
  PPDM_CHECK_LT(lo, hi);
}

double TriangleDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  const double h = 2.0 / (hi_ - lo_);  // peak density
  if (x <= mid_) return h * (x - lo_) / (mid_ - lo_);
  return h * (hi_ - x) / (hi_ - mid_);
}

double TriangleDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double span = hi_ - lo_;
  if (x <= mid_) {
    const double t = x - lo_;
    return 2.0 * t * t / (span * span);
  }
  const double t = hi_ - x;
  return 1.0 - 2.0 * t * t / (span * span);
}

double TriangleDistribution::Quantile(double p) const {
  PPDM_CHECK(p >= 0.0 && p <= 1.0);
  const double span = hi_ - lo_;
  if (p <= 0.5) return lo_ + span * std::sqrt(p / 2.0);
  return hi_ - span * std::sqrt((1.0 - p) / 2.0);
}

double TriangleDistribution::Sample(Rng* rng) const {
  return Quantile(rng->UniformDouble());
}

// ---------------------------------------------------------------- Plateau

PlateauDistribution::PlateauDistribution(double lo, double hi,
                                         double ramp_frac)
    : lo_(lo), hi_(hi) {
  PPDM_CHECK_LT(lo, hi);
  PPDM_CHECK(ramp_frac > 0.0 && ramp_frac <= 0.5);
  ramp_ = ramp_frac * (hi - lo);
  // Total mass: ramp triangles contribute peak*ramp, plateau contributes
  // peak*(span - 2*ramp); solve peak * (span - ramp) = 1.
  peak_ = 1.0 / ((hi_ - lo_) - ramp_);
}

double PlateauDistribution::Pdf(double x) const {
  if (x < lo_ || x > hi_) return 0.0;
  if (x < lo_ + ramp_) return peak_ * (x - lo_) / ramp_;
  if (x > hi_ - ramp_) return peak_ * (hi_ - x) / ramp_;
  return peak_;
}

double PlateauDistribution::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  if (x < lo_ + ramp_) {
    const double t = x - lo_;
    return 0.5 * peak_ * t * t / ramp_;
  }
  if (x <= hi_ - ramp_) {
    return 0.5 * peak_ * ramp_ + peak_ * (x - lo_ - ramp_);
  }
  const double t = hi_ - x;
  return 1.0 - 0.5 * peak_ * t * t / ramp_;
}

double PlateauDistribution::Quantile(double p) const {
  PPDM_CHECK(p >= 0.0 && p <= 1.0);
  const double ramp_mass = 0.5 * peak_ * ramp_;
  if (p <= ramp_mass) {
    return lo_ + std::sqrt(2.0 * p * ramp_ / peak_);
  }
  if (p <= 1.0 - ramp_mass) {
    return lo_ + ramp_ + (p - ramp_mass) / peak_;
  }
  return hi_ - std::sqrt(2.0 * (1.0 - p) * ramp_ / peak_);
}

double PlateauDistribution::Sample(Rng* rng) const {
  return Quantile(rng->UniformDouble());
}

// ---------------------------------------------------------------- Mixture

MixtureDistribution::MixtureDistribution(
    std::vector<std::shared_ptr<const Distribution>> parts,
    std::vector<double> weights)
    : parts_(std::move(parts)), weights_(std::move(weights)) {
  PPDM_CHECK(!parts_.empty());
  PPDM_CHECK_EQ(parts_.size(), weights_.size());
  double total = 0.0;
  for (double w : weights_) {
    PPDM_CHECK_GT(w, 0.0);
    total += w;
  }
  for (double& w : weights_) w /= total;
}

double MixtureDistribution::Pdf(double x) const {
  double d = 0.0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    d += weights_[i] * parts_[i]->Pdf(x);
  }
  return d;
}

double MixtureDistribution::Cdf(double x) const {
  double c = 0.0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    c += weights_[i] * parts_[i]->Cdf(x);
  }
  return c;
}

double MixtureDistribution::Quantile(double p) const {
  PPDM_CHECK(p > 0.0 && p < 1.0);
  double lo = SupportLo();
  double hi = SupportHi();
  // Fall back to a wide bracket when a component has unbounded support.
  if (!std::isfinite(lo) || !std::isfinite(hi)) {
    lo = -1e12;
    hi = 1e12;
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double MixtureDistribution::Sample(Rng* rng) const {
  double u = rng->UniformDouble();
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    if (u < weights_[i] || i + 1 == parts_.size()) {
      return parts_[i]->Sample(rng);
    }
    u -= weights_[i];
  }
  return parts_.back()->Sample(rng);
}

double MixtureDistribution::Mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < parts_.size(); ++i) {
    m += weights_[i] * parts_[i]->Mean();
  }
  return m;
}

double MixtureDistribution::SupportLo() const {
  double lo = std::numeric_limits<double>::infinity();
  for (const auto& part : parts_) lo = std::min(lo, part->SupportLo());
  return lo;
}

double MixtureDistribution::SupportHi() const {
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& part : parts_) hi = std::max(hi, part->SupportHi());
  return hi;
}

}  // namespace ppdm::stats
