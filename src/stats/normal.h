// Standard-normal special functions, hand-rolled (no external numerics).

#ifndef PPDM_STATS_NORMAL_H_
#define PPDM_STATS_NORMAL_H_

namespace ppdm::stats {

/// Density of N(0,1) at z.
double NormalPdf(double z);

/// Distribution function of N(0,1) at z (via std::erf).
double NormalCdf(double z);

/// Inverse of NormalCdf for p in (0,1). Peter Acklam's rational
/// approximation with one Halley refinement step; |error| < 1e-12.
double NormalQuantile(double p);

}  // namespace ppdm::stats

#endif  // PPDM_STATS_NORMAL_H_
