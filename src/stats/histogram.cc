#include "stats/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ppdm::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  PPDM_CHECK_LT(lo, hi);
  PPDM_CHECK_GT(bins, 0u);
  counts_.assign(bins, 0);
}

void Histogram::Add(double value) {
  ++counts_[BinOf(value)];
  ++total_;
}

void Histogram::AddAll(const std::vector<double>& values) {
  for (double v : values) Add(v);
}

std::size_t Histogram::BinOf(double value) const {
  if (value <= lo_) return 0;
  if (value >= hi_) return counts_.size() - 1;
  auto b = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(b, counts_.size() - 1);
}

double Histogram::BinLo(std::size_t b) const {
  PPDM_CHECK_LT(b, counts_.size());
  return lo_ + width_ * static_cast<double>(b);
}

double Histogram::BinHi(std::size_t b) const {
  PPDM_CHECK_LT(b, counts_.size());
  return lo_ + width_ * static_cast<double>(b + 1);
}

double Histogram::BinMid(std::size_t b) const {
  PPDM_CHECK_LT(b, counts_.size());
  return lo_ + width_ * (static_cast<double>(b) + 0.5);
}

std::vector<double> Histogram::Masses() const {
  std::vector<double> masses(counts_.size(), 0.0);
  if (total_ == 0) return masses;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    masses[b] =
        static_cast<double>(counts_[b]) / static_cast<double>(total_);
  }
  return masses;
}

std::vector<double> Histogram::Densities() const {
  std::vector<double> d = Masses();
  for (double& v : d) v /= width_;
  return d;
}

double TotalVariation(const std::vector<double>& p,
                      const std::vector<double>& q) {
  PPDM_CHECK_EQ(p.size(), q.size());
  double sum = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) sum += std::fabs(p[k] - q[k]);
  return 0.5 * sum;
}

double ChiSquareDistance(const std::vector<double>& p,
                         const std::vector<double>& q) {
  PPDM_CHECK_EQ(p.size(), q.size());
  constexpr double kTinyMass = 1e-12;
  double sum = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (q[k] > kTinyMass) {
      const double d = p[k] - q[k];
      sum += d * d / q[k];
    }
  }
  return sum;
}

double KolmogorovSmirnov(const std::vector<double>& p,
                         const std::vector<double>& q) {
  PPDM_CHECK_EQ(p.size(), q.size());
  double cp = 0.0, cq = 0.0, worst = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    cp += p[k];
    cq += q[k];
    worst = std::max(worst, std::fabs(cp - cq));
  }
  return worst;
}

}  // namespace ppdm::stats
