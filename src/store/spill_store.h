// The registry's durable demotion backend: api::SessionSpill implemented
// over a SnapshotStore directory and the session codec. Eviction-time
// Spill serializes the session's point-in-time state to "<name>.snap";
// Admit decodes it back into an equivalent session, leaving the capture
// on disk as the name's checkpoint until the next Spill overwrites it.
// Decode failures leave the file in place for inspection and surface as
// Status (the registry counts them and treats the lookup as a miss).

#ifndef PPDM_STORE_SPILL_STORE_H_
#define PPDM_STORE_SPILL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "api/registry.h"
#include "common/status.h"
#include "store/snapshot_store.h"

namespace ppdm::store {

/// Directory-backed spill tier for api::SessionRegistry.
class SessionSpillStore : public api::SessionSpill {
 public:
  /// Spills into `store`'s directory (the store is copied; SnapshotStore
  /// instances are cheap views and may share a directory).
  explicit SessionSpillStore(SnapshotStore store)
      : store_(std::move(store)) {}

  Result<std::uint64_t> Spill(const std::string& name,
                              const api::DatasetSession& session) override;
  Result<std::shared_ptr<api::DatasetSession>> Admit(
      const std::string& name, engine::ThreadPool* pool) override;
  bool Contains(const std::string& name) const override;
  Status Drop(const std::string& name) override;

  const SnapshotStore& store() const { return store_; }

 private:
  SnapshotStore store_;
};

}  // namespace ppdm::store

#endif  // PPDM_STORE_SPILL_STORE_H_
