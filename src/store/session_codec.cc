#include "store/session_codec.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "data/schema.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perturb/noise_model.h"
#include "reconstruct/reconstructor.h"

namespace ppdm::store {
namespace {

// u8 wire values for the enums; decode validates the range so a corrupt
// byte surfaces as Status, never as an out-of-range enum.

Result<perturb::NoiseKind> NoiseKindFromWire(std::uint8_t wire) {
  switch (wire) {
    case 0: return perturb::NoiseKind::kNone;
    case 1: return perturb::NoiseKind::kUniform;
    case 2: return perturb::NoiseKind::kGaussian;
    default:
      return Status::InvalidArgument(
          StrFormat("unknown noise kind %u in snapshot", wire));
  }
}

std::uint8_t NoiseKindToWire(perturb::NoiseKind kind) {
  switch (kind) {
    case perturb::NoiseKind::kNone: return 0;
    case perturb::NoiseKind::kUniform: return 1;
    case perturb::NoiseKind::kGaussian: return 2;
  }
  return 0;  // unreachable
}

Result<data::AttributeKind> AttributeKindFromWire(std::uint8_t wire) {
  switch (wire) {
    case 0: return data::AttributeKind::kContinuous;
    case 1: return data::AttributeKind::kDiscrete;
    default:
      return Status::InvalidArgument(
          StrFormat("unknown attribute kind %u in snapshot", wire));
  }
}

Result<bool> BoolFromWire(std::uint8_t wire) {
  if (wire > 1) {
    return Status::InvalidArgument(
        StrFormat("boolean wire byte is %u, want 0 or 1", wire));
  }
  return wire == 1;
}

void EncodeReconstructionOptions(
    const reconstruct::ReconstructionOptions& options, Writer* writer) {
  writer->PutU64(options.max_iterations);
  writer->PutDouble(options.chi_square_epsilon);
  writer->PutU8(options.binned ? 1 : 0);
}

Result<reconstruct::ReconstructionOptions> DecodeReconstructionOptions(
    Reader* reader) {
  reconstruct::ReconstructionOptions options;
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t max_iterations,
                        reader->ReadU64());
  PPDM_ASSIGN_OR_RETURN(options.chi_square_epsilon, reader->ReadDouble());
  PPDM_ASSIGN_OR_RETURN(const std::uint8_t binned, reader->ReadU8());
  PPDM_ASSIGN_OR_RETURN(options.binned, BoolFromWire(binned));
  options.max_iterations = static_cast<std::size_t>(max_iterations);
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("snapshot EM max_iterations is zero");
  }
  if (!std::isfinite(options.chi_square_epsilon) ||
      options.chi_square_epsilon < 0.0) {
    return Status::InvalidArgument(
        "snapshot EM chi_square_epsilon is non-finite or negative");
  }
  return options;
}

/// Upper bound on decoded interval counts and on the padding bins the
/// perturbed layout derives per side — far beyond any real workload, but
/// small enough that the derivation below cannot become an allocation
/// abort.
constexpr double kMaxLayoutBins = static_cast<double>(1u << 20);

// A CRC-valid but hostile snapshot can carry layout parameters (noise
// scale, domain, intervals, confidence) whose *derived* perturbed-value
// binning is astronomically large: PerturbedBinning pads the partition by
// ceil(EffectiveHalfWidth / width) bins per side, and constructing the
// state would abort on the allocation — violating the "corrupt input is a
// Status, never an abort" contract. Reject the derivation before any
// state is built.
Status ValidateDerivedLayout(double lo, double hi, std::size_t intervals,
                             const perturb::NoiseModel& model) {
  const double width = (hi - lo) / static_cast<double>(intervals);
  const double pad = model.EffectiveHalfWidth() / width;
  if (!std::isfinite(pad) || pad > kMaxLayoutBins) {
    return Status::InvalidArgument(
        "snapshot noise/domain derive an implausibly large perturbed-value "
        "bin layout");
  }
  return Status::Ok();
}

Status ValidateMasses(const std::vector<double>& masses,
                      std::size_t intervals) {
  if (!masses.empty() && masses.size() != intervals) {
    return Status::InvalidArgument(StrFormat(
        "%zu warm-start masses for a %zu-interval partition",
        masses.size(), intervals));
  }
  for (double m : masses) {
    if (!std::isfinite(m) || m < 0.0) {
      return Status::InvalidArgument(
          "snapshot warm-start mass is non-finite or negative");
    }
  }
  return Status::Ok();
}

}  // namespace

// -------------------------------------------------------------- ShardStats

void EncodeShardStats(const engine::ShardStats& stats, Writer* writer) {
  writer->PutU64(stats.num_bins());
  writer->PutU64(stats.num_classes());
  writer->PutU64(stats.record_count());
  writer->PutU64Array(stats.counts());
}

Result<engine::ShardStats> DecodeShardStats(Reader* reader) {
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t num_bins, reader->ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t num_classes, reader->ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t record_count, reader->ReadU64());
  PPDM_ASSIGN_OR_RETURN(std::vector<std::uint64_t> counts,
                        reader->ReadU64Array());
  if (num_bins == 0 || num_classes == 0 ||
      num_bins > std::numeric_limits<std::uint64_t>::max() / num_classes ||
      counts.size() != num_bins * num_classes) {
    return Status::InvalidArgument(StrFormat(
        "snapshot counts table is %zu entries for %llu bins x %llu classes",
        counts.size(), static_cast<unsigned long long>(num_bins),
        static_cast<unsigned long long>(num_classes)));
  }
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) {
    // Detect wraparound: without it a crafted snapshot could sum (mod
    // 2^64) to a tiny record_count and slip astronomical per-bin counts
    // past this consistency check.
    if (total + c < total) {
      return Status::InvalidArgument(
          "snapshot counts overflow a 64-bit record total");
    }
    total += c;
  }
  if (total != record_count) {
    return Status::InvalidArgument(StrFormat(
        "snapshot counts sum to %llu but claim %llu records",
        static_cast<unsigned long long>(total),
        static_cast<unsigned long long>(record_count)));
  }
  return engine::ShardStats::FromCounts(
      static_cast<std::size_t>(num_bins),
      static_cast<std::size_t>(num_classes), record_count,
      std::move(counts));
}

// ---------------------------------------------------------- AttributeState

void EncodeAttributeState(const api::AttributeState& state, Writer* writer) {
  const reconstruct::Partition& partition = state.partition();
  writer->PutDouble(partition.lo());
  writer->PutDouble(partition.hi());
  writer->PutU64(partition.intervals());
  const perturb::NoiseModel& noise = state.noise_model();
  writer->PutU8(NoiseKindToWire(noise.kind()));
  writer->PutDouble(noise.scale());
  EncodeReconstructionOptions(state.reconstructor().options(), writer);
  EncodeShardStats(state.stats(), writer);
  writer->PutDoubleArray(state.last_masses());
}

Result<api::AttributeState> DecodeAttributeState(Reader* reader) {
  PPDM_ASSIGN_OR_RETURN(const double lo, reader->ReadDouble());
  PPDM_ASSIGN_OR_RETURN(const double hi, reader->ReadDouble());
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t intervals, reader->ReadU64());
  if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo < hi)) {
    return Status::InvalidArgument(
        "snapshot attribute domain is non-finite or empty");
  }
  if (intervals < 2 || intervals > (1u << 20)) {
    return Status::InvalidArgument(StrFormat(
        "snapshot attribute has %llu intervals (want 2..%u)",
        static_cast<unsigned long long>(intervals), 1u << 20));
  }
  PPDM_ASSIGN_OR_RETURN(const std::uint8_t kind_wire, reader->ReadU8());
  PPDM_ASSIGN_OR_RETURN(const perturb::NoiseKind kind,
                        NoiseKindFromWire(kind_wire));
  PPDM_ASSIGN_OR_RETURN(const double scale, reader->ReadDouble());
  if (kind == perturb::NoiseKind::kNone) {
    if (scale != 0.0) {
      return Status::InvalidArgument(
          "snapshot kNone noise carries a nonzero scale");
    }
  } else if (!std::isfinite(scale) || scale <= 0.0) {
    return Status::InvalidArgument(
        "snapshot noise scale is non-finite or non-positive");
  }
  PPDM_ASSIGN_OR_RETURN(const reconstruct::ReconstructionOptions options,
                        DecodeReconstructionOptions(reader));

  const perturb::NoiseModel model =
      kind == perturb::NoiseKind::kNone
          ? perturb::NoiseModel::None()
          : kind == perturb::NoiseKind::kUniform
                ? perturb::NoiseModel::Uniform(scale)
                : perturb::NoiseModel::Gaussian(scale);
  PPDM_RETURN_IF_ERROR(ValidateDerivedLayout(
      lo, hi, static_cast<std::size_t>(intervals), model));
  api::AttributeState state(lo, hi, static_cast<std::size_t>(intervals),
                            model, options);

  PPDM_ASSIGN_OR_RETURN(engine::ShardStats stats, DecodeShardStats(reader));
  if (stats.num_bins() != state.num_bins() || stats.num_classes() != 1) {
    return Status::InvalidArgument(StrFormat(
        "snapshot counts are %zu bins x %zu classes; the attribute layout "
        "derives %zu bins x 1",
        stats.num_bins(), stats.num_classes(), state.num_bins()));
  }
  PPDM_ASSIGN_OR_RETURN(std::vector<double> masses,
                        reader->ReadDoubleArray());
  PPDM_RETURN_IF_ERROR(
      ValidateMasses(masses, state.partition().intervals()));
  state.RestoreAccumulation(std::move(stats), std::move(masses));
  return state;
}

// ------------------------------------------------------ DatasetSessionSpec

void EncodeDatasetSessionSpec(const api::DatasetSessionSpec& spec,
                              Writer* writer) {
  writer->PutU64(spec.schema.NumFields());
  for (const data::FieldSpec& field : spec.schema.fields()) {
    writer->PutString(field.name);
    writer->PutU8(field.kind == data::AttributeKind::kContinuous ? 0 : 1);
    writer->PutDouble(field.lo);
    writer->PutDouble(field.hi);
  }
  writer->PutU64(spec.attributes.size());
  for (const api::AttributeSpec& attr : spec.attributes) {
    writer->PutU64(attr.column);
    writer->PutU64(attr.intervals);
    writer->PutU8(NoiseKindToWire(attr.noise));
    writer->PutDouble(attr.privacy_fraction);
    writer->PutDouble(attr.confidence);
    EncodeReconstructionOptions(attr.reconstruction, writer);
  }
  writer->PutU64(spec.shard_size);
  writer->PutU8(spec.warm_start ? 1 : 0);
}

Result<api::DatasetSessionSpec> DecodeDatasetSessionSpec(Reader* reader) {
  api::DatasetSessionSpec spec;
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t num_fields, reader->ReadU64());
  std::vector<data::FieldSpec> fields;
  for (std::uint64_t f = 0; f < num_fields; ++f) {
    data::FieldSpec field;
    PPDM_ASSIGN_OR_RETURN(field.name, reader->ReadString());
    PPDM_ASSIGN_OR_RETURN(const std::uint8_t kind, reader->ReadU8());
    PPDM_ASSIGN_OR_RETURN(field.kind, AttributeKindFromWire(kind));
    PPDM_ASSIGN_OR_RETURN(field.lo, reader->ReadDouble());
    PPDM_ASSIGN_OR_RETURN(field.hi, reader->ReadDouble());
    fields.push_back(std::move(field));
  }
  spec.schema = data::Schema(std::move(fields));

  PPDM_ASSIGN_OR_RETURN(const std::uint64_t num_attrs, reader->ReadU64());
  for (std::uint64_t a = 0; a < num_attrs; ++a) {
    api::AttributeSpec attr;
    PPDM_ASSIGN_OR_RETURN(const std::uint64_t column, reader->ReadU64());
    PPDM_ASSIGN_OR_RETURN(const std::uint64_t intervals, reader->ReadU64());
    attr.column = static_cast<std::size_t>(column);
    attr.intervals = static_cast<std::size_t>(intervals);
    PPDM_ASSIGN_OR_RETURN(const std::uint8_t noise, reader->ReadU8());
    PPDM_ASSIGN_OR_RETURN(attr.noise, NoiseKindFromWire(noise));
    PPDM_ASSIGN_OR_RETURN(attr.privacy_fraction, reader->ReadDouble());
    PPDM_ASSIGN_OR_RETURN(attr.confidence, reader->ReadDouble());
    PPDM_ASSIGN_OR_RETURN(attr.reconstruction,
                          DecodeReconstructionOptions(reader));
    spec.attributes.push_back(std::move(attr));
  }
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t shard_size, reader->ReadU64());
  spec.shard_size = static_cast<std::size_t>(shard_size);
  PPDM_ASSIGN_OR_RETURN(const std::uint8_t warm, reader->ReadU8());
  PPDM_ASSIGN_OR_RETURN(spec.warm_start, BoolFromWire(warm));
  return spec;
}

// ---------------------------------------------------------- DatasetSession

namespace {

// Codec telemetry: snapshot encode/decode wall time and encoded sizes —
// the CPU half of a checkpoint (the store histograms time the disk half).
obs::Histogram& EncodeSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_store_encode_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Histogram& DecodeSecondsHistogram() {
  static obs::Histogram& histogram =
      *obs::MetricsRegistry::Global().GetHistogram(
          "ppdm_store_decode_seconds",
          obs::Histogram::LatencyBucketsSeconds());
  return histogram;
}

obs::Counter& EncodeBytesCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_store_encode_bytes_total");
  return counter;
}

}  // namespace

std::string EncodeDatasetSession(const api::DatasetSession& session) {
  obs::ScopedSpan span("store.encode_session", &EncodeSecondsHistogram());
  const api::DatasetSessionSpec& spec = session.spec();
  const api::DatasetSessionState state = session.ExportState();

  Writer writer;
  writer.PutHeader(kFormatVersion);
  writer.BeginSection(kSpecSectionTag);
  EncodeDatasetSessionSpec(spec, &writer);
  writer.EndSection();
  writer.BeginSection(kStateSectionTag);
  writer.PutU64(state.rows);
  writer.PutU64(state.batches);
  writer.PutU64(state.stats.size());
  for (std::size_t a = 0; a < state.stats.size(); ++a) {
    EncodeShardStats(state.stats[a], &writer);
    writer.PutDoubleArray(state.last_masses[a]);
  }
  writer.EndSection();
  EncodeBytesCounter().Increment(writer.bytes().size());
  return writer.Take();
}

Result<std::unique_ptr<api::DatasetSession>> DecodeDatasetSession(
    std::string_view bytes, engine::ThreadPool* pool) {
  obs::ScopedSpan span("store.decode_session", &DecodeSecondsHistogram());
  Reader reader(bytes);
  std::uint32_t version = 0;
  PPDM_RETURN_IF_ERROR(reader.ReadHeader(kFormatVersion, &version));

  PPDM_ASSIGN_OR_RETURN(Reader spec_reader,
                        reader.ReadSection(kSpecSectionTag));
  PPDM_ASSIGN_OR_RETURN(const api::DatasetSessionSpec spec,
                        DecodeDatasetSessionSpec(&spec_reader));
  if (!spec_reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in snapshot SPEC section");
  }
  // Validate the spec — and the layouts it derives — before constructing
  // anything: the spec layer itself has no upper bounds (a huge interval
  // count or a near-zero confidence is "valid"), but a decoded snapshot
  // must not be able to drive session construction into an allocation
  // abort.
  PPDM_RETURN_IF_ERROR(spec.Validate());
  for (const api::AttributeSpec& attr : spec.attributes) {
    if (static_cast<double>(attr.intervals) > kMaxLayoutBins) {
      return Status::InvalidArgument(
          "snapshot attribute has an implausibly large interval count");
    }
    const data::FieldSpec& field = spec.schema.Field(attr.column);
    PPDM_RETURN_IF_ERROR(ValidateDerivedLayout(
        field.lo, field.hi, attr.intervals,
        perturb::NoiseForPrivacy(attr.noise, attr.privacy_fraction,
                                 field.hi - field.lo, attr.confidence)));
  }

  PPDM_ASSIGN_OR_RETURN(Reader state_reader,
                        reader.ReadSection(kStateSectionTag));
  api::DatasetSessionState state;
  PPDM_ASSIGN_OR_RETURN(state.rows, state_reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(state.batches, state_reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t num_attrs,
                        state_reader.ReadU64());
  if (num_attrs != spec.attributes.size()) {
    return Status::InvalidArgument(StrFormat(
        "snapshot state carries %llu attribute(s), spec declares %zu",
        static_cast<unsigned long long>(num_attrs), spec.attributes.size()));
  }
  for (std::uint64_t a = 0; a < num_attrs; ++a) {
    PPDM_ASSIGN_OR_RETURN(engine::ShardStats stats,
                          DecodeShardStats(&state_reader));
    state.stats.push_back(std::move(stats));
    PPDM_ASSIGN_OR_RETURN(std::vector<double> masses,
                          state_reader.ReadDoubleArray());
    state.last_masses.push_back(std::move(masses));
  }
  if (!state_reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in snapshot STAT section");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after snapshot sections");
  }
  return api::DatasetSession::Restore(spec, std::move(state), pool);
}

Result<SnapshotInfo> PeekDatasetSession(std::string_view bytes) {
  Reader reader(bytes);
  SnapshotInfo info;
  PPDM_RETURN_IF_ERROR(reader.ReadHeader(kFormatVersion, &info.version));
  PPDM_ASSIGN_OR_RETURN(Reader spec_reader,
                        reader.ReadSection(kSpecSectionTag));
  PPDM_ASSIGN_OR_RETURN(const api::DatasetSessionSpec spec,
                        DecodeDatasetSessionSpec(&spec_reader));
  info.attributes = spec.attributes.size();
  PPDM_ASSIGN_OR_RETURN(Reader state_reader,
                        reader.ReadSection(kStateSectionTag));
  PPDM_ASSIGN_OR_RETURN(info.records, state_reader.ReadU64());
  PPDM_ASSIGN_OR_RETURN(info.batches, state_reader.ReadU64());
  return info;
}

}  // namespace ppdm::store
