#include "store/spill_store.h"

#include <utility>

#include "common/fault.h"
#include "store/session_codec.h"

namespace ppdm::store {
namespace {

// Fault points at the tier boundary, distinct from the snapshot store's
// own I/O points: spill.demote fails a demotion before any bytes are
// encoded (the registry must keep the session resident), registry.readmit
// fails a re-admission before the capture is read (the registry must
// surface a clean Status and leave the capture intact).
fault::FaultPoint& DemoteFault() {
  static fault::FaultPoint& point = fault::Point("spill.demote");
  return point;
}

fault::FaultPoint& ReadmitFault() {
  static fault::FaultPoint& point = fault::Point("registry.readmit");
  return point;
}

}  // namespace

Result<std::uint64_t> SessionSpillStore::Spill(
    const std::string& name, const api::DatasetSession& session) {
  PPDM_RETURN_IF_ERROR(DemoteFault().Fire());
  const std::string bytes = EncodeDatasetSession(session);
  PPDM_RETURN_IF_ERROR(store_.Put(name, bytes));
  return static_cast<std::uint64_t>(bytes.size());
}

Result<std::shared_ptr<api::DatasetSession>> SessionSpillStore::Admit(
    const std::string& name, engine::ThreadPool* pool) {
  PPDM_RETURN_IF_ERROR(ReadmitFault().Fire());
  PPDM_ASSIGN_OR_RETURN(const std::string bytes, store_.Get(name));
  PPDM_ASSIGN_OR_RETURN(std::unique_ptr<api::DatasetSession> session,
                        DecodeDatasetSession(bytes, pool));
  // The capture stays on disk: it is the session's last durable
  // checkpoint until the next Spill overwrites it (or Drop discards it),
  // so a crash right after re-admission still recovers to this state.
  return std::shared_ptr<api::DatasetSession>(std::move(session));
}

bool SessionSpillStore::Contains(const std::string& name) const {
  return store_.Contains(name);
}

Status SessionSpillStore::Drop(const std::string& name) {
  return store_.Delete(name);
}

}  // namespace ppdm::store
