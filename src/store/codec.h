// Versioned, endian-stable binary codec — the byte layer of the store
// subsystem. Writer appends little-endian primitives into a growable
// buffer and wraps groups of them in CRC32-guarded sections; Reader is the
// bounds-checked inverse whose every failure path is a Status (truncated,
// corrupt, or wrong-format input must never abort a server).
//
// File layout:
//   [8-byte magic "PPDMSNAP"][u32 format version]
//   repeated sections: [u32 tag][u64 payload length][u32 crc32][payload]
//
// All integers are little-endian regardless of host order; doubles travel
// as the little-endian bytes of their IEEE-754 bit pattern, so a
// round-trip is bit-exact and files are exchangeable across hosts
// (distributed PPDM sites share aggregated statistics this way).

#ifndef PPDM_STORE_CODEC_H_
#define PPDM_STORE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ppdm::store {

/// IEEE CRC-32 (polynomial 0xEDB88320) of `size` bytes at `data`.
std::uint32_t Crc32(const void* data, std::size_t size);
inline std::uint32_t Crc32(std::string_view bytes) {
  return Crc32(bytes.data(), bytes.size());
}

/// The 8-byte file magic every store artifact starts with.
inline constexpr char kMagic[8] = {'P', 'P', 'D', 'M', 'S', 'N', 'A', 'P'};

/// Append-only little-endian encoder. Sections may not nest.
class Writer {
 public:
  /// Appends the file magic and format version; call once, first.
  void PutHeader(std::uint32_t version);

  void PutU8(std::uint8_t value);
  void PutU32(std::uint32_t value);
  void PutU64(std::uint64_t value);
  /// The IEEE-754 bit pattern of `value`, little-endian (bit-exact).
  void PutDouble(double value);
  /// u64 byte count followed by the raw bytes.
  void PutString(std::string_view value);
  /// u64 element count followed by the elements.
  void PutU64Array(const std::vector<std::uint64_t>& values);
  void PutDoubleArray(const std::vector<double>& values);

  /// Opens a CRC-guarded section tagged `tag`. Everything appended until
  /// EndSection() becomes the section payload.
  void BeginSection(std::uint32_t tag);

  /// Closes the open section, patching its length and CRC32.
  void EndSection();

  const std::string& bytes() const { return buf_; }
  std::string Take() { return std::move(buf_); }

 private:
  void PatchU32(std::size_t offset, std::uint32_t value);
  void PatchU64(std::size_t offset, std::uint64_t value);

  std::string buf_;
  bool in_section_ = false;
  std::size_t section_len_offset_ = 0;
  std::size_t section_crc_offset_ = 0;
  std::size_t section_payload_offset_ = 0;
};

/// Bounds-checked little-endian decoder over a borrowed byte view (the
/// underlying buffer must outlive the Reader and any sub-Reader it hands
/// out). Every read returns a Status error instead of crashing on
/// truncated or malformed input.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  std::size_t remaining() const { return bytes_.size() - pos_; }
  bool AtEnd() const { return pos_ == bytes_.size(); }

  /// Checks the magic and reads the format version into `*version`.
  /// Wrong magic is kInvalidArgument ("not a snapshot"); a version newer
  /// than `supported_version` is kFailedPrecondition (a newer writer).
  Status ReadHeader(std::uint32_t supported_version, std::uint32_t* version);

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<std::vector<std::uint64_t>> ReadU64Array();
  Result<std::vector<double>> ReadDoubleArray();

  /// Reads one section header, verifies the payload CRC32, and returns a
  /// Reader over the payload, advancing this Reader past it. A tag other
  /// than `expected_tag` is kInvalidArgument; a bad CRC or a payload
  /// length overrunning the buffer is kIoError (corruption).
  Result<Reader> ReadSection(std::uint32_t expected_tag);

 private:
  /// kOk when `count` more bytes are available, else kIoError (truncated).
  Status Need(std::size_t count) const;

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace ppdm::store

#endif  // PPDM_STORE_CODEC_H_
