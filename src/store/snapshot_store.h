// Directory-backed snapshot storage: named byte blobs with atomic
// write-rename publication and corruption-safe reads. The store is the
// durable tier under the session registry's spill path and the operator's
// checkpoint/restore workflow; it knows nothing about snapshot contents —
// the session codec owns the bytes.
//
// Concurrency / crash safety: Put() writes to a temp file in the same
// directory, fsyncs it, and renames it over the target, so readers never
// observe a half-written snapshot, a crash mid-Put leaves the previous
// version intact, and a successful Put survives power loss (the directory
// entry is synced best-effort after the rename). Failure codes are
// distinct per stage: open/write/rename surface kIoError, while a failed
// fsync or close — the bytes may be torn or not durable — surfaces
// kDataLoss and never reports success.
//
// Resilience: Put and Get run under a retry::RetryPolicy (transient
// failures retried with jittered exponential backoff; see
// set_retry_policy) and carry the store.put.io / store.put.sync /
// store.put.rename / store.get.io fault points, so chaos runs can fail
// any stage deterministically.
//
// Instances are cheap views over the directory (no in-memory index), so
// several SnapshotStores — a spill tier and an operator CLI, say — can
// share one directory.

#ifndef PPDM_STORE_SNAPSHOT_STORE_H_
#define PPDM_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/status.h"

namespace ppdm::store {

/// Maps arbitrary snapshot names onto safe file names: alphanumerics,
/// '-' and '_' pass through, every other byte becomes %XX. Reversible.
std::string EncodeSnapshotName(std::string_view name);
Result<std::string> DecodeSnapshotName(std::string_view file_stem);

/// Named snapshots in one directory, one "<escaped-name>.snap" file each.
class SnapshotStore {
 public:
  /// Opens (creating if needed) `directory` as a snapshot store.
  static Result<SnapshotStore> Open(const std::string& directory);

  /// Atomically publishes `bytes` under `name` (write temp, fsync,
  /// rename), replacing any previous snapshot of that name and retrying
  /// transient failures under the retry policy. Names must be non-empty
  /// (kInvalidArgument); an empty name is treated as absent by every read
  /// path. kIoError for open/write/rename failures, kDataLoss when fsync
  /// or close fails (the write may be torn — never reported as success).
  Status Put(const std::string& name, std::string_view bytes) const;

  /// The bytes last Put under `name`; kNotFound when absent, kIoError
  /// when the file cannot be read. Transient read failures are retried
  /// under the retry policy.
  Result<std::string> Get(const std::string& name) const;

  /// Replaces the policy Put/Get retry transient failures under. The
  /// default is 3 attempts with 1ms..250ms jittered exponential backoff;
  /// `{.max_attempts = 1}` disables retries.
  void set_retry_policy(retry::RetryPolicy policy) {
    retry_ = std::move(policy);
  }
  const retry::RetryPolicy& retry_policy() const { return retry_; }

  /// True when a snapshot named `name` exists.
  bool Contains(const std::string& name) const;

  /// Removes `name`; kNotFound when absent.
  Status Delete(const std::string& name) const;

  /// All snapshot names in the directory, sorted.
  Result<std::vector<std::string>> List() const;

  /// Snapshots currently stored (directory scan).
  std::size_t Count() const;

  /// Sum of on-disk snapshot sizes in bytes (directory scan).
  std::uint64_t TotalBytes() const;

  const std::string& directory() const { return directory_; }

 private:
  explicit SnapshotStore(std::string directory)
      : directory_(std::move(directory)) {}

  std::string PathFor(const std::string& name) const;

  /// One write-fsync-rename attempt; Put wraps it in the retry policy.
  Status PutOnce(const std::string& name, std::string_view bytes) const;
  Result<std::string> GetOnce(const std::string& name) const;

  std::string directory_;
  retry::RetryPolicy retry_;
};

}  // namespace ppdm::store

#endif  // PPDM_STORE_SNAPSHOT_STORE_H_
