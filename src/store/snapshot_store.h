// Directory-backed snapshot storage: named byte blobs with atomic
// write-rename publication and corruption-safe reads. The store is the
// durable tier under the session registry's spill path and the operator's
// checkpoint/restore workflow; it knows nothing about snapshot contents —
// the session codec owns the bytes.
//
// Concurrency / crash safety: Put() writes to a temp file in the same
// directory and renames it over the target, so readers never observe a
// half-written snapshot and a crash mid-Put leaves the previous version
// intact. Durability is best-effort (no fsync); the recovery contract is
// "the last completed checkpoint", not "the last write".
//
// Instances are cheap views over the directory (no in-memory index), so
// several SnapshotStores — a spill tier and an operator CLI, say — can
// share one directory.

#ifndef PPDM_STORE_SNAPSHOT_STORE_H_
#define PPDM_STORE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ppdm::store {

/// Maps arbitrary snapshot names onto safe file names: alphanumerics,
/// '-' and '_' pass through, every other byte becomes %XX. Reversible.
std::string EncodeSnapshotName(std::string_view name);
Result<std::string> DecodeSnapshotName(std::string_view file_stem);

/// Named snapshots in one directory, one "<escaped-name>.snap" file each.
class SnapshotStore {
 public:
  /// Opens (creating if needed) `directory` as a snapshot store.
  static Result<SnapshotStore> Open(const std::string& directory);

  /// Atomically publishes `bytes` under `name`, replacing any previous
  /// snapshot of that name. Names must be non-empty (kInvalidArgument);
  /// an empty name is treated as absent by every read path.
  Status Put(const std::string& name, std::string_view bytes) const;

  /// The bytes last Put under `name`; kNotFound when absent, kIoError
  /// when the file cannot be read.
  Result<std::string> Get(const std::string& name) const;

  /// True when a snapshot named `name` exists.
  bool Contains(const std::string& name) const;

  /// Removes `name`; kNotFound when absent.
  Status Delete(const std::string& name) const;

  /// All snapshot names in the directory, sorted.
  Result<std::vector<std::string>> List() const;

  /// Snapshots currently stored (directory scan).
  std::size_t Count() const;

  /// Sum of on-disk snapshot sizes in bytes (directory scan).
  std::uint64_t TotalBytes() const;

  const std::string& directory() const { return directory_; }

 private:
  explicit SnapshotStore(std::string directory)
      : directory_(std::move(directory)) {}

  std::string PathFor(const std::string& name) const;

  std::string directory_;
};

}  // namespace ppdm::store

#endif  // PPDM_STORE_SNAPSHOT_STORE_H_
