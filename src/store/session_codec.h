// Snapshot codec for the serving-layer state: engine::ShardStats,
// api::AttributeState, and whole api::DatasetSession sessions, over the
// endian-stable Writer/Reader byte layer. A snapshot carries the session
// spec plus the mutable accumulation; the fixed layouts (partitions,
// perturbed-value binnings, noise models) are re-derived deterministically
// from the spec on decode, so a decoded session continues byte-identically
// to the live one — the exchangeable representation distributed PPDM
// deployments ship between sites.
//
// Every decode failure (truncation, CRC mismatch, wrong magic, future
// format version, shape mismatch) is a Status error, never a CHECK abort:
// these bytes come from disks and networks, not from callers.

#ifndef PPDM_STORE_SESSION_CODEC_H_
#define PPDM_STORE_SESSION_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "api/attribute_state.h"
#include "api/dataset_session.h"
#include "common/status.h"
#include "engine/shard_stats.h"
#include "engine/thread_pool.h"
#include "store/codec.h"

namespace ppdm::store {

/// Current snapshot format version. Readers accept 1..kFormatVersion.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section tags of a dataset-session snapshot.
inline constexpr std::uint32_t kSpecSectionTag = 0x43455053;   // "SPEC"
inline constexpr std::uint32_t kStateSectionTag = 0x54415453;  // "STAT"

// Field-level encoders: append into the caller's Writer (inside whatever
// section the caller opened) and the bounds-checked inverses.

void EncodeShardStats(const engine::ShardStats& stats, Writer* writer);
Result<engine::ShardStats> DecodeShardStats(Reader* reader);

/// Serializes one attribute's full reconstruction state: the layout
/// parameters (partition domain, noise model, EM options) plus the
/// accumulated counts and warm-start masses.
///
/// Note this is deliberately a *self-contained* shape (it carries the
/// derived noise scale, not the privacy calibration that produced it) —
/// the exchange format for a single attribute's statistics between
/// sites. Dataset-session snapshots do NOT route through it: they store
/// the spec once and only counts + masses per attribute, re-deriving
/// every layout on decode. A field added to AttributeState's mutable
/// accumulation must be threaded through both encoders.
void EncodeAttributeState(const api::AttributeState& state, Writer* writer);
Result<api::AttributeState> DecodeAttributeState(Reader* reader);

void EncodeDatasetSessionSpec(const api::DatasetSessionSpec& spec,
                              Writer* writer);
Result<api::DatasetSessionSpec> DecodeDatasetSessionSpec(Reader* reader);

/// A complete snapshot file of one dataset session: header, SPEC section,
/// STAT section. Captures a consistent point-in-time state under the
/// session's lock; safe concurrently with Ingest()/ReconstructAll().
std::string EncodeDatasetSession(const api::DatasetSession& session);

/// Decodes a snapshot produced by EncodeDatasetSession and rebuilds the
/// session over `pool`. Re-encoding the result reproduces `bytes` exactly.
Result<std::unique_ptr<api::DatasetSession>> DecodeDatasetSession(
    std::string_view bytes, engine::ThreadPool* pool = nullptr);

/// Cheap metadata of a snapshot (for listings): decodes the header and
/// section summaries without rebuilding the session.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t records = 0;
  std::uint64_t batches = 0;
  std::size_t attributes = 0;
};
Result<SnapshotInfo> PeekDatasetSession(std::string_view bytes);

}  // namespace ppdm::store

#endif  // PPDM_STORE_SESSION_CODEC_H_
