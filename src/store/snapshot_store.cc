#include "store/snapshot_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/fault.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppdm::store {
namespace {

namespace fs = std::filesystem;

constexpr char kSnapshotExtension[] = ".snap";

// Store I/O telemetry: bytes moved and wall time per Put/Get. Failures
// count Puts/Gets attempted; bytes count only successful transfers.
struct StoreMetrics {
  obs::Counter& puts;
  obs::Counter& put_bytes;
  obs::Counter& gets;
  obs::Counter& get_bytes;
  obs::Counter& io_failures;
  obs::Histogram& put_seconds;
  obs::Histogram& get_seconds;

  static StoreMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static StoreMetrics* const metrics = new StoreMetrics{
        *registry.GetCounter("ppdm_store_puts_total"),
        *registry.GetCounter("ppdm_store_put_bytes_total"),
        *registry.GetCounter("ppdm_store_gets_total"),
        *registry.GetCounter("ppdm_store_get_bytes_total"),
        *registry.GetCounter("ppdm_store_io_failures_total"),
        *registry.GetHistogram("ppdm_store_put_seconds",
                               obs::Histogram::LatencyBucketsSeconds()),
        *registry.GetHistogram("ppdm_store_get_seconds",
                               obs::Histogram::LatencyBucketsSeconds())};
    return *metrics;
  }
};
constexpr char kHexDigits[] = "0123456789abcdef";

// Fault points at every stage a real disk can fail: armed chaos runs
// inject a Status exactly where EIO would surface. Disarmed cost: one
// relaxed atomic load per stage.
fault::FaultPoint& PutIoFault() {
  static fault::FaultPoint& point = fault::Point("store.put.io");
  return point;
}
fault::FaultPoint& PutSyncFault() {
  static fault::FaultPoint& point = fault::Point("store.put.sync");
  return point;
}
fault::FaultPoint& PutRenameFault() {
  static fault::FaultPoint& point = fault::Point("store.put.rename");
  return point;
}
fault::FaultPoint& GetIoFault() {
  static fault::FaultPoint& point = fault::Point("store.get.io");
  return point;
}

// Closes `fd` and removes `tmp` on an attempt that failed partway: the
// temp must never be left to masquerade as a future snapshot.
void AbandonTemp(int fd, const std::string& tmp) {
  if (fd >= 0) ::close(fd);
  std::error_code ignored;
  fs::remove(tmp, ignored);
}

bool PassThrough(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EncodeSnapshotName(std::string_view name) {
  std::string encoded;
  encoded.reserve(name.size());
  for (char c : name) {
    if (PassThrough(c)) {
      encoded.push_back(c);
    } else {
      const auto byte = static_cast<unsigned char>(c);
      encoded.push_back('%');
      encoded.push_back(kHexDigits[byte >> 4]);
      encoded.push_back(kHexDigits[byte & 0xF]);
    }
  }
  return encoded;
}

Result<std::string> DecodeSnapshotName(std::string_view file_stem) {
  std::string name;
  name.reserve(file_stem.size());
  for (std::size_t i = 0; i < file_stem.size(); ++i) {
    const char c = file_stem[i];
    if (c == '%') {
      if (i + 2 >= file_stem.size() || HexValue(file_stem[i + 1]) < 0 ||
          HexValue(file_stem[i + 2]) < 0) {
        return Status::InvalidArgument(
            "snapshot file name has a malformed %XX escape");
      }
      name.push_back(static_cast<char>(HexValue(file_stem[i + 1]) * 16 +
                                       HexValue(file_stem[i + 2])));
      i += 2;
    } else if (PassThrough(c)) {
      name.push_back(c);
    } else {
      return Status::InvalidArgument(
          StrFormat("snapshot file name has unescaped byte 0x%02x",
                    static_cast<unsigned char>(c)));
    }
  }
  return name;
}

Result<SnapshotStore> SnapshotStore::Open(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IoError(StrFormat("cannot create snapshot directory %s: %s",
                                     directory.c_str(),
                                     ec.message().c_str()));
  }
  if (!fs::is_directory(directory, ec)) {
    return Status::IoError(StrFormat("%s is not a directory",
                                     directory.c_str()));
  }
  // Sweep temp files orphaned by crashes mid-Put, which List/TotalBytes
  // skip (wrong extension) and nothing else would ever delete — a
  // crash-looping checkpointed server must not grow the directory
  // unboundedly. Only stale temps go: a recent one may belong to a live
  // writer in another process.
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    if (entry.path().extension() != ".tmp") continue;
    const fs::file_time_type written = entry.last_write_time(entry_ec);
    if (entry_ec) continue;
    if (now - written > std::chrono::hours(1)) {
      fs::remove(entry.path(), entry_ec);
    }
  }
  return SnapshotStore(directory);
}

std::string SnapshotStore::PathFor(const std::string& name) const {
  return (fs::path(directory_) /
          (EncodeSnapshotName(name) + kSnapshotExtension))
      .string();
}

Status SnapshotStore::Put(const std::string& name,
                          std::string_view bytes) const {
  obs::ScopedSpan span("store.put", &StoreMetrics::Get().put_seconds,
                       &obs::TraceRing::Global(),
                       obs::RenderLabelSet({{"key", name}}));
  StoreMetrics::Get().puts.Increment();
  // An empty name would encode to the dotfile ".snap" — reachable by
  // Get/Contains but invisible to the extension-driven List/Count scans.
  if (name.empty()) {
    StoreMetrics::Get().io_failures.Increment();
    return Status::InvalidArgument("snapshot name must be non-empty");
  }
  return retry::Retry(retry_, [&] { return PutOnce(name, bytes); });
}

Status SnapshotStore::PutOnce(const std::string& name,
                              std::string_view bytes) const {
  const std::string path = PathFor(name);
  // The temp name must be unique per writer: a spill tier and an operator
  // CLI may share the directory, and a deterministic "<path>.tmp" would
  // let their writes interleave and publish mixed content over a good
  // snapshot. pid + counter keeps concurrent processes and threads apart;
  // stale temps from crashes are skipped by List (wrong extension).
  static std::atomic<std::uint64_t> tmp_serial{0};
  const std::string tmp = StrFormat(
      "%s.%d.%llu.tmp", path.c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(
          tmp_serial.fetch_add(1, std::memory_order_relaxed)));

  if (Status injected = PutIoFault().Fire(); !injected.ok()) {
    StoreMetrics::Get().io_failures.Increment();
    return injected;
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    StoreMetrics::Get().io_failures.Increment();
    return Status::IoError(StrFormat("cannot open %s for writing: %s",
                                     tmp.c_str(), std::strerror(errno)));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      AbandonTemp(fd, tmp);
      StoreMetrics::Get().io_failures.Increment();
      return Status::IoError(StrFormat("short write to %s: %s", tmp.c_str(),
                                       std::strerror(err)));
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: without it a crash shortly after Put can leave
  // the *renamed* file empty or torn on some filesystems — the torn write
  // the pre-resilience store could report as success. A failed fsync or
  // close is kDataLoss, distinct from plain kIoError: the caller must not
  // trust the bytes it just "wrote".
  if (Status injected = PutSyncFault().Fire(); !injected.ok()) {
    AbandonTemp(fd, tmp);
    StoreMetrics::Get().io_failures.Increment();
    return injected;
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    AbandonTemp(fd, tmp);
    StoreMetrics::Get().io_failures.Increment();
    return Status::DataLoss(StrFormat("fsync failed on %s: %s", tmp.c_str(),
                                      std::strerror(err)));
  }
  if (::close(fd) != 0) {
    const int err = errno;
    AbandonTemp(-1, tmp);
    StoreMetrics::Get().io_failures.Increment();
    return Status::DataLoss(StrFormat("close failed on %s: %s", tmp.c_str(),
                                      std::strerror(err)));
  }
  if (Status injected = PutRenameFault().Fire(); !injected.ok()) {
    AbandonTemp(-1, tmp);
    StoreMetrics::Get().io_failures.Increment();
    return injected;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    AbandonTemp(-1, tmp);
    StoreMetrics::Get().io_failures.Increment();
    return Status::IoError(StrFormat("cannot publish %s: %s", path.c_str(),
                                     ec.message().c_str()));
  }
  // Make the directory entry durable too, best-effort: some filesystems
  // reject directory fsync (EINVAL), and the rename itself already
  // ordered correctly after the data fsync above.
  const int dir_fd = ::open(directory_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
  StoreMetrics::Get().put_bytes.Increment(bytes.size());
  return Status::Ok();
}

Result<std::string> SnapshotStore::Get(const std::string& name) const {
  obs::ScopedSpan span("store.get", &StoreMetrics::Get().get_seconds,
                       &obs::TraceRing::Global(),
                       obs::RenderLabelSet({{"key", name}}));
  StoreMetrics::Get().gets.Increment();
  return retry::Retry(retry_, [&] { return GetOnce(name); });
}

Result<std::string> SnapshotStore::GetOnce(const std::string& name) const {
  const std::string path = PathFor(name);
  std::error_code ec;
  if (name.empty() || !fs::exists(path, ec)) {
    return Status::NotFound(StrFormat("no snapshot named '%s' in %s",
                                      name.c_str(), directory_.c_str()));
  }
  if (Status injected = GetIoFault().Fire(); !injected.ok()) {
    StoreMetrics::Get().io_failures.Increment();
    return injected;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    StoreMetrics::Get().io_failures.Increment();
    return Status::IoError(StrFormat("cannot open %s", path.c_str()));
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    StoreMetrics::Get().io_failures.Increment();
    return Status::IoError(StrFormat("read failed on %s", path.c_str()));
  }
  StoreMetrics::Get().get_bytes.Increment(bytes.size());
  return bytes;
}

bool SnapshotStore::Contains(const std::string& name) const {
  std::error_code ec;
  return !name.empty() && fs::exists(PathFor(name), ec);
}

Status SnapshotStore::Delete(const std::string& name) const {
  std::error_code ec;
  if (name.empty() || !fs::remove(PathFor(name), ec)) {
    if (ec) {
      return Status::IoError(StrFormat("cannot delete snapshot '%s': %s",
                                       name.c_str(), ec.message().c_str()));
    }
    return Status::NotFound(StrFormat("no snapshot named '%s' in %s",
                                      name.c_str(), directory_.c_str()));
  }
  return Status::Ok();
}

Result<std::vector<std::string>> SnapshotStore::List() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    std::error_code type_ec;
    if (!entry.is_regular_file(type_ec)) continue;
    const fs::path& path = entry.path();
    if (path.extension() != kSnapshotExtension) continue;
    const Result<std::string> name =
        DecodeSnapshotName(path.stem().string());
    if (!name.ok()) continue;  // foreign file; not ours to report
    names.push_back(name.value());
  }
  if (ec) {
    return Status::IoError(StrFormat("cannot list %s: %s",
                                     directory_.c_str(),
                                     ec.message().c_str()));
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::size_t SnapshotStore::Count() const {
  const Result<std::vector<std::string>> names = List();
  return names.ok() ? names.value().size() : 0;
}

std::uint64_t SnapshotStore::TotalBytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    std::error_code type_ec;
    if (!entry.is_regular_file(type_ec)) continue;
    if (entry.path().extension() != kSnapshotExtension) continue;
    std::error_code size_ec;
    const std::uintmax_t size = entry.file_size(size_ec);
    if (!size_ec) total += size;
  }
  return total;
}

}  // namespace ppdm::store
