#include "store/codec.h"

#include <array>
#include <cstring>

#include "common/check.h"
#include "common/strings.h"
#include "obs/metrics.h"

namespace ppdm::store {
namespace {

// Every CRC32 mismatch a reader hits — corruption actually observed on
// the wire/disk, the number an operator alerts on.
obs::Counter& CrcFailuresCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_store_crc_failures_total");
  return counter;
}

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------------ Writer

void Writer::PutHeader(std::uint32_t version) {
  PPDM_CHECK_MSG(buf_.empty(), "PutHeader must be the first write");
  buf_.append(kMagic, sizeof(kMagic));
  PutU32(version);
}

void Writer::PutU8(std::uint8_t value) {
  buf_.push_back(static_cast<char>(value));
}

void Writer::PutU32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void Writer::PutU64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

void Writer::PutDouble(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "IEEE-754 doubles expected");
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void Writer::PutString(std::string_view value) {
  PutU64(value.size());
  buf_.append(value.data(), value.size());
}

void Writer::PutU64Array(const std::vector<std::uint64_t>& values) {
  PutU64(values.size());
  for (std::uint64_t v : values) PutU64(v);
}

void Writer::PutDoubleArray(const std::vector<double>& values) {
  PutU64(values.size());
  for (double v : values) PutDouble(v);
}

void Writer::BeginSection(std::uint32_t tag) {
  PPDM_CHECK_MSG(!in_section_, "sections may not nest");
  in_section_ = true;
  PutU32(tag);
  section_len_offset_ = buf_.size();
  PutU64(0);  // patched by EndSection
  section_crc_offset_ = buf_.size();
  PutU32(0);  // patched by EndSection
  section_payload_offset_ = buf_.size();
}

void Writer::EndSection() {
  PPDM_CHECK_MSG(in_section_, "EndSection without BeginSection");
  in_section_ = false;
  const std::size_t payload_len = buf_.size() - section_payload_offset_;
  PatchU64(section_len_offset_, payload_len);
  PatchU32(section_crc_offset_,
           Crc32(buf_.data() + section_payload_offset_, payload_len));
}

void Writer::PatchU32(std::size_t offset, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buf_[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

void Writer::PatchU64(std::size_t offset, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buf_[offset + i] = static_cast<char>((value >> (8 * i)) & 0xFFu);
  }
}

// ------------------------------------------------------------------ Reader

Status Reader::Need(std::size_t count) const {
  if (count > remaining()) {
    return Status::IoError(StrFormat(
        "snapshot truncated: need %zu more byte(s), have %zu", count,
        remaining()));
  }
  return Status::Ok();
}

Status Reader::ReadHeader(std::uint32_t supported_version,
                          std::uint32_t* version) {
  PPDM_RETURN_IF_ERROR(Need(sizeof(kMagic)));
  if (std::memcmp(bytes_.data() + pos_, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a ppdm snapshot (bad magic)");
  }
  pos_ += sizeof(kMagic);
  PPDM_ASSIGN_OR_RETURN(*version, ReadU32());
  if (*version == 0 || *version > supported_version) {
    return Status::FailedPrecondition(StrFormat(
        "snapshot format version %u unsupported (this build reads 1..%u)",
        *version, supported_version));
  }
  return Status::Ok();
}

Result<std::uint8_t> Reader::ReadU8() {
  PPDM_RETURN_IF_ERROR(Need(1));
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

Result<std::uint32_t> Reader::ReadU32() {
  PPDM_RETURN_IF_ERROR(Need(4));
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 4;
  return value;
}

Result<std::uint64_t> Reader::ReadU64() {
  PPDM_RETURN_IF_ERROR(Need(8));
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes_[pos_ + i]))
             << (8 * i);
  }
  pos_ += 8;
  return value;
}

Result<double> Reader::ReadDouble() {
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t bits, ReadU64());
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> Reader::ReadString() {
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t length, ReadU64());
  PPDM_RETURN_IF_ERROR(Need(length));
  std::string value(bytes_.substr(pos_, length));
  pos_ += length;
  return value;
}

Result<std::vector<std::uint64_t>> Reader::ReadU64Array() {
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  // A corrupt count would provoke a huge allocation before the element
  // reads could fail; bound it by the bytes actually present.
  if (count > remaining() / 8) {
    return Status::IoError(StrFormat(
        "snapshot truncated: array claims %llu element(s), %zu byte(s) left",
        static_cast<unsigned long long>(count), remaining()));
  }
  std::vector<std::uint64_t> values(static_cast<std::size_t>(count));
  for (std::uint64_t& v : values) {
    PPDM_ASSIGN_OR_RETURN(v, ReadU64());
  }
  return values;
}

Result<std::vector<double>> Reader::ReadDoubleArray() {
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > remaining() / 8) {
    return Status::IoError(StrFormat(
        "snapshot truncated: array claims %llu element(s), %zu byte(s) left",
        static_cast<unsigned long long>(count), remaining()));
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) {
    PPDM_ASSIGN_OR_RETURN(v, ReadDouble());
  }
  return values;
}

Result<Reader> Reader::ReadSection(std::uint32_t expected_tag) {
  PPDM_ASSIGN_OR_RETURN(const std::uint32_t tag, ReadU32());
  if (tag != expected_tag) {
    return Status::InvalidArgument(StrFormat(
        "unexpected section tag 0x%08x (want 0x%08x)", tag, expected_tag));
  }
  PPDM_ASSIGN_OR_RETURN(const std::uint64_t length, ReadU64());
  PPDM_ASSIGN_OR_RETURN(const std::uint32_t crc, ReadU32());
  PPDM_RETURN_IF_ERROR(Need(length));
  const std::string_view payload = bytes_.substr(pos_, length);
  if (Crc32(payload) != crc) {
    CrcFailuresCounter().Increment();
    return Status::IoError(StrFormat(
        "section 0x%08x payload fails its CRC32 (corrupt snapshot)", tag));
  }
  pos_ += length;
  return Reader(payload);
}

}  // namespace ppdm::store
