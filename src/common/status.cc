#include "common/status.h"

namespace ppdm {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ppdm
