// Retry with exponential backoff for transient failures — the policy the
// store's I/O paths (Put/Get, spill demotion, re-admission) run under.
//
// Classification: a Status is *transient* when retrying might succeed
// without anything else changing — kUnavailable (injected-transient
// faults, EAGAIN-shaped conditions) and kIoError (EIO-shaped flaky disk).
// Everything else is *permanent* (bad arguments, corrupt captures,
// kInternal injected-permanent faults, kDataLoss torn writes) and is
// returned immediately: retrying a decode error burns attempts without
// hope, and retrying a torn write could mask real damage.
//
// Determinism: backoff jitter is drawn from a seeded splitmix64 stream
// keyed on (jitter_seed, attempt), so two runs with the same policy sleep
// the same schedule. Tests inject a recording `sleep` and a zero-length
// backoff; production code leaves the defaults (real sleeps, capped
// exponential).
//
// Telemetry: every retry bumps ppdm_retry_attempts_total and every
// exhausted policy bumps ppdm_retry_giveups_total, so a scrape shows
// whether the store is riding through faults or giving up.

#ifndef PPDM_COMMON_RETRY_H_
#define PPDM_COMMON_RETRY_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/status.h"

namespace ppdm::retry {

/// True when `status` is worth retrying (kUnavailable or kIoError).
bool IsTransient(const Status& status);

/// How many times to try and how long to wait in between.
struct RetryPolicy {
  /// Total attempts including the first; 0 behaves as 1 (no retries).
  std::size_t max_attempts = 3;

  /// Backoff before retry k (k = 1, 2, ...) is
  ///   min(initial_backoff * multiplier^(k-1), max_backoff)
  /// scaled by a deterministic jitter factor in [0.5, 1.0].
  std::chrono::microseconds initial_backoff{1000};
  double multiplier = 2.0;
  std::chrono::microseconds max_backoff{250000};

  /// Seed of the jitter stream; a fixed seed gives a fixed schedule.
  std::uint64_t jitter_seed = 0x9E3779B97F4A7C15ULL;

  /// Test hook: replaces std::this_thread::sleep_for when set.
  std::function<void(std::chrono::microseconds)> sleep;

  /// The jittered backoff before retry `attempt` (1-based).
  std::chrono::microseconds BackoffFor(std::size_t attempt) const;
};

namespace internal {

/// Retry telemetry (defined in retry.cc). TouchMetrics registers both
/// counters so they render (as 0) in an exposition even before the first
/// retry — chaos tooling asserts on their presence.
void CountRetry();
void CountGiveup();
void TouchMetrics();

/// Sleeps policy.BackoffFor(attempt) via policy.sleep or the real clock.
void SleepFor(const RetryPolicy& policy, std::size_t attempt);

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
Status StatusOf(const Result<T>& result) {
  return result.status();
}

}  // namespace internal

/// Runs `op` (returning Status or Result<T>) up to policy.max_attempts
/// times, sleeping the jittered backoff between transient failures, and
/// returns the last attempt's value. Permanent failures return
/// immediately; an exhausted policy returns the final transient failure
/// (and counts a giveup).
template <typename Fn>
auto Retry(const RetryPolicy& policy, Fn&& op) -> decltype(op()) {
  const std::size_t attempts =
      policy.max_attempts == 0 ? 1 : policy.max_attempts;
  for (std::size_t attempt = 1;; ++attempt) {
    auto result = op();
    const Status status = internal::StatusOf(result);
    if (status.ok() || !IsTransient(status)) return result;
    if (attempt >= attempts) {
      internal::CountGiveup();
      return result;
    }
    internal::CountRetry();
    internal::SleepFor(policy, attempt);
  }
}

}  // namespace ppdm::retry

#endif  // PPDM_COMMON_RETRY_H_
