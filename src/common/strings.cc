#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace ppdm {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.emplace_back(text.substr(start));
      return fields;
    }
    fields.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string JoinDoubles(const std::vector<double>& values,
                        std::string_view sep, int precision) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out.append(sep);
    out += StrFormat("%.*g", precision, values[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::InvalidArgument("empty numeric field");
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a number: '" + buf + "'");
  }
  return value;
}

Result<long long> ParseInt(std::string_view text) {
  const std::string buf(Trim(text));
  if (buf.empty()) return Status::InvalidArgument("empty integer field");
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: '" + buf + "'");
  }
  return value;
}

}  // namespace ppdm
