#include "common/retry.h"

#include <algorithm>
#include <thread>

#include "obs/metrics.h"

namespace ppdm::retry {
namespace {

struct RetryMetrics {
  obs::Counter& attempts;
  obs::Counter& giveups;

  static RetryMetrics& Get() {
    auto& registry = obs::MetricsRegistry::Global();
    static RetryMetrics* const metrics = new RetryMetrics{
        *registry.GetCounter("ppdm_retry_attempts_total"),
        *registry.GetCounter("ppdm_retry_giveups_total")};
    return *metrics;
  }
};

// splitmix64 on (seed, attempt): stateless, so BackoffFor is const and
// two calls for the same attempt agree.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

bool IsTransient(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kIoError;
}

std::chrono::microseconds RetryPolicy::BackoffFor(std::size_t attempt) const {
  if (attempt == 0) attempt = 1;
  double backoff = static_cast<double>(initial_backoff.count());
  for (std::size_t k = 1; k < attempt; ++k) {
    backoff *= multiplier;
    if (backoff >= static_cast<double>(max_backoff.count())) break;
  }
  backoff = std::min(backoff, static_cast<double>(max_backoff.count()));
  // Jitter in [0.5, 1.0]: spreads concurrent retriers without ever
  // shortening the base delay below half.
  const double jitter =
      0.5 + 0.5 * static_cast<double>(Mix(jitter_seed ^ attempt) >> 11) *
                0x1.0p-53;
  return std::chrono::microseconds(
      static_cast<std::chrono::microseconds::rep>(backoff * jitter));
}

namespace internal {

void CountRetry() { RetryMetrics::Get().attempts.Increment(); }

void CountGiveup() { RetryMetrics::Get().giveups.Increment(); }

void TouchMetrics() { (void)RetryMetrics::Get(); }

void SleepFor(const RetryPolicy& policy, std::size_t attempt) {
  const std::chrono::microseconds backoff = policy.BackoffFor(attempt);
  if (policy.sleep) {
    policy.sleep(backoff);
  } else if (backoff.count() > 0) {
    std::this_thread::sleep_for(backoff);
  }
}

}  // namespace internal
}  // namespace ppdm::retry
