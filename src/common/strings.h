// Small string formatting / parsing helpers shared across the library.

#ifndef PPDM_COMMON_STRINGS_H_
#define PPDM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace ppdm {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view text, char delim);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// Joins formatted doubles with `sep` ("1.5, 2, 3").
std::string JoinDoubles(const std::vector<double>& values,
                        std::string_view sep = ", ", int precision = 6);

/// Parses a floating-point number; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses an integer; rejects trailing garbage.
Result<long long> ParseInt(std::string_view text);

}  // namespace ppdm

#endif  // PPDM_COMMON_STRINGS_H_
