// Deterministic pseudo-random number generation.
//
// The generator is a hand-rolled xoshiro256** seeded through SplitMix64.
// Unlike <random>'s distributions, every transformation here is specified by
// this library, so a (seed, call-sequence) pair produces identical streams on
// every platform/compiler — a requirement for reproducible experiments.

#ifndef PPDM_COMMON_RANDOM_H_
#define PPDM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ppdm {

/// Deterministic 64-bit PRNG (xoshiro256**, Blackman & Vigna).
///
/// Not cryptographically secure; statistical quality is more than adequate
/// for Monte-Carlo perturbation and synthetic data generation.
class Rng {
 public:
  /// Seeds the four 256 bits of state by iterating SplitMix64 over `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double UniformReal(double lo, double hi);

  /// Uniform integer in the closed range [lo, hi], bias-free (Lemire).
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Marsaglia polar method; internally cached pair).
  double Gaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// True with probability p. Requires 0 <= p <= 1.
  bool Bernoulli(double p);

  /// Uniformly permutes `items` in place (Fisher–Yates).
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    PPDM_CHECK(items != nullptr);
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(
          UniformInt(0, static_cast<std::int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Derives an independent child generator; used to give each worker /
  /// attribute its own deterministic stream. Advances this generator.
  Rng Fork();

  /// Derives the `stream_index`-th child stream WITHOUT advancing this
  /// generator — the derivation for sharded execution, where shard i of a
  /// parallel job must get the same stream no matter which thread runs it
  /// or in which order shards are claimed.
  ///
  /// The child seed is a SplitMix64 remix of a snapshot of this generator's
  /// state combined with `stream_index` through an odd-multiplier hash.
  /// Both steps are injective in `stream_index` for a fixed parent state,
  /// so all 2^64 stream indices yield pairwise-distinct child seeds — no
  /// two shards can ever share a stream.
  Rng Fork(std::uint64_t stream_index) const;

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ppdm

#endif  // PPDM_COMMON_RANDOM_H_
