#include "common/fault.h"

#include <cstdlib>
#include <deque>
#include <map>
#include <utility>

#include "common/strings.h"
#include "obs/metrics.h"

namespace ppdm::fault {
namespace {

// Fault points live forever (instrumented code caches references), so the
// registry is a leaky singleton like the metrics registry it mirrors.
struct PointRegistry {
  std::mutex mu;
  std::deque<FaultPoint> points;                 // stable addresses
  std::map<std::string, FaultPoint*> by_name;

  static PointRegistry& Get() {
    static PointRegistry* const registry = new PointRegistry();
    return *registry;
  }
};

obs::Counter& InjectedCounter() {
  static obs::Counter& counter = *obs::MetricsRegistry::Global().GetCounter(
      "ppdm_fault_injected_total");
  return counter;
}

// xorshift64*: tiny, seedable, and plenty uniform for a failure coin.
std::uint64_t NextRandom(std::uint64_t* state) {
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

double NextUniform(std::uint64_t* state) {
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

}  // namespace

Status FaultPoint::Fire() {
  // Disarmed fast path: the only cost the production binary ever pays.
  if (!armed_.load(std::memory_order_acquire)) return Status::Ok();

  bool fire = false;
  StatusCode code = StatusCode::kUnavailable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Re-check under the lock: a concurrent Disarm may have won.
    if (!armed_.load(std::memory_order_acquire)) return Status::Ok();
    ++fire_count_;
    switch (trigger_) {
      case Trigger::kEveryNth:
        fire = fire_count_ % every_n_ == 0;
        break;
      case Trigger::kProbability:
        fire = NextUniform(&rng_state_) < probability_;
        break;
      case Trigger::kOnce:
        fire = true;
        armed_.store(false, std::memory_order_release);
        break;
    }
    code = code_;
  }
  if (!fire) return Status::Ok();
  injected_.fetch_add(1, std::memory_order_relaxed);
  InjectedCounter().Increment();
  return Status(code, StrFormat("%s fault injected at '%s'",
                                code == StatusCode::kInternal ? "permanent"
                                                              : "transient",
                                name_.c_str()));
}

void FaultPoint::Arm(Trigger trigger, std::uint64_t every_n,
                     double probability, std::uint64_t seed,
                     StatusCode code) {
  std::lock_guard<std::mutex> lock(mu_);
  trigger_ = trigger;
  every_n_ = every_n == 0 ? 1 : every_n;
  fire_count_ = 0;
  probability_ = probability;
  rng_state_ = seed == 0 ? 1 : seed;  // xorshift must not start at 0
  code_ = code;
  armed_.store(true, std::memory_order_release);
}

void FaultPoint::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
}

FaultPoint& Point(const std::string& name) {
  PointRegistry& registry = PointRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  const auto it = registry.by_name.find(name);
  if (it != registry.by_name.end()) return *it->second;
  registry.points.emplace_back(name);
  FaultPoint* point = &registry.points.back();
  registry.by_name.emplace(name, point);
  return *point;
}

Status ArmFromSpec(const std::string& spec) {
  // Arming is the moment chaos becomes possible: register the injection
  // counter now so a faulted run's exposition shows it even at zero.
  InjectedCounter();
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%s' is not name=trigger",
                    entry.c_str()));
    }
    const std::string name = entry.substr(0, eq);
    std::string trigger = entry.substr(eq + 1);

    StatusCode code = StatusCode::kUnavailable;
    const std::size_t comma = trigger.find(',');
    if (comma != std::string::npos) {
      const std::string kind = trigger.substr(comma + 1);
      trigger.resize(comma);
      if (kind == "permanent") {
        code = StatusCode::kInternal;
      } else if (kind != "transient") {
        return Status::InvalidArgument(
            StrFormat("fault spec entry '%s': kind must be "
                      "transient|permanent",
                      entry.c_str()));
      }
    }

    FaultPoint& point = Point(name);
    if (trigger == "off") {
      point.Disarm();
    } else if (trigger == "once") {
      point.Arm(FaultPoint::Trigger::kOnce, 1, 0.0, 1, code);
    } else if (trigger.rfind("every:", 0) == 0) {
      char* parse_end = nullptr;
      const std::string arg = trigger.substr(6);
      const unsigned long long n =
          std::strtoull(arg.c_str(), &parse_end, 10);
      if (arg.empty() || parse_end == nullptr || *parse_end != '\0' ||
          n == 0) {
        return Status::InvalidArgument(
            StrFormat("fault spec entry '%s': every:N needs N >= 1",
                      entry.c_str()));
      }
      point.Arm(FaultPoint::Trigger::kEveryNth,
                static_cast<std::uint64_t>(n), 0.0, 1, code);
    } else if (trigger.rfind("prob:", 0) == 0) {
      std::string arg = trigger.substr(5);
      std::uint64_t seed = 1;
      const std::size_t colon = arg.find(':');
      if (colon != std::string::npos) {
        char* parse_end = nullptr;
        const std::string seed_str = arg.substr(colon + 1);
        seed = std::strtoull(seed_str.c_str(), &parse_end, 10);
        if (seed_str.empty() || parse_end == nullptr || *parse_end != '\0') {
          return Status::InvalidArgument(
              StrFormat("fault spec entry '%s': prob:P:SEED needs an "
                        "integer seed",
                        entry.c_str()));
        }
        arg.resize(colon);
      }
      char* parse_end = nullptr;
      const double p = std::strtod(arg.c_str(), &parse_end);
      if (arg.empty() || parse_end == nullptr || *parse_end != '\0' ||
          !(p >= 0.0) || !(p <= 1.0)) {
        return Status::InvalidArgument(
            StrFormat("fault spec entry '%s': prob:P needs P in [0,1]",
                      entry.c_str()));
      }
      point.Arm(FaultPoint::Trigger::kProbability, 1, p, seed, code);
    } else {
      return Status::InvalidArgument(
          StrFormat("fault spec entry '%s': trigger must be every:N | "
                    "prob:P[:SEED] | once | off",
                    entry.c_str()));
    }
  }
  return Status::Ok();
}

Status ArmFromEnv() {
  const char* spec = std::getenv("PPDM_FAULTS");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  return ArmFromSpec(spec);
}

void DisarmAll() {
  PointRegistry& registry = PointRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (FaultPoint& point : registry.points) point.Disarm();
}

bool AnyArmed() {
  PointRegistry& registry = PointRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  for (const FaultPoint& point : registry.points) {
    if (point.armed()) return true;
  }
  return false;
}

std::uint64_t TotalInjected() {
  PointRegistry& registry = PointRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::uint64_t total = 0;
  for (const FaultPoint& point : registry.points) total += point.injected();
  return total;
}

std::vector<std::string> RegisteredPoints() {
  PointRegistry& registry = PointRegistry::Get();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const FaultPoint& point : registry.points) {
    names.push_back(point.name());
  }
  return names;
}

}  // namespace ppdm::fault
