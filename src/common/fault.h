// Deterministic fault injection: a process-wide registry of named fault
// points compiled into failure-prone code paths (store I/O, spill
// demotion, service admission, ...). A disarmed point costs one relaxed
// atomic load and a predicted branch — nothing else — so the points stay
// in release builds and the chaos harness runs against the binary that
// ships. Every injected failure is a Status, never an abort: the fault
// layer *tests* the "malformed or hostile input is a Status" contract,
// it never weakens it.
//
// Arming is explicit and deterministic. A trigger is one of:
//
//   every:N           fail the Nth, 2Nth, 3Nth ... firing of the point
//   prob:P[:SEED]     fail each firing with probability P, drawn from a
//                     seeded per-point xorshift stream (default seed 1);
//                     deterministic for a fixed firing sequence
//   once              fail exactly the next firing, then self-disarm
//   off               disarm the point
//
// and a spec string arms several points at once:
//
//   store.put.io=every:50;spill.demote=once;registry.readmit=prob:0.1:7
//
// An entry may append ",permanent": the injected Status is then
// kInternal (never retried by retry::IsTransient) instead of the default
// kUnavailable (transient — the retry layer will back off and retry).
//
// The registry is a leaky singleton; points are created on first use
// (either by the instrumented code path's first Fire() or by arming a
// name that no code has reached yet). ArmFromEnv() reads PPDM_FAULTS and
// is called by the CLI entry point, so any ppdm command can run under
// injected faults without a rebuild.

#ifndef PPDM_COMMON_FAULT_H_
#define PPDM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppdm::fault {

/// One named fault point. Instrumented code holds a reference (the
/// function-local static idiom) and calls Fire() at the spot where the
/// real failure would surface.
class FaultPoint {
 public:
  explicit FaultPoint(std::string name) : name_(std::move(name)) {}

  FaultPoint(const FaultPoint&) = delete;
  FaultPoint& operator=(const FaultPoint&) = delete;

  /// Ok unless the point is armed and its trigger fires, in which case
  /// the injected error Status (kUnavailable, or kInternal for a
  /// ",permanent" arming). The disarmed fast path is one relaxed atomic
  /// load; trigger bookkeeping runs under a per-point mutex only while
  /// armed.
  Status Fire();

  const std::string& name() const { return name_; }

  /// True while a trigger is installed (a fired `once` trigger disarms).
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  /// Failures this point has injected since process start (monotone;
  /// survives re-arming and DisarmAll).
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  void Disarm();

 private:
  friend Status ArmFromSpec(const std::string& spec);

  enum class Trigger { kEveryNth, kProbability, kOnce };

  void Arm(Trigger trigger, std::uint64_t every_n, double probability,
           std::uint64_t seed, StatusCode code);

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> injected_{0};

  std::mutex mu_;                      // guards the trigger state below
  Trigger trigger_ = Trigger::kOnce;
  std::uint64_t every_n_ = 1;          // kEveryNth period
  std::uint64_t fire_count_ = 0;       // firings since arming
  double probability_ = 0.0;           // kProbability threshold
  std::uint64_t rng_state_ = 1;        // kProbability xorshift stream
  StatusCode code_ = StatusCode::kUnavailable;
};

/// The process-wide point named `name`, created on first use. The
/// reference stays valid forever (leaky singleton registry).
FaultPoint& Point(const std::string& name);

/// Arms every `name=trigger[,permanent]` entry of `spec` (';'-separated;
/// empty entries are skipped, so a trailing ';' is fine). kInvalidArgument
/// on the first malformed entry; entries before it stay armed.
Status ArmFromSpec(const std::string& spec);

/// Arms from the PPDM_FAULTS environment variable; a no-op when unset or
/// empty. Returns the ArmFromSpec status of its value.
Status ArmFromEnv();

/// Disarms every registered point (injected() counts are retained).
void DisarmAll();

/// True when at least one point is armed.
bool AnyArmed();

/// Total failures injected across all points since process start.
std::uint64_t TotalInjected();

/// Names of all points created so far (registration order): every point
/// some code path has reached plus every armed name. Test/docs hook.
std::vector<std::string> RegisteredPoints();

}  // namespace ppdm::fault

#endif  // PPDM_COMMON_FAULT_H_
