// Fatal assertion macros for programmer errors (contract violations).
//
// PPDM_CHECK fires in all build types: invariants of a data-mining library
// guard statistical correctness, so silently continuing past a violated
// precondition would corrupt results rather than crash. Recoverable
// conditions (bad user input, I/O failures) use Status instead; see status.h.

#ifndef PPDM_COMMON_CHECK_H_
#define PPDM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ppdm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "PPDM_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace ppdm::internal

/// Aborts with a diagnostic unless `cond` holds.
#define PPDM_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ppdm::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
    }                                                                 \
  } while (0)

/// Aborts with a diagnostic and explanatory message unless `cond` holds.
#define PPDM_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::ppdm::internal::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                                 \
  } while (0)

/// Convenience comparisons.
#define PPDM_CHECK_EQ(a, b) PPDM_CHECK((a) == (b))
#define PPDM_CHECK_NE(a, b) PPDM_CHECK((a) != (b))
#define PPDM_CHECK_LT(a, b) PPDM_CHECK((a) < (b))
#define PPDM_CHECK_LE(a, b) PPDM_CHECK((a) <= (b))
#define PPDM_CHECK_GT(a, b) PPDM_CHECK((a) > (b))
#define PPDM_CHECK_GE(a, b) PPDM_CHECK((a) >= (b))

#endif  // PPDM_COMMON_CHECK_H_
