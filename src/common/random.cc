#include "common/random.h"

#include <cmath>

namespace ppdm {
namespace {

// SplitMix64: expands one 64-bit seed into well-distributed state words.
std::uint64_t SplitMix64(std::uint64_t* x) {
  std::uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
  // All-zero state is the one forbidden fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // Top 53 bits scaled by 2^-53 yields doubles equidistributed in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  PPDM_CHECK_LT(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  PPDM_CHECK_LE(lo, hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range requested.
    return static_cast<std::int64_t>(Next());
  }
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * span;
  auto low = static_cast<std::uint64_t>(m);
  if (low < span) {
    const std::uint64_t threshold = (0ULL - span) % span;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * span;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: produces two independent N(0,1) per acceptance.
  double u, v, s;
  do {
    u = 2.0 * UniformDouble() - 1.0;
    v = 2.0 * UniformDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double stddev) {
  PPDM_CHECK_GE(stddev, 0.0);
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  PPDM_CHECK(p >= 0.0 && p <= 1.0);
  return UniformDouble() < p;
}

Rng Rng::Fork() { return Rng(Next()); }

Rng Rng::Fork(std::uint64_t stream_index) const {
  // x is injective in stream_index (odd multiplier mod 2^64; the XORed
  // state snapshot is constant per parent), and SplitMix64's finalizer is
  // a bijection, so distinct indices give distinct child seeds.
  std::uint64_t x = state_[0] ^ Rotl(state_[1], 23) ^
                    (0x9E3779B97F4A7C15ULL * (stream_index + 1));
  return Rng(SplitMix64(&x));
}

}  // namespace ppdm
