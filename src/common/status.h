// Lightweight Status / Result error handling in the RocksDB / Arrow idiom.
//
// Library code in ppdm does not throw exceptions (Google style). Fallible
// operations return a Status (or Result<T> when they also produce a value);
// programmer errors are caught by the PPDM_CHECK macros in check.h.

#ifndef PPDM_COMMON_STATUS_H_
#define PPDM_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace ppdm {

/// Error categories for ppdm operations.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed an argument violating the contract.
  kOutOfRange,        ///< Index / value outside the permitted domain.
  kFailedPrecondition,///< Object not in a state that allows the operation.
  kNotFound,          ///< A named entity (attribute, file, ...) is missing.
  kIoError,           ///< Underlying file / stream operation failed.
  kInternal,          ///< Invariant violation inside the library.
  kUnavailable,       ///< Transient failure; retrying may succeed.
  kResourceExhausted, ///< A bounded resource (queue, budget) is full.
  kDeadlineExceeded,  ///< The operation's deadline passed before it ran.
  kCancelled,         ///< The operation was cancelled before it ran.
  kDataLoss,          ///< Written data may be torn or not durable.
};

/// Human-readable name of a status code (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an explanatory message.
///
/// Usage:
///   Status s = dataset.WriteCsv(path);
///   if (!s.ok()) return s;   // propagate
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, mirroring the RocksDB style.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "InvalidArgument: why it failed".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error sum type, analogous to arrow::Result / absl::StatusOr.
///
/// A Result is either a T (status().ok() is true) or an error Status. Access
/// to value() on an error Result is a checked fatal error.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, enables `return value;`).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit, enables `return status;`).
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    // A Result must never hold an OK status without a value; degrade to an
    // internal error so the bug is visible rather than silent.
    if (std::get<Status>(rep_).ok()) {
      rep_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff this Result holds a value.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The error status; Status::Ok() when a value is held.
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  /// The held value. Must only be called when ok().
  const T& value() const& { return std::get<T>(rep_); }
  T& value() & { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  /// The held value, or `fallback` when this Result is an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace ppdm

/// Propagates a non-OK Status out of the enclosing function:
///   PPDM_RETURN_IF_ERROR(dataset.WriteCsv(path));
/// replaces the hand-rolled `if (Status s = ...; !s.ok()) return s;`.
#define PPDM_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::ppdm::Status _ppdm_status_ = (expr);         \
    if (!_ppdm_status_.ok()) return _ppdm_status_; \
  } while (false)

/// Unwraps a Result<T> into `lhs`, propagating the error Status out of the
/// enclosing function on failure:
///   PPDM_ASSIGN_OR_RETURN(const double value, ParseDouble(token));
/// `lhs` may declare a new variable or assign to an existing one.
#define PPDM_ASSIGN_OR_RETURN(lhs, rexpr) \
  PPDM_ASSIGN_OR_RETURN_IMPL_(            \
      PPDM_STATUS_CONCAT_(_ppdm_result_, __LINE__), lhs, rexpr)

#define PPDM_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#define PPDM_STATUS_CONCAT_(a, b) PPDM_STATUS_CONCAT_IMPL_(a, b)
#define PPDM_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PPDM_COMMON_STATUS_H_
