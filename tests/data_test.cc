// Unit tests for schema, dataset, row batches, CSV persistence, and
// splitting.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/row_batch.h"
#include "data/schema.h"
#include "data/split.h"

namespace ppdm::data {
namespace {

Schema TwoFieldSchema() {
  return Schema({{"age", AttributeKind::kContinuous, 20.0, 80.0},
                 {"elevel", AttributeKind::kDiscrete, 0.0, 4.0}});
}

// ------------------------------------------------------------------ Schema

TEST(SchemaTest, FieldAccessors) {
  const Schema s = TwoFieldSchema();
  EXPECT_EQ(s.NumFields(), 2u);
  EXPECT_EQ(s.Field(0).name, "age");
  EXPECT_DOUBLE_EQ(s.Field(0).Range(), 60.0);
  EXPECT_EQ(s.Field(1).kind, AttributeKind::kDiscrete);
}

TEST(SchemaTest, IndexOfFindsFields) {
  const Schema s = TwoFieldSchema();
  auto idx = s.IndexOf("elevel");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx.value(), 1u);
  EXPECT_FALSE(s.IndexOf("salary").ok());
  EXPECT_EQ(s.IndexOf("salary").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ValidateAcceptsGoodSchema) {
  EXPECT_TRUE(TwoFieldSchema().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsDuplicates) {
  const Schema s({{"x", AttributeKind::kContinuous, 0.0, 1.0},
                  {"x", AttributeKind::kContinuous, 0.0, 1.0}});
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, ValidateRejectsEmptyDomain) {
  const Schema s({{"x", AttributeKind::kContinuous, 1.0, 1.0}});
  EXPECT_FALSE(s.Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEmptyName) {
  const Schema s({{"", AttributeKind::kContinuous, 0.0, 1.0}});
  EXPECT_FALSE(s.Validate().ok());
}

// ----------------------------------------------------------------- Dataset

TEST(DatasetTest, AddRowAndAccess) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({25.0, 1.0}, 0);
  d.AddRow({60.0, 3.0}, 1);
  EXPECT_EQ(d.NumRows(), 2u);
  EXPECT_EQ(d.NumCols(), 2u);
  EXPECT_DOUBLE_EQ(d.At(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(d.At(1, 1), 3.0);
  EXPECT_EQ(d.Label(0), 0);
  EXPECT_EQ(d.Label(1), 1);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, ColumnIsContiguous) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({25.0, 1.0}, 0);
  d.AddRow({60.0, 3.0}, 1);
  const std::vector<double>& ages = d.Column(0);
  ASSERT_EQ(ages.size(), 2u);
  EXPECT_DOUBLE_EQ(ages[0], 25.0);
  EXPECT_DOUBLE_EQ(ages[1], 60.0);
}

TEST(DatasetTest, RowMaterialization) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({42.0, 2.0}, 1);
  const std::vector<double> row = d.Row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 42.0);
  EXPECT_DOUBLE_EQ(row[1], 2.0);
}

TEST(DatasetTest, SetOverwritesCell) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({42.0, 2.0}, 1);
  d.Set(0, 0, 43.5);
  EXPECT_DOUBLE_EQ(d.At(0, 0), 43.5);
}

TEST(DatasetTest, SelectPreservesOrderAndLabels) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 10; ++i) {
    d.AddRow({20.0 + i, static_cast<double>(i % 5)}, i % 2);
  }
  const Dataset sel = d.Select({7, 2, 9});
  ASSERT_EQ(sel.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(sel.At(0, 0), 27.0);
  EXPECT_DOUBLE_EQ(sel.At(1, 0), 22.0);
  EXPECT_EQ(sel.Label(2), 1);
  EXPECT_TRUE(sel.Validate().ok());
}

TEST(DatasetTest, RowsWithLabelAndClassCounts) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 9; ++i) {
    d.AddRow({20.0 + i, 0.0}, i < 6 ? 0 : 1);
  }
  EXPECT_EQ(d.RowsWithLabel(0).size(), 6u);
  EXPECT_EQ(d.RowsWithLabel(1).size(), 3u);
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 6u);
  EXPECT_EQ(counts[1], 3u);
}

TEST(DatasetTest, MutableColumnWritesThrough) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({42.0, 2.0}, 0);
  (*d.MutableColumn(0))[0] = 50.0;
  EXPECT_DOUBLE_EQ(d.At(0, 0), 50.0);
}

TEST(DatasetTest, ReservePresizesWithoutChangingContents) {
  Dataset d(TwoFieldSchema(), 2);
  d.Reserve(100);
  EXPECT_EQ(d.NumRows(), 0u);
  d.AddRow({25.0, 1.0}, 0);
  const double* before = d.Column(0).data();
  // 100 reserved rows: the next 99 appends must not reallocate.
  for (int i = 0; i < 99; ++i) d.AddRow({30.0 + i, 2.0}, 1);
  EXPECT_EQ(d.Column(0).data(), before);
  EXPECT_EQ(d.NumRows(), 100u);
  EXPECT_TRUE(d.Validate().ok());
}

// -------------------------------------------------------------- RowBatch

TEST(RowBatchTest, ViewsRowMajorBufferWithLabels) {
  const std::vector<double> values{25.0, 1.0,   //
                                   60.0, 3.0,   //
                                   40.0, 2.0};
  const std::vector<int> labels{0, 1, 0};
  const RowBatch batch(values.data(), 3, 2, labels.data());
  EXPECT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.num_cols(), 2u);
  EXPECT_TRUE(batch.has_labels());
  EXPECT_DOUBLE_EQ(batch.At(1, 0), 60.0);
  EXPECT_DOUBLE_EQ(batch.row(2)[1], 2.0);
  EXPECT_EQ(batch.Label(1), 1);

  const RowBatch slice = batch.Slice(1, 2);
  EXPECT_EQ(slice.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(slice.At(0, 0), 60.0);
  EXPECT_EQ(slice.Label(1), 0);
}

TEST(RowBatchTest, AddRowsScattersIntoColumns) {
  const std::vector<double> values{25.0, 1.0, 60.0, 3.0};
  const std::vector<int> labels{0, 1};
  Dataset d(TwoFieldSchema(), 2);
  d.AddRows(RowBatch(values.data(), 2, 2, labels.data()));
  ASSERT_EQ(d.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(d.At(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(d.At(1, 1), 3.0);
  EXPECT_EQ(d.Label(1), 1);
  EXPECT_TRUE(d.Validate().ok());
}

// --------------------------------------------------------------------- CSV

TEST(CsvTest, RoundTrip) {
  Dataset d(TwoFieldSchema(), 2);
  d.AddRow({25.75, 1.0}, 0);
  d.AddRow({60.125, 3.0}, 1);
  const std::string path = testing::TempDir() + "/ppdm_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());

  auto loaded = ReadCsv(TwoFieldSchema(), 2, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& back = loaded.value();
  ASSERT_EQ(back.NumRows(), 2u);
  EXPECT_DOUBLE_EQ(back.At(0, 0), 25.75);
  EXPECT_DOUBLE_EQ(back.At(1, 0), 60.125);
  EXPECT_EQ(back.Label(0), 0);
  EXPECT_EQ(back.Label(1), 1);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadRejectsMissingFile) {
  auto r = ReadCsv(TwoFieldSchema(), 2, "/nonexistent/nope.csv");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, ReadRejectsWrongHeader) {
  const std::string path = testing::TempDir() + "/ppdm_badheader.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("foo,elevel,class\n25,1,0\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadCsv(TwoFieldSchema(), 2, path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, ReadRejectsOutOfRangeLabel) {
  const std::string path = testing::TempDir() + "/ppdm_badlabel.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("age,elevel,class\n25,1,7\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadCsv(TwoFieldSchema(), 2, path).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, ReadSkipsBlankLines) {
  const std::string path = testing::TempDir() + "/ppdm_blank.csv";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("age,elevel,class\n25,1,0\n\n30,2,1\n", f);
    std::fclose(f);
  }
  auto r = ReadCsv(TwoFieldSchema(), 2, path);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumRows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadCsvBatchesStreamsRecordBatches) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 7; ++i) {
    d.AddRow({20.0 + i, static_cast<double>(i % 5)}, i % 2);
  }
  const std::string path = testing::TempDir() + "/ppdm_batches.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());

  // Stream in batches of 3 and rebuild: 3 + 3 + 1 rows, same table.
  Dataset rebuilt(TwoFieldSchema(), 2);
  std::vector<std::size_t> batch_sizes;
  auto total = ReadCsvBatches(TwoFieldSchema(), 2, path, /*batch_rows=*/3,
                              [&](const RowBatch& batch) {
                                batch_sizes.push_back(batch.num_rows());
                                rebuilt.AddRows(batch);
                                return Status::Ok();
                              });
  ASSERT_TRUE(total.ok()) << total.status().ToString();
  EXPECT_EQ(total.value(), 7u);
  EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{3, 3, 1}));
  ASSERT_EQ(rebuilt.NumRows(), d.NumRows());
  for (std::size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(rebuilt.Row(r), d.Row(r));
    EXPECT_EQ(rebuilt.Label(r), d.Label(r));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, ReadCsvBatchesStopsOnSinkError) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 6; ++i) d.AddRow({20.0 + i, 1.0}, 0);
  const std::string path = testing::TempDir() + "/ppdm_sinkstop.csv";
  ASSERT_TRUE(WriteCsv(d, path).ok());

  int calls = 0;
  auto total = ReadCsvBatches(TwoFieldSchema(), 2, path, /*batch_rows=*/2,
                              [&](const RowBatch&) {
                                ++calls;
                                return Status::FailedPrecondition("full");
                              });
  ASSERT_FALSE(total.ok());
  EXPECT_EQ(total.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(calls, 1);
  std::remove(path.c_str());
}

// ------------------------------------------------------------------- Split

TEST(SplitTest, SizesMatchFraction) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 100; ++i) d.AddRow({20.0 + i * 0.6, 0.0}, i % 2);
  Rng rng(1);
  const TrainTest tt = TrainTestSplit(d, 0.2, &rng);
  EXPECT_EQ(tt.test.NumRows(), 20u);
  EXPECT_EQ(tt.train.NumRows(), 80u);
}

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 50; ++i) d.AddRow({20.0 + i, 0.0}, 0);
  Rng rng(2);
  const TrainTest tt = TrainTestSplit(d, 0.3, &rng);
  std::vector<double> all;
  for (std::size_t r = 0; r < tt.train.NumRows(); ++r) {
    all.push_back(tt.train.At(r, 0));
  }
  for (std::size_t r = 0; r < tt.test.NumRows(); ++r) {
    all.push_back(tt.test.At(r, 0));
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)], 20.0 + i);
  }
}

TEST(SplitTest, DeterministicGivenSeed) {
  Dataset d(TwoFieldSchema(), 2);
  for (int i = 0; i < 30; ++i) d.AddRow({20.0 + i, 0.0}, 0);
  Rng rng1(77), rng2(77);
  const TrainTest a = TrainTestSplit(d, 0.5, &rng1);
  const TrainTest b = TrainTestSplit(d, 0.5, &rng2);
  ASSERT_EQ(a.test.NumRows(), b.test.NumRows());
  for (std::size_t r = 0; r < a.test.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(a.test.At(r, 0), b.test.At(r, 0));
  }
}

}  // namespace
}  // namespace ppdm::data
