// Tests for the parallel execution engine: the thread pool and its
// data-parallel primitives, mergeable shard statistics, and — the contract
// everything else leans on — thread-count invariance: every engine job
// yields byte-identical results for every number of worker threads.

#include <atomic>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "engine/batch.h"
#include "engine/shard_stats.h"
#include "engine/simd.h"
#include "engine/thread_pool.h"
#include "stats/histogram.h"
#include "perturb/noise_model.h"
#include "perturb/randomizer.h"
#include "reconstruct/by_class.h"
#include "reconstruct/reconstructor.h"
#include "synth/generator.h"
#include "tree/trainer.h"

namespace ppdm::engine {
namespace {

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{1},
                              std::size_t{4}}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    for (auto& v : visits) v = 0;
    ParallelFor(&pool, kN, [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForWithNullPoolRunsInline) {
  std::size_t count = 0;
  ParallelFor(nullptr, 17, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 17u);
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsANoop) {
  ThreadPool pool(2);
  bool ran = false;
  ParallelFor(&pool, 0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    ParallelFor(&pool, 50, [&](std::size_t i) {
      sum += static_cast<int>(i);
    });
    EXPECT_EQ(sum.load(), 49 * 50 / 2);
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptionsAndKeepsPoolUsable) {
  ThreadPool pool(3);
  EXPECT_THROW(
      ParallelFor(&pool, 100,
                  [](std::size_t i) {
                    if (i == 37) throw std::runtime_error("poisoned");
                  }),
      std::runtime_error);
  // The barrier released cleanly: the pool still works afterwards.
  std::atomic<int> sum{0};
  ParallelFor(&pool, 10, [&](std::size_t) { ++sum; });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPoolTest, MakeChunksCoversRangeWithoutOverlap) {
  const std::vector<ChunkRange> chunks = MakeChunks(10, 3);
  ASSERT_EQ(chunks.size(), 4u);
  std::size_t expected_begin = 0;
  for (const ChunkRange& c : chunks) {
    EXPECT_EQ(c.begin, expected_begin);
    expected_begin = c.end;
  }
  EXPECT_EQ(chunks.back().end, 10u);
}

TEST(ThreadPoolTest, MakeChunksEdgeCases) {
  EXPECT_TRUE(MakeChunks(0, 4).empty());
  EXPECT_TRUE(MakeChunks(0, 0).empty());
  // chunk_size 0 = one chunk spanning everything.
  const std::vector<ChunkRange> whole = MakeChunks(7, 0);
  ASSERT_EQ(whole.size(), 1u);
  EXPECT_EQ(whole[0].begin, 0u);
  EXPECT_EQ(whole[0].end, 7u);
  // chunk_size > n also yields a single chunk.
  EXPECT_EQ(MakeChunks(7, 100).size(), 1u);
}

TEST(ThreadPoolTest, ChunkedReduceFoldsInChunkOrder) {
  ThreadPool pool(4);
  const std::vector<ChunkRange> chunks = MakeChunks(100, 7);
  // Concatenating chunk indices in fold order must yield 0,1,2,...
  const std::vector<std::size_t> order = ChunkedReduce<std::vector<std::size_t>>(
      &pool, chunks, {},
      [](std::size_t c, const ChunkRange&) {
        return std::vector<std::size_t>{c};
      },
      [](std::vector<std::size_t>* acc, const std::vector<std::size_t>& v) {
        acc->insert(acc->end(), v.begin(), v.end());
      });
  ASSERT_EQ(order.size(), chunks.size());
  for (std::size_t c = 0; c < order.size(); ++c) EXPECT_EQ(order[c], c);
}

// ------------------------------------------------------------- ShardStats

ShardStats RandomStats(std::uint64_t seed, std::size_t bins,
                       std::size_t classes, std::size_t n) {
  Rng rng(seed);
  ShardStats stats(bins, classes);
  for (std::size_t i = 0; i < n; ++i) {
    stats.Add(static_cast<std::size_t>(
                  rng.UniformInt(0, static_cast<std::int64_t>(bins) - 1)),
              static_cast<std::size_t>(
                  rng.UniformInt(0, static_cast<std::int64_t>(classes) - 1)));
  }
  return stats;
}

bool StatsEqual(const ShardStats& a, const ShardStats& b) {
  if (a.num_bins() != b.num_bins() || a.num_classes() != b.num_classes() ||
      a.record_count() != b.record_count()) {
    return false;
  }
  for (std::size_t bin = 0; bin < a.num_bins(); ++bin) {
    for (std::size_t c = 0; c < a.num_classes(); ++c) {
      if (a.BinClassCount(bin, c) != b.BinClassCount(bin, c)) return false;
    }
  }
  return true;
}

TEST(ShardStatsTest, CountsAndAccessorsAgree) {
  ShardStats stats(4, 2);
  stats.Add(0, 0);
  stats.Add(0, 1);
  stats.Add(3, 1);
  EXPECT_EQ(stats.record_count(), 3u);
  EXPECT_EQ(stats.BinCount(0), 2u);
  EXPECT_EQ(stats.BinCount(3), 1u);
  EXPECT_EQ(stats.ClassCount(0), 1u);
  EXPECT_EQ(stats.ClassCount(1), 2u);
  EXPECT_EQ(stats.BinClassCount(0, 1), 1u);
  EXPECT_EQ(stats.BinWeights()[0], 2.0);
  EXPECT_EQ(stats.BinWeightsForClass(1)[3], 1.0);
}

TEST(ShardStatsTest, MergeIsAssociative) {
  const ShardStats a = RandomStats(1, 8, 3, 500);
  const ShardStats b = RandomStats(2, 8, 3, 700);
  const ShardStats c = RandomStats(3, 8, 3, 300);

  ShardStats left(8, 3);  // (a ⊕ b) ⊕ c
  left.MergeFrom(a);
  left.MergeFrom(b);
  ShardStats left_then_c = left;
  left_then_c.MergeFrom(c);

  ShardStats bc(8, 3);  // a ⊕ (b ⊕ c)
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  ShardStats a_then_bc = a;
  a_then_bc.MergeFrom(bc);

  EXPECT_TRUE(StatsEqual(left_then_c, a_then_bc));
}

TEST(ShardStatsTest, ShardedIngestEqualsSequentialPass) {
  Rng rng(7);
  std::vector<double> values(5000);
  std::vector<int> labels(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.UniformReal(-1.0, 2.0);
    labels[i] = static_cast<int>(rng.UniformInt(0, 1));
  }
  const auto bin_of = [](double v) {
    return static_cast<std::size_t>(v < 0.0 ? 0 : (v < 1.0 ? 1 : 2));
  };

  const ShardStats sequential =
      IngestSharded(values, &labels, 2, bin_of, 3, nullptr, 0);
  ThreadPool pool(4);
  for (std::size_t shard_size : {std::size_t{1}, std::size_t{333},
                                 std::size_t{10000}}) {
    const ShardStats sharded =
        IngestSharded(values, &labels, 2, bin_of, 3, &pool, shard_size);
    EXPECT_TRUE(StatsEqual(sequential, sharded))
        << "shard_size " << shard_size;
  }
}

TEST(ShardStatsTest, IngestEmptyInput) {
  const std::vector<double> values;
  const ShardStats stats =
      IngestSharded(values, nullptr, 1, [](double) { return 0u; }, 4,
                    nullptr, 16);
  EXPECT_EQ(stats.record_count(), 0u);
  EXPECT_EQ(stats.BinCount(0), 0u);
}

TEST(ShardStatsTest, ApproxHeapBytesTracksSizeNotCapacity) {
  const ShardStats stats(7, 3);
  // The counts table is allocated once at its final shape; the accounting
  // must report that shape, not whatever the allocator rounded up to.
  EXPECT_EQ(stats.ApproxHeapBytes(), 7u * 3u * sizeof(std::uint64_t));
  EXPECT_EQ(stats.counts().size(), 21u);
}

// ------------------------------------------------------------------- SIMD

// Restores the dispatched path on scope exit.
struct PathGuard {
  simd::Path saved = simd::ActivePath();
  ~PathGuard() { (void)simd::SetPath(saved); }
};

TEST(SimdTest, PadLanesRoundsUpToLaneMultiple) {
  EXPECT_EQ(simd::PadLanes(0), 0u);
  EXPECT_EQ(simd::PadLanes(1), 4u);
  EXPECT_EQ(simd::PadLanes(4), 4u);
  EXPECT_EQ(simd::PadLanes(5), 8u);
  EXPECT_EQ(simd::PadLanes(100), 100u);
}

TEST(SimdTest, SetPathFromStringRejectsUnknownNames) {
  PathGuard guard;
  EXPECT_FALSE(simd::SetPathFromString("sse9").ok());
  EXPECT_TRUE(simd::SetPathFromString("scalar").ok());
  EXPECT_EQ(simd::ActivePath(), simd::Path::kScalar);
  EXPECT_TRUE(simd::SetPathFromString("off").ok());
  EXPECT_EQ(simd::ActivePath(), simd::Path::kOff);
}

TEST(SimdTest, BinIndicesMatchesHistogramBinOfOnEveryPath) {
  PathGuard guard;
  const stats::Histogram hist(-0.3, 1.3, 16);
  Rng rng(41);
  std::vector<double> values;
  // Random interior values plus every hazardous edge: the exact bounds,
  // bin edges, values far outside the range (the cvttpd overflow hazard),
  // and values a ULP around the clamps.
  for (int i = 0; i < 1000; ++i) values.push_back(rng.UniformReal(-1.0, 2.0));
  for (std::size_t b = 0; b <= 16; ++b) {
    values.push_back(-0.3 + 0.1 * static_cast<double>(b));
  }
  values.insert(values.end(),
                {-0.3, 1.3, -1e18, 1e18, -0.3000000000000001,
                 1.2999999999999998, 0.0, 1.0});

  std::vector<simd::Path> paths{simd::Path::kOff, simd::Path::kScalar};
  if (simd::Avx2Supported()) paths.push_back(simd::Path::kAvx2);
  for (simd::Path path : paths) {
    ASSERT_TRUE(simd::SetPath(path).ok());
    std::vector<std::uint32_t> idx(values.size());
    simd::BinIndices(values.data(), values.size(), hist.lo(), hist.hi(),
                     hist.width(), hist.bins(), idx.data());
    for (std::size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(idx[i], hist.BinOf(values[i]))
          << "path=" << simd::PathName(path) << " value=" << values[i];
    }
  }
}

TEST(SimdTest, DotAndScaleAddByteIdenticalScalarVsAvx2) {
  if (!simd::Avx2Supported()) GTEST_SKIP() << "AVX2 unavailable";
  Rng rng(43);
  const std::size_t n = simd::PadLanes(157);
  std::vector<double> a(n, 0.0), b(n, 0.0);
  for (std::size_t i = 0; i < 157; ++i) {
    a[i] = rng.UniformReal(-1.0, 1.0);
    b[i] = rng.UniformReal(0.0, 2.0);
  }
  const double dot_scalar = simd::Dot(a.data(), b.data(), n,
                                      simd::Path::kScalar);
  const double dot_avx2 = simd::Dot(a.data(), b.data(), n,
                                    simd::Path::kAvx2);
  EXPECT_EQ(std::memcmp(&dot_scalar, &dot_avx2, sizeof(double)), 0);

  std::vector<double> acc1(n, 0.5), acc2(n, 0.5);
  simd::ScaleAdd(acc1.data(), a.data(), b.data(), 1.7, n,
                 simd::Path::kScalar);
  simd::ScaleAdd(acc2.data(), a.data(), b.data(), 1.7, n,
                 simd::Path::kAvx2);
  EXPECT_EQ(std::memcmp(acc1.data(), acc2.data(), n * sizeof(double)), 0);
}

TEST(SimdTest, IngestBinnedColumnEqualsFunctorIngest) {
  PathGuard guard;
  const stats::Histogram hist(0.0, 1.0, 12);
  Rng rng(47);
  std::vector<double> values(5000);
  for (double& v : values) v = rng.UniformReal(-0.5, 1.5);
  const auto bin_of = [&](double v) { return hist.BinOf(v); };
  const ShardStats reference =
      IngestSharded(values, nullptr, 1, bin_of, hist.bins(), nullptr, 0);

  ThreadPool pool(4);
  std::vector<simd::Path> paths{simd::Path::kOff, simd::Path::kScalar};
  if (simd::Avx2Supported()) paths.push_back(simd::Path::kAvx2);
  for (simd::Path path : paths) {
    ASSERT_TRUE(simd::SetPath(path).ok());
    for (std::size_t shard_size : {std::size_t{0}, std::size_t{100},
                                   std::size_t{333}}) {
      const ShardStats binned = IngestBinnedColumn(
          values.data(), values.size(), hist.lo(), hist.hi(), hist.width(),
          hist.bins(), shard_size == 0 ? nullptr : &pool, shard_size);
      EXPECT_TRUE(StatsEqual(reference, binned))
          << "path=" << simd::PathName(path)
          << " shard_size=" << shard_size;
    }
  }
}

TEST(SimdTest, IngestBinnedColumnEmptyInput) {
  const ShardStats stats =
      IngestBinnedColumn(nullptr, 0, 0.0, 1.0, 0.25, 4, nullptr, 16);
  EXPECT_EQ(stats.record_count(), 0u);
  EXPECT_EQ(stats.num_bins(), 4u);
}

TEST(SimdTest, AlignedDoublesIsCacheLineAlignedAndZeroed) {
  simd::AlignedDoubles buf(37);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf.data()[i], 0.0);
  }
}

// ------------------------------------------------------------------ Batch

// Perturbed benchmark data shared by the reconstruction tests.
struct EngineFixture {
  EngineFixture() {
    synth::GeneratorOptions gen;
    gen.num_records = 4000;
    gen.seed = 11;
    original = synth::Generate(gen);
    perturb::RandomizerOptions noise;
    noise.kind = perturb::NoiseKind::kUniform;
    noise.privacy_fraction = 1.0;
    noise.seed = 99;
    randomizer = std::make_unique<perturb::Randomizer>(original->schema(),
                                                       noise);
    perturbed = randomizer->Perturb(*original);
  }
  std::optional<data::Dataset> original;
  std::optional<data::Dataset> perturbed;
  std::unique_ptr<perturb::Randomizer> randomizer;
};

bool ReconstructionsIdentical(const reconstruct::Reconstruction& a,
                              const reconstruct::Reconstruction& b) {
  return a.masses == b.masses && a.iterations == b.iterations &&
         a.chi_square_trace == b.chi_square_trace &&
         a.log_likelihood_trace == b.log_likelihood_trace &&
         a.sample_count == b.sample_count;
}

TEST(BatchTest, ReconstructParallelIsThreadCountInvariant) {
  const EngineFixture fx;
  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      fx.perturbed->schema().Field(synth::kSalary), 25);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), {});
  const std::vector<double>& column = fx.perturbed->Column(synth::kSalary);

  BatchOptions base;
  base.shard_size = 512;
  base.num_threads = 0;  // inline — the reference decomposition
  const reconstruct::Reconstruction reference =
      Batch(base).ReconstructParallel(column, partition, reconstructor);
  EXPECT_GT(reference.iterations, 0u);

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    BatchOptions options = base;
    options.num_threads = threads;
    const reconstruct::Reconstruction parallel =
        Batch(options).ReconstructParallel(column, partition, reconstructor);
    // Byte-identical: same masses, same traces, bit for bit.
    EXPECT_TRUE(ReconstructionsIdentical(reference, parallel))
        << "num_threads " << threads;
    ASSERT_EQ(parallel.masses.size(), reference.masses.size());
    EXPECT_EQ(std::memcmp(parallel.masses.data(), reference.masses.data(),
                          reference.masses.size() * sizeof(double)),
              0)
        << "num_threads " << threads;
  }
}

TEST(BatchTest, ReconstructParallelTracksSequentialFitClosely) {
  // The chunked summation regroups floating-point adds, so the engine is
  // not bit-equal to the sequential Fit — but it must agree to rounding
  // noise on every mass.
  const EngineFixture fx;
  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      fx.perturbed->schema().Field(synth::kAge), 20);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kAge), {});
  const std::vector<double>& column = fx.perturbed->Column(synth::kAge);

  const reconstruct::Reconstruction sequential =
      reconstructor.Fit(column, partition);
  BatchOptions options;
  options.num_threads = 4;
  options.shard_size = 256;
  const reconstruct::Reconstruction parallel =
      Batch(options).ReconstructParallel(column, partition, reconstructor);
  ASSERT_EQ(parallel.masses.size(), sequential.masses.size());
  for (std::size_t k = 0; k < sequential.masses.size(); ++k) {
    EXPECT_NEAR(parallel.masses[k], sequential.masses[k], 1e-9);
  }
}

TEST(BatchTest, ReconstructParallelEmptyInputYieldsUniform) {
  const perturb::NoiseModel noise = perturb::NoiseModel::Uniform(0.5);
  const reconstruct::BayesReconstructor reconstructor(noise, {});
  const reconstruct::Partition partition(0.0, 1.0, 8);
  BatchOptions options;
  options.num_threads = 2;
  const reconstruct::Reconstruction r = Batch(options).ReconstructParallel(
      {}, partition, reconstructor);
  ASSERT_EQ(r.masses.size(), 8u);
  for (double m : r.masses) EXPECT_DOUBLE_EQ(m, 0.125);
  EXPECT_EQ(r.sample_count, 0u);
}

TEST(BatchTest, ReconstructParallelSingleShard) {
  // shard_size 0 = one shard; must agree with the multi-shard run up to
  // EM summation regrouping and bit-exactly with the sequential Fit.
  const EngineFixture fx;
  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      fx.perturbed->schema().Field(synth::kLoan), 15);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kLoan), {});
  const std::vector<double>& column = fx.perturbed->Column(synth::kLoan);

  BatchOptions options;
  options.num_threads = 3;
  options.shard_size = 0;
  const reconstruct::Reconstruction single_shard =
      Batch(options).ReconstructParallel(column, partition, reconstructor);
  EXPECT_GT(single_shard.iterations, 0u);
  ASSERT_EQ(single_shard.masses.size(), 15u);
  double total = 0.0;
  for (double m : single_shard.masses) total += m;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BatchTest, ReconstructByClassParallelMatchesSequentialBitwise) {
  const EngineFixture fx;
  const reconstruct::Partition partition = reconstruct::Partition::ForField(
      fx.perturbed->schema().Field(synth::kSalary), 20);
  const reconstruct::BayesReconstructor reconstructor(
      fx.randomizer->ModelFor(synth::kSalary), {});

  const std::vector<reconstruct::Reconstruction> sequential =
      reconstruct::ReconstructByClass(*fx.perturbed, synth::kSalary,
                                      partition, reconstructor);
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    BatchOptions options;
    options.num_threads = threads;
    const std::vector<reconstruct::Reconstruction> parallel =
        Batch(options).ReconstructByClassParallel(*fx.perturbed,
                                                  synth::kSalary, partition,
                                                  reconstructor);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t c = 0; c < sequential.size(); ++c) {
      EXPECT_TRUE(ReconstructionsIdentical(sequential[c], parallel[c]))
          << "class " << c << " num_threads " << threads;
    }
  }
}

TEST(BatchTest, PerturbShardsIsThreadCountInvariantAndDeterministic) {
  const EngineFixture fx;
  BatchOptions base;
  base.shard_size = 777;
  base.num_threads = 0;
  const data::Dataset reference =
      Batch(base).PerturbShards(*fx.randomizer, *fx.original);
  // Perturbation did something.
  EXPECT_NE(reference.At(0, synth::kSalary),
            fx.original->At(0, synth::kSalary));

  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    BatchOptions options = base;
    options.num_threads = threads;
    const data::Dataset perturbed =
        Batch(options).PerturbShards(*fx.randomizer, *fx.original);
    for (std::size_t c = 0; c < reference.NumCols(); ++c) {
      EXPECT_EQ(perturbed.Column(c), reference.Column(c))
          << "column " << c << " num_threads " << threads;
    }
  }
}

TEST(BatchTest, IngestShardsCountsPerClass) {
  std::vector<double> values{0.1, 0.9, 0.5, 0.2, 0.8};
  std::vector<int> labels{0, 1, 0, 1, 1};
  BatchOptions options;
  options.num_threads = 2;
  options.shard_size = 2;
  const ShardStats stats =
      Batch(options).IngestShards(values, labels, 2, 0.0, 1.0, 2);
  EXPECT_EQ(stats.record_count(), 5u);
  EXPECT_EQ(stats.ClassCount(0), 2u);
  EXPECT_EQ(stats.ClassCount(1), 3u);
  EXPECT_EQ(stats.BinCount(0), 2u);          // 0.1, 0.2 → [0, 0.5)
  EXPECT_EQ(stats.BinCount(1), 3u);          // 0.5, 0.8, 0.9 → [0.5, 1]
  EXPECT_EQ(stats.BinClassCount(1, 1), 2u);  // 0.9, 0.8
  EXPECT_EQ(stats.BinClassCount(1, 0), 1u);  // 0.5
}

TEST(BatchTest, LocalModeTreeIsPoolInvariantWithPerNodeFanOut) {
  // Local re-reconstructs at every large-enough node, and those per-node
  // counts tables now fan out over the pool; the tree must still be
  // identical for every pool size.
  const EngineFixture fx;
  tree::TreeOptions options;
  options.intervals = 15;
  options.max_depth = 6;
  options.local_min_records_to_reconstruct = 400;  // force per-node EM
  const tree::DecisionTree sequential = tree::TrainDecisionTree(
      *fx.perturbed, tree::TrainingMode::kLocal, options,
      fx.randomizer.get(), nullptr);
  for (std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    const tree::DecisionTree parallel = tree::TrainDecisionTree(
        *fx.perturbed, tree::TrainingMode::kLocal, options,
        fx.randomizer.get(), &pool);
    EXPECT_EQ(sequential.Describe(fx.perturbed->schema()),
              parallel.Describe(fx.perturbed->schema()))
        << "num_threads " << threads;
  }
}

TEST(BatchTest, TrainedTreeIsPoolInvariant) {
  const EngineFixture fx;
  tree::TreeOptions options;
  options.intervals = 20;
  const tree::DecisionTree sequential = tree::TrainDecisionTree(
      *fx.perturbed, tree::TrainingMode::kByClass, options,
      fx.randomizer.get(), nullptr);
  ThreadPool pool(4);
  const tree::DecisionTree parallel = tree::TrainDecisionTree(
      *fx.perturbed, tree::TrainingMode::kByClass, options,
      fx.randomizer.get(), &pool);
  EXPECT_EQ(sequential.NumNodes(), parallel.NumNodes());
  EXPECT_EQ(sequential.Describe(fx.perturbed->schema()),
            parallel.Describe(fx.perturbed->schema()));
}

}  // namespace
}  // namespace ppdm::engine
