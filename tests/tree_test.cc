// Tests for the decision-tree layer: gini arithmetic, boundary search,
// pruning, the tree model itself, and the five training modes.

#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "perturb/randomizer.h"
#include "synth/generator.h"
#include "tree/decision_tree.h"
#include "tree/gini.h"
#include "tree/prune.h"
#include "tree/trainer.h"

namespace ppdm::tree {
namespace {

// -------------------------------------------------------------------- Gini

TEST(GiniTest, PureNodeIsZero) {
  EXPECT_DOUBLE_EQ(GiniImpurity({10.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({0.0, 7.0}), 0.0);
}

TEST(GiniTest, BalancedBinaryIsHalf) {
  EXPECT_DOUBLE_EQ(GiniImpurity({5.0, 5.0}), 0.5);
}

TEST(GiniTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(GiniImpurity({0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniImpurity({}), 0.0);
}

TEST(GiniTest, ThreeClassUniform) {
  EXPECT_NEAR(GiniImpurity({1.0, 1.0, 1.0}), 2.0 / 3.0, 1e-12);
}

TEST(GiniTest, ToleratesRoundoffNegatives) {
  EXPECT_GE(GiniImpurity({5.0, -1e-12}), 0.0);
}

// ------------------------------------------------------- BestBoundarySplit

TEST(SplitTest, FindsPerfectSeparation) {
  // class 0 in intervals 0-1, class 1 in intervals 2-3: boundary at 2.
  const std::vector<std::vector<double>> counts{{10.0, 10.0, 0.0, 0.0},
                                                {0.0, 0.0, 10.0, 10.0}};
  const SplitCandidate best = BestBoundarySplit(counts, 1.0);
  ASSERT_TRUE(best.valid);
  EXPECT_EQ(best.edge, 2u);
  EXPECT_NEAR(best.gain, 0.5, 1e-12);  // parent gini 0.5, children pure
  EXPECT_DOUBLE_EQ(best.left_weight, 20.0);
  EXPECT_DOUBLE_EQ(best.right_weight, 20.0);
}

TEST(SplitTest, NoSplitWhenSingleInterval) {
  const std::vector<std::vector<double>> counts{{5.0}, {5.0}};
  EXPECT_FALSE(BestBoundarySplit(counts, 1.0).valid);
}

TEST(SplitTest, RespectsMinSideWeight) {
  const std::vector<std::vector<double>> counts{{1.0, 0.0, 0.0, 0.0},
                                                {0.0, 10.0, 10.0, 10.0}};
  // Separating interval 0 leaves only one record on the left.
  const SplitCandidate best = BestBoundarySplit(counts, 5.0);
  if (best.valid) {
    EXPECT_GE(best.left_weight, 5.0);
    EXPECT_GE(best.right_weight, 5.0);
  }
}

TEST(SplitTest, AlternatingPatternGainIsWeak) {
  // Classes alternate across intervals: the best single boundary only
  // peels off one band, so its gain is far below the 0.5 of a clean split.
  const std::vector<std::vector<double>> counts{{10.0, 0.0, 10.0, 0.0},
                                                {0.0, 10.0, 0.0, 10.0}};
  const SplitCandidate best = BestBoundarySplit(counts, 1.0);
  ASSERT_TRUE(best.valid);
  EXPECT_LT(best.gain, 0.2);
  EXPECT_GT(best.gain, 0.0);
}

TEST(SplitTest, FractionalCountsWork) {
  const std::vector<std::vector<double>> counts{{2.5, 2.5, 0.1, 0.1},
                                                {0.1, 0.1, 2.5, 2.5}};
  const SplitCandidate best = BestBoundarySplit(counts, 0.5);
  ASSERT_TRUE(best.valid);
  EXPECT_EQ(best.edge, 2u);
}

TEST(SplitTest, ZeroWeightTable) {
  const std::vector<std::vector<double>> counts{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_FALSE(BestBoundarySplit(counts, 0.0).valid);
}

// ----------------------------------------------------------- DecisionTree

DecisionTree StumpTree() {
  // x0 < 5 -> class 0 else class 1.
  std::vector<Node> nodes(3);
  nodes[0].attribute = 0;
  nodes[0].threshold = 5.0;
  nodes[0].left = 1;
  nodes[0].right = 2;
  nodes[0].label = 0;
  nodes[0].num_records = 10;
  nodes[1].label = 0;
  nodes[1].num_records = 5;
  nodes[2].label = 1;
  nodes[2].num_records = 5;
  return DecisionTree(std::move(nodes));
}

TEST(DecisionTreeTest, PredictFollowsThresholds) {
  const DecisionTree t = StumpTree();
  EXPECT_EQ(t.Predict({4.9}), 0);
  EXPECT_EQ(t.Predict({5.0}), 1);  // boundary value goes right
  EXPECT_EQ(t.Predict({7.3}), 1);
}

TEST(DecisionTreeTest, Shape) {
  const DecisionTree t = StumpTree();
  EXPECT_EQ(t.NumNodes(), 3u);
  EXPECT_EQ(t.NumLeaves(), 2u);
  EXPECT_EQ(t.Depth(), 2u);
}

TEST(DecisionTreeTest, DescribeMentionsAttributeName) {
  const DecisionTree t = StumpTree();
  data::Schema schema({{"age", data::AttributeKind::kContinuous, 0.0, 10.0}});
  const std::string text = t.Describe(schema);
  EXPECT_NE(text.find("age < 5"), std::string::npos);
  EXPECT_NE(text.find("class 1"), std::string::npos);
}

// ---------------------------------------------------------------- Pruning

TEST(PruneTest, PessimisticRateGrowsWithZ) {
  const double a = PessimisticErrorRate(5.0, 100.0, 0.5);
  const double b = PessimisticErrorRate(5.0, 100.0, 2.0);
  EXPECT_GT(b, a);
  EXPECT_GT(a, 0.05);  // above the raw rate
}

TEST(PruneTest, PessimisticRateShrinksWithN) {
  const double small_n = PessimisticErrorRate(1.0, 10.0, 0.6745);
  const double large_n = PessimisticErrorRate(10.0, 100.0, 0.6745);
  EXPECT_GT(small_n, large_n);  // same rate, less certain at small n
}

TEST(PruneTest, ReducedErrorPrunesUselessSplit) {
  // Both children predict the SAME as the parent majority would; holdout
  // shows no benefit, so the split must be pruned.
  std::vector<Node> nodes(3);
  nodes[0] = {0, 5.0, 1, 2, 0, 100};
  nodes[1] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 0, 50};
  nodes[2] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 0, 50};
  const std::vector<std::vector<double>> records{{3.0}, {7.0}};
  const std::vector<int> labels{0, 0};
  const auto pruned = ReducedErrorPrune(std::move(nodes), records, labels);
  EXPECT_EQ(pruned.size(), 1u);
  EXPECT_TRUE(pruned[0].IsLeaf());
}

TEST(PruneTest, ReducedErrorKeepsUsefulSplit) {
  std::vector<Node> nodes(3);
  nodes[0] = {0, 5.0, 1, 2, 0, 100};
  nodes[1] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 0, 50};
  nodes[2] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 1, 50};
  // Holdout agrees with the children and disagrees with the root label.
  const std::vector<std::vector<double>> records{{3.0}, {7.0}, {8.0}};
  const std::vector<int> labels{0, 1, 1};
  const auto pruned = ReducedErrorPrune(std::move(nodes), records, labels);
  EXPECT_EQ(pruned.size(), 3u);
  EXPECT_FALSE(pruned[0].IsLeaf());
}

TEST(PruneTest, CompactionKeepsPredictions) {
  // A deep chain where only the top split is useful.
  std::vector<Node> nodes(5);
  nodes[0] = {0, 5.0, 1, 2, 0, 100};
  nodes[1] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 0, 50};
  nodes[2] = {0, 7.0, 3, 4, 1, 50};
  nodes[3] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 1, 25};
  nodes[4] = {-1, 0.0, Node::kNoChild, Node::kNoChild, 1, 25};
  const std::vector<std::vector<double>> records{{3.0}, {6.0}, {8.0}};
  const std::vector<int> labels{0, 1, 1};
  const auto pruned = ReducedErrorPrune(std::move(nodes), records, labels);
  const DecisionTree t(pruned);
  EXPECT_EQ(t.Predict({3.0}), 0);
  EXPECT_EQ(t.Predict({8.0}), 1);
  EXPECT_EQ(t.NumNodes(), 3u);  // useless second split removed
}

// ---------------------------------------------------------- TrainingModes

TEST(TrainerTest, ModeNames) {
  EXPECT_EQ(TrainingModeName(TrainingMode::kOriginal), "Original");
  EXPECT_EQ(TrainingModeName(TrainingMode::kByClass), "ByClass");
  EXPECT_EQ(TrainingModeName(TrainingMode::kLocal), "Local");
}

TEST(TrainerTest, ModeUsesReconstruction) {
  EXPECT_FALSE(ModeUsesReconstruction(TrainingMode::kOriginal));
  EXPECT_FALSE(ModeUsesReconstruction(TrainingMode::kRandomized));
  EXPECT_TRUE(ModeUsesReconstruction(TrainingMode::kGlobal));
  EXPECT_TRUE(ModeUsesReconstruction(TrainingMode::kByClass));
  EXPECT_TRUE(ModeUsesReconstruction(TrainingMode::kLocal));
}

class TrainerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    synth::GeneratorOptions gen;
    gen.num_records = 6000;
    gen.function = synth::Function::kF1;
    gen.seed = 31;
    train_ = std::make_unique<data::Dataset>(synth::Generate(gen));
    gen.num_records = 1500;
    gen.seed = 32;
    test_ = std::make_unique<data::Dataset>(synth::Generate(gen));
  }

  std::unique_ptr<data::Dataset> train_, test_;
};

TEST_F(TrainerFixture, OriginalLearnsF1Perfectly) {
  TreeOptions options;
  const DecisionTree t =
      TrainDecisionTree(*train_, TrainingMode::kOriginal, options);
  EXPECT_GE(core::EvaluateTree(t, *test_).Accuracy(), 0.99);
  EXPECT_LE(t.Depth(), options.max_depth);
}

TEST_F(TrainerFixture, ByClassSurvivesHeavyNoise) {
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  const DecisionTree t = TrainDecisionTree(perturbed, TrainingMode::kByClass,
                                           {}, &rz);
  EXPECT_GE(core::EvaluateTree(t, *test_).Accuracy(), 0.85);
}

TEST_F(TrainerFixture, ReconstructionBeatsRandomizedUnderHeavyNoise) {
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  const double byclass =
      core::EvaluateTree(TrainDecisionTree(perturbed, TrainingMode::kByClass,
                                           {}, &rz),
                         *test_)
          .Accuracy();
  const double randomized = core::EvaluateTree(
      TrainDecisionTree(perturbed, TrainingMode::kRandomized, {}), *test_)
                                .Accuracy();
  EXPECT_GT(byclass, randomized + 0.1);
}

TEST_F(TrainerFixture, LocalRecoversF1Structure) {
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 0.5;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  const DecisionTree t = TrainDecisionTree(perturbed, TrainingMode::kLocal,
                                           {}, &rz);
  // Per-node reconstruction locates the two age boundaries to within one
  // interval at this scale (6k records).
  EXPECT_GE(core::EvaluateTree(t, *test_).Accuracy(), 0.85);
}

TEST_F(TrainerFixture, GlobalRunsAndIsReasonable) {
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kGaussian;
  noise.privacy_fraction = 0.5;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  const DecisionTree t = TrainDecisionTree(perturbed, TrainingMode::kGlobal,
                                           {}, &rz);
  EXPECT_GE(core::EvaluateTree(t, *test_).Accuracy(), 0.6);
}

TEST_F(TrainerFixture, LowNoiseModesConvergeToOriginal) {
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kGaussian;
  noise.privacy_fraction = 0.1;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  for (TrainingMode mode : {TrainingMode::kRandomized, TrainingMode::kByClass,
                            TrainingMode::kGlobal}) {
    const DecisionTree t = TrainDecisionTree(
        perturbed, mode, {},
        ModeUsesReconstruction(mode) ? &rz : nullptr);
    EXPECT_GE(core::EvaluateTree(t, *test_).Accuracy(), 0.9)
        << TrainingModeName(mode);
  }
}

TEST_F(TrainerFixture, PruningShrinksRandomizedTree) {
  perturb::RandomizerOptions noise;
  noise.privacy_fraction = 1.0;
  const perturb::Randomizer rz(train_->schema(), noise);
  const data::Dataset perturbed = rz.Perturb(*train_);
  TreeOptions unpruned;
  unpruned.pruning = PruningMode::kNone;
  TreeOptions pruned;  // default reduced-error
  const DecisionTree big =
      TrainDecisionTree(perturbed, TrainingMode::kRandomized, unpruned);
  const DecisionTree small =
      TrainDecisionTree(perturbed, TrainingMode::kRandomized, pruned);
  EXPECT_LT(small.NumNodes(), big.NumNodes());
}

TEST_F(TrainerFixture, DeterministicTraining) {
  TreeOptions options;
  const DecisionTree a =
      TrainDecisionTree(*train_, TrainingMode::kOriginal, options);
  const DecisionTree b =
      TrainDecisionTree(*train_, TrainingMode::kOriginal, options);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    EXPECT_EQ(a.nodes()[i].attribute, b.nodes()[i].attribute);
    EXPECT_DOUBLE_EQ(a.nodes()[i].threshold, b.nodes()[i].threshold);
  }
}

TEST(TrainerEdgeTest, SingleClassDataYieldsLeaf) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 1.0}});
  data::Dataset d(schema, 2);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) d.AddRow({rng.UniformDouble()}, 0);
  const DecisionTree t = TrainDecisionTree(d, TrainingMode::kOriginal, {});
  EXPECT_EQ(t.NumNodes(), 1u);
  EXPECT_EQ(t.Predict({0.3}), 0);
}

TEST(TrainerEdgeTest, ThreeClassProblemIsLearnable) {
  // The paper's benchmark is binary, but nothing in the library is: gini,
  // routing, and prediction must handle k classes. Three bands of x.
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 3.0}});
  data::Dataset d(schema, 3);
  Rng rng(2);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.UniformReal(0.0, 3.0);
    d.AddRow({x}, static_cast<int>(x));  // class = band index
  }
  TreeOptions options;
  options.intervals = 30;
  const DecisionTree t = TrainDecisionTree(d, TrainingMode::kOriginal,
                                           options);
  EXPECT_EQ(t.Predict({0.5}), 0);
  EXPECT_EQ(t.Predict({1.5}), 1);
  EXPECT_EQ(t.Predict({2.5}), 2);
}

TEST(TrainerEdgeTest, ThreeClassByClassReconstruction) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 3.0}});
  data::Dataset d(schema, 3);
  Rng rng(3);
  perturb::RandomizerOptions noise_options;
  noise_options.kind = perturb::NoiseKind::kGaussian;
  noise_options.privacy_fraction = 0.3;
  const perturb::Randomizer rz(schema, noise_options);
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.UniformReal(0.0, 3.0);
    std::vector<double> record{x};
    Rng noise_rng(static_cast<std::uint64_t>(i) + 99);
    rz.PerturbRecord(&record, &noise_rng);
    d.AddRow(record, static_cast<int>(x));
  }
  const DecisionTree t = TrainDecisionTree(d, TrainingMode::kByClass, {},
                                           &rz);
  int correct = 0;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.UniformReal(0.0, 3.0);
    if (t.Predict({x}) == static_cast<int>(x)) ++correct;
  }
  EXPECT_GE(correct, 240);  // >=80% on a 3-class problem under noise
}

TEST(TrainerEdgeTest, TinyDatasetDoesNotCrash) {
  data::Schema schema({{"x", data::AttributeKind::kContinuous, 0.0, 1.0}});
  data::Dataset d(schema, 2);
  d.AddRow({0.1}, 0);
  d.AddRow({0.9}, 1);
  const DecisionTree t = TrainDecisionTree(d, TrainingMode::kOriginal, {});
  EXPECT_GE(t.NumNodes(), 1u);
}

}  // namespace
}  // namespace ppdm::tree
