// Unit and property tests for the stats substrate: special functions,
// distributions, histograms, distances, and descriptive statistics.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/random.h"
#include "stats/distribution.h"
#include "stats/histogram.h"
#include "stats/normal.h"
#include "stats/summary.h"

namespace ppdm::stats {
namespace {

// ----------------------------------------------------------------- Normal

TEST(NormalTest, PdfPeakAndSymmetry) {
  EXPECT_NEAR(NormalPdf(0.0), 0.3989422804014327, 1e-12);
  EXPECT_DOUBLE_EQ(NormalPdf(1.3), NormalPdf(-1.3));
}

TEST(NormalTest, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalTest, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.841344746068543), 1.0, 1e-9);
}

// ---------------------------------------------------- Distribution common

struct DistCase {
  const char* name;
  std::shared_ptr<const Distribution> dist;
};

class DistributionContract : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionContract, CdfIsMonotone) {
  const auto& d = *GetParam().dist;
  const double lo = std::isfinite(d.SupportLo()) ? d.SupportLo() : -50.0;
  const double hi = std::isfinite(d.SupportHi()) ? d.SupportHi() : 50.0;
  double prev = -1.0;
  for (int i = 0; i <= 200; ++i) {
    const double x = lo + (hi - lo) * i / 200.0;
    const double c = d.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST_P(DistributionContract, QuantileInvertsCdf) {
  const auto& d = *GetParam().dist;
  for (double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const double x = d.Quantile(p);
    EXPECT_NEAR(d.Cdf(x), p, 1e-6) << GetParam().name << " p=" << p;
  }
}

TEST_P(DistributionContract, PdfIntegratesToOne) {
  const auto& d = *GetParam().dist;
  const double lo = std::isfinite(d.SupportLo()) ? d.SupportLo() : -50.0;
  const double hi = std::isfinite(d.SupportHi()) ? d.SupportHi() : 50.0;
  const int steps = 20000;
  const double h = (hi - lo) / steps;
  double integral = 0.0;
  for (int i = 0; i < steps; ++i) {
    integral += d.Pdf(lo + (i + 0.5) * h) * h;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3) << GetParam().name;
}

TEST_P(DistributionContract, SampleMeanMatchesMean) {
  const auto& d = *GetParam().dist;
  Rng rng(99);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += d.Sample(&rng);
  const double spread = std::isfinite(d.SupportHi())
                            ? d.SupportHi() - d.SupportLo()
                            : 10.0;
  EXPECT_NEAR(sum / n, d.Mean(), 0.02 * spread) << GetParam().name;
}

TEST_P(DistributionContract, SamplesRespectFiniteSupport) {
  const auto& d = *GetParam().dist;
  if (!std::isfinite(d.SupportLo()) || !std::isfinite(d.SupportHi())) {
    GTEST_SKIP() << "unbounded support";
  }
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = d.Sample(&rng);
    EXPECT_GE(x, d.SupportLo());
    EXPECT_LE(x, d.SupportHi());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionContract,
    ::testing::Values(
        DistCase{"uniform",
                 std::make_shared<UniformDistribution>(-2.0, 5.0)},
        DistCase{"gaussian",
                 std::make_shared<GaussianDistribution>(1.0, 2.0)},
        DistCase{"triangle",
                 std::make_shared<TriangleDistribution>(0.0, 10.0)},
        DistCase{"plateau",
                 std::make_shared<PlateauDistribution>(0.0, 8.0, 0.25)},
        DistCase{"mixture",
                 std::make_shared<MixtureDistribution>(
                     std::vector<std::shared_ptr<const Distribution>>{
                         std::make_shared<UniformDistribution>(0.0, 2.0),
                         std::make_shared<TriangleDistribution>(4.0, 8.0)},
                     std::vector<double>{1.0, 3.0})}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.name;
    });

// ------------------------------------------------------ Specific shapes

TEST(UniformDistributionTest, DensityIsFlat) {
  UniformDistribution u(0.0, 4.0);
  EXPECT_DOUBLE_EQ(u.Pdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(u.Pdf(3.9), 0.25);
  EXPECT_DOUBLE_EQ(u.Pdf(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(u.Pdf(4.1), 0.0);
}

TEST(TriangleDistributionTest, PeakAtMidpoint) {
  TriangleDistribution t(0.0, 2.0);
  EXPECT_DOUBLE_EQ(t.Pdf(1.0), 1.0);  // peak = 2/(hi-lo)
  EXPECT_GT(t.Pdf(1.0), t.Pdf(0.5));
  EXPECT_DOUBLE_EQ(t.Pdf(0.5), t.Pdf(1.5));
}

TEST(PlateauDistributionTest, FlatInTheMiddle) {
  PlateauDistribution p(0.0, 10.0, 0.2);
  EXPECT_DOUBLE_EQ(p.Pdf(4.0), p.Pdf(5.0));
  EXPECT_DOUBLE_EQ(p.Pdf(4.0), p.Pdf(6.0));
  EXPECT_LT(p.Pdf(1.0), p.Pdf(5.0));
  EXPECT_DOUBLE_EQ(p.Pdf(1.0), p.Pdf(9.0));  // symmetric ramps
}

TEST(GaussianDistributionTest, StddevAccessor) {
  GaussianDistribution g(0.0, 3.0);
  EXPECT_DOUBLE_EQ(g.stddev(), 3.0);
}

TEST(MixtureDistributionTest, MeanIsWeightedAverage) {
  MixtureDistribution m(
      {std::make_shared<UniformDistribution>(0.0, 2.0),   // mean 1
       std::make_shared<UniformDistribution>(10.0, 12.0)},  // mean 11
      {1.0, 1.0});
  EXPECT_DOUBLE_EQ(m.Mean(), 6.0);
}

// -------------------------------------------------------------- Histogram

TEST(HistogramTest, BinOfClampsOutOfRange) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.BinOf(-3.0), 0u);
  EXPECT_EQ(h.BinOf(42.0), 4u);
  EXPECT_EQ(h.BinOf(0.0), 0u);
  EXPECT_EQ(h.BinOf(10.0), 4u);
}

TEST(HistogramTest, BinEdgesAndMidpoints) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.width(), 2.0);
  EXPECT_DOUBLE_EQ(h.BinLo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHi(1), 4.0);
  EXPECT_DOUBLE_EQ(h.BinMid(1), 3.0);
}

TEST(HistogramTest, MassesSumToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.Add(rng.UniformDouble());
  const auto masses = h.Masses();
  double total = 0.0;
  for (double m : masses) total += m;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(h.total(), 1000u);
}

TEST(HistogramTest, EmptyHistogramHasZeroMasses) {
  Histogram h(0.0, 1.0, 4);
  for (double m : h.Masses()) EXPECT_DOUBLE_EQ(m, 0.0);
}

TEST(HistogramTest, DensitiesIntegrateToOne) {
  Histogram h(0.0, 4.0, 8);
  for (int i = 0; i < 64; ++i) h.Add(4.0 * i / 64.0);
  double integral = 0.0;
  for (double d : h.Densities()) integral += d * h.width();
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(HistogramTest, ValueOnInteriorEdgeGoesToUpperBin) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.BinOf(2.0), 1u);
  EXPECT_EQ(h.BinOf(8.0), 4u);
}

// -------------------------------------------------------------- Distances

TEST(DistanceTest, IdenticalVectorsHaveZeroDistance) {
  const std::vector<double> p{0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariation(p, p), 0.0);
  EXPECT_DOUBLE_EQ(ChiSquareDistance(p, p), 0.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(p, p), 0.0);
}

TEST(DistanceTest, TotalVariationDisjointIsOne) {
  EXPECT_DOUBLE_EQ(TotalVariation({1.0, 0.0}, {0.0, 1.0}), 1.0);
}

TEST(DistanceTest, TotalVariationSymmetric) {
  const std::vector<double> p{0.7, 0.3}, q{0.4, 0.6};
  EXPECT_DOUBLE_EQ(TotalVariation(p, q), TotalVariation(q, p));
  EXPECT_NEAR(TotalVariation(p, q), 0.3, 1e-12);
}

TEST(DistanceTest, ChiSquareSkipsEmptyReferenceBins) {
  // q has an empty bin; the statistic must still be finite.
  const double d = ChiSquareDistance({0.5, 0.5, 0.0}, {0.5, 0.5, 0.0});
  EXPECT_DOUBLE_EQ(d, 0.0);
  const double d2 = ChiSquareDistance({0.4, 0.4, 0.2}, {0.5, 0.5, 0.0});
  EXPECT_TRUE(std::isfinite(d2));
}

TEST(DistanceTest, KolmogorovSmirnovDetectsShift) {
  const std::vector<double> p{1.0, 0.0, 0.0}, q{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(p, q), 1.0);
}

// ---------------------------------------------------------------- Summary

TEST(KahanSumTest, SumsSmallIncrementsAccurately) {
  KahanSum sum;
  for (int i = 0; i < 1000000; ++i) sum.Add(0.1);
  EXPECT_NEAR(sum.Total(), 100000.0, 1e-6);
}

TEST(DescriptiveStatsTest, BasicMoments) {
  const DescriptiveStats s = DescriptiveStats::Of({2.0, 4.0, 4.0, 4.0, 5.0,
                                                   5.0, 7.0, 9.0});
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
}

TEST(DescriptiveStatsTest, SingleValue) {
  DescriptiveStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(DescriptiveStatsTest, MatchesDistributionMoments) {
  Rng rng(41);
  GaussianDistribution g(5.0, 3.0);
  DescriptiveStats s;
  for (int i = 0; i < 100000; ++i) s.Add(g.Sample(&rng));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

}  // namespace
}  // namespace ppdm::stats
