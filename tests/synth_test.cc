// Tests of the synthetic benchmark generator: attribute distributions
// match the published table and the five classification functions honour
// their published decision boundaries.

#include <cmath>

#include <gtest/gtest.h>

#include "stats/summary.h"
#include "synth/functions.h"
#include "synth/generator.h"

namespace ppdm::synth {
namespace {

FunctionInputs In(double age, double salary = 0.0, double elevel = 0.0,
                  double loan = 0.0) {
  FunctionInputs in;
  in.age = age;
  in.salary = salary;
  in.elevel = elevel;
  in.loan = loan;
  return in;
}

// -------------------------------------------------------------- Functions

TEST(FunctionsTest, NamesAreStable) {
  EXPECT_EQ(FunctionName(Function::kF1), "Fn1");
  EXPECT_EQ(FunctionName(Function::kF5), "Fn5");
}

TEST(FunctionsTest, F1AgeBands) {
  EXPECT_TRUE(IsGroupA(Function::kF1, In(25.0)));
  EXPECT_TRUE(IsGroupA(Function::kF1, In(39.999)));
  EXPECT_FALSE(IsGroupA(Function::kF1, In(40.0)));
  EXPECT_FALSE(IsGroupA(Function::kF1, In(59.999)));
  EXPECT_TRUE(IsGroupA(Function::kF1, In(60.0)));
  EXPECT_TRUE(IsGroupA(Function::kF1, In(79.0)));
}

TEST(FunctionsTest, F2SalaryBandsPerAgeGroup) {
  // age < 40: A iff 50K <= salary <= 100K.
  EXPECT_TRUE(IsGroupA(Function::kF2, In(30.0, 50000.0)));
  EXPECT_TRUE(IsGroupA(Function::kF2, In(30.0, 100000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF2, In(30.0, 49999.0)));
  EXPECT_FALSE(IsGroupA(Function::kF2, In(30.0, 100001.0)));
  // 40 <= age < 60: A iff 75K <= salary <= 125K.
  EXPECT_TRUE(IsGroupA(Function::kF2, In(50.0, 75000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF2, In(50.0, 74000.0)));
  // age >= 60: A iff 25K <= salary <= 75K.
  EXPECT_TRUE(IsGroupA(Function::kF2, In(65.0, 25000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF2, In(65.0, 76000.0)));
}

TEST(FunctionsTest, F3ElevelBandsPerAgeGroup) {
  EXPECT_TRUE(IsGroupA(Function::kF3, In(30.0, 0.0, 0.0)));
  EXPECT_TRUE(IsGroupA(Function::kF3, In(30.0, 0.0, 1.0)));
  EXPECT_FALSE(IsGroupA(Function::kF3, In(30.0, 0.0, 2.0)));
  EXPECT_TRUE(IsGroupA(Function::kF3, In(50.0, 0.0, 2.0)));
  EXPECT_FALSE(IsGroupA(Function::kF3, In(50.0, 0.0, 0.0)));
  EXPECT_TRUE(IsGroupA(Function::kF3, In(70.0, 0.0, 4.0)));
  EXPECT_FALSE(IsGroupA(Function::kF3, In(70.0, 0.0, 1.0)));
}

TEST(FunctionsTest, F4ElevelSelectsSalaryBand) {
  // age < 40, elevel in [0,1]: band 25K..75K.
  EXPECT_TRUE(IsGroupA(Function::kF4, In(30.0, 30000.0, 1.0)));
  EXPECT_FALSE(IsGroupA(Function::kF4, In(30.0, 90000.0, 1.0)));
  // age < 40, elevel outside [0,1]: band 50K..100K.
  EXPECT_TRUE(IsGroupA(Function::kF4, In(30.0, 90000.0, 3.0)));
  EXPECT_FALSE(IsGroupA(Function::kF4, In(30.0, 30000.0, 3.0)));
  // age >= 60, elevel in [2,4]: band 50K..100K.
  EXPECT_TRUE(IsGroupA(Function::kF4, In(65.0, 60000.0, 3.0)));
  EXPECT_FALSE(IsGroupA(Function::kF4, In(65.0, 110000.0, 3.0)));
}

TEST(FunctionsTest, F5SalarySelectsLoanBand) {
  // age < 40, salary in band: loan 100K..300K.
  EXPECT_TRUE(IsGroupA(Function::kF5, In(30.0, 60000.0, 0.0, 200000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF5, In(30.0, 60000.0, 0.0, 350000.0)));
  // age < 40, salary out of band: loan 200K..400K.
  EXPECT_TRUE(IsGroupA(Function::kF5, In(30.0, 120000.0, 0.0, 350000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF5, In(30.0, 120000.0, 0.0, 450000.0)));
  // age >= 60, salary in 25K..75K: loan 300K..500K.
  EXPECT_TRUE(IsGroupA(Function::kF5, In(65.0, 50000.0, 0.0, 400000.0)));
  EXPECT_FALSE(IsGroupA(Function::kF5, In(65.0, 50000.0, 0.0, 200000.0)));
}

TEST(FunctionsTest, LabelOfMapsGroupAToZero) {
  EXPECT_EQ(LabelOf(Function::kF1, In(25.0)), 0);
  EXPECT_EQ(LabelOf(Function::kF1, In(45.0)), 1);
}

// --------------------------------------------------------------- Schema

TEST(GeneratorTest, SchemaHasNineValidAttributes) {
  const data::Schema schema = BenchmarkSchema();
  EXPECT_EQ(schema.NumFields(), static_cast<std::size_t>(kNumAttributes));
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.Field(kSalary).name, "salary");
  EXPECT_EQ(schema.Field(kLoan).name, "loan");
  EXPECT_DOUBLE_EQ(schema.Field(kAge).lo, 20.0);
  EXPECT_DOUBLE_EQ(schema.Field(kAge).hi, 80.0);
}

// -------------------------------------------------------------- Generator

TEST(GeneratorTest, RecordsRespectDomains) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> r = SampleRecord(&rng);
    EXPECT_GE(r[kSalary], 20000.0);
    EXPECT_LE(r[kSalary], 150000.0);
    EXPECT_GE(r[kAge], 20.0);
    EXPECT_LE(r[kAge], 80.0);
    EXPECT_GE(r[kElevel], 0.0);
    EXPECT_LE(r[kElevel], 4.0);
    EXPECT_GE(r[kZipcode], 0.0);
    EXPECT_LE(r[kZipcode], 8.0);
    EXPECT_GE(r[kLoan], 0.0);
    EXPECT_LE(r[kLoan], 500000.0);
  }
}

TEST(GeneratorTest, CommissionRuleHolds) {
  Rng rng(6);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> r = SampleRecord(&rng);
    if (r[kSalary] >= 75000.0) {
      EXPECT_DOUBLE_EQ(r[kCommission], 0.0);
    } else {
      EXPECT_GE(r[kCommission], 10000.0);
      EXPECT_LE(r[kCommission], 75000.0);
    }
  }
}

TEST(GeneratorTest, HvalueDependsOnZipcode) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> r = SampleRecord(&rng);
    const double k = r[kZipcode] + 1.0;
    EXPECT_GE(r[kHvalue], k * 50000.0);
    EXPECT_LE(r[kHvalue], k * 150000.0);
  }
}

TEST(GeneratorTest, GenerateProducesRequestedSize) {
  GeneratorOptions opt;
  opt.num_records = 1234;
  opt.function = Function::kF2;
  const data::Dataset d = Generate(opt);
  EXPECT_EQ(d.NumRows(), 1234u);
  EXPECT_EQ(d.num_classes(), 2);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(GeneratorTest, LabelsMatchFunction) {
  GeneratorOptions opt;
  opt.num_records = 500;
  opt.function = Function::kF3;
  const data::Dataset d = Generate(opt);
  for (std::size_t r = 0; r < d.NumRows(); ++r) {
    EXPECT_EQ(d.Label(r), LabelOf(Function::kF3, InputsOf(d.Row(r))));
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opt;
  opt.num_records = 100;
  opt.seed = 99;
  const data::Dataset a = Generate(opt);
  const data::Dataset b = Generate(opt);
  for (std::size_t r = 0; r < a.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(a.At(r, kSalary), b.At(r, kSalary));
    EXPECT_EQ(a.Label(r), b.Label(r));
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions a_opt, b_opt;
  a_opt.num_records = b_opt.num_records = 50;
  a_opt.seed = 1;
  b_opt.seed = 2;
  const data::Dataset a = Generate(a_opt);
  const data::Dataset b = Generate(b_opt);
  int diffs = 0;
  for (std::size_t r = 0; r < a.NumRows(); ++r) {
    if (a.At(r, kSalary) != b.At(r, kSalary)) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(GeneratorTest, F1ClassBalanceIsTwoThirds) {
  GeneratorOptions opt;
  opt.num_records = 20000;
  opt.function = Function::kF1;
  const data::Dataset d = Generate(opt);
  // Group A = age<40 or age>=60 covers 2/3 of U[20,80].
  const double frac_a = static_cast<double>(d.ClassCounts()[0]) /
                        static_cast<double>(d.NumRows());
  EXPECT_NEAR(frac_a, 2.0 / 3.0, 0.02);
}

TEST(GeneratorTest, LabelNoiseFlipsApproximatelyRequestedFraction) {
  GeneratorOptions clean, noisy;
  clean.num_records = noisy.num_records = 20000;
  clean.function = noisy.function = Function::kF1;
  clean.seed = noisy.seed = 3;
  noisy.label_noise = 0.2;
  const data::Dataset a = Generate(clean);
  const data::Dataset b = Generate(noisy);
  // Same seed implies identical attribute streams? Label noise consumes
  // extra randomness, so streams diverge; instead verify the flip rate
  // against the deterministic function of the attributes.
  std::size_t flipped = 0;
  for (std::size_t r = 0; r < b.NumRows(); ++r) {
    if (b.Label(r) != LabelOf(Function::kF1, InputsOf(b.Row(r)))) ++flipped;
  }
  EXPECT_NEAR(static_cast<double>(flipped) / 20000.0, 0.2, 0.02);
  (void)a;
}

TEST(GeneratorTest, SalaryMomentsMatchUniform) {
  GeneratorOptions opt;
  opt.num_records = 30000;
  const data::Dataset d = Generate(opt);
  const auto s = stats::DescriptiveStats::Of(d.Column(kSalary));
  EXPECT_NEAR(s.mean(), 85000.0, 1500.0);
  // Uniform variance (b-a)^2/12 with b-a = 130000.
  EXPECT_NEAR(s.stddev(), 130000.0 / std::sqrt(12.0), 1500.0);
}

// ----------------------------------------------------------- RecordStream

TEST(RecordStreamTest, EmitsExactlyTheGeneratedRecords) {
  GeneratorOptions opt;
  opt.num_records = 1000;
  opt.function = Function::kF2;
  opt.seed = 17;
  opt.label_noise = 0.1;
  const data::Dataset reference = Generate(opt);

  // Uneven batch sizes must replay the identical record sequence.
  RecordStream stream(opt);
  std::size_t row = 0;
  std::size_t step = 1;
  while (!stream.Done()) {
    const data::RowBatch batch = stream.Next(step);
    ASSERT_TRUE(batch.has_labels());
    for (std::size_t r = 0; r < batch.num_rows(); ++r, ++row) {
      for (std::size_t c = 0; c < batch.num_cols(); ++c) {
        ASSERT_DOUBLE_EQ(batch.At(r, c), reference.At(row, c))
            << "row " << row << " col " << c;
      }
      ASSERT_EQ(batch.Label(r), reference.Label(row)) << "row " << row;
    }
    step = step * 3 + 1;
  }
  EXPECT_EQ(row, reference.NumRows());
  EXPECT_TRUE(stream.Done());
  EXPECT_EQ(stream.Next(8).num_rows(), 0u);
}

}  // namespace
}  // namespace ppdm::synth
