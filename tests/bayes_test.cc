// Tests for naive Bayes over reconstructed distributions.

#include <memory>

#include <gtest/gtest.h>

#include "bayes/naive_bayes.h"
#include "core/experiment.h"

namespace ppdm::bayes {
namespace {

// Accuracy of a model on a dataset.
double Accuracy(const NaiveBayesModel& model, const data::Dataset& test) {
  std::size_t correct = 0;
  for (std::size_t r = 0; r < test.NumRows(); ++r) {
    if (model.Predict(test.Row(r)) == test.Label(r)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(test.NumRows());
}

TEST(NaiveBayesModelTest, PredictsFromHandBuiltTables) {
  // One attribute over [0,1), 2 intervals: class 0 lives left, class 1
  // right.
  std::vector<reconstruct::Partition> partitions{{0.0, 1.0, 2}};
  NaiveBayesModel model({0.5, 0.5},
                        {{{0.9, 0.1}}, {{0.1, 0.9}}}, partitions);
  EXPECT_EQ(model.Predict({0.25}), 0);
  EXPECT_EQ(model.Predict({0.75}), 1);
}

TEST(NaiveBayesModelTest, PriorsBreakTies) {
  std::vector<reconstruct::Partition> partitions{{0.0, 1.0, 2}};
  NaiveBayesModel model({0.9, 0.1},
                        {{{0.5, 0.5}}, {{0.5, 0.5}}}, partitions);
  EXPECT_EQ(model.Predict({0.25}), 0);  // likelihoods equal, prior decides
}

TEST(NaiveBayesModelTest, LogPosteriorOrdersClasses) {
  std::vector<reconstruct::Partition> partitions{{0.0, 1.0, 2}};
  NaiveBayesModel model({0.5, 0.5},
                        {{{0.8, 0.2}}, {{0.2, 0.8}}}, partitions);
  const auto lp = model.LogPosterior({0.1});
  EXPECT_GT(lp[0], lp[1]);
}

class NaiveBayesFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    core::ExperimentConfig config;
    // Fn1 (age bands only) is exactly representable under NB's
    // independence assumption; the interaction functions (Fn3..Fn5) are
    // not, which caps NB regardless of privacy.
    config.function = synth::Function::kF1;
    config.train_records = 8000;
    config.test_records = 2000;
    config.noise = perturb::NoiseKind::kUniform;
    config.privacy_fraction = 1.0;
    config.seed = 97;
    data_ = std::make_unique<core::ExperimentData>(core::PrepareData(config));
  }

  std::unique_ptr<core::ExperimentData> data_;
};

TEST_F(NaiveBayesFixture, OriginalBaselineIsStrong) {
  const NaiveBayesModel model = TrainNaiveBayes(data_->train, {});
  EXPECT_GE(Accuracy(model, data_->test), 0.97);
}

TEST_F(NaiveBayesFixture, ReconstructedSurvivesFullPrivacy) {
  const NaiveBayesModel model = TrainNaiveBayesReconstructed(
      data_->perturbed_train, data_->randomizer, {});
  EXPECT_GE(Accuracy(model, data_->test), 0.85);
}

TEST_F(NaiveBayesFixture, ReconstructedBeatsTrainingOnRawPerturbed) {
  const NaiveBayesModel reconstructed = TrainNaiveBayesReconstructed(
      data_->perturbed_train, data_->randomizer, {});
  // Naive NB trained directly on perturbed values (no reconstruction).
  const NaiveBayesModel raw = TrainNaiveBayes(data_->perturbed_train, {});
  EXPECT_GT(Accuracy(reconstructed, data_->test),
            Accuracy(raw, data_->test));
}

TEST_F(NaiveBayesFixture, ZeroNoiseReconstructionMatchesOriginal) {
  // With kNone noise models, reconstruction degenerates to histograms and
  // both trainers must produce near-identical models.
  perturb::RandomizerOptions no_noise;
  no_noise.privacy_fraction = 0.0;
  const perturb::Randomizer rz(data_->train.schema(), no_noise);
  const NaiveBayesModel a = TrainNaiveBayes(data_->train, {});
  const NaiveBayesModel b =
      TrainNaiveBayesReconstructed(data_->train, rz, {});
  const double acc_a = Accuracy(a, data_->test);
  const double acc_b = Accuracy(b, data_->test);
  EXPECT_NEAR(acc_a, acc_b, 0.01);
}

TEST(NaiveBayesSweep, AccuracyDegradesGracefullyWithPrivacy) {
  double previous = 1.1;
  int inversions = 0;
  for (double privacy : {0.25, 0.5, 1.0, 2.0}) {
    core::ExperimentConfig config;
    config.function = synth::Function::kF1;
    config.train_records = 6000;
    config.test_records = 1500;
    config.privacy_fraction = privacy;
    config.seed = 11;
    const core::ExperimentData data = core::PrepareData(config);
    const NaiveBayesModel model = TrainNaiveBayesReconstructed(
        data.perturbed_train, data.randomizer, {});
    const double acc = Accuracy(model, data.test);
    if (acc > previous + 0.03) ++inversions;
    previous = acc;
    EXPECT_GE(acc, 0.7) << "privacy " << privacy;
  }
  EXPECT_LE(inversions, 1);
}

}  // namespace
}  // namespace ppdm::bayes
