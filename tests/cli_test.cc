// Tests for the ppdm command-line layer: flag parsing and the four
// end-to-end workflows over temp CSV files.

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/args.h"
#include "cli/commands.h"
#include "data/csv.h"
#include "synth/generator.h"

namespace ppdm::cli {
namespace {

Result<Args> ParseVec(const std::vector<const char*>& argv) {
  std::vector<const char*> full{"ppdm"};
  full.insert(full.end(), argv.begin(), argv.end());
  return Args::Parse(static_cast<int>(full.size()), full.data());
}

// -------------------------------------------------------------------- Args

TEST(ArgsTest, ParsesCommandAndFlags) {
  auto args = ParseVec({"generate", "--records=100", "--out=x.csv"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.value().command(), "generate");
  EXPECT_EQ(args.value().GetString("out", ""), "x.csv");
  EXPECT_EQ(args.value().GetInt("records", 0).value(), 100);
}

TEST(ArgsTest, ValuelessFlagIsPresent) {
  auto args = ParseVec({"train", "--print-tree"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.value().Has("print-tree"));
  EXPECT_FALSE(args.value().Has("verbose"));
}

TEST(ArgsTest, MissingCommandIsError) {
  auto args = ParseVec({"--records=5"});
  EXPECT_FALSE(args.ok());
}

TEST(ArgsTest, SecondPositionalIsError) {
  auto args = ParseVec({"generate", "extra"});
  EXPECT_FALSE(args.ok());
}

TEST(ArgsTest, TypedAccessorsValidate) {
  auto args = ParseVec({"x", "--privacy=abc"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.value().GetDouble("privacy", 1.0).ok());
  EXPECT_DOUBLE_EQ(args.value().GetDouble("other", 2.5).value(), 2.5);
}

TEST(ArgsTest, CheckKnownRejectsTypos) {
  auto args = ParseVec({"generate", "--recrods=10"});
  ASSERT_TRUE(args.ok());
  EXPECT_FALSE(args.value().CheckKnown({"records", "out"}).ok());
  EXPECT_TRUE(args.value().CheckKnown({"recrods"}).ok());
}

// ---------------------------------------------------------------- Commands

class CliFixture : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return testing::TempDir() + "/ppdm_cli_" + name;
  }

  Status Run(const std::vector<const char*>& argv, std::string* output) {
    auto args = ParseVec(argv);
    if (!args.ok()) return args.status();
    std::ostringstream out;
    const Status status = RunCommand(args.value(), out);
    *output = out.str();
    return status;
  }

  void TearDown() override {
    for (const std::string& f : cleanup_) std::remove(f.c_str());
  }

  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(CliFixture, HelpPrintsUsage) {
  std::string output;
  ASSERT_TRUE(Run({"help"}, &output).ok());
  EXPECT_NE(output.find("usage: ppdm"), std::string::npos);
}

TEST_F(CliFixture, HelpFlagSucceedsOnEverySubcommand) {
  // `ppdm <command> --help` prints the usage and exits 0 — even when the
  // command would otherwise demand flags (generate needs --out) and even
  // alongside flags the command does not know.
  for (const char* command :
       {"generate", "perturb", "reconstruct", "train", "serve-sim",
        "snapshot", "restore", "metrics", "served", "loadgen", "help"}) {
    SCOPED_TRACE(command);
    std::string output;
    EXPECT_TRUE(Run({command, "--help"}, &output).ok());
    EXPECT_NE(output.find("usage: ppdm"), std::string::npos);
  }
  std::string output;
  EXPECT_TRUE(Run({"generate", "--help", "--no-such-flag=1"}, &output).ok());
}

TEST_F(CliFixture, UnknownCommandIsAnError) {
  std::string output;
  const Status status = Run({"fromulate"}, &output);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unknown command"), std::string::npos);
}

TEST_F(CliFixture, UsageDocumentsTheNetworkCommands) {
  std::string output;
  ASSERT_TRUE(Run({"help"}, &output).ok());
  EXPECT_NE(output.find("served"), std::string::npos);
  EXPECT_NE(output.find("loadgen"), std::string::npos);
  EXPECT_NE(output.find("--help"), std::string::npos);
}

TEST_F(CliFixture, ServedValidatesItsFlags) {
  std::string output;
  // resume without a checkpoint dir is contradictory.
  EXPECT_FALSE(Run({"served", "--resume"}, &output).ok());
  EXPECT_FALSE(Run({"served", "--port=99999"}, &output).ok());
  EXPECT_FALSE(Run({"served", "--no-such-flag=1"}, &output).ok());
  // loadgen refuses to run without a daemon port.
  EXPECT_FALSE(Run({"loadgen"}, &output).ok());
  EXPECT_FALSE(Run({"loadgen", "--port=7001", "--tenants=0"}, &output).ok());
}

TEST_F(CliFixture, UnknownCommandFails) {
  std::string output;
  const Status s = Run({"frobnicate"}, &output);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliFixture, GenerateWritesReadableCsv) {
  const std::string path = Track(Path("gen.csv"));
  std::string output;
  ASSERT_TRUE(Run({"generate", ("--out=" + path).c_str(), "--records=200",
                   "--function=2"},
                  &output)
                  .ok())
      << output;
  auto loaded = data::ReadCsv(synth::BenchmarkSchema(), 2, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumRows(), 200u);
}

TEST_F(CliFixture, GenerateRequiresOut) {
  std::string output;
  EXPECT_FALSE(Run({"generate", "--records=10"}, &output).ok());
}

TEST_F(CliFixture, GenerateRejectsBadFunction) {
  std::string output;
  EXPECT_FALSE(
      Run({"generate", "--out=/tmp/x.csv", "--function=9"}, &output).ok());
}

TEST_F(CliFixture, PerturbChangesValuesKeepsLabels) {
  const std::string raw = Track(Path("raw.csv"));
  const std::string noisy = Track(Path("noisy.csv"));
  std::string output;
  ASSERT_TRUE(
      Run({"generate", ("--out=" + raw).c_str(), "--records=300"}, &output)
          .ok());
  ASSERT_TRUE(Run({"perturb", ("--in=" + raw).c_str(),
                   ("--out=" + noisy).c_str(), "--privacy=1.0"},
                  &output)
                  .ok())
      << output;
  auto a = data::ReadCsv(synth::BenchmarkSchema(), 2, raw);
  auto b = data::ReadCsv(synth::BenchmarkSchema(), 2, noisy);
  ASSERT_TRUE(a.ok() && b.ok());
  int value_diffs = 0;
  for (std::size_t r = 0; r < a.value().NumRows(); ++r) {
    EXPECT_EQ(a.value().Label(r), b.value().Label(r));
    if (a.value().At(r, 0) != b.value().At(r, 0)) ++value_diffs;
  }
  EXPECT_GT(value_diffs, 290);
}

TEST_F(CliFixture, ReconstructPrintsMasses) {
  const std::string raw = Track(Path("r_raw.csv"));
  const std::string noisy = Track(Path("r_noisy.csv"));
  std::string output;
  ASSERT_TRUE(
      Run({"generate", ("--out=" + raw).c_str(), "--records=2000"}, &output)
          .ok());
  ASSERT_TRUE(Run({"perturb", ("--in=" + raw).c_str(),
                   ("--out=" + noisy).c_str(), "--privacy=0.5"},
                  &output)
                  .ok());
  ASSERT_TRUE(Run({"reconstruct", ("--in=" + noisy).c_str(),
                   "--attribute=age", "--privacy=0.5", "--intervals=10"},
                  &output)
                  .ok())
      << output;
  EXPECT_NE(output.find("EM iterations"), std::string::npos);
}

TEST_F(CliFixture, ReconstructRejectsUnknownAttribute) {
  const std::string raw = Track(Path("a_raw.csv"));
  std::string output;
  ASSERT_TRUE(
      Run({"generate", ("--out=" + raw).c_str(), "--records=50"}, &output)
          .ok());
  const Status s = Run(
      {"reconstruct", ("--in=" + raw).c_str(), "--attribute=nope"}, &output);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(CliFixture, TrainEndToEnd) {
  const std::string train_raw = Track(Path("t_train.csv"));
  const std::string train_noisy = Track(Path("t_noisy.csv"));
  const std::string test_csv = Track(Path("t_test.csv"));
  std::string output;
  ASSERT_TRUE(Run({"generate", ("--out=" + train_raw).c_str(),
                   "--records=4000", "--function=1", "--seed=5"},
                  &output)
                  .ok());
  ASSERT_TRUE(Run({"generate", ("--out=" + test_csv).c_str(),
                   "--records=1000", "--function=1", "--seed=6"},
                  &output)
                  .ok());
  ASSERT_TRUE(Run({"perturb", ("--in=" + train_raw).c_str(),
                   ("--out=" + train_noisy).c_str(), "--privacy=0.5"},
                  &output)
                  .ok());
  ASSERT_TRUE(Run({"train", ("--train=" + train_noisy).c_str(),
                   ("--test=" + test_csv).c_str(), "--mode=byclass",
                   "--privacy=0.5"},
                  &output)
                  .ok())
      << output;
  EXPECT_NE(output.find("ByClass: accuracy"), std::string::npos);
}

TEST_F(CliFixture, TrainRejectsUnknownMode) {
  std::string output;
  const Status s = Run({"train", "--train=a.csv", "--test=b.csv",
                        "--mode=quantum"},
                       &output);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(CliFixture, ServeSimStreamsAndReports) {
  std::string output;
  ASSERT_TRUE(Run({"serve-sim", "--records=3000", "--batch-records=500",
                   "--refresh=2", "--attribute=age", "--privacy=0.5",
                   "--intervals=10", "--threads=2"},
                  &output)
                  .ok())
      << output;
  EXPECT_NE(output.find("tv(truth)"), std::string::npos);
  EXPECT_NE(output.find("stream complete: 3000 records, 6 batches"),
            std::string::npos);
}

TEST_F(CliFixture, ServeSimMultiAttributeReportsRegistry) {
  std::string output;
  ASSERT_TRUE(Run({"serve-sim", "--records=2000", "--batch-records=500",
                   "--refresh=2", "--attrs=3", "--privacy=0.5",
                   "--intervals=8", "--registry-mb=4"},
                  &output)
                  .ok())
      << output;
  EXPECT_NE(output.find("serving 3 attribute(s)"), std::string::npos);
  EXPECT_NE(output.find("stream complete: 2000 records, 4 batches"),
            std::string::npos);
  EXPECT_NE(output.find("registry: 1 session(s)"), std::string::npos);
  EXPECT_NE(output.find("budget 4 MiB"), std::string::npos);
}

TEST_F(CliFixture, ServeSimRejectsInvalidSpec) {
  std::string output;
  // Invalid specs come back as kInvalidArgument — not a CHECK abort.
  EXPECT_EQ(Run({"serve-sim", "--intervals=0"}, &output).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"serve-sim", "--confidence=1.5"}, &output).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"serve-sim", "--privacy=-1"}, &output).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"serve-sim", "--batch-records=0"}, &output).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"serve-sim", "--attrs=99"}, &output).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"serve-sim", "--registry-mb=-1"}, &output).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliFixture, PerturbRejectsInvalidNoiseSpec) {
  const std::string raw = Track(Path("v_raw.csv"));
  std::string output;
  ASSERT_TRUE(
      Run({"generate", ("--out=" + raw).c_str(), "--records=20"}, &output)
          .ok());
  // --confidence outside (0,1) used to CHECK-abort inside NoiseForPrivacy;
  // the api validation layer must reject it as a Status instead.
  EXPECT_EQ(Run({"perturb", ("--in=" + raw).c_str(), "--out=/tmp/x.csv",
                 "--confidence=1.5"},
                &output)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Run({"perturb", ("--in=" + raw).c_str(), "--out=/tmp/x.csv",
                 "--noise=none"},
                &output)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CliFixture, UnknownFlagIsCaught) {
  std::string output;
  const Status s =
      Run({"generate", "--out=/tmp/x.csv", "--recordz=10"}, &output);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppdm::cli
