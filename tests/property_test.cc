// Cross-cutting property suites: invariants that must hold over the whole
// (training mode × noise kind × privacy) matrix and over randomized
// inputs, beyond the targeted unit tests.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/infotheory.h"
#include "reconstruct/assign.h"
#include "reconstruct/partition.h"
#include "stats/histogram.h"

namespace ppdm {
namespace {

// ----------------------------------------------- mode × noise invariants

struct PipelineCase {
  tree::TrainingMode mode;
  perturb::NoiseKind noise;
  double privacy;
};

std::string CaseName(const ::testing::TestParamInfo<PipelineCase>& info) {
  return tree::TrainingModeName(info.param.mode) +
         perturb::NoiseKindName(info.param.noise) +
         std::to_string(static_cast<int>(100 * info.param.privacy));
}

class PipelineInvariants : public ::testing::TestWithParam<PipelineCase> {
 protected:
  core::ExperimentConfig Config() const {
    core::ExperimentConfig config;
    config.function = synth::Function::kF1;
    config.train_records = 4000;
    config.test_records = 1000;
    config.noise = GetParam().noise;
    config.privacy_fraction = GetParam().privacy;
    config.seed = 1234;
    return config;
  }
};

TEST_P(PipelineInvariants, BeatsOrMatchesMajorityBaseline) {
  const core::ExperimentConfig config = Config();
  const core::ExperimentData data = core::PrepareData(config);
  const core::ModeResult result =
      core::RunMode(data, GetParam().mode, config);
  // Majority class of Fn1 is Group A at ~2/3.
  const auto counts = data.test.ClassCounts();
  const double majority =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(data.test.NumRows());
  EXPECT_GE(result.accuracy, majority - 0.2)
      << "far below even the majority baseline";
}

TEST_P(PipelineInvariants, TreeShapeIsBounded) {
  const core::ExperimentConfig config = Config();
  const core::ExperimentData data = core::PrepareData(config);
  const core::ModeResult result =
      core::RunMode(data, GetParam().mode, config);
  EXPECT_GE(result.tree_nodes, 1u);
  EXPECT_LE(result.tree_depth, config.tree.max_depth);
  EXPECT_LE(result.tree_nodes, 2 * config.train_records);
}

TEST_P(PipelineInvariants, DeterministicAcrossRuns) {
  const core::ExperimentConfig config = Config();
  const core::ModeResult a =
      core::RunMode(core::PrepareData(config), GetParam().mode, config);
  const core::ModeResult b =
      core::RunMode(core::PrepareData(config), GetParam().mode, config);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.tree_nodes, b.tree_nodes);
}

INSTANTIATE_TEST_SUITE_P(
    ModeNoiseMatrix, PipelineInvariants,
    ::testing::Values(
        PipelineCase{tree::TrainingMode::kOriginal,
                     perturb::NoiseKind::kUniform, 0.5},
        PipelineCase{tree::TrainingMode::kRandomized,
                     perturb::NoiseKind::kUniform, 0.5},
        PipelineCase{tree::TrainingMode::kGlobal,
                     perturb::NoiseKind::kUniform, 0.5},
        PipelineCase{tree::TrainingMode::kByClass,
                     perturb::NoiseKind::kUniform, 0.5},
        PipelineCase{tree::TrainingMode::kLocal,
                     perturb::NoiseKind::kUniform, 0.5},
        PipelineCase{tree::TrainingMode::kRandomized,
                     perturb::NoiseKind::kGaussian, 1.0},
        PipelineCase{tree::TrainingMode::kGlobal,
                     perturb::NoiseKind::kGaussian, 1.0},
        PipelineCase{tree::TrainingMode::kByClass,
                     perturb::NoiseKind::kGaussian, 1.0},
        PipelineCase{tree::TrainingMode::kLocal,
                     perturb::NoiseKind::kGaussian, 1.0},
        PipelineCase{tree::TrainingMode::kByClass,
                     perturb::NoiseKind::kUniform, 2.0}),
    CaseName);

// --------------------------------------------------- partition properties

class PartitionProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PartitionProperty, IntervalOfAgreesWithEdges) {
  const std::size_t k = GetParam();
  const reconstruct::Partition p(-3.0, 11.0, k);
  Rng rng(k);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.UniformReal(-3.0, 11.0);
    const std::size_t bin = p.IntervalOf(x);
    EXPECT_LE(p.Lo(bin), x + 1e-9);
    EXPECT_GE(p.Hi(bin), x - 1e-9);
  }
}

TEST_P(PartitionProperty, MidpointsAreInsideTheirIntervals) {
  const std::size_t k = GetParam();
  const reconstruct::Partition p(0.0, 1.0, k);
  for (std::size_t bin = 0; bin < k; ++bin) {
    EXPECT_EQ(p.IntervalOf(p.Mid(bin)), bin);
  }
}

TEST_P(PartitionProperty, EdgesTileTheDomain) {
  const std::size_t k = GetParam();
  const reconstruct::Partition p(5.0, 25.0, k);
  const auto edges = p.Edges();
  ASSERT_EQ(edges.size(), k + 1);
  for (std::size_t i = 1; i < edges.size(); ++i) {
    EXPECT_NEAR(edges[i] - edges[i - 1], p.width(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, PartitionProperty,
                         ::testing::Values(2u, 3u, 7u, 10u, 30u, 100u));

// -------------------------------------------------- assignment properties

class AssignProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignProperty, CountsAlwaysMatchApportionment) {
  Rng rng(GetParam());
  const std::size_t bins = 1 + static_cast<std::size_t>(rng.UniformInt(1, 12));
  std::vector<double> masses(bins);
  double total = 0.0;
  for (double& m : masses) {
    m = rng.UniformDouble();
    total += m;
  }
  for (double& m : masses) m /= total;

  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 500));
  std::vector<double> values(n);
  for (double& v : values) v = rng.Gaussian();

  const auto assignment = reconstruct::AssignByOrderStatistics(values,
                                                               masses);
  const auto expected = reconstruct::ApportionCounts(masses, n);
  std::vector<std::size_t> got(bins, 0);
  for (std::size_t a : assignment) ++got[a];
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

// ------------------------------------------------ information inequalities

TEST(InfoInequalities, MutualInformationBoundedByEntropy) {
  const reconstruct::Partition p(0.0, 1.0, 16);
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> masses(16);
    double total = 0.0;
    for (double& m : masses) {
      m = rng.UniformDouble() + 1e-3;
      total += m;
    }
    for (double& m : masses) m /= total;
    const double h = core::DiscreteEntropyBits(masses);
    for (double scale : {0.05, 0.2, 0.6}) {
      const double mi = core::MutualInformationBits(
          masses, p, perturb::NoiseModel::Uniform(scale));
      EXPECT_GE(mi, -1e-9);
      EXPECT_LE(mi, h + 1e-9);
    }
  }
}

TEST(InfoInequalities, MoreNoiseNeverMoreInformation) {
  const reconstruct::Partition p(0.0, 1.0, 16);
  const std::vector<double> masses(16, 1.0 / 16.0);
  double previous = 1e9;
  for (double sigma : {0.02, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    const double mi = core::MutualInformationBits(
        masses, p, perturb::NoiseModel::Gaussian(sigma));
    EXPECT_LE(mi, previous + 1e-6) << "sigma " << sigma;
    previous = mi;
  }
}

// --------------------------------------------------- histogram properties

TEST(HistogramProperty, MassConservedUnderAnyInput) {
  Rng rng(31337);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t bins =
        1 + static_cast<std::size_t>(rng.UniformInt(0, 30));
    stats::Histogram h(-1.0, 1.0, bins);
    const int n = static_cast<int>(rng.UniformInt(0, 300));
    for (int i = 0; i < n; ++i) h.Add(rng.Gaussian() * 3.0);  // outliers too
    EXPECT_EQ(h.total(), static_cast<std::size_t>(n));
    double total_mass = 0.0;
    for (double m : h.Masses()) total_mass += m;
    if (n > 0) {
      EXPECT_NEAR(total_mass, 1.0, 1e-9);
    } else {
      EXPECT_DOUBLE_EQ(total_mass, 0.0);
    }
  }
}

}  // namespace
}  // namespace ppdm
