// Tests for the network serving subsystem: the frame codec (every
// malformed wire input — truncated at every prefix, bit-flipped, wrong
// magic, future version, oversized body — is a Status, never an abort),
// the token-bucket rate limiter under a fake clock, and the daemon
// itself over loopback TCP: byte-identical to a direct DatasetSession at
// every worker-thread count, resilient to hostile frames / shed requests
// / injected store faults (each answers a protocol error while the
// process keeps serving), and drain→restart→resume preserving every
// tenant's state exactly.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset_session.h"
#include "common/fault.h"
#include "common/strings.h"
#include "data/row_batch.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/rate_limiter.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "perturb/randomizer.h"
#include "store/codec.h"
#include "synth/generator.h"

namespace ppdm::net {
namespace {

namespace fs = std::filesystem;

// A unique on-disk directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    path = (fs::temp_directory_path() /
            (std::string("ppdm_net_test_") + info->test_suite_name() + "_" +
             info->name()))
               .string();
    fs::remove_all(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

// Disarms every fault point on scope exit so one test's chaos never
// leaks into the next.
struct FaultGuard {
  ~FaultGuard() { fault::DisarmAll(); }
};

/// A dataset-session spec over the first `num_attrs` benchmark columns.
api::DatasetSessionSpec BenchmarkDatasetSpec(std::size_t num_attrs,
                                             std::size_t intervals = 12) {
  api::DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  for (std::size_t column = 0; column < num_attrs; ++column) {
    api::AttributeSpec attr;
    attr.column = column;
    attr.intervals = intervals;
    attr.noise = perturb::NoiseKind::kUniform;
    attr.privacy_fraction = 1.0;
    spec.attributes.push_back(attr);
  }
  spec.shard_size = 256;
  return spec;
}

/// Perturbed benchmark records, flattened row-major (same arrival shape
/// the loadgen driver sends).
std::vector<double> PerturbedRows(std::size_t num_records,
                                  std::size_t* num_cols,
                                  std::uint64_t seed = 23) {
  synth::GeneratorOptions gen;
  gen.num_records = num_records;
  gen.seed = seed;
  const data::Dataset original = synth::Generate(gen);
  perturb::RandomizerOptions noise;
  noise.kind = perturb::NoiseKind::kUniform;
  noise.privacy_fraction = 1.0;
  noise.seed = seed ^ 0x5DEECE66DULL;
  const data::Dataset perturbed =
      perturb::Randomizer(original.schema(), noise).Perturb(original);
  *num_cols = perturbed.NumCols();
  std::vector<double> rows(perturbed.NumRows() * perturbed.NumCols());
  for (std::size_t c = 0; c < perturbed.NumCols(); ++c) {
    const std::vector<double>& column = perturbed.Column(c);
    for (std::size_t r = 0; r < perturbed.NumRows(); ++r) {
      rows[r * perturbed.NumCols() + c] = column[r];
    }
  }
  return rows;
}

ServerOptions LoopbackOptions(std::size_t threads = 0) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.num_threads = threads;
  options.shard_size = 256;
  return options;
}

// ------------------------------------------------------------ frame codec

TEST(FrameTest, RoundTripPreservesEveryField) {
  const std::string body = "payload bytes \x00\x01\x7f with zeros";
  const std::string wire =
      EncodeFrame(Verb::kIngest, /*request_id=*/42, /*tenant=*/7,
                  /*ttl_ms=*/1500, body);
  ASSERT_EQ(wire.size(), kHeaderSize + body.size());

  Result<Frame> frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  // Without a trace id the encoder stays on the compact v1 layout.
  EXPECT_EQ(frame.value().header.version, 1u);
  EXPECT_EQ(frame.value().header.trace_id, 0u);
  EXPECT_EQ(frame.value().header.verb,
            static_cast<std::uint32_t>(Verb::kIngest));
  EXPECT_EQ(frame.value().header.request_id, 42u);
  EXPECT_EQ(frame.value().header.tenant, 7u);
  EXPECT_EQ(frame.value().header.ttl_ms, 1500u);
  EXPECT_EQ(frame.value().body, body);
}

TEST(FrameTest, EveryTruncationIsAStatusError) {
  const std::string wire =
      EncodeFrame(Verb::kOpen, 1, 2, 0, "0123456789abcdef");
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::string_view prefix(wire.data(), len);
    Result<Frame> frame = DecodeFrame(prefix);
    EXPECT_FALSE(frame.ok()) << "prefix length " << len;
    if (len < kHeaderSize) {
      // Short header is kIoError — the streaming parser's "wait for
      // more bytes" signal.
      EXPECT_EQ(DecodeHeader(prefix, kDefaultMaxBodyBytes).status().code(),
                StatusCode::kIoError)
          << "prefix length " << len;
    }
  }
  EXPECT_TRUE(DecodeFrame(wire).ok());
}

TEST(FrameTest, NoBitFlipEverCorruptsTheBodySilently) {
  const std::string body = "the CRC-guarded request payload";
  const std::string clean = EncodeFrame(Verb::kSnapshot, 9, 3, 0, body);
  for (std::size_t bit = 0; bit < clean.size() * 8; ++bit) {
    std::string flipped = clean;
    flipped[bit / 8] = static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
    Result<Frame> frame = DecodeFrame(flipped);
    // Header-field flips (verb, ids, ttl) may decode — they are caught
    // semantically — but the CRC guarantees the body itself is either
    // rejected or delivered intact.
    if (frame.ok()) {
      EXPECT_EQ(frame.value().body, body) << "bit " << bit;
    }
  }
}

TEST(FrameTest, OversizedBodyIsRejectedBeforeAllocation) {
  const std::string wire = EncodeFrame(Verb::kIngest, 1, 1, 0,
                                       std::string(1024, 'x'));
  const Result<FrameHeader> header =
      DecodeHeader(std::string_view(wire.data(), kHeaderSize),
                   /*max_body_bytes=*/512);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kResourceExhausted);
}

TEST(FrameTest, FutureVersionAndWrongMagicAreCleanErrors) {
  std::string wire = EncodeFrame(Verb::kOpen, 1, 1, 0, "");
  // Bytes 4..7 are the little-endian version word.
  wire[4] = static_cast<char>(kProtocolVersion + 1);
  Result<FrameHeader> header =
      DecodeHeader(std::string_view(wire.data(), kHeaderSize),
                   kDefaultMaxBodyBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kFailedPrecondition);

  wire = EncodeFrame(Verb::kOpen, 1, 1, 0, "");
  wire[0] = 'X';
  header = DecodeHeader(std::string_view(wire.data(), kHeaderSize),
                        kDefaultMaxBodyBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, TraceIdRidesV2FramesAndRoundTrips) {
  const std::string body = "traced payload";
  const std::uint64_t trace = 0x0123456789abcdefULL;
  const std::string wire =
      EncodeFrame(Verb::kIngest, /*request_id=*/5, /*tenant=*/2,
                  /*ttl_ms=*/0, body, trace);
  ASSERT_EQ(wire.size(), kHeaderSize + 4 + kMaxTraceHexChars + body.size());

  Result<Frame> frame = DecodeFrame(wire);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().header.version, kProtocolVersion);
  EXPECT_EQ(frame.value().header.trace_id, trace);
  EXPECT_EQ(frame.value().header.header_size,
            kHeaderSize + 4 + kMaxTraceHexChars);
  EXPECT_EQ(frame.value().body, body);

  // The streaming parser's incremental sizing: starting from nothing,
  // HeaderBytesNeeded converges on the full v2 header in bounded steps.
  std::string accum;
  int steps = 0;
  for (std::size_t needed = HeaderBytesNeeded(accum); needed > 0;
       needed = HeaderBytesNeeded(accum)) {
    ASSERT_LT(++steps, 8);
    accum.append(wire, accum.size(), needed);
  }
  EXPECT_EQ(accum.size(), frame.value().header.header_size);
  // And every shorter prefix of the v2 header is still "wait for bytes".
  for (std::size_t len = 0; len < accum.size(); ++len) {
    EXPECT_EQ(DecodeHeader(std::string_view(wire.data(), len),
                           kDefaultMaxBodyBytes)
                  .status()
                  .code(),
              StatusCode::kIoError)
        << "prefix length " << len;
  }
}

TEST(FrameTest, HostileTraceIdsAreCleanStatusErrors) {
  const std::string good =
      EncodeFrame(Verb::kStats, 1, 0, 0, "", /*trace_id=*/0xdeadbeefULL);

  // Declared trace length beyond the cap: rejected before any
  // accumulation (bytes 32..35 are the little-endian length word).
  std::string oversized = good;
  oversized[32] = 17;
  Result<FrameHeader> header = DecodeHeader(oversized, kDefaultMaxBodyBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
  // A hostile length must not make the parser wait for phantom bytes.
  EXPECT_EQ(HeaderBytesNeeded(oversized), 0u);

  // Non-hex characters inside the trace field.
  std::string nonhex = good;
  nonhex[36] = 'g';
  header = DecodeHeader(nonhex, kDefaultMaxBodyBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);

  // An all-zero trace id claims v2 but carries no identity.
  std::string zero = good;
  for (std::size_t i = 36; i < 36 + kMaxTraceHexChars; ++i) zero[i] = '0';
  header = DecodeHeader(zero, kDefaultMaxBodyBytes);
  ASSERT_FALSE(header.ok());
  EXPECT_EQ(header.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, ResponseEnvelopeRoundTripsStatusAndPayload) {
  const Status refusal = Status::ResourceExhausted("tenant 3 rate-limited");
  const std::string body = EncodeResponseBody(refusal, "extra payload");
  Result<ResponseBody> decoded = DecodeResponseBody(body);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.value().status.message(), "tenant 3 rate-limited");
  EXPECT_EQ(decoded.value().payload, "extra payload");

  // A wire status code outside the enum is itself a decode error.
  store::Writer writer;
  writer.PutU32(0xFFFF);
  writer.PutString("bogus");
  Result<ResponseBody> bogus = DecodeResponseBody(writer.Take());
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.status().code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ rate limiter

TEST(RateLimiterTest, BucketRefillsAtRateUnderAFakeClock) {
  const auto t0 = std::chrono::steady_clock::time_point{};
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/2.0, t0);
  EXPECT_TRUE(bucket.TryAcquire(t0));   // starts full
  EXPECT_TRUE(bucket.TryAcquire(t0));
  EXPECT_FALSE(bucket.TryAcquire(t0));  // empty
  // 500 ms at 2 tokens/sec refills exactly one token.
  const auto t1 = t0 + std::chrono::milliseconds(500);
  EXPECT_TRUE(bucket.TryAcquire(t1));
  EXPECT_FALSE(bucket.TryAcquire(t1));
  // A long idle period caps at burst, not unbounded credit.
  const auto t2 = t1 + std::chrono::hours(1);
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_TRUE(bucket.TryAcquire(t2));
  EXPECT_FALSE(bucket.TryAcquire(t2));
}

TEST(RateLimiterTest, TenantsAreIndependentAndZeroRateDisables) {
  const auto t0 = std::chrono::steady_clock::time_point{};
  TenantRateLimiter limiter(/*rate=*/1e-9, /*burst=*/1.0);
  EXPECT_TRUE(limiter.Admit(1, t0));
  EXPECT_FALSE(limiter.Admit(1, t0));  // tenant 1 spent its burst
  EXPECT_TRUE(limiter.Admit(2, t0));   // tenant 2 has its own bucket
  limiter.Forget(1);
  EXPECT_TRUE(limiter.Admit(1, t0));   // fresh bucket after Forget

  TenantRateLimiter off(/*rate=*/0.0, /*burst=*/0.0);
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(off.Admit(7, t0));
}

TEST(RateLimiterTest, RefilledBucketsAreSweptSoHostileIdsCannotGrowTheMap) {
  // Tenant ids arrive off an unauthenticated socket, so a flood of fresh
  // ids must not grow the bucket map without bound: once the map reaches
  // the sweep threshold, buckets that have refilled to burst (equivalent
  // to never having existed) are dropped on the next insert.
  const auto t0 = std::chrono::steady_clock::time_point{};
  TenantRateLimiter limiter(/*rate=*/1.0, /*burst=*/1.0);
  for (std::uint64_t id = 0; id < TenantRateLimiter::kSweepThreshold; ++id) {
    EXPECT_TRUE(limiter.Admit(id, t0));
  }
  EXPECT_EQ(limiter.size(), TenantRateLimiter::kSweepThreshold);
  // Two seconds refill every bucket to burst; the threshold-crossing
  // insert sweeps them all, leaving only the newcomer.
  const auto t1 = t0 + std::chrono::seconds(2);
  EXPECT_TRUE(limiter.Admit(TenantRateLimiter::kSweepThreshold + 1, t1));
  EXPECT_EQ(limiter.size(), 1u);
}

// ------------------------------------------------------------ loopback

TEST(ServerTest, LoopbackIsByteIdenticalToDirectSessionAtEveryThreadCount) {
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(600, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;
  const std::size_t batch_rows = 150;

  // Ground truth: a direct in-process session over the same batches
  // (results are identical for every pool, so null is fine).
  Result<std::unique_ptr<api::DatasetSession>> direct =
      api::DatasetSession::Open(spec);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  for (std::size_t r = 0; r < num_rows; r += batch_rows) {
    const std::size_t n = std::min(batch_rows, num_rows - r);
    ASSERT_TRUE(direct.value()
                    ->Ingest(data::RowBatch(rows.data() + r * num_cols, n,
                                            num_cols))
                    .ok());
  }
  const auto expected = direct.value()->ReconstructAll();
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Result<std::unique_ptr<Server>> server =
        Server::Start(LoopbackOptions(threads));
    ASSERT_TRUE(server.ok()) << server.status().ToString();

    Result<Client> client = Client::Connect("127.0.0.1",
                                            server.value()->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    Result<OpenResult> opened = client.value().Open(/*tenant=*/1, spec);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_FALSE(opened.value().resumed);

    std::uint64_t record_count = 0;
    for (std::size_t r = 0; r < num_rows; r += batch_rows) {
      const std::size_t n = std::min(batch_rows, num_rows - r);
      const std::vector<double> batch(rows.begin() + r * num_cols,
                                      rows.begin() + (r + n) * num_cols);
      Result<std::uint64_t> count = client.value().Ingest(1, n, num_cols,
                                                          batch);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      record_count = count.value();
    }
    EXPECT_EQ(record_count, num_rows);

    Result<std::vector<AttributeEstimate>> estimates =
        client.value().Reconstruct(1);
    ASSERT_TRUE(estimates.ok()) << estimates.status().ToString();
    ASSERT_EQ(estimates.value().size(), expected.value().size());
    for (std::size_t a = 0; a < estimates.value().size(); ++a) {
      // Byte-identical doubles: the daemon ran exactly the same
      // computation the direct session did.
      EXPECT_EQ(estimates.value()[a].masses, expected.value()[a].masses)
          << "attribute " << a;
      EXPECT_EQ(estimates.value()[a].iterations,
                expected.value()[a].iterations);
      EXPECT_EQ(estimates.value()[a].sample_count,
                expected.value()[a].sample_count);
    }
    ASSERT_TRUE(server.value()->Stop().ok());
  }
}

TEST(ServerTest, MalformedFramesAnswerErrorsAndTheProcessKeepsServing) {
  Result<std::unique_ptr<Server>> server = Server::Start(LoopbackOptions(2));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);

  // A healthy tenant on its own connection, open before the abuse.
  Result<Client> healthy = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(healthy.value().Open(7, spec).ok());

  struct HostileCase {
    std::string name;
    std::string bytes;
    StatusCode want;
  };
  std::vector<HostileCase> cases;
  {
    std::string bad_magic = EncodeFrame(Verb::kStats, 1, 0, 0, "");
    bad_magic[0] = 'X';
    cases.push_back({"bad magic", bad_magic, StatusCode::kInvalidArgument});
  }
  {
    std::string future = EncodeFrame(Verb::kStats, 1, 0, 0, "");
    future[4] = static_cast<char>(kProtocolVersion + 1);
    cases.push_back({"future version", future,
                     StatusCode::kFailedPrecondition});
  }
  {
    std::string flipped = EncodeFrame(Verb::kStats, 1, 0, 0, "payload");
    flipped.back() = static_cast<char>(flipped.back() ^ 0x40);
    cases.push_back({"body bit flip", flipped, StatusCode::kDataLoss});
  }
  for (const HostileCase& hostile : cases) {
    SCOPED_TRACE(hostile.name);
    Result<Client> client = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().SendRaw(hostile.bytes).ok());
    Result<Frame> response = client.value().ReadFrame();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    Result<ResponseBody> envelope = DecodeResponseBody(response.value().body);
    ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
    EXPECT_EQ(envelope.value().status.code(), hostile.want);
  }

  // An unknown verb is well-framed: error envelope, connection survives.
  Result<Client> client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(
      client.value().SendRaw(EncodeFrame(/*verb=*/99u, 1, 0, 0, "")).ok());
  Result<Frame> response = client.value().ReadFrame();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  Result<ResponseBody> envelope = DecodeResponseBody(response.value().body);
  ASSERT_TRUE(envelope.ok());
  EXPECT_EQ(envelope.value().status.code(), StatusCode::kInvalidArgument);
  Result<std::string> stats = client.value().Stats();
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();

  // The tenant opened before all that abuse still works.
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(100, &num_cols);
  EXPECT_TRUE(healthy.value()
                  .Ingest(7, rows.size() / num_cols, num_cols, rows)
                  .ok());
  EXPECT_TRUE(healthy.value().Reconstruct(7).ok());
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, RequestsForUnknownTenantsAnswerNotFound) {
  Result<std::unique_ptr<Server>> server = Server::Start(LoopbackOptions(0));
  ASSERT_TRUE(server.ok());
  Result<Client> client = Client::Connect("127.0.0.1",
                                          server.value()->port());
  ASSERT_TRUE(client.ok());
  Result<std::vector<AttributeEstimate>> estimates =
      client.value().Reconstruct(/*tenant=*/404);
  ASSERT_FALSE(estimates.ok());
  EXPECT_EQ(estimates.status().code(), StatusCode::kNotFound);
  // Malformed verb payloads are also data, not aborts: an ingest body
  // whose row/col geometry disagrees with its values array.
  store::Writer writer;
  writer.PutU64(10);  // rows
  writer.PutU64(3);   // cols
  writer.PutDoubleArray({1.0, 2.0});  // 2 values, not 30
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(client.value().Open(1, spec).ok());
  Result<ResponseBody> response =
      client.value().Call(Verb::kIngest, 1, 0, writer.Take());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().status.code(), StatusCode::kInvalidArgument);
  // The shape check is exact, not floor division: 31 values for a 10x3
  // ingest (30 + one trailing stray) is rejected, not silently truncated.
  store::Writer stray;
  stray.PutU64(10);
  stray.PutU64(3);
  stray.PutDoubleArray(std::vector<double>(31, 0.5));
  Result<ResponseBody> extra =
      client.value().Call(Verb::kIngest, 1, 0, stray.Take());
  ASSERT_TRUE(extra.ok()) << extra.status().ToString();
  EXPECT_EQ(extra.value().status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, ShedAndInjectedStoreFaultsAreProtocolErrorsNotCrashes) {
  FaultGuard guard;
  TempDir dir;
  ServerOptions options = LoopbackOptions(2);
  options.checkpoint_dir = dir.path;
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<Client> client = Client::Connect("127.0.0.1",
                                          server.value()->port());
  ASSERT_TRUE(client.ok());
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(client.value().Open(1, spec).ok());

  // Admission-control shedding: the service.enqueue fault point is the
  // same code path max_pending takes; the shed Status travels back in
  // the envelope and the connection keeps serving.
  ASSERT_TRUE(fault::ArmFromSpec("service.enqueue=once").ok());
  Result<std::vector<AttributeEstimate>> shed = client.value().Reconstruct(1);
  ASSERT_FALSE(shed.ok());
  Result<std::vector<AttributeEstimate>> after = client.value().Reconstruct(1);
  EXPECT_TRUE(after.ok()) << after.status().ToString();

  // A permanently-failing store put: the snapshot verb reports the
  // injected fault, the daemon survives, and the next snapshot works.
  ASSERT_TRUE(fault::ArmFromSpec("store.put.io=once,permanent").ok());
  Result<std::uint64_t> snap = client.value().Snapshot(1);
  ASSERT_FALSE(snap.ok());
  Result<std::uint64_t> retry = client.value().Snapshot(1);
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_GT(retry.value(), 0u);
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, RateLimitedTenantGetsResourceExhaustedOthersProceed) {
  ServerOptions options = LoopbackOptions(0);
  options.tenant_rate = 1e-9;  // effectively no refill
  options.tenant_burst = 2.0;  // exactly open + one more request
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_TRUE(server.ok());
  Result<Client> client = Client::Connect("127.0.0.1",
                                          server.value()->port());
  ASSERT_TRUE(client.ok());
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(client.value().Open(1, spec).ok());        // token 1
  ASSERT_TRUE(client.value().Reconstruct(1).ok());       // token 2
  Result<std::vector<AttributeEstimate>> limited =
      client.value().Reconstruct(1);                     // bucket empty
  ASSERT_FALSE(limited.ok());
  EXPECT_EQ(limited.status().code(), StatusCode::kResourceExhausted);
  // Another tenant has its own bucket; stats bypasses limiting entirely.
  ASSERT_TRUE(client.value().Open(2, spec).ok());
  EXPECT_TRUE(client.value().Stats().ok());
  // Close drops the tenant's bucket: open + close spend the whole burst,
  // yet the reopened tenant starts from a fresh full bucket (without the
  // Forget-on-close it would already be rate-limited here).
  ASSERT_TRUE(client.value().Open(3, spec).ok());        // token 1
  ASSERT_TRUE(client.value().CloseTenant(3).ok());       // token 2
  ASSERT_TRUE(client.value().Open(3, spec).ok());        // fresh token 1
  EXPECT_TRUE(client.value().Reconstruct(3).ok());       // fresh token 2
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, StatsVerbServesTheMetricsExposition) {
  Result<std::unique_ptr<Server>> server = Server::Start(LoopbackOptions(0));
  ASSERT_TRUE(server.ok());
  Result<Client> client = Client::Connect("127.0.0.1",
                                          server.value()->port());
  ASSERT_TRUE(client.ok());
  Result<std::string> stats = client.value().Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats.value().find("ppdm_net_connections_total"),
            std::string::npos);
  EXPECT_NE(stats.value().find("ppdm_net_requests_total"), std::string::npos);
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, HostileTraceIdFramesAnswerErrorsAndNeverAbort) {
  Result<std::unique_ptr<Server>> server = Server::Start(LoopbackOptions(2));
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();

  const std::string good =
      EncodeFrame(Verb::kStats, 1, 0, 0, "", /*trace_id=*/0xdeadbeefULL);
  struct HostileCase {
    std::string name;
    std::string bytes;
  };
  std::vector<HostileCase> cases;
  {
    std::string oversized = good;
    oversized[32] = 17;  // declared trace length beyond the 16-char cap
    cases.push_back({"oversized trace length", oversized});
  }
  {
    std::string nonhex = good;
    nonhex[36] = 'g';
    cases.push_back({"non-hex trace id", nonhex});
  }
  {
    std::string zero = good;
    for (std::size_t i = 36; i < 36 + kMaxTraceHexChars; ++i) zero[i] = '0';
    cases.push_back({"zero trace id", zero});
  }
  for (const HostileCase& hostile : cases) {
    SCOPED_TRACE(hostile.name);
    Result<Client> client = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().SendRaw(hostile.bytes).ok());
    Result<Frame> response = client.value().ReadFrame();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    Result<ResponseBody> envelope =
        DecodeResponseBody(response.value().body);
    ASSERT_TRUE(envelope.ok()) << envelope.status().ToString();
    EXPECT_EQ(envelope.value().status.code(), StatusCode::kInvalidArgument);
  }

  // A well-formed traced request still works after the abuse.
  Result<Client> client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  client.value().set_trace_id(obs::NewTraceId());
  EXPECT_TRUE(client.value().Stats().ok());
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, ClientTraceIdYieldsACausalTreeWithLabeledMetrics) {
  TempDir dir;
  ServerOptions options = LoopbackOptions(2);
  options.checkpoint_dir = dir.path;
  // Threshold low enough that every request trips the slow-request log.
  options.slow_request_ms = 1e-6;
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Result<Client> client =
      Client::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());

  const std::uint64_t trace = obs::NewTraceId();
  client.value().set_trace_id(trace);
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(client.value().Open(1, spec).ok());
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(150, &num_cols);
  ASSERT_TRUE(client.value()
                  .Ingest(1, rows.size() / num_cols, num_cols, rows)
                  .ok());
  ASSERT_TRUE(client.value().Reconstruct(1).ok());
  ASSERT_TRUE(client.value().Snapshot(1).ok());

  // Every span of our trace, linked by parent ids, must form a tree at
  // least four causal levels deep: net.request → service.run →
  // session work → engine fan-out (and the snapshot leg reaches
  // store.put the same way).
  const std::vector<obs::SpanEvent> spans =
      obs::TraceRing::Global().Snapshot();
  std::map<std::uint64_t, const obs::SpanEvent*> by_id;
  for (const obs::SpanEvent& span : spans) {
    if (span.trace_id == trace) by_id[span.span_id] = &span;
  }
  ASSERT_FALSE(by_id.empty());
  std::size_t max_depth = 0;
  std::vector<std::string> seen;
  for (const auto& [id, span] : by_id) {
    std::size_t depth = 0;
    const obs::SpanEvent* walk = span;
    while (walk->parent_id != 0) {
      const auto parent = by_id.find(walk->parent_id);
      ASSERT_NE(parent, by_id.end())
          << span->name << " has a parent outside its own trace";
      walk = parent->second;
      ASSERT_LT(++depth, 32u);
    }
    max_depth = std::max(max_depth, depth);
    seen.push_back(span->name);
  }
  EXPECT_GE(max_depth, 3u) << "tree is fewer than 4 levels deep";
  const auto saw = [&seen](const std::string& name) {
    return std::find(seen.begin(), seen.end(), name) != seen.end();
  };
  EXPECT_TRUE(saw("net.request"));
  EXPECT_TRUE(saw("service.queue"));
  EXPECT_TRUE(saw("service.run"));
  EXPECT_TRUE(saw("engine.parallel_for"));
  EXPECT_TRUE(saw("store.put"));

  // The root carries the tenant and verb labels.
  bool root_labeled = false;
  for (const auto& [id, span] : by_id) {
    if (span->name == "net.request" && span->parent_id == 0 &&
        span->labels.find("tenant=\"t1\"") != std::string::npos) {
      root_labeled = true;
    }
  }
  EXPECT_TRUE(root_labeled);

  // The stats verb's trace flag returns Chrome JSON holding our trace id.
  Result<std::string> chrome = client.value().Trace();
  ASSERT_TRUE(chrome.ok()) << chrome.status().ToString();
  EXPECT_NE(chrome.value().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.value().find(StrFormat(
                "%016llx", static_cast<unsigned long long>(trace))),
            std::string::npos);
  // An undersized stats body that is not the trace flag is an error.
  Result<ResponseBody> bogus =
      client.value().Call(Verb::kStats, 0, 0, std::string_view("\x02", 1));
  ASSERT_TRUE(bogus.ok());
  EXPECT_EQ(bogus.value().status.code(), StatusCode::kInvalidArgument);

  // Per-tenant labeled series flow through the exposition.
  Result<std::string> stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats.value().find("ppdm_tenant_requests_total{tenant=\"t1\"}"),
            std::string::npos);
  EXPECT_NE(stats.value().find("ppdm_tenant_bytes_total{tenant=\"t1\"}"),
            std::string::npos);
  EXPECT_NE(
      stats.value().find("ppdm_tenant_request_seconds_count{tenant=\"t1\"}"),
      std::string::npos);
  EXPECT_NE(stats.value().find("ppdm_trace_recorded_total"),
            std::string::npos);

  // Every request crossed the 1ns slow threshold, so the daemon kept a
  // rendered tree of the most recent offender.
  const std::string slow = server.value()->LastSlowRequestTree();
  EXPECT_NE(slow.find("net.request"), std::string::npos);
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, PipelinedFramesUnderATinyWindowAllAnswerInOrder) {
  ServerOptions options = LoopbackOptions(2);
  options.connection_window = 1;  // reads pause after a single in-flight
  Result<std::unique_ptr<Server>> server = Server::Start(options);
  ASSERT_TRUE(server.ok());
  Result<Client> client = Client::Connect("127.0.0.1",
                                          server.value()->port());
  ASSERT_TRUE(client.ok());
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  ASSERT_TRUE(client.value().Open(1, spec).ok());

  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(50, &num_cols);
  store::Writer writer;
  writer.PutU64(rows.size() / num_cols);
  writer.PutU64(num_cols);
  writer.PutDoubleArray(rows);
  const std::string ingest_body = writer.Take();

  // Blast 16 pipelined ingests without reading; backpressure pauses the
  // daemon's reads, TCP pushes back, and every request still answers —
  // in order, with its own request id echoed.
  const int kPipelined = 16;
  std::string burst;
  for (int i = 0; i < kPipelined; ++i) {
    burst += EncodeFrame(Verb::kIngest, /*request_id=*/100 + i, 1, 0,
                         ingest_body);
  }
  ASSERT_TRUE(client.value().SendRaw(burst).ok());
  for (int i = 0; i < kPipelined; ++i) {
    Result<Frame> response = client.value().ReadFrame();
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    EXPECT_EQ(response.value().header.request_id,
              static_cast<std::uint64_t>(100 + i));
    Result<ResponseBody> envelope = DecodeResponseBody(response.value().body);
    ASSERT_TRUE(envelope.ok());
    EXPECT_TRUE(envelope.value().status.ok())
        << envelope.value().status.ToString();
  }
  ASSERT_TRUE(server.value()->Stop().ok());
}

TEST(ServerTest, DrainCheckpointsEveryTenantAndResumeRestoresThemExactly) {
  TempDir dir;
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(2);
  std::size_t num_cols = 0;
  const std::vector<double> rows = PerturbedRows(400, &num_cols);
  const std::size_t num_rows = rows.size() / num_cols;

  // Ground truth: direct sessions fed the same per-tenant slices.
  std::vector<std::vector<reconstruct::Reconstruction>> expected;
  for (std::uint64_t tenant = 0; tenant < 2; ++tenant) {
    Result<std::unique_ptr<api::DatasetSession>> direct =
        api::DatasetSession::Open(spec);
    ASSERT_TRUE(direct.ok());
    const std::size_t half = num_rows / 2;
    const std::size_t begin = tenant * half;
    ASSERT_TRUE(direct.value()
                    ->Ingest(data::RowBatch(rows.data() + begin * num_cols,
                                            half, num_cols))
                    .ok());
    auto reconstructed = direct.value()->ReconstructAll();
    ASSERT_TRUE(reconstructed.ok());
    expected.push_back(std::move(reconstructed).value());
  }

  ServerOptions options = LoopbackOptions(2);
  options.checkpoint_dir = dir.path;
  {
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    ASSERT_TRUE(server.ok());
    Result<Client> client = Client::Connect("127.0.0.1",
                                            server.value()->port());
    ASSERT_TRUE(client.ok());
    for (std::uint64_t tenant = 0; tenant < 2; ++tenant) {
      ASSERT_TRUE(client.value().Open(tenant, spec).ok());
      const std::size_t half = num_rows / 2;
      const std::vector<double> slice(
          rows.begin() + tenant * half * num_cols,
          rows.begin() + (tenant + 1) * half * num_cols);
      ASSERT_TRUE(client.value().Ingest(tenant, half, num_cols, slice).ok());
    }
    // SIGTERM path: RequestStop is what the signal handler calls.
    server.value()->RequestStop();
    server.value()->AwaitLoopExit();
    ASSERT_TRUE(server.value()->Stop().ok());
    EXPECT_EQ(server.value()->drained_checkpoints(), 2u);
  }

  options.resume = true;
  Result<std::unique_ptr<Server>> restarted = Server::Start(options);
  ASSERT_TRUE(restarted.ok());
  Result<Client> client = Client::Connect("127.0.0.1",
                                          restarted.value()->port());
  ASSERT_TRUE(client.ok());
  for (std::uint64_t tenant = 0; tenant < 2; ++tenant) {
    SCOPED_TRACE("tenant " + std::to_string(tenant));
    Result<OpenResult> opened = client.value().Open(tenant, spec);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_TRUE(opened.value().resumed);
    EXPECT_EQ(opened.value().record_count, num_rows / 2);
    Result<std::vector<AttributeEstimate>> estimates =
        client.value().Reconstruct(tenant);
    ASSERT_TRUE(estimates.ok()) << estimates.status().ToString();
    ASSERT_EQ(estimates.value().size(), expected[tenant].size());
    for (std::size_t a = 0; a < estimates.value().size(); ++a) {
      EXPECT_EQ(estimates.value()[a].masses, expected[tenant][a].masses)
          << "attribute " << a;
      EXPECT_EQ(estimates.value()[a].sample_count,
                expected[tenant][a].sample_count);
    }
  }
  ASSERT_TRUE(restarted.value()->Stop().ok());
}

TEST(ServerTest, CloseDropsTheTenantAndWithoutResumeStaleCapturesDie) {
  TempDir dir;
  ServerOptions options = LoopbackOptions(0);
  options.checkpoint_dir = dir.path;
  const api::DatasetSessionSpec spec = BenchmarkDatasetSpec(1);
  {
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    ASSERT_TRUE(server.ok());
    Result<Client> client = Client::Connect("127.0.0.1",
                                            server.value()->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client.value().Open(1, spec).ok());
    ASSERT_TRUE(client.value().Snapshot(1).ok());
    ASSERT_TRUE(client.value().CloseTenant(1).ok());
    Status again = client.value().CloseTenant(1);
    EXPECT_EQ(again.code(), StatusCode::kNotFound);
    // Closed tenants are not drained at shutdown.
    ASSERT_TRUE(server.value()->Stop().ok());
    EXPECT_EQ(server.value()->drained_checkpoints(), 0u);
  }
  // Without --resume a fresh daemon treats the old capture as stale:
  // the open is brand new, not a restore.
  {
    Result<std::unique_ptr<Server>> server = Server::Start(options);
    ASSERT_TRUE(server.ok());
    Result<Client> client = Client::Connect("127.0.0.1",
                                            server.value()->port());
    ASSERT_TRUE(client.ok());
    Result<OpenResult> opened = client.value().Open(1, spec);
    ASSERT_TRUE(opened.ok());
    EXPECT_FALSE(opened.value().resumed);
    EXPECT_EQ(opened.value().record_count, 0u);
    ASSERT_TRUE(server.value()->Stop().ok());
  }
}

}  // namespace
}  // namespace ppdm::net
