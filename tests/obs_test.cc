// Tests for the observability layer (src/obs): instrument semantics,
// exposition well-formedness, thread-safety under concurrent scrape (the
// TSan job builds this binary), and the layer's core contract — telemetry
// never changes what the serving stack computes.

#include <cstring>
#include <optional>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset_session.h"
#include "api/service.h"
#include "common/random.h"
#include "data/row_batch.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/generator.h"

namespace ppdm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::ScopedSpan;
using obs::ScopedTimer;
using obs::SpanEvent;
using obs::TraceRing;

// Every test touching the global timing flag restores it; instruments use
// test-unique names so tests stay independent inside one process.

TEST(CounterTest, IncrementsAndMerges) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, AddAndSet) {
  Gauge gauge;
  gauge.Add(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(100);
  EXPECT_EQ(gauge.Value(), 100);
  gauge.Add(-150);
  EXPECT_EQ(gauge.Value(), -50);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0 (le="1")
  histogram.Observe(1.5);   // bucket 1 (le="2")
  histogram.Observe(2.0);   // also bucket 1 — le bounds are inclusive
  histogram.Observe(100.0); // +Inf bucket
  const std::vector<std::uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.5 + 2.0 + 100.0);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(HistogramTest, QuantilesInterpolate) {
  Histogram histogram({10.0, 20.0, 30.0});
  // 10 samples uniform in (0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) histogram.Observe(5.0);
  for (int i = 0; i < 10; ++i) histogram.Observe(15.0);
  // Rank 10 of 20 sits at the boundary of the first bucket.
  EXPECT_NEAR(histogram.Quantile(0.5), 10.0, 1.0);
  // The top of the occupied range.
  EXPECT_NEAR(histogram.Quantile(1.0), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Quantile(0.5), 0.0);  // empty
  // +Inf samples clamp to the last finite bound.
  Histogram overflow({1.0});
  overflow.Observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 1.0);
}

TEST(HistogramTest, ExponentialBuckets) {
  const std::vector<double> bounds =
      Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ScopedTimerTest, RecordsOnceAndStopDisarms) {
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  {
    ScopedTimer timer(&histogram);
    EXPECT_GE(timer.Stop(), 0.0);
    // Disarmed: destruction must not record a second sample.
  }
  EXPECT_EQ(histogram.Count(), 1u);
  {
    ScopedTimer timer(&histogram);  // records via the destructor
  }
  EXPECT_EQ(histogram.Count(), 2u);
  ScopedTimer null_timer(nullptr);  // must be inert
  EXPECT_DOUBLE_EQ(null_timer.Stop(), 0.0);
}

TEST(TimingEnabledTest, DisablingElidesSamples) {
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  obs::SetTimingEnabled(false);
  histogram.Observe(1.0);
  {
    ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.Count(), 0u);
  obs::SetTimingEnabled(true);
  histogram.Observe(1.0);
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(MetricsRegistryTest, IdentityIsNamePlusLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs_test_ids_total");
  EXPECT_EQ(a, registry.GetCounter("obs_test_ids_total"));
  EXPECT_NE(a, registry.GetCounter("obs_test_ids_total", "kind=\"x\""));
  Histogram* h = registry.GetHistogram("obs_test_ids_seconds", {1.0, 2.0});
  // First registration wins, even with different bounds.
  EXPECT_EQ(h, registry.GetHistogram("obs_test_ids_seconds", {5.0}));
  EXPECT_EQ(h->bounds().size(), 2u);
  EXPECT_EQ(registry.FindHistogram("obs_test_ids_seconds"), h);
  EXPECT_EQ(registry.FindHistogram("obs_test_absent_seconds"), nullptr);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test_reset_total");
  Histogram* histogram =
      registry.GetHistogram("obs_test_reset_seconds", {1.0});
  counter->Increment(7);
  histogram->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(counter, registry.GetCounter("obs_test_reset_total"));
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
}

// Every non-comment exposition line must parse as `name{labels} value` —
// the same property the CI smoke asserts on the live binary.
TEST(MetricsRegistryTest, RenderTextIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("obs_test_render_total")->Increment(3);
  registry.GetGauge("obs_test_render_depth")->Set(-2);
  Histogram* histogram = registry.GetHistogram(
      "obs_test_render_seconds", {0.001, 0.01}, "kind=\"unit\"");
  histogram->Observe(0.005);
  histogram->Observe(5.0);

  const std::string text = registry.RenderText();
  ASSERT_FALSE(text.empty());
  const std::regex type_line("# TYPE [a-zA-Z_][a-zA-Z0-9_]* "
                             "(counter|gauge|histogram)");
  const std::regex sample_line(
      "[a-zA-Z_][a-zA-Z0-9_]*(\\{[^{}]*\\})? -?[0-9.eE+-]+");
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, type_line)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_line)) << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0u);
  EXPECT_NE(text.find("obs_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_depth -2"), std::string::npos);
  // Histogram renders the cumulative series plus _sum/_count, with the
  // instrument labels composed before le.
  EXPECT_NE(text.find("obs_test_render_seconds_bucket{kind=\"unit\","
                      "le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_seconds_count{kind=\"unit\"} 2"),
            std::string::npos);
}

// The lock-striped cells under fire: writers increment while a scraper
// merges and renders. TSan (the CI tsan job builds this test) verifies
// the absence of data races; the final totals verify no lost updates.
TEST(MetricsRegistryTest, ConcurrentIncrementAndScrape) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test_race_total");
  Gauge* gauge = registry.GetGauge("obs_test_race_depth");
  Histogram* histogram =
      registry.GetHistogram("obs_test_race_seconds", {1e-3, 1e-2, 1e-1});

  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        gauge->Add(1);
        gauge->Add(-1);
        histogram->Observe(5e-3);
      }
    });
  }
  // Scrape continuously while the writers run.
  for (int s = 0; s < 50; ++s) {
    (void)counter->Value();
    (void)gauge->Value();
    (void)histogram->BucketCounts();
    (void)registry.RenderText();
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(TraceRingTest, BoundedOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ring.Record("span", /*start_ns=*/i * 100, /*duration_ns=*/i);
  }
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().duration_ns, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(spans.back().duration_ns, 6u);
  EXPECT_EQ(ring.TotalRecorded(), 6u);
  EXPECT_EQ(ring.DroppedCount(), 2u);
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.TotalRecorded(), 0u);
}

TEST(ScopedSpanTest, RecordsRingAndHistogram) {
  TraceRing ring(8);
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  {
    ScopedSpan span("obs_test.work", &histogram, &ring);
  }
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "obs_test.work");
  EXPECT_EQ(histogram.Count(), 1u);
  const std::string rendered = obs::RenderSpans(spans);
  EXPECT_NE(rendered.find("obs_test.work"), std::string::npos);

  obs::SetTimingEnabled(false);
  {
    ScopedSpan span("obs_test.disabled", &histogram, &ring);
  }
  obs::SetTimingEnabled(true);
  EXPECT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(TraceContextTest, IdsAreNonZeroAndDistinct) {
  const std::uint64_t a = obs::NewTraceId();
  const std::uint64_t b = obs::NewTraceId();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_NE(obs::NewSpanId(), obs::NewSpanId());
}

TEST(TraceContextTest, ScopedAdoptInstallsAndRestores) {
  EXPECT_EQ(obs::TraceContext::Current().trace_id, 0u);
  {
    obs::ScopedTraceContext outer(obs::TraceContext{42, 7});
    EXPECT_EQ(obs::TraceContext::Current().trace_id, 42u);
    EXPECT_EQ(obs::TraceContext::Current().span_id, 7u);
    {
      obs::ScopedTraceContext inner(obs::TraceContext{43, 8});
      EXPECT_EQ(obs::TraceContext::Current().trace_id, 43u);
    }
    EXPECT_EQ(obs::TraceContext::Current().trace_id, 42u);
    EXPECT_EQ(obs::TraceContext::Current().span_id, 7u);
  }
  EXPECT_EQ(obs::TraceContext::Current().trace_id, 0u);
}

// Nested ScopedSpans under an adopted context must form a well-nested
// tree: each child's parent is the enclosing span, all share the trace.
TEST(ScopedSpanTest, NestedSpansParentCorrectly) {
  TraceRing ring(8);
  const std::uint64_t trace = obs::NewTraceId();
  {
    obs::ScopedTraceContext adopt(obs::TraceContext{trace, 7});
    ScopedSpan outer("obs_test.outer", nullptr, &ring);
    { ScopedSpan inner("obs_test.inner", nullptr, &ring); }
  }
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanEvent& inner = spans[0];  // closes first
  const SpanEvent& outer = spans[1];
  EXPECT_EQ(inner.name, "obs_test.inner");
  EXPECT_EQ(outer.name, "obs_test.outer");
  EXPECT_EQ(outer.trace_id, trace);
  EXPECT_EQ(inner.trace_id, trace);
  EXPECT_EQ(outer.parent_id, 7u);
  EXPECT_EQ(inner.parent_id, outer.span_id);
  EXPECT_NE(inner.span_id, outer.span_id);
  // Well-nested in time too.
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.duration_ns,
            outer.start_ns + outer.duration_ns);
}

TEST(PendingSpanTest, BeginEndRecordsOnceAndIsIdempotent) {
  TraceRing ring(8);
  const std::uint64_t trace = obs::NewTraceId();
  obs::PendingSpan pending =
      obs::BeginSpan("obs_test.pending", obs::TraceContext{trace, 0},
                     "tenant=\"t1\"");
  obs::EndSpan(&pending, &ring);
  obs::EndSpan(&pending, &ring);  // second close must be a no-op
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "obs_test.pending");
  EXPECT_EQ(spans[0].trace_id, trace);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_EQ(spans[0].labels, "tenant=\"t1\"");

  obs::SetTimingEnabled(false);
  obs::PendingSpan disarmed =
      obs::BeginSpan("obs_test.disarmed", obs::TraceContext{trace, 0});
  obs::EndSpan(&disarmed, &ring);
  obs::SetTimingEnabled(true);
  EXPECT_EQ(ring.Snapshot().size(), 1u);
}

// Concurrent requests, each its own trace: every trace's spans must stay
// self-contained (no cross-trace parents) and well-nested in time.
TEST(SpanTreeTest, ConcurrentRequestsStayWellNested) {
  TraceRing ring(256);
  constexpr int kRequests = 8;
  std::vector<std::uint64_t> traces(kRequests);
  std::vector<std::thread> threads;
  for (int r = 0; r < kRequests; ++r) {
    traces[r] = obs::NewTraceId();
    threads.emplace_back([&ring, trace = traces[r]] {
      obs::ScopedTraceContext adopt(obs::TraceContext{trace, 0});
      ScopedSpan request("obs_test.request", nullptr, &ring);
      for (int i = 0; i < 3; ++i) {
        ScopedSpan step("obs_test.step", nullptr, &ring);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kRequests) * 4);
  for (const std::uint64_t trace : traces) {
    const SpanEvent* root = nullptr;
    std::vector<const SpanEvent*> members;
    for (const SpanEvent& span : spans) {
      if (span.trace_id != trace) continue;
      members.push_back(&span);
      if (span.parent_id == 0) root = &span;
    }
    ASSERT_EQ(members.size(), 4u);
    ASSERT_NE(root, nullptr);
    EXPECT_EQ(root->name, "obs_test.request");
    for (const SpanEvent* span : members) {
      if (span == root) continue;
      // Every step hangs off the request and fits inside it.
      EXPECT_EQ(span->parent_id, root->span_id);
      EXPECT_GE(span->start_ns, root->start_ns);
      EXPECT_LE(span->start_ns + span->duration_ns,
                root->start_ns + root->duration_ns);
    }
  }
  const std::string tree = obs::RenderSpanTree(spans, traces[0]);
  EXPECT_NE(tree.find("obs_test.request"), std::string::npos);
  EXPECT_NE(tree.find("  obs_test.step"), std::string::npos);  // indented
}

// Jobs submitted through api::Service must carry the caller's trace
// across the queue: service.queue and service.run surface as siblings
// under the submitting span's context, on every thread shape.
TEST(ServicePropagationTest, QueueAndRunJoinTheCallersTrace) {
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    engine::BatchOptions batch;
    batch.num_threads = threads;
    Result<std::unique_ptr<api::Service>> service =
        api::Service::Create(batch);
    ASSERT_TRUE(service.ok()) << service.status().message();
    const std::uint64_t trace = obs::NewTraceId();
    {
      obs::ScopedTraceContext adopt(obs::TraceContext{trace, 11});
      api::JobHandle<int> handle =
          service.value()->Submit<int>([]() -> Result<int> { return 5; });
      const Result<int> settled = handle.Wait();
      ASSERT_TRUE(settled.ok());
      EXPECT_EQ(settled.value(), 5);
    }
    bool saw_queue = false;
    bool saw_run = false;
    for (const SpanEvent& span : TraceRing::Global().Snapshot()) {
      if (span.trace_id != trace) continue;
      EXPECT_EQ(span.parent_id, 11u);
      if (span.name == "service.queue") saw_queue = true;
      if (span.name == "service.run") saw_run = true;
    }
    EXPECT_TRUE(saw_queue) << "threads=" << threads;
    EXPECT_TRUE(saw_run) << "threads=" << threads;
  }
}

TEST(TraceRingTest, GlobalRingFeedsRecordedAndDroppedCounters) {
  auto& registry = MetricsRegistry::Global();
  Counter* recorded = registry.GetCounter("ppdm_trace_recorded_total");
  Counter* dropped = registry.GetCounter("ppdm_trace_dropped_total");
  const std::uint64_t recorded_before = recorded->Value();
  const std::uint64_t dropped_before = dropped->Value();
  const std::size_t capacity = TraceRing::Global().capacity();
  for (std::size_t i = 0; i < capacity + 5; ++i) {
    TraceRing::Global().Record("obs_test.flood", 1, 1);
  }
  EXPECT_GE(recorded->Value(), recorded_before + capacity + 5);
  EXPECT_GE(dropped->Value() - dropped_before, 5u);
  // A private ring never touches the process counters.
  TraceRing local(2);
  const std::uint64_t recorded_mid = recorded->Value();
  local.Record("obs_test.local", 1, 1);
  EXPECT_EQ(recorded->Value(), recorded_mid);
  // Both families are present in the exposition.
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("ppdm_trace_recorded_total"), std::string::npos);
  EXPECT_NE(text.find("ppdm_trace_dropped_total"), std::string::npos);
}

TEST(LabelSetTest, RenderCanonicalizesOrderAndEscapes) {
  EXPECT_EQ(obs::RenderLabelSet({}), "");
  EXPECT_EQ(obs::RenderLabelSet({{"tenant", "t1"}}), "tenant=\"t1\"");
  // Sorted by key regardless of insertion order.
  EXPECT_EQ(obs::RenderLabelSet({{"verb", "open"}, {"tenant", "t1"}}),
            "tenant=\"t1\",verb=\"open\"");
  // Quotes, backslashes and newlines escape per the Prometheus text rules.
  EXPECT_EQ(obs::RenderLabelSet({{"key", "a\"b\\c\nd"}}),
            "key=\"a\\\"b\\\\c\\nd\"");
}

TEST(LabelSetTest, LabelSetAndStringFormsShareInstruments) {
  MetricsRegistry registry;
  Counter* by_set = registry.GetCounter("obs_test_family_total",
                                        obs::LabelSet{{"tenant", "t1"}});
  Counter* by_string =
      registry.GetCounter("obs_test_family_total", "tenant=\"t1\"");
  EXPECT_EQ(by_set, by_string);
  by_set->Increment(3);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("obs_test_family_total{tenant=\"t1\"} 3"),
            std::string::npos);
}

// The cardinality bound: series beyond the per-family cap collapse into
// one shared overflow series — existing series keep their pointers (no
// eviction, ever) and the refusal is itself counted.
TEST(LabelSetTest, CardinalityBoundCollapsesIntoOverflowSeries) {
  MetricsRegistry registry;
  registry.set_max_series_per_family(2);
  Counter* t1 = registry.GetCounter("obs_test_bound_total",
                                    obs::LabelSet{{"tenant", "t1"}});
  Counter* t2 = registry.GetCounter("obs_test_bound_total",
                                    obs::LabelSet{{"tenant", "t2"}});
  EXPECT_NE(t1, t2);
  Counter* t3 = registry.GetCounter("obs_test_bound_total",
                                    obs::LabelSet{{"tenant", "t3"}});
  Counter* t4 = registry.GetCounter("obs_test_bound_total",
                                    obs::LabelSet{{"tenant", "t4"}});
  // Both overflow requests land on the same shared series.
  EXPECT_EQ(t3, t4);
  EXPECT_NE(t3, t1);
  EXPECT_NE(t3, t2);
  // Admitted series survive the pressure — no eviction.
  EXPECT_EQ(t1, registry.GetCounter("obs_test_bound_total",
                                    obs::LabelSet{{"tenant", "t1"}}));
  // The unlabeled series and other families stay unaffected.
  EXPECT_NE(registry.GetCounter("obs_test_bound_total"), t3);
  EXPECT_NE(registry.GetCounter("obs_test_other_total",
                                obs::LabelSet{{"tenant", "t9"}}),
            t3);
  // The refusals were counted.
  EXPECT_GE(registry.GetCounter("ppdm_obs_series_overflow_total")->Value(),
            2u);
  t3->Increment();
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("obs_test_bound_total{overflow=\"true\"} 1"),
            std::string::npos);
}

TEST(ChromeTraceTest, RendersValidEventShape) {
  TraceRing ring(8);
  const std::uint64_t trace = obs::NewTraceId();
  {
    obs::ScopedTraceContext adopt(obs::TraceContext{trace, 0});
    ScopedSpan span("obs_test.chrome", nullptr, &ring,
                    "tenant=\"t\\\"1\"");
  }
  const std::string json = obs::RenderChromeTrace(ring.Snapshot());
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"obs_test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Label quotes arrive JSON-escaped, not raw.
  EXPECT_NE(json.find("tenant=\\\"t"), std::string::npos);
  EXPECT_EQ(json.find("tenant=\"t"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  std::ptrdiff_t braces = 0;
  std::ptrdiff_t brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // An empty snapshot still renders a loadable document.
  EXPECT_NE(obs::RenderChromeTrace({}).find("\"traceEvents\":["),
            std::string::npos);
}

// ------------------------------------------------------------ determinism
//
// The layer's core contract: instrumenting the serving stack changes
// nothing about what it computes. One perturbed stream, ingested and
// reconstructed at several thread counts with metrics enabled and
// disabled, must yield bit-identical masses in every configuration pair.

std::vector<double> ReconstructedBits(std::size_t threads) {
  api::DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  api::AttributeSpec attr;
  attr.column = 0;  // salary
  attr.intervals = 20;
  attr.noise = perturb::NoiseKind::kUniform;
  attr.privacy_fraction = 1.0;
  attr.confidence = 0.95;
  spec.attributes.push_back(attr);
  spec.shard_size = 512;

  std::optional<engine::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  Result<std::unique_ptr<api::DatasetSession>> session =
      api::DatasetSession::Open(spec, pool ? &*pool : nullptr);
  EXPECT_TRUE(session.ok()) << session.status().message();

  synth::GeneratorOptions gen;
  gen.num_records = 4000;
  gen.function = synth::Function::kF1;
  gen.seed = 20000607;
  synth::RecordStream stream(gen);
  Rng noise_rng(99);
  std::vector<double> scratch;
  while (!stream.Done()) {
    const data::RowBatch rows = stream.Next(500);
    scratch.assign(rows.values(),
                   rows.values() + rows.num_rows() * rows.num_cols());
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      scratch[r * rows.num_cols()] +=
          session.value()->noise_model(0).Sample(&noise_rng);
    }
    const Status ingested = session.value()->Ingest(data::RowBatch(
        scratch.data(), rows.num_rows(), rows.num_cols()));
    EXPECT_TRUE(ingested.ok()) << ingested.message();
  }
  Result<std::vector<reconstruct::Reconstruction>> estimates =
      session.value()->ReconstructAll();
  EXPECT_TRUE(estimates.ok()) << estimates.status().message();
  return estimates.value().front().masses;
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(DeterminismTest, MetricsNeverPerturbReconstruction) {
  ASSERT_TRUE(obs::TimingEnabled());
  for (const std::size_t threads : {0, 1, 2, 8}) {
    const std::vector<double> with_metrics = ReconstructedBits(threads);
    ASSERT_FALSE(with_metrics.empty());
    obs::SetTimingEnabled(false);
    const std::vector<double> without_metrics = ReconstructedBits(threads);
    obs::SetTimingEnabled(true);
    EXPECT_TRUE(BitIdentical(with_metrics, without_metrics))
        << "metrics on/off diverge at threads=" << threads;
  }
  // The engine's own cross-thread-count guarantee, with metrics enabled.
  const std::vector<double> one = ReconstructedBits(1);
  EXPECT_TRUE(BitIdentical(one, ReconstructedBits(2)));
  EXPECT_TRUE(BitIdentical(one, ReconstructedBits(8)));
}

// Same contract for causal tracing: running the whole pipeline inside an
// active trace (context installed, spans recording to the global ring)
// changes nothing, at every thread shape, and neither does disabling
// instrumentation outright.
TEST(DeterminismTest, TracingNeverPerturbsReconstruction) {
  ASSERT_TRUE(obs::TimingEnabled());
  for (const std::size_t threads : {0, 1, 2, 8}) {
    const std::vector<double> untraced = ReconstructedBits(threads);
    ASSERT_FALSE(untraced.empty());
    std::vector<double> traced;
    {
      obs::ScopedTraceContext adopt(
          obs::TraceContext{obs::NewTraceId(), 0});
      ScopedSpan root("obs_test.traced_request");
      traced = ReconstructedBits(threads);
    }
    EXPECT_TRUE(BitIdentical(untraced, traced))
        << "tracing on/off diverge at threads=" << threads;
    obs::SetTimingEnabled(false);
    const std::vector<double> disarmed = ReconstructedBits(threads);
    obs::SetTimingEnabled(true);
    EXPECT_TRUE(BitIdentical(untraced, disarmed))
        << "disarmed tracing diverges at threads=" << threads;
  }
}

}  // namespace
}  // namespace ppdm
