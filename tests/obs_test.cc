// Tests for the observability layer (src/obs): instrument semantics,
// exposition well-formedness, thread-safety under concurrent scrape (the
// TSan job builds this binary), and the layer's core contract — telemetry
// never changes what the serving stack computes.

#include <cstring>
#include <optional>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/dataset_session.h"
#include "common/random.h"
#include "data/row_batch.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "synth/generator.h"

namespace ppdm {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::ScopedSpan;
using obs::ScopedTimer;
using obs::SpanEvent;
using obs::TraceRing;

// Every test touching the global timing flag restores it; instruments use
// test-unique names so tests stay independent inside one process.

TEST(CounterTest, IncrementsAndMerges) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(GaugeTest, AddAndSet) {
  Gauge gauge;
  gauge.Add(5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Set(100);
  EXPECT_EQ(gauge.Value(), 100);
  gauge.Add(-150);
  EXPECT_EQ(gauge.Value(), -50);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsCountAndSum) {
  Histogram histogram({1.0, 2.0, 4.0});
  histogram.Observe(0.5);   // bucket 0 (le="1")
  histogram.Observe(1.5);   // bucket 1 (le="2")
  histogram.Observe(2.0);   // also bucket 1 — le bounds are inclusive
  histogram.Observe(100.0); // +Inf bucket
  const std::vector<std::uint64_t> counts = histogram.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.5 + 2.0 + 100.0);
  histogram.Reset();
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
}

TEST(HistogramTest, QuantilesInterpolate) {
  Histogram histogram({10.0, 20.0, 30.0});
  // 10 samples uniform in (0,10], 10 in (10,20].
  for (int i = 0; i < 10; ++i) histogram.Observe(5.0);
  for (int i = 0; i < 10; ++i) histogram.Observe(15.0);
  // Rank 10 of 20 sits at the boundary of the first bucket.
  EXPECT_NEAR(histogram.Quantile(0.5), 10.0, 1.0);
  // The top of the occupied range.
  EXPECT_NEAR(histogram.Quantile(1.0), 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Quantile(0.5), 0.0);  // empty
  // +Inf samples clamp to the last finite bound.
  Histogram overflow({1.0});
  overflow.Observe(50.0);
  EXPECT_DOUBLE_EQ(overflow.Quantile(0.99), 1.0);
}

TEST(HistogramTest, ExponentialBuckets) {
  const std::vector<double> bounds =
      Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(ScopedTimerTest, RecordsOnceAndStopDisarms) {
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  {
    ScopedTimer timer(&histogram);
    EXPECT_GE(timer.Stop(), 0.0);
    // Disarmed: destruction must not record a second sample.
  }
  EXPECT_EQ(histogram.Count(), 1u);
  {
    ScopedTimer timer(&histogram);  // records via the destructor
  }
  EXPECT_EQ(histogram.Count(), 2u);
  ScopedTimer null_timer(nullptr);  // must be inert
  EXPECT_DOUBLE_EQ(null_timer.Stop(), 0.0);
}

TEST(TimingEnabledTest, DisablingElidesSamples) {
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  obs::SetTimingEnabled(false);
  histogram.Observe(1.0);
  {
    ScopedTimer timer(&histogram);
  }
  EXPECT_EQ(histogram.Count(), 0u);
  obs::SetTimingEnabled(true);
  histogram.Observe(1.0);
  EXPECT_EQ(histogram.Count(), 1u);
}

TEST(MetricsRegistryTest, IdentityIsNamePlusLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("obs_test_ids_total");
  EXPECT_EQ(a, registry.GetCounter("obs_test_ids_total"));
  EXPECT_NE(a, registry.GetCounter("obs_test_ids_total", "kind=\"x\""));
  Histogram* h = registry.GetHistogram("obs_test_ids_seconds", {1.0, 2.0});
  // First registration wins, even with different bounds.
  EXPECT_EQ(h, registry.GetHistogram("obs_test_ids_seconds", {5.0}));
  EXPECT_EQ(h->bounds().size(), 2u);
  EXPECT_EQ(registry.FindHistogram("obs_test_ids_seconds"), h);
  EXPECT_EQ(registry.FindHistogram("obs_test_absent_seconds"), nullptr);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsPointers) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test_reset_total");
  Histogram* histogram =
      registry.GetHistogram("obs_test_reset_seconds", {1.0});
  counter->Increment(7);
  histogram->Observe(0.5);
  registry.ResetAll();
  EXPECT_EQ(counter, registry.GetCounter("obs_test_reset_total"));
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
}

// Every non-comment exposition line must parse as `name{labels} value` —
// the same property the CI smoke asserts on the live binary.
TEST(MetricsRegistryTest, RenderTextIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("obs_test_render_total")->Increment(3);
  registry.GetGauge("obs_test_render_depth")->Set(-2);
  Histogram* histogram = registry.GetHistogram(
      "obs_test_render_seconds", {0.001, 0.01}, "kind=\"unit\"");
  histogram->Observe(0.005);
  histogram->Observe(5.0);

  const std::string text = registry.RenderText();
  ASSERT_FALSE(text.empty());
  const std::regex type_line("# TYPE [a-zA-Z_][a-zA-Z0-9_]* "
                             "(counter|gauge|histogram)");
  const std::regex sample_line(
      "[a-zA-Z_][a-zA-Z0-9_]*(\\{[^{}]*\\})? -?[0-9.eE+-]+");
  std::size_t samples = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(std::regex_match(line, type_line)) << line;
    } else {
      EXPECT_TRUE(std::regex_match(line, sample_line)) << line;
      ++samples;
    }
  }
  EXPECT_GT(samples, 0u);
  EXPECT_NE(text.find("obs_test_render_total 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_render_depth -2"), std::string::npos);
  // Histogram renders the cumulative series plus _sum/_count, with the
  // instrument labels composed before le.
  EXPECT_NE(text.find("obs_test_render_seconds_bucket{kind=\"unit\","
                      "le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_render_seconds_count{kind=\"unit\"} 2"),
            std::string::npos);
}

// The lock-striped cells under fire: writers increment while a scraper
// merges and renders. TSan (the CI tsan job builds this test) verifies
// the absence of data races; the final totals verify no lost updates.
TEST(MetricsRegistryTest, ConcurrentIncrementAndScrape) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("obs_test_race_total");
  Gauge* gauge = registry.GetGauge("obs_test_race_depth");
  Histogram* histogram =
      registry.GetHistogram("obs_test_race_seconds", {1e-3, 1e-2, 1e-1});

  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        counter->Increment();
        gauge->Add(1);
        gauge->Add(-1);
        histogram->Observe(5e-3);
      }
    });
  }
  // Scrape continuously while the writers run.
  for (int s = 0; s < 50; ++s) {
    (void)counter->Value();
    (void)gauge->Value();
    (void)histogram->BucketCounts();
    (void)registry.RenderText();
  }
  for (std::thread& writer : writers) writer.join();

  EXPECT_EQ(counter->Value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(histogram->Count(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(TraceRingTest, BoundedOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    ring.Record("span", /*start_ns=*/i * 100, /*duration_ns=*/i);
  }
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans.front().duration_ns, 3u);  // 1 and 2 were overwritten
  EXPECT_EQ(spans.back().duration_ns, 6u);
  EXPECT_EQ(ring.TotalRecorded(), 6u);
  EXPECT_EQ(ring.DroppedCount(), 2u);
  ring.Clear();
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.TotalRecorded(), 0u);
}

TEST(ScopedSpanTest, RecordsRingAndHistogram) {
  TraceRing ring(8);
  Histogram histogram(Histogram::LatencyBucketsSeconds());
  {
    ScopedSpan span("obs_test.work", &histogram, &ring);
  }
  const std::vector<SpanEvent> spans = ring.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "obs_test.work");
  EXPECT_EQ(histogram.Count(), 1u);
  const std::string rendered = obs::RenderSpans(spans);
  EXPECT_NE(rendered.find("obs_test.work"), std::string::npos);

  obs::SetTimingEnabled(false);
  {
    ScopedSpan span("obs_test.disabled", &histogram, &ring);
  }
  obs::SetTimingEnabled(true);
  EXPECT_EQ(ring.Snapshot().size(), 1u);
  EXPECT_EQ(histogram.Count(), 1u);
}

// ------------------------------------------------------------ determinism
//
// The layer's core contract: instrumenting the serving stack changes
// nothing about what it computes. One perturbed stream, ingested and
// reconstructed at several thread counts with metrics enabled and
// disabled, must yield bit-identical masses in every configuration pair.

std::vector<double> ReconstructedBits(std::size_t threads) {
  api::DatasetSessionSpec spec;
  spec.schema = synth::BenchmarkSchema();
  api::AttributeSpec attr;
  attr.column = 0;  // salary
  attr.intervals = 20;
  attr.noise = perturb::NoiseKind::kUniform;
  attr.privacy_fraction = 1.0;
  attr.confidence = 0.95;
  spec.attributes.push_back(attr);
  spec.shard_size = 512;

  std::optional<engine::ThreadPool> pool;
  if (threads > 0) pool.emplace(threads);
  Result<std::unique_ptr<api::DatasetSession>> session =
      api::DatasetSession::Open(spec, pool ? &*pool : nullptr);
  EXPECT_TRUE(session.ok()) << session.status().message();

  synth::GeneratorOptions gen;
  gen.num_records = 4000;
  gen.function = synth::Function::kF1;
  gen.seed = 20000607;
  synth::RecordStream stream(gen);
  Rng noise_rng(99);
  std::vector<double> scratch;
  while (!stream.Done()) {
    const data::RowBatch rows = stream.Next(500);
    scratch.assign(rows.values(),
                   rows.values() + rows.num_rows() * rows.num_cols());
    for (std::size_t r = 0; r < rows.num_rows(); ++r) {
      scratch[r * rows.num_cols()] +=
          session.value()->noise_model(0).Sample(&noise_rng);
    }
    const Status ingested = session.value()->Ingest(data::RowBatch(
        scratch.data(), rows.num_rows(), rows.num_cols()));
    EXPECT_TRUE(ingested.ok()) << ingested.message();
  }
  Result<std::vector<reconstruct::Reconstruction>> estimates =
      session.value()->ReconstructAll();
  EXPECT_TRUE(estimates.ok()) << estimates.status().message();
  return estimates.value().front().masses;
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(DeterminismTest, MetricsNeverPerturbReconstruction) {
  ASSERT_TRUE(obs::TimingEnabled());
  for (const std::size_t threads : {0, 1, 2, 8}) {
    const std::vector<double> with_metrics = ReconstructedBits(threads);
    ASSERT_FALSE(with_metrics.empty());
    obs::SetTimingEnabled(false);
    const std::vector<double> without_metrics = ReconstructedBits(threads);
    obs::SetTimingEnabled(true);
    EXPECT_TRUE(BitIdentical(with_metrics, without_metrics))
        << "metrics on/off diverge at threads=" << threads;
  }
  // The engine's own cross-thread-count guarantee, with metrics enabled.
  const std::vector<double> one = ReconstructedBits(1);
  EXPECT_TRUE(BitIdentical(one, ReconstructedBits(2)));
  EXPECT_TRUE(BitIdentical(one, ReconstructedBits(8)));
}

}  // namespace
}  // namespace ppdm
