// End-to-end integration tests asserting the *shape* of the paper's
// results: who wins, by roughly what factor, and how accuracy trades off
// against privacy. These are the repository's reproduction guarantees.

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace ppdm::core {
namespace {

using synth::Function;
using tree::TrainingMode;

ExperimentConfig BaseConfig(Function fn, double privacy,
                            perturb::NoiseKind kind) {
  ExperimentConfig config;
  config.function = fn;
  config.train_records = 10000;
  config.test_records = 2000;
  config.privacy_fraction = privacy;
  config.noise = kind;
  config.seed = 424242;
  return config;
}

// ------------------------------------------------- Low privacy ≈ Original

class LowPrivacyParity : public ::testing::TestWithParam<Function> {};

TEST_P(LowPrivacyParity, ByClassNearOriginal) {
  // At 25% privacy the paper reports near-parity; at this test's reduced
  // scale (10k records vs the paper's 100k) we allow an 8-point margin.
  const ExperimentConfig config =
      BaseConfig(GetParam(), 0.25, perturb::NoiseKind::kGaussian);
  const auto results =
      RunModes(config, {TrainingMode::kOriginal, TrainingMode::kByClass});
  EXPECT_GE(results[1].accuracy, results[0].accuracy - 0.08)
      << synth::FunctionName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, LowPrivacyParity,
                         ::testing::Values(Function::kF1, Function::kF2,
                                           Function::kF3, Function::kF4,
                                           Function::kF5),
                         [](const auto& info) {
                           return synth::FunctionName(info.param);
                         });

// --------------------------------------- Reconstruction beats Randomized

class ReconstructionWins : public ::testing::TestWithParam<Function> {};

TEST_P(ReconstructionWins, ByClassBeatsRandomizedAtFullPrivacy) {
  const ExperimentConfig config =
      BaseConfig(GetParam(), 1.0, perturb::NoiseKind::kUniform);
  const auto results =
      RunModes(config, {TrainingMode::kByClass, TrainingMode::kRandomized});
  EXPECT_GE(results[0].accuracy, results[1].accuracy - 0.02)
      << synth::FunctionName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, ReconstructionWins,
                         ::testing::Values(Function::kF1, Function::kF2,
                                           Function::kF3, Function::kF4,
                                           Function::kF5),
                         [](const auto& info) {
                           return synth::FunctionName(info.param);
                         });

TEST(ReconstructionWinsBigOnF1, GapExceedsTwentyPoints) {
  const ExperimentConfig config =
      BaseConfig(Function::kF1, 1.0, perturb::NoiseKind::kUniform);
  const auto results =
      RunModes(config, {TrainingMode::kByClass, TrainingMode::kRandomized});
  EXPECT_GE(results[0].accuracy, 0.9);
  EXPECT_GE(results[0].accuracy - results[1].accuracy, 0.2);
}

// -------------------------------------------------- Ordering of algorithms

TEST(AlgorithmOrdering, OriginalOnTopByClassAboveGlobal) {
  const ExperimentConfig config =
      BaseConfig(Function::kF4, 1.0, perturb::NoiseKind::kUniform);
  const auto results =
      RunModes(config, {TrainingMode::kOriginal, TrainingMode::kByClass,
                        TrainingMode::kGlobal, TrainingMode::kRandomized});
  const double original = results[0].accuracy;
  const double byclass = results[1].accuracy;
  const double global = results[2].accuracy;
  const double randomized = results[3].accuracy;
  EXPECT_GE(original, byclass);
  EXPECT_GE(byclass, global - 0.03);
  EXPECT_GE(global, randomized - 0.03);
  EXPECT_GE(original, 0.95);
}

TEST(AlgorithmOrdering, LocalIsComparableToByClass) {
  // The paper finds ByClass ≈ Local and recommends ByClass on cost
  // grounds; at this scale Local's per-node reconstructions run on small
  // samples, so parity is asserted within 15 points.
  const ExperimentConfig config =
      BaseConfig(Function::kF1, 1.0, perturb::NoiseKind::kUniform);
  const auto results =
      RunModes(config, {TrainingMode::kByClass, TrainingMode::kLocal});
  EXPECT_GE(results[1].accuracy, results[0].accuracy - 0.15);
  EXPECT_GE(results[1].accuracy, 0.8);
}

// --------------------------------------------------- Graceful degradation

TEST(PrivacyTradeoff, ByClassDegradesGracefully) {
  double previous = 1.1;
  int inversions = 0;
  for (double privacy : {0.25, 0.5, 1.0, 2.0}) {
    const ExperimentConfig config =
        BaseConfig(Function::kF3, privacy, perturb::NoiseKind::kUniform);
    const double acc =
        RunModes(config, {TrainingMode::kByClass})[0].accuracy;
    if (acc > previous + 0.03) ++inversions;  // tolerate tiny non-monotone
    previous = acc;
  }
  EXPECT_LE(inversions, 1);
}

TEST(PrivacyTradeoff, AccuracyStaysUsefulAtDoublePrivacy) {
  const ExperimentConfig config =
      BaseConfig(Function::kF1, 2.0, perturb::NoiseKind::kUniform);
  const double acc = RunModes(config, {TrainingMode::kByClass})[0].accuracy;
  EXPECT_GE(acc, 0.85);  // the paper's flagship robustness claim on Fn1
}

// ---------------------------------------------------- Gaussian vs Uniform

TEST(NoiseComparison, GaussianAtLeastMatchesUniformAtSamePrivacy) {
  int gaussian_wins = 0;
  const std::vector<Function> fns{Function::kF1, Function::kF2, Function::kF3,
                                  Function::kF4, Function::kF5};
  for (Function fn : fns) {
    const double uniform =
        RunModes(BaseConfig(fn, 1.0, perturb::NoiseKind::kUniform),
                 {TrainingMode::kByClass})[0]
            .accuracy;
    const double gaussian =
        RunModes(BaseConfig(fn, 1.0, perturb::NoiseKind::kGaussian),
                 {TrainingMode::kByClass})[0]
            .accuracy;
    if (gaussian >= uniform - 0.02) ++gaussian_wins;
  }
  // The paper's conclusion: Gaussian is preferable at equal privacy.
  EXPECT_GE(gaussian_wins, 4);
}

}  // namespace
}  // namespace ppdm::core
