// Tests for the core layer: confusion/accuracy metrics, the
// information-theoretic privacy extensions, and the experiment driver.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/infotheory.h"
#include "core/metrics.h"
#include "reconstruct/partition.h"

namespace ppdm::core {
namespace {

// --------------------------------------------------------- ConfusionMatrix

TEST(ConfusionMatrixTest, CountsAndAccuracy) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  EXPECT_EQ(cm.Total(), 4u);
  EXPECT_EQ(cm.Count(0, 0), 2u);
  EXPECT_EQ(cm.Count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.75);
}

TEST(ConfusionMatrixTest, EmptyAccuracyIsZero) {
  ConfusionMatrix cm(3);
  EXPECT_DOUBLE_EQ(cm.Accuracy(), 0.0);
}

TEST(ConfusionMatrixTest, Recalls) {
  ConfusionMatrix cm(2);
  cm.Add(0, 0);
  cm.Add(0, 1);
  cm.Add(1, 1);
  const auto recalls = cm.Recalls();
  EXPECT_DOUBLE_EQ(recalls[0], 0.5);
  EXPECT_DOUBLE_EQ(recalls[1], 1.0);
}

TEST(ConfusionMatrixTest, ToStringContainsCounts) {
  ConfusionMatrix cm(2);
  cm.Add(1, 0);
  const std::string s = cm.ToString();
  EXPECT_NE(s.find("actual"), std::string::npos);
}

// ------------------------------------------------------------- Infotheory

TEST(InfotheoryTest, DiscreteEntropyUniformIsLogK) {
  EXPECT_NEAR(DiscreteEntropyBits({0.25, 0.25, 0.25, 0.25}), 2.0, 1e-12);
  EXPECT_NEAR(DiscreteEntropyBits({1.0, 0.0}), 0.0, 1e-12);
}

TEST(InfotheoryTest, DifferentialEntropyOfUniform) {
  // Uniform over width 8 (4 bins of width 2): h = log2(8) = 3 bits.
  EXPECT_NEAR(DifferentialEntropyBits({0.25, 0.25, 0.25, 0.25}, 2.0), 3.0,
              1e-12);
}

TEST(InfotheoryTest, EntropyPrivacyOfUniformIsItsWidth) {
  // AA'01: Π(X) for U[0, a] equals a.
  EXPECT_NEAR(EntropyPrivacy({0.25, 0.25, 0.25, 0.25}, 2.0), 8.0, 1e-9);
  EXPECT_NEAR(EntropyPrivacy({0.5, 0.5}, 3.0), 6.0, 1e-9);
}

TEST(InfotheoryTest, ConcentratedDistributionHasLessEntropyPrivacy) {
  const double spread = EntropyPrivacy({0.25, 0.25, 0.25, 0.25}, 1.0);
  const double peaked = EntropyPrivacy({0.85, 0.05, 0.05, 0.05}, 1.0);
  EXPECT_GT(spread, peaked);
}

TEST(InfotheoryTest, MutualInformationShrinksWithNoise) {
  const reconstruct::Partition p(0.0, 1.0, 10);
  const std::vector<double> masses(10, 0.1);
  const double weak = MutualInformationBits(
      masses, p, perturb::NoiseModel::Uniform(0.05));
  const double strong = MutualInformationBits(
      masses, p, perturb::NoiseModel::Uniform(0.6));
  EXPECT_GT(weak, strong);
  EXPECT_GT(strong, 0.0);
  // H(X) = log2(10) bits is an upper bound for both.
  EXPECT_LE(weak, std::log2(10.0) + 1e-9);
}

TEST(InfotheoryTest, MutualInformationGaussianVsUniformAtSamePrivacy) {
  // The paper prefers Gaussian at equal 95%-confidence privacy; the mutual
  // information through the channel quantifies what each leaks in total.
  const reconstruct::Partition p(0.0, 1.0, 20);
  const std::vector<double> masses(20, 0.05);
  const auto uniform =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kUniform, 1.0, 1.0, 0.95);
  const auto gaussian =
      perturb::NoiseForPrivacy(perturb::NoiseKind::kGaussian, 1.0, 1.0, 0.95);
  const double mi_u = MutualInformationBits(masses, p, uniform);
  const double mi_g = MutualInformationBits(masses, p, gaussian);
  EXPECT_GT(mi_u, 0.0);
  EXPECT_GT(mi_g, 0.0);
  EXPECT_LT(std::fabs(mi_u - mi_g), 1.0);  // same order of magnitude
}

TEST(InfotheoryTest, InformationLossZeroForPerfectReconstruction) {
  const std::vector<double> p{0.2, 0.3, 0.5};
  EXPECT_DOUBLE_EQ(InformationLoss(p, p), 0.0);
  EXPECT_DOUBLE_EQ(InformationLoss({1.0, 0.0}, {0.0, 1.0}), 1.0);
}

// -------------------------------------------------------------- Experiment

TEST(ExperimentTest, PrepareDataShapes) {
  ExperimentConfig config;
  config.train_records = 800;
  config.test_records = 200;
  const ExperimentData data = PrepareData(config);
  EXPECT_EQ(data.train.NumRows(), 800u);
  EXPECT_EQ(data.perturbed_train.NumRows(), 800u);
  EXPECT_EQ(data.test.NumRows(), 200u);
  EXPECT_TRUE(data.train.Validate().ok());
  EXPECT_TRUE(data.perturbed_train.Validate().ok());
}

TEST(ExperimentTest, PerturbedTrainDiffersFromTrain) {
  ExperimentConfig config;
  config.train_records = 100;
  config.test_records = 50;
  config.privacy_fraction = 1.0;
  const ExperimentData data = PrepareData(config);
  int diffs = 0;
  for (std::size_t r = 0; r < data.train.NumRows(); ++r) {
    if (data.train.At(r, 0) != data.perturbed_train.At(r, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 90);
}

TEST(ExperimentTest, TrainAndTestAreDisjointStreams) {
  ExperimentConfig config;
  config.train_records = 100;
  config.test_records = 100;
  const ExperimentData data = PrepareData(config);
  int identical = 0;
  for (std::size_t r = 0; r < 100; ++r) {
    if (data.train.At(r, 0) == data.test.At(r, 0)) ++identical;
  }
  EXPECT_EQ(identical, 0);
}

TEST(ExperimentTest, RunModesReturnsOnePerMode) {
  ExperimentConfig config;
  config.train_records = 2000;
  config.test_records = 500;
  config.privacy_fraction = 0.5;
  const auto results = RunModes(
      config, {tree::TrainingMode::kOriginal, tree::TrainingMode::kByClass});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].mode, tree::TrainingMode::kOriginal);
  EXPECT_EQ(results[1].mode, tree::TrainingMode::kByClass);
  EXPECT_GT(results[0].accuracy, 0.9);
  EXPECT_GT(results[1].accuracy, 0.7);
  EXPECT_GT(results[0].tree_nodes, 0u);
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentConfig config;
  config.train_records = 1500;
  config.test_records = 300;
  const auto a = RunModes(config, {tree::TrainingMode::kByClass});
  const auto b = RunModes(config, {tree::TrainingMode::kByClass});
  EXPECT_DOUBLE_EQ(a[0].accuracy, b[0].accuracy);
  EXPECT_EQ(a[0].tree_nodes, b[0].tree_nodes);
}

TEST(ExperimentTest, PaperScaleEnvToggle) {
  unsetenv("PPDM_PAPER_SCALE");
  EXPECT_FALSE(PaperScaleRequested());
  setenv("PPDM_PAPER_SCALE", "1", 1);
  EXPECT_TRUE(PaperScaleRequested());
  ExperimentConfig config;
  ApplyScale(&config);
  EXPECT_EQ(config.train_records, 100000u);
  EXPECT_EQ(config.test_records, 5000u);
  unsetenv("PPDM_PAPER_SCALE");
}

TEST(ExperimentTest, ZeroPrivacyMakesModesCoincide) {
  ExperimentConfig config;
  config.train_records = 2000;
  config.test_records = 500;
  config.privacy_fraction = 0.0;
  const auto results = RunModes(config, {tree::TrainingMode::kOriginal,
                                         tree::TrainingMode::kRandomized});
  // With no noise the perturbed dataset equals the original, so the two
  // baselines train identical trees.
  EXPECT_DOUBLE_EQ(results[0].accuracy, results[1].accuracy);
}

}  // namespace
}  // namespace ppdm::core
